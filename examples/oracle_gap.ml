(* Section 5's exponential separation, live: on the double binary tree
   TT_n, a local router pays exponentially many probes to connect the two
   roots, while an oracle router that probes mirror edge pairs pays a
   linear bill (Theorems 7 and 9).

   Run with:  dune exec examples/oracle_gap.exe *)

let () =
  let p = 0.8 in
  let trials = 12 in
  Printf.printf
    "Double binary tree TT_n, p = %.2f (above the 1/sqrt(2) ~ 0.707 threshold).\n\
     Local BFS vs the paired-edge oracle DFS, root to root.\n\n"
    p;
  Printf.printf "%5s %12s %14s %14s %9s\n" "depth" "vertices" "local probes"
    "oracle probes" "ratio";
  let stream = Prng.Stream.create 0x7EEL in
  List.iteri
    (fun index n ->
      let graph = Topology.Double_tree.graph n in
      let source = Topology.Double_tree.root1 in
      let target = Topology.Double_tree.root2 ~n in
      let measure label router =
        let spec = Experiments.Trial.spec ~graph ~p ~source ~target router in
        Experiments.Trial.mean_probes_lower_bound
          (Experiments.Trial.run
             (Prng.Stream.split stream ((index * 10) + label))
             ~trials spec)
      in
      let local = measure 1 (fun _rand ~source:_ ~target:_ -> Routing.Local_bfs.router) in
      let oracle =
        measure 2 (fun _rand ~source:_ ~target:_ -> Routing.Tree_pair_dfs.router ~n)
      in
      Printf.printf "%5d %12d %14.0f %14.0f %9.1f\n" n graph.Topology.Graph.vertex_count
        local oracle (local /. oracle))
    [ 4; 6; 8; 10; 12; 14 ];
  print_newline ();
  print_endline
    "The local column grows geometrically with the depth (Theorem 7: at least\n\
     p^-n); the oracle column grows linearly (Theorem 9). The oracle's trick is\n\
     global knowledge: it probes each tree-1 edge together with its tree-2 mirror,\n\
     turning the search into a supercritical branching process."
