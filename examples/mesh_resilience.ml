(* A mesh-network story for Theorem 4: a 60x60 grid of radio nodes in
   which each link fails independently (interference, obstacles). How
   many link probes does a message from the west side to the east side
   cost as the failure rate climbs towards the percolation threshold?

   Run with:  dune exec examples/mesh_resilience.exe *)

let () =
  let d = 2 and m = 60 in
  let graph = Topology.Mesh.graph ~d ~m in
  let source = Topology.Mesh.index ~m [| 5; 30 |] in
  let target = Topology.Mesh.index ~m [| 54; 30 |] in
  let distance = Topology.Mesh.l1_distance ~d ~m source target in
  let trials = 15 in
  Printf.printf
    "A %dx%d radio grid; routing across %d hops with the Theorem 4 path-follower.\n\
     Failure rate q = 1 - p; the 2-d mesh percolates at q = 0.5.\n\n"
    m m distance;
  Printf.printf "%8s %8s %14s %12s %10s %8s\n" "q(fail)" "p" "mean probes" "probes/hop"
    "P[u~v]" "stretch";
  let stream = Prng.Stream.create 0x60DL in
  List.iteri
    (fun index p ->
      let spec =
        Experiments.Trial.spec ~graph ~p ~source ~target (fun _rand ~source ~target ->
            Routing.Path_follow.mesh ~d ~m ~source ~target)
      in
      let result =
        Experiments.Trial.run
          (Prng.Stream.split stream index)
          ~trials ~max_attempts:(trials * 200) spec
      in
      let sample = Stats.Censored.count result.Experiments.Trial.observations in
      let mean = Experiments.Trial.mean_probes_lower_bound result in
      let stretch =
        Stats.Summary.mean result.Experiments.Trial.chemical_distances
        /. float_of_int distance
      in
      if sample = 0 then
        Printf.printf "%8.2f %8.2f %14s %12s %10.2f %8s\n" (1.0 -. p) p "-" "-"
          (Stats.Proportion.estimate result.Experiments.Trial.connection)
          "-"
      else
        Printf.printf "%8.2f %8.2f %14.0f %12.1f %10.2f %8.2f\n" (1.0 -. p) p mean
          (mean /. float_of_int distance)
          (Stats.Proportion.estimate result.Experiments.Trial.connection)
          stretch)
    [ 0.95; 0.85; 0.75; 0.65; 0.60; 0.55; 0.50; 0.45 ];
  print_newline ();
  print_endline
    "Per-hop cost stays a (p-dependent) constant all the way down to the\n\
     threshold — Theorem 4's O(n) routing — then connectivity itself collapses\n\
     at q = 0.5 and the question becomes moot."
