(* Drive the message-passing simulator directly: one faulty overlay, one
   lookup, four protocols racing — and a ground-truth check that
   flooding's latency equals the percolation distance.

   Run with:  dune exec examples/distributed_lookup.exe *)

let () =
  let n = 9 in
  let graph = Topology.Hypercube.graph n in
  let q = 0.5 in
  let world = Percolation.World.create graph ~p:(1.0 -. q) ~seed:4242L in
  let source = 0 in
  let target = Topology.Hypercube.antipode ~n source in
  Printf.printf
    "Overlay: %s (%d nodes), failure rate q = %.2f, lookup %d -> %d.\n\n"
    graph.Topology.Graph.name graph.Topology.Graph.vertex_count q source target;
  (match Percolation.Reveal.connected world source target with
  | Percolation.Reveal.Connected d ->
      Printf.printf "ground truth: connected, percolation distance %d\n\n" d
  | Percolation.Reveal.Disconnected ->
      print_endline "ground truth: disconnected — pick another seed";
      exit 0
  | Percolation.Reveal.Unknown -> ());

  (* Flooding: distributed BFS. *)
  let flood = Netsim.Engine.create world Netsim.Flood.protocol in
  Netsim.Flood.start flood ~source;
  (match
     Netsim.Engine.run flood ~until:(fun e -> Netsim.Flood.informed_at e target <> None)
   with
  | `Stopped _ ->
      let metrics = Netsim.Engine.metrics flood in
      Printf.printf "flood:       latency %d rounds, %d messages sent (%d delivered)\n"
        (Option.get (Netsim.Flood.latency flood ~source ~target))
        (Netsim.Metrics.messages_sent metrics) (Netsim.Metrics.messages_delivered metrics)
  | `Quiescent _ | `Out_of_rounds -> print_endline "flood:       target not reached");

  (* Push gossip. *)
  let gossip = Netsim.Engine.create world Netsim.Gossip.protocol in
  Netsim.Gossip.start gossip ~source;
  (match
     Netsim.Engine.run ~max_rounds:3000 gossip ~until:(fun e ->
         Netsim.Gossip.informed_at e target <> None)
   with
  | `Stopped rounds ->
      Printf.printf "gossip:      reached target in %d rounds, %d messages\n" rounds
        (Netsim.Metrics.messages_sent (Netsim.Engine.metrics gossip))
  | `Quiescent _ | `Out_of_rounds -> print_endline "gossip:      target not reached");

  (* Greedy DHT-style token. *)
  let greedy =
    Netsim.Engine.create world
      (Netsim.Greedy_forward.protocol ~target ~metric:Topology.Hypercube.hamming)
  in
  Netsim.Greedy_forward.start greedy ~source;
  (match
     Netsim.Engine.run greedy ~until:(fun e ->
         Netsim.Greedy_forward.arrived e ~target <> None)
   with
  | `Stopped _ ->
      Printf.printf "greedy:      delivered in %d hops with %d probes\n"
        (Option.get (Netsim.Greedy_forward.hops greedy ~target))
        (Netsim.Metrics.distinct_probes (Netsim.Engine.metrics greedy))
  | `Quiescent _ ->
      Printf.printf "greedy:      token dropped at node %d — lookup failed\n"
        (Option.get (Netsim.Greedy_forward.dropped greedy))
  | `Out_of_rounds -> print_endline "greedy:      did not terminate");

  (* Random walk. *)
  let walk = Netsim.Engine.create world (Netsim.Random_walk.protocol ~target) in
  Netsim.Random_walk.start walk ~source;
  (match
     Netsim.Engine.run ~max_rounds:50_000 walk ~until:(fun e ->
         Netsim.Random_walk.arrived e ~target <> None)
   with
  | `Stopped rounds -> Printf.printf "random walk: hit the target after %d rounds\n" rounds
  | `Quiescent _ | `Out_of_rounds -> print_endline "random walk: gave up");

  print_newline ();
  print_endline
    "Flooding's latency equals the percolation distance exactly (it is a\n\
     distributed BFS of the open subgraph) — at the price of touching every\n\
     reachable link. The greedy token probes one link per hop but has no detour\n\
     capability: as q grows it gets trapped, which is Section 1.3's warning for\n\
     routing-based exact search in faulty P2P overlays."
