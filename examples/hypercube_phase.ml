(* The headline phenomenon of the paper, in one runnable sweep: on the
   hypercube H_{n,p} with p = n^(-alpha), local routing flips from cheap
   to hopeless as alpha crosses 1/2 — even though the network stays
   connected and short paths keep existing.

   Run with:  dune exec examples/hypercube_phase.exe *)

let () =
  let n = 12 in
  let graph = Topology.Hypercube.graph n in
  let source = 0 in
  let target = Topology.Hypercube.antipode ~n source in
  let trials = 10 in
  let budget = 20_000 in
  Printf.printf
    "Local routing on H_%d between antipodes, p = n^-alpha, %d conditioned trials,\n\
     budget %d probes. Watch the medians cross the alpha = 1/2 line.\n\n"
    n trials budget;
  Printf.printf "%7s %9s %15s %12s %10s\n" "alpha" "p" "median probes" "censored" "P[u~v]";
  let stream = Prng.Stream.create 0xCAFEL in
  List.iteri
    (fun index alpha ->
      let p = float_of_int n ** -.alpha in
      let spec =
        Experiments.Trial.spec ~budget ~graph ~p ~source ~target
          (fun _rand ~source ~target -> Routing.Path_follow.hypercube ~n ~source ~target)
      in
      let result =
        Experiments.Trial.run (Prng.Stream.split stream index) ~trials spec
      in
      let median =
        match Experiments.Trial.median_observation result with
        | Some (Stats.Censored.Exact v) -> Printf.sprintf "%.0f" v
        | Some (Stats.Censored.At_least v) -> Printf.sprintf ">=%.0f" v
        | None -> "-"
      in
      Printf.printf "%7.2f %9.4f %15s %9d/%-2d %10.2f\n" alpha p median
        (Stats.Censored.censored_count result.Experiments.Trial.observations)
        (Stats.Censored.count result.Experiments.Trial.observations)
        (Stats.Proportion.estimate result.Experiments.Trial.connection))
    [ 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8 ];
  print_newline ();
  print_endline
    "Below 1/2 the segment router finishes in polynomially many probes; above it\n\
     the medians inflate towards (and past) the budget while P[u~v] stays far from\n\
     zero: the paths exist, but no local algorithm can find them (Theorem 3)."
