(* Quickstart: percolate a network, check connectivity, route, and count
   probes — the core API in ~40 lines.

   Run with:  dune exec examples/quickstart.exe *)

let ok = function Ok v -> v | Error message -> failwith message

let () =
  (* 1. A topology: the 12-dimensional hypercube (4096 vertices),
        resolved through the registry exactly as the CLI does — the
        spec syntax is NAME or NAME:SIZE. The instance carries both the
        implicit graph and its structured shape. *)
  let instance =
    Topology.Registry.build
      (ok (Topology.Registry.of_spec "hypercube:12"))
      ~default_size:12 (Prng.Stream.create 1L)
  in
  let graph = instance.Topology.Registry.graph in
  let n =
    match instance.Topology.Registry.shape with
    | Topology.Registry.Hypercube { n } -> n
    | _ -> assert false
  in
  Printf.printf "topology: %s (%d vertices)\n" graph.Topology.Graph.name
    graph.Topology.Graph.vertex_count;

  (* 2. A percolation world: each edge fails independently, keeping an
        edge open with probability p. The world is a pure function of
        (graph, p, seed): nothing is stored, everything is repeatable. *)
  let p = 0.45 in
  let world = Percolation.World.create graph ~p ~seed:2026L in

  (* 3. Ground truth (free of charge — not part of routing complexity):
        are two far-apart vertices even connected? *)
  let source = 0 in
  let target = Topology.Hypercube.antipode ~n source in
  (match Percolation.Reveal.connected world source target with
  | Percolation.Reveal.Connected d ->
      Printf.printf "ground truth: connected, percolation distance %d (Hamming %d)\n" d
        (Topology.Hypercube.hamming source target)
  | Percolation.Reveal.Disconnected -> print_endline "ground truth: disconnected"
  | Percolation.Reveal.Unknown -> print_endline "ground truth: unknown");

  (* 4. Route! A local router may only probe edges adjacent to vertices
        it has already reached (Definition 1 of the paper); the oracle
        counts every distinct probe — that count is the routing
        complexity (Definition 2). The router registry checks the
        instance's shape: "segment" would refuse a mesh. *)
  let router =
    let entry = ok (Routing.Registry.of_spec "segment") in
    ok (entry.Routing.Registry.build ~instance ~source ~target (Prng.Stream.create 2L))
  in
  (match Routing.Router.run router world ~source ~target with
  | Routing.Outcome.Found { path; probes; raw_probes } ->
      Printf.printf "%s: found a path of %d hops using %d probes (%d raw)\n"
        router.Routing.Router.name
        (List.length path - 1)
        probes raw_probes
  | Routing.Outcome.No_path { probes } ->
      Printf.printf "no path exists (%d probes to prove it)\n" probes
  | Routing.Outcome.Budget_exceeded { probes } ->
      Printf.printf "gave up after %d probes\n" probes);

  (* 5. Compare with plain local BFS — same world, same pair. *)
  match Routing.Router.run Routing.Local_bfs.router world ~source ~target with
  | Routing.Outcome.Found { probes; _ } ->
      Printf.printf "local-bfs: same route costs %d probes — the backbone helps\n" probes
  | Routing.Outcome.No_path _ | Routing.Outcome.Budget_exceeded _ ->
      print_endline "local-bfs did not finish"
