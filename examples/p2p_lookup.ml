(* Section 1.3 of the paper, acted out: hypercubic P2P overlays (Chord,
   Pastry and friends share the hypercube's structure) keep their giant
   component and short paths under heavy link failure, but routing-based
   exact lookup degrades long before connectivity does. Flooding — here,
   the local BFS that probes everything — keeps finding the data, at the
   cost of touching a large part of the network.

   We compare, across failure rates:
     - greedy routing (distance-directed, what a DHT lookup does),
     - the backbone segment router (Theorem 3(ii)'s repair strategy),
     - flooding (local BFS, guaranteed but expensive).

   Run with:  dune exec examples/p2p_lookup.exe *)

let ok = function Ok v -> v | Error message -> failwith message

let () =
  let n = 11 in
  let instance =
    Topology.Registry.build
      (ok (Topology.Registry.of_spec "hypercube"))
      ~default_size:n (Prng.Stream.create 1L)
  in
  let graph = instance.Topology.Registry.graph in
  let source = 0 in
  let target = Topology.Hypercube.antipode ~n source in
  let trials = 10 in
  let budget = 30_000 in
  Printf.printf
    "A %d-node hypercubic overlay. A node looks up a key stored at the\n\
     antipodal node while a fraction q of links is down.\n\n"
    graph.Topology.Graph.vertex_count;
  Printf.printf "%8s | %18s | %18s | %18s | %7s\n" "q(fail)" "greedy (DHT hop)"
    "segment repair" "flooding (BFS)" "P[u~v]";
  let line = String.make 96 '-' in
  print_endline line;
  let stream = Prng.Stream.create 0x9EE9L in
  (* The three strategies, resolved by name; each entry checks the
     topology's shape, so e.g. "segment" would refuse a mesh. *)
  let routers =
    List.map
      (fun name ->
        let entry = ok (Routing.Registry.of_spec name) in
        fun rand ~source ~target ->
          ok (entry.Routing.Registry.build ~instance ~source ~target rand))
      [ "greedy"; "segment"; "bfs" ]
  in
  List.iteri
    (fun row q ->
      let p = 1.0 -. q in
      let cells =
        List.mapi
          (fun column router ->
            let spec =
              Experiments.Trial.spec ~budget ~graph ~p ~source ~target router
            in
            let result =
              Experiments.Trial.run
                (Prng.Stream.split stream ((row * 10) + column))
                ~trials spec
            in
            match Experiments.Trial.median_observation result with
            | Some (Stats.Censored.Exact v) -> Printf.sprintf "%.0f probes" v
            | Some (Stats.Censored.At_least v) -> Printf.sprintf ">=%.0f probes" v
            | None -> "unreachable")
          routers
      in
      let connection =
        let spec =
          Experiments.Trial.spec ~budget ~graph ~p ~source ~target (List.hd routers)
        in
        let result =
          Experiments.Trial.run (Prng.Stream.split stream ((row * 10) + 7)) ~trials spec
        in
        Stats.Proportion.estimate result.Experiments.Trial.connection
      in
      match cells with
      | [ greedy; segment; flood ] ->
          Printf.printf "%8.2f | %18s | %18s | %18s | %7.2f\n" q greedy segment flood
            connection
      | _ -> assert false)
    [ 0.2; 0.4; 0.6; 0.7; 0.8 ];
  print_endline line;
  print_endline
    "Reading: flooding pays a near-full-network bill at every failure level but\n\
     always succeeds; the routing-based strategies are orders of magnitude cheaper\n\
     while failures are light and inflate steeply as q grows — at hypercube scale\n\
     (n large) they cross into the exponential regime of Theorem 3(i). The paper's\n\
     conclusion for P2P systems (Section 1.3): under heavy faults, flooding and\n\
     gossip remain effective for locating data while exact routing-based search\n\
     breaks down."
