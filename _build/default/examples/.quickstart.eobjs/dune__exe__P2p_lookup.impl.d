examples/p2p_lookup.ml: Experiments List Printf Prng Routing Stats String Topology
