examples/quickstart.ml: List Percolation Printf Routing Topology
