examples/quickstart.mli:
