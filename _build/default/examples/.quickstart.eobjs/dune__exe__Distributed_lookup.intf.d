examples/distributed_lookup.mli:
