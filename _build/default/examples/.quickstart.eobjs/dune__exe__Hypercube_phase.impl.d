examples/hypercube_phase.ml: Experiments List Printf Prng Routing Stats Topology
