examples/p2p_lookup.mli:
