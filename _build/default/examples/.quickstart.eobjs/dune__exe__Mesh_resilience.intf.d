examples/mesh_resilience.mli:
