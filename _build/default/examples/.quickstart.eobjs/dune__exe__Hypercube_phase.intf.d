examples/hypercube_phase.mli:
