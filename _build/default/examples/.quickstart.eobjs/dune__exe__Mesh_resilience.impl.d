examples/mesh_resilience.ml: Experiments List Printf Prng Routing Stats Topology
