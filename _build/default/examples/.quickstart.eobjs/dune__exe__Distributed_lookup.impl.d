examples/distributed_lookup.ml: Netsim Option Percolation Printf Topology
