examples/oracle_gap.ml: Experiments List Printf Prng Routing Topology
