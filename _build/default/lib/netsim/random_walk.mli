(** Random-walk token: the holder probes a uniformly random incident
    link each round and forwards over it if open (otherwise the token
    waits in place and retries next round).

    A zero-knowledge baseline between flooding (all links) and greedy
    (best link): never fails on a connected component, but its hitting
    time is polynomial in the component size rather than the distance. *)

type state = {
  holding : bool;
  arrived_at : int option;
  visits : int;  (** Times this node has held the token. *)
}

type message = Token

val protocol : target:int -> (state, message) Protocol.t

val start : (state, message) Engine.t -> source:int -> unit
val arrived : (state, message) Engine.t -> target:int -> int option
val total_visits : (state, message) Engine.t -> int
