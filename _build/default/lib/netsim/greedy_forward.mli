(** Greedy token forwarding — a DHT-style lookup hop.

    The token holder probes its incident links in order of the far
    endpoint's fault-free distance to the target and forwards the token
    over the first open link that strictly decreases the distance. If no
    open link improves, the token is dropped and the lookup fails (the
    network goes quiescent) — precisely the failure mode routing-based
    exact search suffers under heavy faults (Section 1.3). *)

type state = {
  arrived_at : int option;  (** Set on the target when the token lands. *)
  dropped_at : int option;  (** Set on the node that had to drop it. *)
}

type message = Token

val protocol :
  target:int -> metric:(int -> int -> int) -> (state, message) Protocol.t
(** [protocol ~target ~metric] forwards towards [target] under the
    fault-free [metric]. *)

val start : (state, message) Engine.t -> source:int -> unit

val arrived : (state, message) Engine.t -> target:int -> int option
(** Round at which the token reached the target, if it did. *)

val dropped : (state, message) Engine.t -> int option
(** The node that dropped the token, if any. *)

val hops : (state, message) Engine.t -> target:int -> int option
(** Rounds from injection to arrival = number of forwarding hops. *)
