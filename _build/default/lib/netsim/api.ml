type 'message t = {
  node : int;
  round : int;
  neighbors : int array;
  probe : int -> bool;
  send : int -> 'message -> unit;
  random_int : int -> int;
}
