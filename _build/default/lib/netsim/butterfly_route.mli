(** Bit-fixing permutation routing on the wrapped butterfly — the
    setting of Cole–Maggs–Sitaraman's fault-tolerance results cited in
    the paper's related work.

    Every row injects one packet at its level-0 node, addressed to a
    (permuted) destination row. A packet at level [l] wants the up-link
    that sets bit [l] of its row to the target's bit: {e straight} if
    the bit already matches, {e cross} otherwise. Faults force a simple
    detour: if the wanted up-link is dead, the packet takes the other
    one, leaving the bit wrong and fixing it on a later pass around the
    wrapped butterfly (up to a pass budget). Combined with a link
    capacity on the engine this exercises congestion, faults and
    multi-pass correction together. *)

type state = {
  arrivals : int;  (** Packets that terminated at this node. *)
  arrival_rounds : int list;  (** Round of each arrival, newest first. *)
  dropped : int;  (** Packets dropped here (dead links or passes spent). *)
}

type message

val protocol : n:int -> (state, message) Protocol.t
(** [protocol ~n] routes on [Topology.Butterfly.graph n]. *)

val inject_permutation :
  Prng.Stream.t -> (state, message) Engine.t -> n:int -> passes:int -> unit
(** Draw a uniform permutation of the [2^n] rows and inject one packet
    per row at its level-0 node; each packet may circle the wrapped
    butterfly at most [passes] times before it is dropped. *)

val delivered : (state, message) Engine.t -> int
(** Total packets that reached their destinations. *)

val dropped : (state, message) Engine.t -> int

val latencies : (state, message) Engine.t -> int list
(** Arrival rounds of all delivered packets. *)
