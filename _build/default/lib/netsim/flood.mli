(** Flooding: on first contact with the rumor, forward it once over
    every incident link.

    The latency (round at which a node is first informed, minus the
    source's) equals the percolation distance exactly — flooding is a
    distributed breadth-first search of the open subgraph. The price is
    message volume ~ the number of open edges of the informed region:
    this is the Section 1.3 trade-off made measurable. *)

type state = { informed_at : int option }
type message = Rumor

val protocol : (state, message) Protocol.t

val start : (state, message) Engine.t -> source:int -> unit
(** Inject the rumor at the source (informed in the next round). *)

val informed_at : (state, message) Engine.t -> int -> int option
(** Round at which a node was informed, if it was. *)

val latency : (state, message) Engine.t -> source:int -> target:int -> int option
(** [informed_at target - informed_at source], if both were informed. *)

val informed_count : (state, message) Engine.t -> int
