lib/netsim/metrics.ml: Format
