lib/netsim/flood.ml: Api Array Engine Protocol
