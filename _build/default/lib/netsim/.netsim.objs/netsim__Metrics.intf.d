lib/netsim/metrics.mli: Format
