lib/netsim/random_walk.mli: Engine Protocol
