lib/netsim/random_walk.ml: Api Array Engine Protocol
