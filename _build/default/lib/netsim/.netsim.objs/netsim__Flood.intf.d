lib/netsim/flood.mli: Engine Protocol
