lib/netsim/butterfly_route.mli: Engine Prng Protocol
