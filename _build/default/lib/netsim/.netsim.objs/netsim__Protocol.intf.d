lib/netsim/protocol.mli: Api
