lib/netsim/butterfly_route.ml: Api Array Engine List Prng Protocol Topology
