lib/netsim/engine.ml: Api Array Hashtbl List Metrics Option Percolation Prng Protocol Queue Topology
