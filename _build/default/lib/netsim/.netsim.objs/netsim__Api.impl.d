lib/netsim/api.ml:
