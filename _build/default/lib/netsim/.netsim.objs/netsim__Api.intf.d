lib/netsim/api.mli:
