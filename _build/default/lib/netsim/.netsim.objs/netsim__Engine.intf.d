lib/netsim/engine.mli: Metrics Percolation Protocol
