lib/netsim/protocol.ml: Api
