lib/netsim/greedy_forward.ml: Api Array Engine Option Protocol
