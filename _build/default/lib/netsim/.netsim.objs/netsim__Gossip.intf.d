lib/netsim/gossip.mli: Engine Protocol
