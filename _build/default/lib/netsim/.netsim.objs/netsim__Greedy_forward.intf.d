lib/netsim/greedy_forward.mli: Engine Protocol
