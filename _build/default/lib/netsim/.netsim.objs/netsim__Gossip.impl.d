lib/netsim/gossip.ml: Api Array Engine Protocol
