(** Global cost accounting of a simulation run. *)

type t = {
  mutable rounds : int;  (** Rounds executed so far. *)
  mutable messages_sent : int;  (** All [send] calls. *)
  mutable messages_delivered : int;  (** Sends whose link was open. *)
  mutable raw_probes : int;  (** All [probe] calls. *)
  mutable distinct_probes : int;  (** Distinct edges probed. *)
}

val create : unit -> t

val delivery_rate : t -> float
(** [messages_delivered / messages_sent]; [nan] when nothing was sent. *)

val pp : Format.formatter -> t -> unit
