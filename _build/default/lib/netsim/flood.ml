type state = { informed_at : int option }
type message = Rumor

let protocol =
  let init ~node:_ = { informed_at = None } in
  let step api state inbox =
    match (state.informed_at, inbox) with
    | Some _, _ | None, [] -> state
    | None, _ :: _ ->
        Array.iter (fun v -> api.Api.send v Rumor) api.Api.neighbors;
        { informed_at = Some api.Api.round }
  in
  { Protocol.name = "flood"; init; step; idle = (fun _ -> true) }

let start engine ~source = Engine.inject engine ~node:source ~sender:source Rumor
let informed_at engine node = (Engine.state engine node).informed_at

let latency engine ~source ~target =
  match (informed_at engine source, informed_at engine target) with
  | Some s, Some t -> Some (t - s)
  | None, _ | _, None -> None

let informed_count engine =
  Engine.fold_states engine ~init:0 ~f:(fun acc _ state ->
      match state.informed_at with Some _ -> acc + 1 | None -> acc)
