type state = { arrivals : int; arrival_rounds : int list; dropped : int }
type message = Packet of { target_row : int; passes_left : int }

let protocol ~n =
  let init ~node:_ = { arrivals = 0; arrival_rounds = []; dropped = 0 } in
  let step api state inbox =
    let level = Topology.Butterfly.level_of ~n api.Api.node in
    let row = Topology.Butterfly.row_of ~n api.Api.node in
    let up = (level + 1) mod n in
    let forward state (Packet { target_row; passes_left }) =
      if level = 0 && row = target_row then
        {
          state with
          arrivals = state.arrivals + 1;
          arrival_rounds = api.Api.round :: state.arrival_rounds;
        }
      else begin
        (* A packet back at level 0 with the wrong row starts a new pass. *)
        let passes_left = if level = 0 then passes_left - 1 else passes_left in
        if passes_left < 0 then { state with dropped = state.dropped + 1 }
        else begin
          let bit_matches = (row lxor target_row) land (1 lsl level) = 0 in
          let straight = Topology.Butterfly.vertex ~n ~level:up ~row in
          let cross =
            Topology.Butterfly.vertex ~n ~level:up ~row:(row lxor (1 lsl level))
          in
          let preferred, alternate =
            if bit_matches then (straight, cross) else (cross, straight)
          in
          if api.Api.probe preferred then begin
            api.Api.send preferred (Packet { target_row; passes_left });
            state
          end
          else if api.Api.probe alternate then begin
            (* Detour: the bit stays wrong; a later pass can fix it. *)
            api.Api.send alternate (Packet { target_row; passes_left });
            state
          end
          else { state with dropped = state.dropped + 1 }
        end
      end
    in
    List.fold_left (fun state (_, packet) -> forward state packet) state inbox
  in
  { Protocol.name = "butterfly-bit-fixing"; init; step; idle = (fun _ -> true) }

let inject_permutation stream engine ~n ~passes =
  let rows = 1 lsl n in
  let permutation = Array.init rows (fun i -> i) in
  Prng.Stream.shuffle_in_place stream permutation;
  for row = 0 to rows - 1 do
    let node = Topology.Butterfly.vertex ~n ~level:0 ~row in
    Engine.inject engine ~node ~sender:node
      (Packet { target_row = permutation.(row); passes_left = passes })
  done

let delivered engine =
  Engine.fold_states engine ~init:0 ~f:(fun acc _ state -> acc + state.arrivals)

let dropped engine =
  Engine.fold_states engine ~init:0 ~f:(fun acc _ state -> acc + state.dropped)

let latencies engine =
  Engine.fold_states engine ~init:[] ~f:(fun acc _ state -> state.arrival_rounds @ acc)
