(** Push gossip: every informed node pushes the rumor to one uniformly
    random incident link per round (open or not — dead links waste the
    push, modelling the fault-obliviousness of epidemic protocols).

    Spread is slower than flooding by roughly a log factor on expanders
    but the per-round message cost is one per informed node. *)

type state = { informed_at : int option }
type message = Rumor

val protocol : (state, message) Protocol.t

val start : (state, message) Engine.t -> source:int -> unit
val informed_at : (state, message) Engine.t -> int -> int option
val informed_count : (state, message) Engine.t -> int
