type state = { arrived_at : int option; dropped_at : int option }
type message = Token

let protocol ~target ~metric =
  let init ~node:_ = { arrived_at = None; dropped_at = None } in
  let step api state inbox =
    match inbox with
    | [] -> state
    | _ :: _ when api.Api.node = target -> { state with arrived_at = Some api.Api.round }
    | _ :: _ ->
        let here = metric api.Api.node target in
        let candidates = Array.copy api.Api.neighbors in
        Array.sort (fun a b -> compare (metric a target) (metric b target)) candidates;
        let rec forward i =
          if i >= Array.length candidates then { state with dropped_at = Some api.Api.round }
          else begin
            let v = candidates.(i) in
            if metric v target < here && api.Api.probe v then begin
              api.Api.send v Token;
              state
            end
            else if metric v target >= here then
              (* Sorted order: nothing further improves. *)
              { state with dropped_at = Some api.Api.round }
            else forward (i + 1)
          end
        in
        forward 0
  in
  { Protocol.name = "greedy-forward"; init; step; idle = (fun _ -> true) }

let start engine ~source = Engine.inject engine ~node:source ~sender:source Token
let arrived engine ~target = (Engine.state engine target).arrived_at

let dropped engine =
  Engine.fold_states engine ~init:None ~f:(fun acc node state ->
      match state.dropped_at with Some _ -> Some node | None -> acc)

let hops engine ~target =
  (* The token is injected at round 1 at the source and arrives at the
     target at round 1 + hops. *)
  Option.map (fun r -> r - 1) (arrived engine ~target)
