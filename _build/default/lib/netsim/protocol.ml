type ('state, 'message) t = {
  name : string;
  init : node:int -> 'state;
  step : 'message Api.t -> 'state -> (int * 'message) list -> 'state;
  idle : 'state -> bool;
}
