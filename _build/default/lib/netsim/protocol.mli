(** Protocols as values: a name, a per-node initial state, a synchronous
    round handler, and an idleness predicate.

    Using a record (rather than a functor) keeps protocols first-class:
    constructors like [Greedy_forward.protocol ~target] are plain
    functions, and the engine stays polymorphic in both state and
    message types. *)

type ('state, 'message) t = {
  name : string;
  init : node:int -> 'state;
      (** Called once per node when the engine is created. *)
  step : 'message Api.t -> 'state -> (int * 'message) list -> 'state;
      (** [step api state inbox] runs one round at one node. [inbox]
          lists [(sender, message)] pairs delivered this round (possibly
          empty — every node steps every round). The returned state
          replaces the old one. *)
  idle : 'state -> bool;
      (** Whether a node in this state can still act spontaneously
          (without receiving a message). The engine declares the network
          quiescent only when no messages are in flight {e and} every
          node is idle — e.g. a random-walk holder retrying a dead link
          is not idle even though nothing is in flight. *)
}
