type state = { holding : bool; arrived_at : int option; visits : int }
type message = Token

let protocol ~target =
  let init ~node:_ = { holding = false; arrived_at = None; visits = 0 } in
  let step api state inbox =
    let state =
      match inbox with
      | [] -> state
      | _ :: _ ->
          if api.Api.node = target then
            { state with arrived_at = Some api.Api.round; visits = state.visits + 1 }
          else { state with holding = true; visits = state.visits + 1 }
    in
    if state.holding then begin
      let degree = Array.length api.Api.neighbors in
      if degree = 0 then state
      else begin
        let v = api.Api.neighbors.(api.Api.random_int degree) in
        if api.Api.probe v then begin
          api.Api.send v Token;
          { state with holding = false }
        end
        else state (* closed link: hold and retry next round *)
      end
    end
    else state
  in
  { Protocol.name = "random-walk"; init; step; idle = (fun s -> not s.holding) }

let start engine ~source = Engine.inject engine ~node:source ~sender:source Token
let arrived engine ~target = (Engine.state engine target).arrived_at

let total_visits engine =
  Engine.fold_states engine ~init:0 ~f:(fun acc _ state -> acc + state.visits)
