type state = { informed_at : int option }
type message = Rumor

let protocol =
  let init ~node:_ = { informed_at = None } in
  let step api state inbox =
    let state =
      match (state.informed_at, inbox) with
      | None, _ :: _ -> { informed_at = Some api.Api.round }
      | Some _, _ | None, [] -> state
    in
    (match state.informed_at with
    | Some _ when Array.length api.Api.neighbors > 0 ->
        let pick = api.Api.random_int (Array.length api.Api.neighbors) in
        api.Api.send api.Api.neighbors.(pick) Rumor
    | Some _ | None -> ());
    state
  in
  { Protocol.name = "gossip-push"; init; step; idle = (fun s -> s.informed_at = None) }

let start engine ~source = Engine.inject engine ~node:source ~sender:source Rumor
let informed_at engine node = (Engine.state engine node).informed_at

let informed_count engine =
  Engine.fold_states engine ~init:0 ~f:(fun acc _ state ->
      match state.informed_at with Some _ -> acc + 1 | None -> acc)
