(** The per-node interface a protocol sees during one round.

    A node is a state machine that knows only its own id, its potential
    incident links, and whatever it has learnt through probing and
    messages — the distributed counterpart of Definition 1's locality.
    Everything a protocol may do to the outside world goes through this
    record. *)

type 'message t = {
  node : int;  (** This node's id. *)
  round : int;  (** Current round number (first round is 1). *)
  neighbors : int array;
      (** Potential neighbours in the fault-free topology. Whether each
          link survived percolation is only learnt by probing or by
          receiving a message over it. *)
  probe : int -> bool;
      (** [probe v] reveals whether the incident link to [v] is open.
          Counted in the global probe metrics (distinct edges once).
          @raise Topology.Graph.Not_an_edge if [v] is not a potential
          neighbour. *)
  send : int -> 'message -> unit;
      (** [send v m] transmits [m] over the incident link to [v]:
          counted as one message sent; delivered at the start of the
          next round iff the link is open (a message on a dead link is
          silently lost — sending does {e not} reveal liveness). *)
  random_int : int -> int;
      (** Per-node deterministic randomness: uniform in [\[0, bound)].
          Streams are derived from the engine seed and the node id. *)
}
