type t = {
  mutable rounds : int;
  mutable messages_sent : int;
  mutable messages_delivered : int;
  mutable raw_probes : int;
  mutable distinct_probes : int;
}

let create () =
  { rounds = 0; messages_sent = 0; messages_delivered = 0; raw_probes = 0; distinct_probes = 0 }

let delivery_rate t =
  if t.messages_sent = 0 then nan
  else float_of_int t.messages_delivered /. float_of_int t.messages_sent

let pp ppf t =
  Format.fprintf ppf "rounds=%d sent=%d delivered=%d probes=%d (%d raw)" t.rounds
    t.messages_sent t.messages_delivered t.distinct_probes t.raw_probes
