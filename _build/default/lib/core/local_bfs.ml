let route_with_order neighbor_order oracle ~target =
  match Router.trivial_outcome oracle ~target with
  | Some outcome -> outcome
  | None ->
      let world = Percolation.Oracle.world oracle in
      let g = Percolation.World.graph world in
      let source = Percolation.Oracle.source oracle in
      let enqueued = Hashtbl.create 256 in
      Hashtbl.replace enqueued source ();
      let queue = Queue.create () in
      Queue.push source queue;
      let result = ref None in
      (try
         while not (Queue.is_empty queue) do
           let u = Queue.pop queue in
           let around = neighbor_order u (g.Topology.Graph.neighbors u) in
           Array.iter
             (fun v ->
               if Percolation.Oracle.probe oracle u v then begin
                 if v = target then begin
                   result := Some (Percolation.Oracle.path_to oracle target);
                   raise Exit
                 end;
                 if not (Hashtbl.mem enqueued v) then begin
                   Hashtbl.replace enqueued v ();
                   Queue.push v queue
                 end
               end)
             around
         done
       with Exit -> ());
      (match !result with
      | Some (Some path) -> Router.found_outcome oracle path
      | Some None -> assert false (* target was just reached *)
      | None ->
          Outcome.No_path { probes = Percolation.Oracle.distinct_probes oracle })

let router =
  {
    Router.name = "local-bfs";
    policy = Percolation.Oracle.Local;
    route = route_with_order (fun _ neighbors -> neighbors);
  }

let router_randomized stream =
  let shuffle _ neighbors =
    Prng.Stream.shuffle_in_place stream neighbors;
    neighbors
  in
  {
    Router.name = "local-bfs-randomized";
    policy = Percolation.Oracle.Local;
    route = route_with_order shuffle;
  }
