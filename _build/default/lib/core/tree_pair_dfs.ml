let router ~n =
  let route oracle ~target =
    match Router.trivial_outcome oracle ~target with
    | Some outcome -> outcome
    | None ->
        let source = Percolation.Oracle.source oracle in
        let root1 = Topology.Double_tree.root1 and root2 = Topology.Double_tree.root2 ~n in
        if not ((source = root1 && target = root2) || (source = root2 && target = root1))
        then invalid_arg "Tree_pair_dfs.router: routes only between the two roots";
        (* Work in tree-1 coordinates descending from root1; mirror gives
           the tree-2 half. If routing root2->root1 we reverse at the end. *)
        let probe_pair parent child =
          if Percolation.Oracle.probe oracle parent child then begin
            let mirror_parent, mirror_child =
              Topology.Double_tree.mirror_edge ~n parent child
            in
            Percolation.Oracle.probe oracle mirror_parent mirror_child
          end
          else false
        in
        let g = Topology.Double_tree.graph n in
        let children_of v =
          (* Tree-1 descendants of an internal vertex: its neighbours of
             larger depth. *)
          g.Topology.Graph.neighbors v
          |> Array.to_list
          |> List.filter (fun w ->
                 Topology.Double_tree.depth_of ~n w
                 > Topology.Double_tree.depth_of ~n v
                 && Topology.Double_tree.role_of ~n w <> Topology.Double_tree.Internal2)
        in
        (* Depth-first search for a leaf whose whole branch is open in
           both trees. Returns the branch (root1 .. leaf). *)
        let rec descend v trail =
          if Topology.Double_tree.role_of ~n v = Topology.Double_tree.Leaf then
            Some (List.rev (v :: trail))
          else begin
            let rec try_children = function
              | [] -> None
              | child :: rest -> (
                  if not (probe_pair v child) then try_children rest
                  else
                    match descend child (v :: trail) with
                    | Some branch -> Some branch
                    | None -> try_children rest)
            in
            try_children (children_of v)
          end
        in
        (match descend root1 [] with
        | None ->
            Outcome.No_path { probes = Percolation.Oracle.distinct_probes oracle }
        | Some branch ->
            let mirrored =
              (* Tree-2 half: the mirror of each branch vertex, from the
                 leaf's parent mirror back up to root2. *)
              let rec mirror_up = function
                | child :: (parent :: _ as rest) ->
                    let m_parent, _m_child =
                      Topology.Double_tree.mirror_edge ~n parent child
                    in
                    m_parent :: mirror_up rest
                | [ _ ] | [] -> []
              in
              mirror_up (List.rev branch)
            in
            let full = branch @ mirrored in
            let full = if source = root1 then full else List.rev full in
            Router.found_outcome oracle full)
  in
  {
    Router.name = "tree-pair-dfs";
    policy = Percolation.Oracle.Unrestricted;
    route;
  }
