(** Local breadth-first routing — the universal local baseline.

    Explores the open cluster of the source outward, probing every edge
    incident to each reached vertex. In the worst case this is the
    "probe the entire graph" upper bound mentioned after Definition 2;
    on the double tree and on [H_{n,p}] with [α > 1/2] it exhibits the
    exponential lower bounds (Theorems 3(i) and 7), and on [G_{n,p}] the
    [Ω(n²)] bound (Theorem 10) — no local algorithm can beat those, so
    measuring BFS measures the regime, not the algorithm. *)

val router : Router.t
(** Probes neighbours in the topology's order. *)

val router_randomized : Prng.Stream.t -> Router.t
(** Same search, but each vertex's incident edges are probed in an order
    shuffled by the stream — removes any bias from the topology's
    neighbour enumeration (used to check order-independence of results). *)
