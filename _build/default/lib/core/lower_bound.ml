let bound ~t ~eta ~pr_path_in_s ~pr_connected =
  if pr_connected <= 0.0 then invalid_arg "Lower_bound.bound: pr_connected must be positive";
  let raw = ((t *. eta) +. pr_path_in_s) /. pr_connected in
  Float.max 0.0 (Float.min 1.0 raw)

let eta_theta ~p = p

let eta_double_tree ~p ~n = p ** float_of_int n

let eta_hypercube ~alpha ~beta ~n =
  let nf = float_of_int n in
  let l = nf ** beta in
  let p = nf ** -.alpha in
  let ratio = nf *. l *. l *. p *. p in
  if ratio >= 1.0 then
    invalid_arg "Lower_bound.eta_hypercube: series diverges (need beta < alpha - 1/2)";
  ((l *. p) ** l) /. (1.0 -. ratio)

let connected_within world ~member x y =
  if not (member x && member y) then false
  else if x = y then true
  else begin
    let seen = Hashtbl.create 64 in
    Hashtbl.replace seen x ();
    let queue = Queue.create () in
    Queue.push x queue;
    let found = ref false in
    (try
       while not (Queue.is_empty queue) do
         let u = Queue.pop queue in
         Array.iter
           (fun v ->
             if member v && not (Hashtbl.mem seen v) then begin
               Hashtbl.replace seen v ();
               if v = y then begin
                 found := true;
                 raise Exit
               end;
               Queue.push v queue
             end)
           (Percolation.World.open_neighbors world u)
       done
     with Exit -> ());
    !found
  end

let estimate_eta stream ~trials ~graph ~p ~member ~target ~cut_edge =
  let x, y = cut_edge in
  let inner = if member x then x else y in
  if not (member inner) then
    invalid_arg "Lower_bound.estimate_eta: cut edge has no endpoint in S";
  let successes = ref 0 in
  for trial = 1 to trials do
    let seed = Prng.Coin.derive (Prng.Stream.seed stream) trial in
    let world = Percolation.World.create graph ~p ~seed in
    if connected_within world ~member inner target then incr successes
  done;
  Stats.Proportion.make ~successes:!successes ~trials
