type failure =
  | Empty
  | Wrong_source of int
  | Wrong_target of int
  | Not_adjacent of int * int
  | Closed_edge of int * int
  | Repeated_vertex of int

let validate world ~source ~target p =
  match p with
  | [] -> Error Empty
  | first :: _ ->
      if first <> source then Error (Wrong_source first)
      else begin
        let rec last = function [ x ] -> x | _ :: rest -> last rest | [] -> assert false in
        if last p <> target then Error (Wrong_target (last p))
        else begin
          let seen = Hashtbl.create (List.length p) in
          let rec walk = function
            | [] -> Ok ()
            | [ v ] -> if Hashtbl.mem seen v then Error (Repeated_vertex v) else Ok ()
            | u :: (v :: _ as rest) ->
                if Hashtbl.mem seen u then Error (Repeated_vertex u)
                else begin
                  Hashtbl.replace seen u ();
                  match Percolation.World.is_open world u v with
                  | true -> walk rest
                  | false -> Error (Closed_edge (u, v))
                  | exception Topology.Graph.Not_an_edge _ -> Error (Not_adjacent (u, v))
                end
          in
          walk p
        end
      end

let is_valid world ~source ~target p =
  match validate world ~source ~target p with Ok () -> true | Error _ -> false

let simplify p =
  (* Skip from each vertex to just after its last occurrence in the walk:
     the result visits each vertex once and each hop is a walk edge. *)
  let arr = Array.of_list p in
  let n = Array.length arr in
  let last = Hashtbl.create n in
  Array.iteri (fun i v -> Hashtbl.replace last v i) arr;
  let rec go i acc =
    if i >= n then List.rev acc
    else begin
      let v = arr.(i) in
      go (Hashtbl.find last v + 1) (v :: acc)
    end
  in
  go 0 []

let pp_failure ppf = function
  | Empty -> Format.fprintf ppf "empty path"
  | Wrong_source v -> Format.fprintf ppf "path starts at %d, not the source" v
  | Wrong_target v -> Format.fprintf ppf "path ends at %d, not the target" v
  | Not_adjacent (u, v) -> Format.fprintf ppf "%d and %d are not adjacent" u v
  | Closed_edge (u, v) -> Format.fprintf ppf "edge (%d,%d) is closed" u v
  | Repeated_vertex v -> Format.fprintf ppf "vertex %d repeats" v
