(** Greedy local routing with depth-first backtracking.

    At each reached vertex, probe edges in order of the target distance
    of their far endpoint (closest first, fault-free metric), moving
    depth-first and backtracking when stuck. With no faults on the
    hypercube this reduces to bit-fixing shortest-path routing — exactly
    the greedy strategy discussed in the Remark after Theorem 3(ii).
    Complete: it explores the whole open cluster before giving up, so it
    returns [No_path] only when the target is genuinely unreachable. *)

val router : Router.t
(** Requires the topology to expose a metric.
    @raise Invalid_argument (at routing time) if [distance] is [None]. *)
