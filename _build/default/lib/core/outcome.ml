type t =
  | Found of { path : int list; probes : int; raw_probes : int }
  | No_path of { probes : int }
  | Budget_exceeded of { probes : int }

let probes = function
  | Found { probes; _ } | No_path { probes } | Budget_exceeded { probes } -> probes

let found = function Found _ -> true | No_path _ | Budget_exceeded _ -> false

let path = function
  | Found { path; _ } -> Some path
  | No_path _ | Budget_exceeded _ -> None

let path_length t = Option.map (fun p -> List.length p - 1) (path t)

let to_observation = function
  | Found { probes; _ } | No_path { probes } ->
      Stats.Censored.Exact (float_of_int probes)
  | Budget_exceeded { probes } -> Stats.Censored.At_least (float_of_int probes)

let pp ppf = function
  | Found { path; probes; raw_probes } ->
      Format.fprintf ppf "found path of length %d with %d probes (%d raw)"
        (List.length path - 1)
        probes raw_probes
  | No_path { probes } -> Format.fprintf ppf "no path (%d probes)" probes
  | Budget_exceeded { probes } ->
      Format.fprintf ppf "budget exceeded after %d probes" probes
