lib/core/path_follow.mli: Router
