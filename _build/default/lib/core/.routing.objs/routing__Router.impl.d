lib/core/router.ml: Outcome Path Percolation
