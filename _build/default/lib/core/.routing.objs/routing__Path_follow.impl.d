lib/core/path_follow.ml: Array Hashtbl Outcome Path Percolation Queue Router Topology
