lib/core/lower_bound.mli: Percolation Prng Stats Topology
