lib/core/local_bfs.ml: Array Hashtbl Outcome Percolation Prng Queue Router Topology
