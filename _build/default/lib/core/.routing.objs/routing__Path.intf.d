lib/core/path.mli: Format Percolation
