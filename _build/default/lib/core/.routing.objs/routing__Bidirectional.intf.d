lib/core/bidirectional.mli: Router
