lib/core/tree_pair_dfs.mli: Router
