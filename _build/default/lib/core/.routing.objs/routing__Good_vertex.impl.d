lib/core/good_vertex.ml: Float Hashtbl Percolation Prng Stats Topology
