lib/core/greedy.ml: Array Hashtbl Outcome Path Percolation Router Stack Topology
