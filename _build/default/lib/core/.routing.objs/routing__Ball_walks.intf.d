lib/core/ball_walks.mli:
