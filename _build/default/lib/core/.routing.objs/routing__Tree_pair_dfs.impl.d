lib/core/tree_pair_dfs.ml: Array List Outcome Percolation Router Topology
