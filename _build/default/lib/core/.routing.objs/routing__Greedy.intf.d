lib/core/greedy.mli: Router
