lib/core/path.ml: Array Format Hashtbl List Percolation Topology
