lib/core/router.mli: Outcome Path Percolation
