lib/core/good_vertex.mli: Percolation Prng Stats
