lib/core/ball_walks.ml: Array Hashtbl List Topology
