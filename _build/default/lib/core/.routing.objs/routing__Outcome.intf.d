lib/core/outcome.mli: Format Stats
