lib/core/local_bfs.mli: Prng Router
