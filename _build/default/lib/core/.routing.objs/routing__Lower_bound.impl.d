lib/core/lower_bound.ml: Array Float Hashtbl Percolation Prng Queue Stats
