lib/core/bidirectional.ml: Array Hashtbl List Outcome Percolation Queue Router Topology
