lib/core/outcome.ml: Format List Option Stats
