(** Exact walk counting inside Hamming balls — the combinatorial core of
    Theorem 3(i)'s proof.

    The lower-bound proof for the hypercube bounds the number of
    coordinate-sequence paths of length [l + 2k] from the ball's centre
    [v] to a boundary vertex [x] that stay inside the radius-[l] ball:
    [|A_k| ≤ n^k · l^{2k} · l!], whence

    [Pr[(v ~ x) ∈ S] ≤ Σ_k p^{l+2k} |A_k| ≤ (lp)^l / (1 - n l² p²)].

    Walks staying in the ball over-count those paths, so the exact walk
    count computed here must respect the same bound term by term — a
    machine check of the proof's combinatorial step, and a numerically
    {e tighter} η for Lemma 5 than the closed form. *)

val count_walks :
  n:int -> center:int -> radius:int -> target:int -> length:int -> float
(** [count_walks ~n ~center ~radius ~target ~length] is the exact number
    of walks of exactly [length] steps in [H_n] from [center] to
    [target] in which every intermediate vertex (and both endpoints)
    lies within Hamming distance [radius] of [center]. Returned as a
    float (counts overflow 63-bit integers quickly).
    @raise Invalid_argument on out-of-range parameters. *)

val bound_ak : n:int -> l:int -> k:int -> float
(** The proof's bound [n^k · l^{2k} · l!] on [|A_k|]. *)

val connection_probability_series :
  n:int -> p:float -> l:int -> terms:int -> float
(** [connection_probability_series ~n ~p ~l ~terms] is the exact-count
    upper bound [Σ_{k<terms} p^{l+2k} · walks(l+2k)] on
    [Pr[(v ~ x) ∈ S]] for a boundary vertex [x] at distance [l] — a
    union bound over open walks, evaluated with the true walk counts
    instead of the proof's looser [|A_k|] estimate. *)

val eta_closed_form : n:int -> p:float -> l:int -> float
(** The proof's closed form [(lp)^l / (1 - n l² p²)].
    @raise Invalid_argument when [n l² p² >= 1] (series diverges). *)

val boundary_vertex : l:int -> int
(** A canonical vertex at distance [l] from vertex 0: the word with the
    low [l] bits set. *)
