(** Backbone-following local routing — the upper-bound algorithm of
    Theorems 3(ii) and 4.

    Fix a shortest path [u = u_0, u_1, …, u_m = v] in the {e fault-free}
    topology (the backbone). From the furthest backbone vertex reached so
    far, run a breadth-first search of the open cluster (probing as it
    goes) until some {e later} backbone vertex is found; repeat. On the
    mesh (Theorem 4) each stage costs O(1) expected probes for any
    [p > p_c]; on the hypercube with [α < 1/2] each stage costs
    [poly(n)] (Theorem 3(ii)), giving total [poly(n)] complexity. *)

val router : backbone:int array -> Router.t
(** [router ~backbone] follows the given backbone. The backbone must be
    a path of distinct vertices; its first element must equal the routing
    source and its last the target, or {!Router.run} will reject the
    result.
    @raise Invalid_argument on an empty backbone. *)

val hypercube : n:int -> source:int -> target:int -> Router.t
(** Theorem 3(ii) instance: backbone = the canonical bit-fixing shortest
    path of [H_n]. *)

val mesh : d:int -> m:int -> source:int -> target:int -> Router.t
(** Theorem 4 instance: backbone = the canonical axis-by-axis monotone
    path of the mesh. *)

val torus : d:int -> m:int -> source:int -> target:int -> Router.t
(** Torus variant of {!mesh}. *)
