type side = Source_side | Target_side

type state = {
  oracle : Percolation.Oracle.t;
  graph : Topology.Graph.t;
  membership : (int, side) Hashtbl.t;
  predecessor : (int, int) Hashtbl.t; (* vertex -> previous hop on its side *)
  cross : (int * int) Queue.t; (* candidate edges between the two sides *)
  expand_source : (int * int) Queue.t; (* candidate outward edges, per side *)
  expand_target : (int * int) Queue.t;
  mutable size_source : int;
  mutable size_target : int;
}

let side_of state v = Hashtbl.find_opt state.membership v

let expansion_queue state = function
  | Source_side -> state.expand_source
  | Target_side -> state.expand_target

(* Add [v] to [side] (reached via [prev]) and file its incident edges as
   cross or expansion candidates. *)
let absorb state side ~prev v =
  Hashtbl.replace state.membership v side;
  Hashtbl.replace state.predecessor v prev;
  (match side with
  | Source_side -> state.size_source <- state.size_source + 1
  | Target_side -> state.size_target <- state.size_target + 1);
  Array.iter
    (fun w ->
      match side_of state w with
      | Some s when s = side -> ()
      | Some _ -> Queue.push (v, w) state.cross
      | None -> Queue.push (v, w) (expansion_queue state side))
    (state.graph.Topology.Graph.neighbors v)

(* Walk predecessor links back to the side's root. *)
let branch state v =
  let rec walk v acc =
    let prev = Hashtbl.find state.predecessor v in
    if prev = v then v :: acc else walk prev (v :: acc)
  in
  walk v []

let joined_path state a b =
  (* a on the source side, b on the target side, edge (a,b) open. *)
  branch state a @ List.rev (branch state b)

let rec drain_cross state =
  if Queue.is_empty state.cross then None
  else begin
    let a, b = Queue.pop state.cross in
    (* The far endpoint may have since been absorbed into the same side;
       then this is no longer a cross edge. *)
    match (side_of state a, side_of state b) with
    | Some sa, Some sb when sa <> sb ->
        let a, b = if sa = Source_side then (a, b) else (b, a) in
        if Percolation.Oracle.probe state.oracle a b then Some (a, b)
        else drain_cross state
    | _ -> drain_cross state
  end

(* Pop expansion candidates until one genuinely leads outward; probe it.
   Returns [false] when the queue ran dry without a single probe. *)
let rec expand_step state side =
  let queue = expansion_queue state side in
  if Queue.is_empty queue then false
  else begin
    let u, w = Queue.pop queue in
    match side_of state w with
    | Some s when s = side -> expand_step state side (* already ours *)
    | Some _ ->
        (* Became a cross edge while queued. *)
        Queue.push (u, w) state.cross;
        true
    | None ->
        if Percolation.Oracle.probe state.oracle u w then absorb state side ~prev:u w;
        true
  end

let route oracle ~target =
  match Router.trivial_outcome oracle ~target with
  | Some outcome -> outcome
  | None ->
      let world = Percolation.Oracle.world oracle in
      let state =
        {
          oracle;
          graph = Percolation.World.graph world;
          membership = Hashtbl.create 256;
          predecessor = Hashtbl.create 256;
          cross = Queue.create ();
          expand_source = Queue.create ();
          expand_target = Queue.create ();
          size_source = 0;
          size_target = 0;
        }
      in
      let source = Percolation.Oracle.source oracle in
      absorb state Source_side ~prev:source source;
      absorb state Target_side ~prev:target target;
      let rec loop () =
        match drain_cross state with
        | Some (a, b) -> Router.found_outcome oracle (joined_path state a b)
        | None ->
            let preferred =
              if state.size_source <= state.size_target then Source_side
              else Target_side
            in
            let other =
              match preferred with
              | Source_side -> Target_side
              | Target_side -> Source_side
            in
            if expand_step state preferred then loop ()
            else if expand_step state other then loop ()
            else
              Outcome.No_path { probes = Percolation.Oracle.distinct_probes oracle }
      in
      loop ()

let route_checked oracle ~target =
  (match Percolation.Oracle.policy oracle with
  | Percolation.Oracle.Unrestricted -> ()
  | Percolation.Oracle.Local ->
      invalid_arg "Bidirectional.router: requires an unrestricted oracle");
  route oracle ~target

let router =
  {
    Router.name = "bidirectional-oracle";
    policy = Percolation.Oracle.Unrestricted;
    route = route_checked;
  }
