(** The routing-algorithm interface and the measurement entry point.

    A router is a named strategy plus the oracle policy it requires
    (local routers per Definition 1, or unrestricted "oracle routers" of
    Section 5). {!run} wires a router to a fresh counting oracle over a
    world, translates budget exhaustion into an outcome, and re-validates
    any returned path against the world — a router cannot claim a path
    that is not genuinely open. *)

type t = {
  name : string;
  policy : Percolation.Oracle.policy;
  route : Percolation.Oracle.t -> target:int -> Outcome.t;
}

exception Invalid_route of { router : string; failure : Path.failure }
(** A router returned a path that fails validation — a router bug, never
    an unlucky world. *)

val run :
  ?budget:int -> t -> Percolation.World.t -> source:int -> target:int -> Outcome.t
(** [run router world ~source ~target] performs one routing attempt.
    [budget] caps distinct probes; exceeding it yields
    [Outcome.Budget_exceeded].
    @raise Invalid_route if the router returns a bogus path. *)

val found_outcome : Percolation.Oracle.t -> int list -> Outcome.t
(** Helper for router implementations: wrap a path with the oracle's
    probe counters. *)

val trivial_outcome : Percolation.Oracle.t -> target:int -> Outcome.t option
(** [Some] outcome when source equals target (the empty routing task);
    routers call this first. *)
