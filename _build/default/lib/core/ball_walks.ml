let boundary_vertex ~l = (1 lsl l) - 1

(* Enumerate the radius-[radius] Hamming ball around [center] as an
   index table, so the walk DP runs over a dense array. *)
let ball_index ~n ~center ~radius =
  let index = Hashtbl.create 256 in
  let members = ref [] in
  let count = ref 0 in
  let rec explore v =
    if not (Hashtbl.mem index v) then begin
      Hashtbl.replace index v !count;
      members := v :: !members;
      incr count;
      for bit = 0 to n - 1 do
        let w = v lxor (1 lsl bit) in
        if Topology.Hypercube.hamming center w <= radius then explore w
      done
    end
  in
  explore center;
  (index, Array.of_list (List.rev !members))

let count_walks ~n ~center ~radius ~target ~length =
  if n < 1 || n > 24 then invalid_arg "Ball_walks.count_walks: need 1 <= n <= 24";
  if radius < 0 || radius > n then invalid_arg "Ball_walks.count_walks: bad radius";
  if length < 0 then invalid_arg "Ball_walks.count_walks: negative length";
  if Topology.Hypercube.hamming center target > radius then
    invalid_arg "Ball_walks.count_walks: target outside the ball";
  let index, members = ball_index ~n ~center ~radius in
  let size = Array.length members in
  let current = Array.make size 0.0 in
  current.(Hashtbl.find index center) <- 1.0;
  let next = Array.make size 0.0 in
  for _ = 1 to length do
    Array.fill next 0 size 0.0;
    Array.iteri
      (fun i v ->
        let weight = current.(i) in
        if weight > 0.0 then
          for bit = 0 to n - 1 do
            let w = v lxor (1 lsl bit) in
            match Hashtbl.find_opt index w with
            | Some j -> next.(j) <- next.(j) +. weight
            | None -> ()
          done)
      members;
    Array.blit next 0 current 0 size
  done;
  current.(Hashtbl.find index target)

let bound_ak ~n ~l ~k =
  let rec factorial i acc = if i <= 1 then acc else factorial (i - 1) (acc *. float_of_int i) in
  let nf = float_of_int n and lf = float_of_int l in
  (nf ** float_of_int k) *. (lf ** float_of_int (2 * k)) *. factorial l 1.0

let connection_probability_series ~n ~p ~l ~terms =
  let center = 0 in
  let target = boundary_vertex ~l in
  let total = ref 0.0 in
  for k = 0 to terms - 1 do
    let length = l + (2 * k) in
    let walks = count_walks ~n ~center ~radius:l ~target ~length in
    total := !total +. ((p ** float_of_int length) *. walks)
  done;
  !total

let eta_closed_form ~n ~p ~l =
  let nf = float_of_int n and lf = float_of_int l in
  let ratio = nf *. lf *. lf *. p *. p in
  if ratio >= 1.0 then invalid_arg "Ball_walks.eta_closed_form: series diverges";
  ((lf *. p) ** lf) /. (1.0 -. ratio)
