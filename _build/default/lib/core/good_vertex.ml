let degree_threshold ~n ~p = float_of_int n *. p /. 2.0
let ball_threshold ~n ~p = (float_of_int n *. p) ** 2.0 /. 4.0

let is_good world v =
  let graph = Percolation.World.graph world in
  let n = Topology.Hypercube.dimension graph in
  let p = Percolation.World.p world in
  let open_degree = Percolation.World.open_degree world v in
  (* Floor both richness thresholds at 1 so the definition does not
     degenerate for tiny np (an isolated vertex is never good). *)
  if float_of_int open_degree < Float.max 1.0 (degree_threshold ~n ~p) then false
  else begin
    let ball = Percolation.Reveal.ball world v ~radius:2 in
    (* The ball includes v itself; count others. *)
    float_of_int (Hashtbl.length ball - 1) >= Float.max 1.0 (ball_threshold ~n ~p)
  end

let fraction_good stream world ~samples =
  let size = (Percolation.World.graph world).Topology.Graph.vertex_count in
  let good = ref 0 in
  for _ = 1 to samples do
    let v = Prng.Stream.int_in stream size in
    if is_good world v then incr good
  done;
  Stats.Proportion.make ~successes:!good ~trials:samples

let good_pair_distance world u v =
  if not (is_good world u && is_good world v) then `Not_good
  else
    match Percolation.Chemical.distance world u v with
    | Some d -> `Distance d
    | None -> `Disconnected
