(** Bidirectional oracle routing — the Theorem 11 upper-bound algorithm.

    Grows a reached set [U_t] around the source and [V_t] around the
    target simultaneously (the [V_t] side is why this is {e not} a local
    router). Following the paper's algorithm:

    + whenever an unprobed edge runs between [U_t] and [V_t], probe it —
      if open, the two trees join and the path is found;
    + otherwise expand the smaller side by probing an unprobed edge
      towards an unreached vertex;
    + when nothing remains, report disconnection.

    On [G_{n,p}] with [p = c/n] the sides meet at size [Θ(√n)] after
    [O(n^{3/2})] probes — a [√n] factor below the [Ω(n²)] local bound of
    Theorem 10. *)

val router : Router.t
