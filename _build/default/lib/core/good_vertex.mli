(** Operational "good vertex" machinery behind Theorem 3(ii).

    The upper-bound proof cites Angel–Benjamini [3]: call a vertex
    {e good} when its percolation-radius-2 neighbourhood is rich enough;
    then (1) each vertex is good with probability
    [1 - exp(-c n^{1-α})], and (2) w.h.p. {e all} pairs of good vertices
    at fault-free distance ≤ 3 are within percolation distance
    [l = l(α) = O((1-2α)^{-1})] of each other. The segment router walks
    good backbone vertices and pays [n^l] per BFS stage.

    This paper does not restate [3]'s exact richness condition, so this
    module uses a documented operational variant (the substitution is
    recorded in DESIGN.md): a vertex [v] of [H_{n,p}] is {b good} when

    - its open degree is at least [np/2], and
    - its open ball of radius 2 holds at least [(np)²/4] vertices

    — i.e. both its first and second percolation neighbourhoods reach
    half of their expected sizes. Both properties are determined by the
    radius-2 neighbourhood, as in [3]. E20 measures how the good
    fraction and the good-pair percolation distances behave in [n] and
    [α]; the trends, not the constants, are what the proof needs. *)

val degree_threshold : n:int -> p:float -> float
(** [np / 2]. *)

val ball_threshold : n:int -> p:float -> float
(** [(np)² / 4]. *)

val is_good : Percolation.World.t -> int -> bool
(** Whether a vertex of a hypercube world is good (reads edge states
    directly; not a counted probe — this is analysis machinery, not a
    router). *)

val fraction_good :
  Prng.Stream.t -> Percolation.World.t -> samples:int -> Stats.Proportion.t
(** Estimate of the good fraction by uniform vertex sampling. *)

val good_pair_distance :
  Percolation.World.t -> int -> int -> [ `Distance of int | `Not_good | `Disconnected ]
(** Percolation distance between two vertices when both are good. *)
