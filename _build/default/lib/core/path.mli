(** Validation of routed paths.

    Routers are trusted nowhere: the measurement harness re-checks every
    returned path against the world (through direct state reads, not
    counted probes). *)

type failure =
  | Empty
  | Wrong_source of int
  | Wrong_target of int
  | Not_adjacent of int * int
  | Closed_edge of int * int
  | Repeated_vertex of int

val validate :
  Percolation.World.t -> source:int -> target:int -> int list -> (unit, failure) result
(** [validate w ~source ~target p] checks that [p] starts at [source],
    ends at [target], walks only adjacent pairs, uses only open edges and
    repeats no vertex (simple path). *)

val is_valid : Percolation.World.t -> source:int -> target:int -> int list -> bool

val simplify : int list -> int list
(** [simplify p] removes cycles: keeps the portion of the walk between
    the first and last visit of each vertex, yielding a simple path with
    the same endpoints using a subset of the walk's edges. *)

val pp_failure : Format.formatter -> failure -> unit
