(** Paired-edge depth-first oracle routing on the double tree [TT_n] —
    the Theorem 9 algorithm.

    A root-to-root path must descend tree 1 along some branch and climb
    tree 2 along the mirror branch, so an edge is useful only if its
    mirror is open too. The router therefore explores downward
    depth-first, probing each tree-1 edge {e together with} its tree-2
    mirror and descending only when both are open. Each edge pair
    survives with probability [p²]; for [p > 1/√2] this is a
    supercritical Galton–Watson exploration and reaches the leaves after
    an expected [O(n)] probes — an exponential improvement over any local
    router (Theorem 7). *)

val router : n:int -> Router.t
(** [router ~n] routes on [Topology.Double_tree.graph n] from one root
    to the other (in either direction). *)
