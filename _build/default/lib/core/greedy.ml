let route oracle ~target =
  match Router.trivial_outcome oracle ~target with
  | Some outcome -> outcome
  | None ->
      let world = Percolation.Oracle.world oracle in
      let g = Percolation.World.graph world in
      let metric =
        match g.Topology.Graph.distance with
        | Some metric -> metric
        | None -> invalid_arg "Greedy.router: topology has no metric"
      in
      let source = Percolation.Oracle.source oracle in
      let visited = Hashtbl.create 256 in
      Hashtbl.replace visited source ();
      let stack = Stack.create () in
      Stack.push source stack;
      let result = ref None in
      (try
         while not (Stack.is_empty stack) do
           let u = Stack.pop stack in
           let around = g.Topology.Graph.neighbors u in
           Array.sort (fun a b -> compare (metric a target) (metric b target)) around;
           (* Push in reverse preference order so the closest neighbour is
              explored first. *)
           for i = Array.length around - 1 downto 0 do
             let v = around.(i) in
             if (not (Hashtbl.mem visited v)) && Percolation.Oracle.probe oracle u v
             then begin
               if v = target then begin
                 result := Percolation.Oracle.path_to oracle target;
                 raise Exit
               end;
               Hashtbl.replace visited v ();
               Stack.push v stack
             end
           done
         done
       with Exit -> ());
      (match !result with
      | Some path -> Router.found_outcome oracle (Path.simplify path)
      | None -> Outcome.No_path { probes = Percolation.Oracle.distinct_probes oracle })

let router = { Router.name = "greedy-dfs"; policy = Percolation.Oracle.Local; route }
