(* One stage: breadth-first probe outward from [start] until a vertex with
   a backbone index greater than [current] turns up. Returns that index,
   or None when start's open cluster holds no later backbone vertex. *)
let stage oracle ~index_of ~current start =
  let g = Percolation.World.graph (Percolation.Oracle.world oracle) in
  let enqueued = Hashtbl.create 64 in
  Hashtbl.replace enqueued start ();
  let queue = Queue.create () in
  Queue.push start queue;
  let advance = ref None in
  (try
     while not (Queue.is_empty queue) do
       let u = Queue.pop queue in
       Array.iter
         (fun v ->
           if Percolation.Oracle.probe oracle u v then begin
             (match index_of v with
             | Some j when j > current ->
                 advance := Some j;
                 raise Exit
             | Some _ | None -> ());
             if not (Hashtbl.mem enqueued v) then begin
               Hashtbl.replace enqueued v ();
               Queue.push v queue
             end
           end)
         (g.Topology.Graph.neighbors u)
     done
   with Exit -> ());
  !advance

let router ~backbone =
  if Array.length backbone = 0 then invalid_arg "Path_follow.router: empty backbone";
  let index_table = Hashtbl.create (Array.length backbone) in
  Array.iteri (fun i v -> Hashtbl.replace index_table v i) backbone;
  let index_of v = Hashtbl.find_opt index_table v in
  let route oracle ~target =
    match Router.trivial_outcome oracle ~target with
    | Some outcome -> outcome
    | None ->
        let last = Array.length backbone - 1 in
        let rec follow current =
          if current = last then begin
            match Percolation.Oracle.path_to oracle target with
            | Some path -> Router.found_outcome oracle (Path.simplify path)
            | None -> assert false
          end
          else begin
            match stage oracle ~index_of ~current backbone.(current) with
            | Some next -> follow next
            | None ->
                Outcome.No_path
                  { probes = Percolation.Oracle.distinct_probes oracle }
          end
        in
        follow 0
  in
  { Router.name = "path-follow"; policy = Percolation.Oracle.Local; route }

let hypercube ~n ~source ~target =
  let backbone = Array.of_list (Topology.Hypercube.fixed_path ~n source target) in
  { (router ~backbone) with Router.name = "segment-bfs(hypercube)" }

let mesh ~d ~m ~source ~target =
  let backbone = Array.of_list (Topology.Mesh.fixed_path ~d ~m source target) in
  { (router ~backbone) with Router.name = "path-follow(mesh)" }

let torus ~d ~m ~source ~target =
  let backbone = Array.of_list (Topology.Torus.fixed_path ~d ~m source target) in
  { (router ~backbone) with Router.name = "path-follow(torus)" }
