(** Result of one routing attempt, with its probe accounting. *)

type t =
  | Found of { path : int list; probes : int; raw_probes : int }
      (** An open path from source to target (source first), and the
          number of distinct edges probed to find it — the routing
          complexity of Definition 2. *)
  | No_path of { probes : int }
      (** The router proved (within its knowledge) that no open path
          exists — it exhausted every probeable edge. *)
  | Budget_exceeded of { probes : int }
      (** The probe budget ran out; the true complexity is [>= probes]. *)

val probes : t -> int
(** Distinct probes charged to the attempt, whatever the outcome. *)

val found : t -> bool

val path : t -> int list option

val path_length : t -> int option
(** Number of edges of the found path. *)

val to_observation : t -> Stats.Censored.observation
(** [Found] and [No_path] become exact observations of the probe count;
    [Budget_exceeded] becomes a censored (lower-bound) observation. *)

val pp : Format.formatter -> t -> unit
