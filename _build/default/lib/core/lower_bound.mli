(** Computational face of the Lower Bound Lemma (Lemma 5).

    For a vertex partition [V = S ∪ S̄] with the target [v ∈ S], if every
    cut edge [e] satisfies [Pr\[(v ~ e) ∈ S\] ≤ η] then a local router
    from [u] needs at least [t] probes except with probability

    [Pr\[X < t\] ≤ (tη + Pr\[(u ~ v) ∈ S\]) / Pr\[u ~ v\]].

    This module evaluates that bound: analytically for the worked
    examples of the paper (theta graph, double tree, hypercube ball) and
    by Monte-Carlo estimation of [Pr\[(v ~ e) ∈ S\]] on any small graph —
    letting tests confirm the analytic [η]'s and experiments compare the
    measured complexity of real routers against the certified bound. *)

val bound : t:float -> eta:float -> pr_path_in_s:float -> pr_connected:float -> float
(** The right-hand side of Lemma 5's inequality, clamped to [\[0,1\]].
    @raise Invalid_argument if [pr_connected <= 0]. *)

val eta_theta : p:float -> float
(** Exact [η] for the theta graph with [S = {v} ∪ middles]: a cut edge
    [(u, m_i)] reaches [v] within [S] iff edge [(m_i, v)] is open, so
    [η = p]. *)

val eta_double_tree : p:float -> n:int -> float
(** Exact [η] for [TT_n] with [S] = the second tree: a cut (leaf) edge
    reaches the far root within [S] only along its unique branch, so
    [η = pⁿ] (Theorem 7). *)

val eta_hypercube : alpha:float -> beta:float -> n:int -> float
(** The Theorem 3(i) path-counting bound for [S] = a Hamming ball of
    radius [l = n^β] around [v] under [p = n^{-α}]:
    [η = (lp)^l / (1 - n l² p²)], valid (and finite) when
    [n^{2β+1-2α} < 1], i.e. [β < α - 1/2].
    @raise Invalid_argument when the series does not converge. *)

val connected_within :
  Percolation.World.t -> member:(int -> bool) -> int -> int -> bool
(** [connected_within w ~member x y] — is there an open path from [x] to
    [y] using only vertices satisfying [member]? (The event
    [{(x ~ y) ∈ S}] of the paper.) *)

val estimate_eta :
  Prng.Stream.t ->
  trials:int ->
  graph:Topology.Graph.t ->
  p:float ->
  member:(int -> bool) ->
  target:int ->
  cut_edge:int * int ->
  Stats.Proportion.t
(** Monte-Carlo estimate of [Pr\[(v ~ e) ∈ S\]] over fresh worlds: the
    fraction of [trials] seeds in which the cut edge's inner endpoint
    connects to [target] within [member]. (The probability is over the
    whole percolation, including the cut edge itself being open — as in
    the Lemma, where [e]'s own state is irrelevant because only paths
    inside [S] count; we accordingly test from the endpoint inside [S].) *)
