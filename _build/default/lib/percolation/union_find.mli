(** Disjoint-set forest with union by rank and path compression.

    Used for exact cluster censuses of percolated graphs small enough to
    enumerate. Near-constant amortised time per operation. *)

type t

val create : int -> t
(** [create n] has elements [0 .. n-1], each its own singleton set.
    @raise Invalid_argument if [n < 0]. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the sets of [a] and [b]; returns [false] if they
    were already the same set. *)

val same : t -> int -> int -> bool
(** Whether two elements share a set. *)

val size : t -> int -> int
(** Number of elements in the element's set. *)

val set_count : t -> int
(** Current number of disjoint sets. *)

val element_count : t -> int
(** Total number of elements ([n] at creation). *)
