type t = {
  graph : Topology.Graph.t;
  p : float;
  seed : int64;
  removed : (int, unit) Hashtbl.t option;
  site_p : float option;
}

(* Distinct seed namespace for vertex coins, so site and bond states are
   independent even though vertex and edge ids overlap. *)
let site_seed seed = Prng.Coin.derive seed 0x5173

let create ?site_p graph ~p ~seed =
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "World.create: p outside [0,1]";
  (match site_p with
  | Some sp when not (sp >= 0.0 && sp <= 1.0) ->
      invalid_arg "World.create: site_p outside [0,1]"
  | Some _ | None -> ());
  { graph; p; seed; removed = None; site_p }

let graph t = t.graph
let p t = t.p
let seed t = t.seed
let site_p t = t.site_p

let remove_edges t edges =
  let removed =
    match t.removed with
    | None -> Hashtbl.create (2 * List.length edges)
    | Some existing -> Hashtbl.copy existing
  in
  List.iter
    (fun (u, v) -> Hashtbl.replace removed (t.graph.Topology.Graph.edge_id u v) ())
    edges;
  { t with removed = Some removed }

let removed_count t =
  match t.removed with None -> 0 | Some removed -> Hashtbl.length removed

let vertex_alive t v =
  Topology.Graph.check_vertex t.graph v;
  match t.site_p with
  | None -> true
  | Some sp -> Prng.Coin.bernoulli ~seed:(site_seed t.seed) ~p:sp v

let is_open t u v =
  let id = t.graph.Topology.Graph.edge_id u v in
  (match t.removed with
  | Some removed -> not (Hashtbl.mem removed id)
  | None -> true)
  && vertex_alive t u && vertex_alive t v
  && Prng.Coin.bernoulli ~seed:t.seed ~p:t.p id

let open_neighbors t v =
  t.graph.Topology.Graph.neighbors v
  |> Array.to_list
  |> List.filter (fun w -> is_open t v w)
  |> Array.of_list

let open_degree t v = Array.length (open_neighbors t v)

let count_open_edges t =
  let count = ref 0 in
  Topology.Graph.iter_edges t.graph (fun u v -> if is_open t u v then incr count);
  !count
