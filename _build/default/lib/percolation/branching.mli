(** Binary Galton–Watson (branching-process) theory.

    The paper's tree results reduce to a binary branching process in
    which each of a node's two children survives independently with
    probability [p]: Lemma 6 (connectivity of the double tree [TT_n] is
    survival with per-child probability [p²]), Theorem 7 (the local
    lower bound), and Theorem 9 (whose [c(p)] is the expected size of a
    failed branch). This module computes the exact quantities those
    proofs use, so experiments and tests can compare Monte-Carlo
    measurements against closed forms.

    Throughout, "binary GW tree with parameter [p]" means: the root is
    alive; each alive node has two potential children, each alive
    independently with probability [p]; offspring mean is [2p] and the
    process is supercritical iff [p > 1/2]. *)

val survival_to_depth : p:float -> int -> float
(** [survival_to_depth ~p k] is the probability that the process
    survives at least [k] generations:
    [q_0 = 1], [q_{i+1} = 1 - (1 - p·q_i)²].
    @raise Invalid_argument if [p] outside [\[0,1\]] or [k < 0]. *)

val survival : p:float -> float
(** [survival ~p] is the extinction-complement [lim_k q_k]: the smallest
    non-negative root of [q = 1 - (1 - p·q)²], namely
    [(2p - 1)/p²] for [p > 1/2] and [0] otherwise. *)

val extinction : p:float -> float
(** [1 - survival ~p]. *)

val expected_total_progeny : p:float -> float
(** Expected total number of nodes (root included) of the process when
    it is {e subcritical or critical-conditioned-finite}: for [p < 1/2]
    this is [1 / (1 - 2p)]; for [p >= 1/2] the unconditioned expectation
    is infinite and [infinity] is returned. This is the [c(p)] of
    Theorem 9's proof: a branch that fails to reach depth [n] has
    expected size [O(1)] because the dual (conditioned-on-extinction)
    process is subcritical. *)

val dual_parameter : p:float -> float
(** For a supercritical process ([p > 1/2]), the process conditioned on
    extinction is again a binary GW process (standard duality: the
    conditioned offspring pgf is [f(e·x)/e] with [e] the extinction
    probability, and for [f(x) = (1-p+px)²] this is Binomial(2, p̂)
    with [p̂ = p·√e < 1/2]).
    @raise Invalid_argument if [p <= 1/2]. *)

val expected_failed_branch_size : p:float -> float
(** Theorem 9's [c(p)]: the expected total progeny of the process
    conditioned on extinction — [expected_total_progeny] at the dual
    parameter. Finite for every [p > 1/2].
    @raise Invalid_argument if [p <= 1/2]. *)

val double_tree_connection : p:float -> n:int -> float
(** Lemma 6 quantity: [Pr\[x ~ y\]] in [TT_{n,p}] — survival to depth
    [n] of the binary process with per-child parameter [p²]. *)

val critical_p : float
(** [1/2], the critical parameter of the binary process; the double
    tree's edge threshold is its square root, [1/√2]. *)

val sample_progeny :
  Prng.Stream.t -> p:float -> max_nodes:int -> [ `Extinct of int | `Truncated ]
(** [sample_progeny stream ~p ~max_nodes] simulates one process until
    extinction or until [max_nodes] nodes are generated; used by tests
    to validate the closed forms. *)
