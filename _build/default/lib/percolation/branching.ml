let check_p p =
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Branching: p outside [0,1]"

let critical_p = 0.5

let survival_to_depth ~p k =
  check_p p;
  if k < 0 then invalid_arg "Branching.survival_to_depth: negative depth";
  let rec iterate i q = if i = 0 then q else iterate (i - 1) (1.0 -. ((1.0 -. (p *. q)) ** 2.0)) in
  iterate k 1.0

let survival ~p =
  check_p p;
  if p <= 0.5 then 0.0 else ((2.0 *. p) -. 1.0) /. (p *. p)

let extinction ~p = 1.0 -. survival ~p

let expected_total_progeny ~p =
  check_p p;
  if p >= 0.5 then infinity else 1.0 /. (1.0 -. (2.0 *. p))

let dual_parameter ~p =
  check_p p;
  if p <= 0.5 then invalid_arg "Branching.dual_parameter: need p > 1/2";
  p *. sqrt (extinction ~p)

let expected_failed_branch_size ~p =
  expected_total_progeny ~p:(dual_parameter ~p)

let double_tree_connection ~p ~n =
  check_p p;
  survival_to_depth ~p:(p *. p) n

let sample_progeny stream ~p ~max_nodes =
  check_p p;
  if max_nodes < 1 then invalid_arg "Branching.sample_progeny: max_nodes must be >= 1";
  (* Breadth-first generation: [alive] counts nodes whose children are
     still to be drawn; [total] counts nodes generated so far. *)
  let rec grow alive total =
    if total > max_nodes then `Truncated
    else if alive = 0 then `Extinct total
    else begin
      let children =
        (if Prng.Stream.bernoulli stream p then 1 else 0)
        + if Prng.Stream.bernoulli stream p then 1 else 0
      in
      grow (alive - 1 + children) (total + children)
    end
  in
  grow 1 1
