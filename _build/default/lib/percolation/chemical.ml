let distance ?limit world u v =
  match Reveal.connected ?limit world u v with
  | Reveal.Connected d -> Some d
  | Reveal.Disconnected | Reveal.Unknown -> None

let stretch ?limit world u v =
  match (World.graph world).Topology.Graph.distance with
  | None -> None
  | Some metric -> (
      let base = metric u v in
      if base = 0 then None
      else
        match distance ?limit world u v with
        | None -> None
        | Some chemical -> Some (float_of_int chemical /. float_of_int base))

let eccentricity_sample stream ?(pairs = 100) world =
  let n = (World.graph world).Topology.Graph.vertex_count in
  let rec loop remaining acc =
    if remaining = 0 then acc
    else begin
      let u, v = Prng.Sample.distinct_pair stream n in
      match distance world u v with
      | Some d -> loop (remaining - 1) (d :: acc)
      | None -> loop (remaining - 1) acc
    end
  in
  loop pairs []
