type policy = Local | Unrestricted

exception Locality_violation of int * int
exception Budget_exhausted

type t = {
  world : World.t;
  policy : policy;
  budget : int option;
  source : int;
  probed : (int, bool) Hashtbl.t; (* edge id -> state *)
  predecessor : (int, int) Hashtbl.t; (* reached vertex -> previous hop *)
  mutable distinct : int;
  mutable raw : int;
}

let create ?(policy = Local) ?budget world ~source =
  (match budget with
  | Some b when b <= 0 -> invalid_arg "Oracle.create: budget must be positive"
  | Some _ | None -> ());
  Topology.Graph.check_vertex (World.graph world) source;
  let predecessor = Hashtbl.create 64 in
  Hashtbl.replace predecessor source source;
  {
    world;
    policy;
    budget;
    source;
    probed = Hashtbl.create 256;
    predecessor;
    distinct = 0;
    raw = 0;
  }

let world t = t.world
let policy t = t.policy
let source t = t.source
let reached t v = Hashtbl.mem t.predecessor v
let reached_count t = Hashtbl.length t.predecessor
let reached_vertices t = Hashtbl.fold (fun v _ acc -> v :: acc) t.predecessor []
let distinct_probes t = t.distinct
let raw_probes t = t.raw

let budget_remaining t =
  match t.budget with None -> None | Some b -> Some (b - t.distinct)

let probe_known t u v =
  match (World.graph t.world).Topology.Graph.edge_id u v with
  | id -> Hashtbl.find_opt t.probed id
  | exception Topology.Graph.Not_an_edge _ -> None

let extend_reached t u v state =
  if state then begin
    match (reached t u, reached t v) with
    | true, false -> Hashtbl.replace t.predecessor v u
    | false, true -> Hashtbl.replace t.predecessor u v
    | true, true | false, false -> ()
  end

let probe t u v =
  let id = (World.graph t.world).Topology.Graph.edge_id u v in
  (match t.policy with
  | Unrestricted -> ()
  | Local ->
      if not (reached t u || reached t v) then raise (Locality_violation (u, v)));
  t.raw <- t.raw + 1;
  match Hashtbl.find_opt t.probed id with
  | Some state ->
      (* A previously probed open edge may become usable for extension
         later, once one endpoint is reached by another route. *)
      extend_reached t u v state;
      state
  | None ->
      (match t.budget with
      | Some b when t.distinct >= b ->
          t.raw <- t.raw - 1;
          raise Budget_exhausted
      | Some _ | None -> ());
      let state = World.is_open t.world u v in
      Hashtbl.replace t.probed id state;
      t.distinct <- t.distinct + 1;
      extend_reached t u v state;
      state

let path_to t target =
  if not (reached t target) then None
  else begin
    let rec walk v acc =
      let prev = Hashtbl.find t.predecessor v in
      if prev = v then v :: acc else walk prev (v :: acc)
    in
    Some (walk target [])
  end
