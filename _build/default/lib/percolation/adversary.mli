(** Worst-case fault strategies — the paper's other fault model.

    Given a budget of [k] edge deletions, an adversary targeting the
    pair [(source, target)] picks which links to kill. Contrasting the
    resulting worlds with i.i.d. random faults of equal count quantifies
    how much the random model's guarantees owe to the adversary's
    blindness (cf. Leighton–Maggs–Sitaraman on worst-case tolerance). *)

type strategy =
  | Random  (** [k] distinct edges uniformly at random. *)
  | Min_cut
      (** Edges of a minimum [source]–[target] cut, then (if budget
          remains) of the recomputed next cut, and so on — the optimal
          disconnection attack. *)
  | Around_source
      (** Edges incident to [source], then to its neighbours, breadth
          first — an attacker that only sees the victim's vicinity. *)

val pick_edges :
  Prng.Stream.t ->
  Topology.Graph.t ->
  strategy ->
  source:int ->
  target:int ->
  budget:int ->
  (int * int) list
(** The (at most [budget]) edges the strategy deletes. The stream is
    used by [Random] (and to break ties); deterministic given its seed. *)

val attack :
  Prng.Stream.t ->
  World.t ->
  strategy ->
  source:int ->
  target:int ->
  budget:int ->
  World.t
(** [attack stream world strategy ~source ~target ~budget] overlays the
    strategy's deletions on [world] (removal applies on top of the
    random faults already in the world). *)
