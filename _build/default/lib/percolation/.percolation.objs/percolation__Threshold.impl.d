lib/percolation/threshold.ml: List Prng
