lib/percolation/chemical.mli: Prng World
