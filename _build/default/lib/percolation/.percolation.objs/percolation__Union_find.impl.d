lib/percolation/union_find.ml: Array
