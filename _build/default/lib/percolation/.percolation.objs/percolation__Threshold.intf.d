lib/percolation/threshold.mli: Prng
