lib/percolation/scaling.mli: Prng Topology
