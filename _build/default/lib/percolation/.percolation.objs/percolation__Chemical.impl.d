lib/percolation/chemical.ml: Prng Reveal Topology World
