lib/percolation/union_find.mli:
