lib/percolation/clusters.ml: Array Hashtbl Topology Union_find World
