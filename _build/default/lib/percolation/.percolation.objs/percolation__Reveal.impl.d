lib/percolation/reveal.ml: Array Hashtbl List Queue Topology World
