lib/percolation/oracle.mli: World
