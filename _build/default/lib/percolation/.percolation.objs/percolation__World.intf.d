lib/percolation/world.mli: Hashtbl Topology
