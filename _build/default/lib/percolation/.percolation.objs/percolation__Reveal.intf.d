lib/percolation/reveal.mli: Hashtbl World
