lib/percolation/branching.mli: Prng
