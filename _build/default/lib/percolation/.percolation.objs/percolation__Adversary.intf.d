lib/percolation/adversary.mli: Prng Topology World
