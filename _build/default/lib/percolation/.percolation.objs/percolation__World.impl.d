lib/percolation/world.ml: Array Hashtbl List Prng Topology
