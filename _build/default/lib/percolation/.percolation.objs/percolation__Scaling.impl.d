lib/percolation/scaling.ml: Array Clusters List Prng World
