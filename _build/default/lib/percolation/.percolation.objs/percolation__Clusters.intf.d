lib/percolation/clusters.mli: Union_find World
