lib/percolation/oracle.ml: Hashtbl Topology World
