lib/percolation/adversary.ml: Array Hashtbl List Prng Queue Topology World
