lib/percolation/branching.ml: Prng
