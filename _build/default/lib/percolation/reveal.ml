type verdict = Connected of int | Disconnected | Unknown

(* Shared BFS engine over open edges. Stops when [stop] returns true for a
   newly discovered vertex, when the cluster is exhausted, or when [limit]
   vertices have been visited. *)
let bfs ?limit world start ~stop ~visit =
  let dist = Hashtbl.create 256 in
  Hashtbl.replace dist start 0;
  visit start 0;
  if stop start then `Stopped 0
  else begin
    let queue = Queue.create () in
    Queue.push start queue;
    let truncated = ref false in
    let result = ref `Exhausted in
    (try
       while not (Queue.is_empty queue) do
         let u = Queue.pop queue in
         let du = Hashtbl.find dist u in
         let extend v =
           if not (Hashtbl.mem dist v) then begin
             match limit with
             | Some l when Hashtbl.length dist >= l ->
                 truncated := true;
                 raise Exit
             | Some _ | None ->
                 Hashtbl.replace dist v (du + 1);
                 visit v (du + 1);
                 if stop v then begin
                   result := `Stopped (du + 1);
                   raise Exit
                 end;
                 Queue.push v queue
           end
         in
         Array.iter extend (World.open_neighbors world u)
       done
     with Exit -> ());
    match !result with
    | `Stopped d -> `Stopped d
    | `Exhausted -> if !truncated then `Truncated dist else `Exhausted_full dist
  end

let connected ?limit world u v =
  Topology.Graph.check_vertex (World.graph world) u;
  Topology.Graph.check_vertex (World.graph world) v;
  if u = v then Connected 0
  else
    match bfs ?limit world u ~stop:(fun x -> x = v) ~visit:(fun _ _ -> ()) with
    | `Stopped d -> Connected d
    | `Truncated _ -> Unknown
    | `Exhausted_full _ -> Disconnected

let cluster_of ?limit world v =
  Topology.Graph.check_vertex (World.graph world) v;
  let members = ref [] in
  match
    bfs ?limit world v ~stop:(fun _ -> false) ~visit:(fun x _ -> members := x :: !members)
  with
  | `Stopped _ -> assert false
  | `Truncated _ -> (!members, true)
  | `Exhausted_full _ -> (!members, false)

let cluster_size ?limit world v =
  let members, truncated = cluster_of ?limit world v in
  (List.length members, truncated)

let ball world v ~radius =
  Topology.Graph.check_vertex (World.graph world) v;
  if radius < 0 then invalid_arg "Reveal.ball: negative radius";
  let dist = Hashtbl.create 256 in
  Hashtbl.replace dist v 0;
  let queue = Queue.create () in
  Queue.push v queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let du = Hashtbl.find dist u in
    if du < radius then
      Array.iter
        (fun w ->
          if not (Hashtbl.mem dist w) then begin
            Hashtbl.replace dist w (du + 1);
            Queue.push w queue
          end)
        (World.open_neighbors world u)
  done;
  dist
