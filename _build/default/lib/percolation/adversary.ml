type strategy = Random | Min_cut | Around_source

let random_edges stream graph ~budget =
  let all = Topology.Graph.edge_list graph in
  let arr = Array.of_list all in
  Prng.Stream.shuffle_in_place stream arr;
  Array.to_list (Array.sub arr 0 (min budget (Array.length arr)))

(* Repeatedly take a minimum cut of what remains, removing its edges,
   until the budget is spent or the pair is disconnected. *)
let min_cut_edges graph ~source ~target ~budget =
  let removed = Hashtbl.create 64 in
  let masked =
    {
      graph with
      Topology.Graph.neighbors =
        (fun u ->
          graph.Topology.Graph.neighbors u
          |> Array.to_list
          |> List.filter (fun v ->
                 not (Hashtbl.mem removed (graph.Topology.Graph.edge_id u v)))
          |> Array.of_list);
    }
  in
  let chosen = ref [] in
  let remaining = ref budget in
  let rec rounds () =
    if !remaining > 0 then begin
      match Topology.Mincut.min_cut masked ~source ~sink:target with
      | [] -> () (* already disconnected *)
      | cut ->
          let take = min !remaining (List.length cut) in
          List.iteri
            (fun i (u, v) ->
              if i < take then begin
                Hashtbl.replace removed (graph.Topology.Graph.edge_id u v) ();
                chosen := (u, v) :: !chosen;
                decr remaining
              end)
            cut;
          if take = List.length cut then rounds ()
    end
  in
  rounds ();
  List.rev !chosen

let around_source_edges graph ~source ~budget =
  (* Breadth-first over vertices from the source, harvesting incident
     edges until the budget is filled. *)
  let seen_vertices = Hashtbl.create 64 in
  Hashtbl.replace seen_vertices source ();
  let seen_edges = Hashtbl.create 64 in
  let queue = Queue.create () in
  Queue.push source queue;
  let chosen = ref [] in
  let count = ref 0 in
  (try
     while not (Queue.is_empty queue) do
       let u = Queue.pop queue in
       Array.iter
         (fun v ->
           let id = graph.Topology.Graph.edge_id u v in
           if not (Hashtbl.mem seen_edges id) then begin
             Hashtbl.replace seen_edges id ();
             chosen := (u, v) :: !chosen;
             incr count;
             if !count >= budget then raise Exit
           end;
           if not (Hashtbl.mem seen_vertices v) then begin
             Hashtbl.replace seen_vertices v ();
             Queue.push v queue
           end)
         (graph.Topology.Graph.neighbors u)
     done
   with Exit -> ());
  List.rev !chosen

let pick_edges stream graph strategy ~source ~target ~budget =
  if budget < 0 then invalid_arg "Adversary.pick_edges: negative budget";
  match strategy with
  | Random -> random_edges stream graph ~budget
  | Min_cut -> min_cut_edges graph ~source ~target ~budget
  | Around_source -> around_source_edges graph ~source ~budget

let attack stream world strategy ~source ~target ~budget =
  let edges =
    pick_edges stream (World.graph world) strategy ~source ~target ~budget
  in
  World.remove_edges world edges
