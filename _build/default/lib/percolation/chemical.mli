(** Chemical (percolation) distance — the metric [D(·,·)] of the paper.

    The distance between two vertices inside the open subgraph, as used
    by Lemma 8 (Antal–Pisztora): for [p > p_c] the chemical distance in
    the mesh is at most a constant multiple of the L1 distance, up to
    exponentially rare exceptions. *)

val distance : ?limit:int -> World.t -> int -> int -> int option
(** [distance w u v] is the open-path distance, [None] if disconnected
    or if the [limit] on visited vertices was reached. *)

val stretch : ?limit:int -> World.t -> int -> int -> float option
(** [stretch w u v] is [D(u,v) / d(u,v)] where [d] is the base-graph
    metric. [None] if disconnected, if the limit was hit, or if the
    topology exposes no metric; [d(u,v) = 0] yields [None] too. *)

val eccentricity_sample :
  Prng.Stream.t -> ?pairs:int -> World.t -> int list
(** [eccentricity_sample stream w] samples chemical distances between
    random connected pairs (default 100 attempts); used to estimate the
    diameter scaling of the giant component. *)
