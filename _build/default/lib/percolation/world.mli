(** A percolation world: a topology together with a retention probability
    and a seed that jointly determine the open/closed state of every edge.

    The state of an edge is a pure function of [(seed, edge id)]
    ({!Prng.Coin}), so a world needs O(1) memory regardless of graph
    size, every observer of the same world sees the same states, and
    worlds built with the same seed but larger [p] contain each other
    monotonically (a standard coupling, handy for threshold scans).

    For the {e worst-case} fault model of the paper's introduction a
    world can additionally carry a set of adversarially removed edges
    ({!remove_edges}): those are closed regardless of their coins, and
    everything downstream — oracles, routers, reveals, censuses —
    behaves identically over the overlaid world. *)

type t = private {
  graph : Topology.Graph.t;
  p : float;
  seed : int64;
  removed : (int, unit) Hashtbl.t option;  (** Adversarial deletions. *)
  site_p : float option;  (** Vertex survival probability, if sites fail. *)
}

val create : ?site_p:float -> Topology.Graph.t -> p:float -> seed:int64 -> t
(** [create graph ~p ~seed] is a bond-percolation world. With
    [?site_p:q], vertices additionally fail independently (survive with
    probability [q], the {e site} model of Hastad–Leighton–Newman's node
    faults): an edge is open iff both endpoints are alive {e and} its
    own coin succeeds. Pure site percolation is [~p:1.0 ?site_p].
    Vertex coins live in a separate seed namespace, independent of the
    edge coins.
    @raise Invalid_argument if [p] or [site_p] is outside [\[0, 1\]]. *)

val graph : t -> Topology.Graph.t
val p : t -> float
val seed : t -> int64

val remove_edges : t -> (int * int) list -> t
(** [remove_edges w edges] is [w] with the listed edges forced closed
    (cumulative with any earlier removals; [w] itself is unchanged).
    @raise Topology.Graph.Not_an_edge if a pair is not an edge. *)

val removed_count : t -> int
(** Number of adversarially removed edges. *)

val site_p : t -> float option
(** The vertex survival probability, when sites fail. *)

val vertex_alive : t -> int -> bool
(** Whether a vertex survived site percolation (always [true] in a
    bond-only world). A dead vertex has every incident edge closed.
    @raise Invalid_argument if the vertex is out of range. *)

val is_open : t -> int -> int -> bool
(** [is_open w u v] is the state of edge [{u,v}].
    @raise Topology.Graph.Not_an_edge if they are not adjacent. *)

val open_neighbors : t -> int -> int array
(** Adjacent vertices reachable through open edges — adjacency in the
    percolated graph [G_p]. *)

val open_degree : t -> int -> int

val count_open_edges : t -> int
(** Number of open edges, by enumeration (small graphs only). *)
