(** Exact cluster census of a percolated graph by union-find.

    Enumerates every edge of the base graph, so only for graphs small
    enough to materialise (meshes, hypercubes up to [n ≈ 20]). Provides
    the giant-component facts the paper's theorems are conditioned on:
    does a giant component exist, how large is it, who belongs to it. *)

type census = {
  component_count : int;
  sizes : int array;  (** Component sizes in decreasing order. *)
  largest : int;
  second_largest : int;  (** 0 when there is a single component. *)
  vertex_count : int;
  open_edge_count : int;
}

val census : World.t -> census

val giant_fraction : census -> float
(** [largest / vertex_count]. *)

val has_giant : ?threshold:float -> census -> bool
(** Whether the largest component holds at least [threshold] (default
    0.01) of all vertices {e and} is at least twice the second largest —
    a standard finite-size proxy for "a giant component exists". *)

val components : World.t -> Union_find.t
(** The underlying union-find structure, for membership queries
    ([Union_find.same] answers [u ~ v] for all pairs at once). *)

val in_largest : World.t -> int -> bool
(** Whether a vertex lies in (one of) the largest component(s).
    Recomputes the census; for repeated queries use {!components}. *)
