lib/prng/stream.mli:
