lib/prng/coin.mli:
