lib/prng/stream.ml: Array Coin Xoshiro256
