lib/prng/coin.ml: Int64 Splitmix64
