lib/prng/sample.ml: Array Hashtbl Stream
