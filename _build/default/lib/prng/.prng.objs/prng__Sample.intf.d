lib/prng/sample.mli: Stream
