(** SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).

    A tiny, fast, well-distributed 64-bit generator. It serves two roles in
    this project: seeding larger-state generators ({!Xoshiro256}) and, via
    its finalizer {!mix}, hashing structured identifiers (edge ids) into
    independent-looking 64-bit values for lazy percolation coins. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] initialises a generator from an arbitrary 64-bit seed.
    Distinct seeds yield independent-looking streams. *)

val copy : t -> t
(** [copy t] is a generator with the same state that evolves separately. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val next_int_in : t -> int -> int
(** [next_int_in t bound] is a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val next_float : t -> float
(** [next_float t] is a uniform float in [\[0, 1)] with 53 bits of
    precision. *)

val mix : int64 -> int64
(** [mix z] is the stateless SplitMix64 finalizer: a bijective avalanche
    mixing of [z]. Used to derive per-edge coins from [(seed, edge_id)]
    pairs without storing any state. *)

val golden_gamma : int64
(** The odd constant [0x9E3779B97F4A7C15] (2{^64} / golden ratio) used as
    the SplitMix64 stream increment. *)
