(** Splittable random streams for the experiment harness.

    A stream wraps a {!Xoshiro256} generator together with the seed it was
    derived from, so every random decision in an experiment can be traced
    back to a printable root seed. Splitting produces a child stream whose
    output is independent of both the parent's future output and of
    siblings split under different labels. *)

type t
(** A random stream. *)

val create : int64 -> t
(** [create seed] is the root stream for world [seed]. *)

val seed : t -> int64
(** [seed t] is the seed this stream was created or split from. *)

val split : t -> int -> t
(** [split t label] is a child stream deterministically derived from
    [t]'s seed and [label]. Splitting is a pure function of
    [(seed t, label)]: it does not advance [t], and repeated splits with
    the same label return streams with identical output. *)

val int_in : t -> int -> int
(** [int_in t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float_unit : t -> float
(** [float_unit t] is uniform in [\[0,1)]. *)

val bool : t -> bool
(** [bool t] is a fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val int64 : t -> int64
(** [int64 t] is the raw next 64-bit output. *)

val shuffle_in_place : t -> 'a array -> unit
(** [shuffle_in_place t a] applies a uniform Fisher–Yates shuffle to [a]. *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly random element of [a].
    @raise Invalid_argument if [a] is empty. *)
