let hash64 ~seed id =
  let z = Int64.add seed (Int64.mul Splitmix64.golden_gamma (Int64.of_int id)) in
  Splitmix64.mix (Splitmix64.mix z)

let uniform ~seed id =
  let bits = Int64.shift_right_logical (hash64 ~seed id) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bernoulli ~seed ~p id = uniform ~seed id < p

let derive seed label =
  Splitmix64.mix (Int64.logxor (Splitmix64.mix seed) (Int64.mul 0xD1342543DE82EF95L (Int64.of_int label)))
