(** Samplers for classical distributions, parameterised by a {!Stream}.

    Used by workload generators (random pairs, geometric retry counts) and
    by statistical tests that need known ground-truth distributions. *)

val geometric : Stream.t -> p:float -> int
(** [geometric t ~p] is the number of Bernoulli([p]) trials up to and
    including the first success; support [{1, 2, ...}], mean [1/p].
    Sampled by inversion, O(1).
    @raise Invalid_argument if not [0 < p <= 1]. *)

val binomial : Stream.t -> n:int -> p:float -> int
(** [binomial t ~n ~p] counts successes among [n] Bernoulli([p]) trials.
    Uses the BG (geometric-skip) method, O(np) expected time, which is fast
    in the sparse regimes this project uses ([p] small).
    @raise Invalid_argument if [n < 0] or [p] outside [\[0,1\]]. *)

val exponential : Stream.t -> rate:float -> float
(** [exponential t ~rate] samples Exp([rate]) by inversion.
    @raise Invalid_argument if [rate <= 0]. *)

val poisson : Stream.t -> mean:float -> int
(** [poisson t ~mean] samples a Poisson variate by Knuth's product method
    for small means and by binomial splitting for large means.
    @raise Invalid_argument if [mean < 0]. *)

val distinct_pair : Stream.t -> int -> int * int
(** [distinct_pair t n] is a uniformly random ordered pair of distinct
    integers in [\[0, n)].
    @raise Invalid_argument if [n < 2]. *)

val subset_indices : Stream.t -> n:int -> k:int -> int array
(** [subset_indices t ~n ~k] is a uniformly random size-[k] subset of
    [\[0, n)], in increasing order (Floyd's algorithm).
    @raise Invalid_argument if [k < 0] or [k > n]. *)
