type t = { seed : int64; gen : Xoshiro256.t }

let create seed = { seed; gen = Xoshiro256.create seed }
let seed t = t.seed

let split t label =
  let child_seed = Coin.derive t.seed label in
  create child_seed

let int_in t bound = Xoshiro256.next_int_in t.gen bound
let float_unit t = Xoshiro256.next_float t.gen
let bool t = Xoshiro256.next_bool t.gen
let bernoulli t p = float_unit t < p
let int64 t = Xoshiro256.next t.gen

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int_in t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Stream.pick: empty array";
  a.(int_in t (Array.length a))
