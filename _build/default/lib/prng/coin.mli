(** Stateless deterministic coins for lazy percolation.

    Percolated graphs in this project are never materialised: the open or
    closed state of edge [e] in [G_p] is a pure function of the world seed
    and the edge's canonical integer id. Re-probing an edge, or observing
    the same world from a different algorithm (e.g. the ground-truth
    reveal), always yields the same answer.

    The coin for [(seed, id)] is [mix (mix (seed ^ gamma*id))] mapped to a
    uniform float in [\[0,1)]; the edge is open iff that float is [< p].
    The double SplitMix64 finalizer gives avalanche behaviour across both
    inputs, so nearby edge ids produce uncorrelated coins. *)

val uniform : seed:int64 -> int -> float
(** [uniform ~seed id] is a deterministic uniform float in [\[0,1)]
    attached to identifier [id] under world [seed]. *)

val bernoulli : seed:int64 -> p:float -> int -> bool
(** [bernoulli ~seed ~p id] is [true] with probability [p], deterministic
    in [(seed, id)]. Monotone in [p]: if it is true at [p] it is true at
    every [p' >= p] for the same seed and id. *)

val derive : int64 -> int -> int64
(** [derive seed label] is a new seed deterministically derived from
    [seed] and the integer [label]. Use to give each trial, stream or
    subsystem its own independent-looking world seed. *)
