type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }
let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* Map a 64-bit output to [0, bound) by rejection on the top bits, which
   avoids modulo bias for all bounds representable as OCaml ints. *)
let next_int_in t bound =
  if bound <= 0 then invalid_arg "Splitmix64.next_int_in: bound must be positive";
  let mask =
    let rec widen m = if m >= bound - 1 then m else widen ((m lsl 1) lor 1) in
    widen 1
  in
  let rec draw () =
    let candidate = Int64.to_int (Int64.shift_right_logical (next t) 2) land mask in
    if candidate < bound then candidate else draw ()
  in
  draw ()

let next_float t =
  (* Use the top 53 bits, the precision of a float mantissa. *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)
