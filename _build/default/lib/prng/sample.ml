let geometric t ~p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Sample.geometric: p must be in (0,1]";
  if p >= 1.0 then 1
  else
    let u = Stream.float_unit t in
    (* Inversion: smallest k with 1 - (1-p)^k >= u. Clamp for u = 0. *)
    let k = int_of_float (ceil (log1p (-.u) /. log1p (-.p))) in
    max 1 k

let rec binomial t ~n ~p =
  if n < 0 then invalid_arg "Sample.binomial: n must be non-negative";
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Sample.binomial: p must be in [0,1]";
  if p = 0.0 || n = 0 then 0
  else if p = 1.0 then n
  else if p > 0.5 then n - (binomial_complement t ~n ~p:(1.0 -. p))
  else binomial_complement t ~n ~p

(* Geometric-skip: jump between successes; expected O(np). *)
and binomial_complement t ~n ~p =
  let rec loop position successes =
    let position = position + geometric t ~p in
    if position > n then successes else loop position (successes + 1)
  in
  loop 0 0

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Sample.exponential: rate must be positive";
  -.log1p (-.Stream.float_unit t) /. rate

let rec poisson t ~mean =
  if mean < 0.0 then invalid_arg "Sample.poisson: mean must be non-negative";
  if mean = 0.0 then 0
  else if mean > 30.0 then begin
    (* Split: Poisson(m) = Binomial(k, m1/m) conditioned style splitting is
       not exact; instead use the sum property Poisson(m) =
       Poisson(m/2) + Poisson(m/2) recursively down to small means. *)
    poisson t ~mean:(mean /. 2.0) + poisson t ~mean:(mean /. 2.0)
  end
  else begin
    let limit = exp (-.mean) in
    let rec loop k prod =
      let prod = prod *. Stream.float_unit t in
      if prod <= limit then k else loop (k + 1) prod
    in
    loop 0 1.0
  end

let distinct_pair t n =
  if n < 2 then invalid_arg "Sample.distinct_pair: need n >= 2";
  let a = Stream.int_in t n in
  let b = Stream.int_in t (n - 1) in
  let b = if b >= a then b + 1 else b in
  (a, b)

let subset_indices t ~n ~k =
  if k < 0 || k > n then invalid_arg "Sample.subset_indices: need 0 <= k <= n";
  (* Floyd's algorithm: for j in n-k..n-1 insert a random element. *)
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let candidate = Stream.int_in t (j + 1) in
    if Hashtbl.mem chosen candidate then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen candidate ()
  done;
  let result = Array.make k 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun key () ->
      result.(!i) <- key;
      incr i)
    chosen;
  Array.sort compare result;
  result
