(** xoshiro256** pseudo-random generator (Blackman & Vigna 2018).

    The general-purpose generator used by the Monte-Carlo harness. 256 bits
    of state, period 2{^256} - 1, excellent statistical quality. Seeded via
    {!Splitmix64} as the authors recommend. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] expands [seed] into a full 256-bit state with SplitMix64. *)

val of_state : int64 * int64 * int64 * int64 -> t
(** [of_state s] uses [s] directly as the state.
    @raise Invalid_argument if all four words are zero (the absorbing
    state of the underlying linear engine). *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val next_int_in : t -> int -> int
(** [next_int_in t bound] is a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val next_float : t -> float
(** [next_float t] is a uniform float in [\[0, 1)]. *)

val next_bool : t -> bool
(** [next_bool t] is a fair coin flip. *)

val jump : t -> unit
(** [jump t] advances [t] by 2{^128} steps, equivalent to that many [next]
    calls. Use to partition one stream into non-overlapping substreams for
    parallel or per-worker use. *)
