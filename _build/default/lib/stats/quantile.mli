(** Empirical quantiles with linear interpolation (Hyndman–Fan type 7,
    the R and NumPy default). *)

val of_sorted : float array -> float -> float
(** [of_sorted xs q] is the [q]-quantile of the already-sorted array [xs],
    [0.0 <= q <= 1.0], interpolating linearly between order statistics.
    @raise Invalid_argument if [xs] is empty or [q] outside [\[0,1\]]. *)

val quantile : float array -> float -> float
(** [quantile xs q] sorts a copy of [xs] and applies {!of_sorted}. *)

val median : float array -> float
(** [median xs] is [quantile xs 0.5]. *)

val quantiles : float array -> float list -> float list
(** [quantiles xs qs] computes several quantiles with a single sort. *)

val iqr : float array -> float
(** Interquartile range, [quantile 0.75 - quantile 0.25]. *)
