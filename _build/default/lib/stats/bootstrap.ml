let ci stream ?(replicates = 1000) ?(confidence = 0.95) ~statistic xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Bootstrap.ci: empty sample";
  if replicates < 1 then invalid_arg "Bootstrap.ci: replicates must be >= 1";
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg "Bootstrap.ci: confidence outside (0,1)";
  let resample = Array.make n 0.0 in
  let estimates =
    Array.init replicates (fun _ ->
        for i = 0 to n - 1 do
          resample.(i) <- xs.(Prng.Stream.int_in stream n)
        done;
        statistic resample)
  in
  let alpha = (1.0 -. confidence) /. 2.0 in
  Array.sort compare estimates;
  (Quantile.of_sorted estimates alpha, Quantile.of_sorted estimates (1.0 -. alpha))

let mean_of xs = Summary.mean (Summary.of_array xs)

let mean_ci stream ?replicates ?confidence xs =
  ci stream ?replicates ?confidence ~statistic:mean_of xs

let median_ci stream ?replicates ?confidence xs =
  ci stream ?replicates ?confidence ~statistic:Quantile.median xs
