(** Column-aligned plain-text tables for experiment reports. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : headers:string list -> t
(** [create ~headers] starts a table. All rows must match the header
    arity. Numeric-looking columns default to right alignment. *)

val add_row : t -> string list -> t
(** [add_row t cells] appends a row.
    @raise Invalid_argument if the arity differs from the headers. *)

val add_rows : t -> string list list -> t

val set_align : t -> int -> align -> t
(** [set_align t i a] forces column [i]'s alignment. *)

val render : t -> string
(** Renders with a header rule, e.g.:
    {v
    alpha   median probes   censored
    -----   -------------   --------
     0.30             312       0/200
    v} *)

val to_csv : t -> string
(** Comma-separated rendering (cells containing commas or quotes are
    quoted per RFC 4180). *)
