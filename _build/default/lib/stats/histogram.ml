type scale = Linear of { lo : float; width : float } | Log2 of { lo : float }

type t = {
  scale : scale;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
}

let bucket_index t x =
  match t.scale with
  | Linear { lo; width } ->
      if x < lo then -1 else int_of_float (floor ((x -. lo) /. width))
  | Log2 { lo } -> if x < lo then -1 else int_of_float (floor (log (x /. lo) /. log 2.0))

let insert t x =
  let i = bucket_index t x in
  if i < 0 then t.underflow <- t.underflow + 1
  else if i >= Array.length t.counts then t.overflow <- t.overflow + 1
  else t.counts.(i) <- t.counts.(i) + 1

let populate t xs =
  Array.iter (insert t) xs;
  t

let linear ~lo ~hi ~bins xs =
  if bins < 1 then invalid_arg "Histogram.linear: bins must be >= 1";
  if hi <= lo then invalid_arg "Histogram.linear: need hi > lo";
  let width = (hi -. lo) /. float_of_int bins in
  populate
    { scale = Linear { lo; width }; counts = Array.make bins 0; underflow = 0; overflow = 0 }
    xs

let log2 ~lo ~buckets xs =
  if lo <= 0.0 then invalid_arg "Histogram.log2: lo must be positive";
  if buckets < 1 then invalid_arg "Histogram.log2: buckets must be >= 1";
  populate
    { scale = Log2 { lo }; counts = Array.make buckets 0; underflow = 0; overflow = 0 }
    xs

let counts t = Array.copy t.counts
let underflow t = t.underflow
let overflow t = t.overflow

let bucket_bounds t i =
  match t.scale with
  | Linear { lo; width } ->
      (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width))
  | Log2 { lo } -> (lo *. (2.0 ** float_of_int i), lo *. (2.0 ** float_of_int (i + 1)))

let total t = Array.fold_left ( + ) (t.underflow + t.overflow) t.counts

let render ?(width = 50) t =
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  let buffer = Buffer.create 256 in
  if t.underflow > 0 then
    Buffer.add_string buffer (Printf.sprintf "%16s | %d\n" "(underflow)" t.underflow);
  Array.iteri
    (fun i count ->
      let lo, hi = bucket_bounds t i in
      let bar_len = count * width / peak in
      Buffer.add_string buffer
        (Printf.sprintf "[%7.4g, %7.4g) | %-*s %d\n" lo hi width (String.make bar_len '#')
           count))
    t.counts;
  if t.overflow > 0 then
    Buffer.add_string buffer (Printf.sprintf "%16s | %d\n" "(overflow)" t.overflow);
  Buffer.contents buffer
