(** Ordinary least-squares fits.

    The experiments validate asymptotic claims by fitting scaling laws:
    a power law [y = C·x^b] becomes the linear fit [log y = log C + b·log x],
    and an exponential law [y = C·r^x] becomes [log y = log C + x·log r].
    The fitted slope is the measured exponent / rate compared against the
    paper's claim. *)

type fit = {
  slope : float;
  intercept : float;
  r_squared : float;  (** Coefficient of determination of the fit. *)
  n : int;  (** Number of points used. *)
}

val linear : (float * float) list -> fit
(** [linear points] is the least-squares line through [points].
    @raise Invalid_argument on fewer than two points or zero x-variance. *)

val power_law : (float * float) list -> fit
(** [power_law points] fits [y = C·x^slope] by linear regression in
    log–log space; [intercept] is [log C]. Points with non-positive
    coordinates are rejected.
    @raise Invalid_argument if any coordinate is non-positive. *)

val exponential : (float * float) list -> fit
(** [exponential points] fits [y = C·exp(slope·x)] by regression of
    [log y] on [x].
    @raise Invalid_argument if any [y] is non-positive. *)

val predict : fit -> float -> float
(** [predict fit x] evaluates the fitted {e linear} model
    [slope·x + intercept]. For power-law and exponential fits apply it in
    the transformed space. *)

val pp : Format.formatter -> fit -> unit
(** Prints ["slope=… intercept=… R²=… (n=…)"]. *)
