(** Histograms with linear or logarithmic binning, plus ASCII rendering
    for experiment reports. *)

type t
(** A populated histogram. *)

val linear : lo:float -> hi:float -> bins:int -> float array -> t
(** [linear ~lo ~hi ~bins xs] bins [xs] into [bins] equal-width buckets on
    [\[lo, hi)]; observations outside the range are counted in underflow /
    overflow buckets.
    @raise Invalid_argument if [bins < 1] or [hi <= lo]. *)

val log2 : lo:float -> buckets:int -> float array -> t
(** [log2 ~lo ~buckets xs] bins positive values into doubling buckets
    [\[lo·2^i, lo·2^(i+1))]. Suited to routing-complexity samples spanning
    orders of magnitude.
    @raise Invalid_argument if [lo <= 0.0] or [buckets < 1]. *)

val counts : t -> int array
(** Per-bucket counts (excluding under/overflow). *)

val underflow : t -> int
val overflow : t -> int

val bucket_bounds : t -> int -> float * float
(** [bucket_bounds t i] is the half-open interval covered by bucket [i]. *)

val total : t -> int
(** All observations, including under/overflow. *)

val render : ?width:int -> t -> string
(** [render t] is a multi-line ASCII bar chart, one row per bucket. *)
