type fit = { slope : float; intercept : float; r_squared : float; n : int }

let linear points =
  let n = List.length points in
  if n < 2 then invalid_arg "Regression.linear: need at least two points";
  let fn = float_of_int n in
  let sum_x = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 points in
  let sum_y = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 points in
  let mean_x = sum_x /. fn and mean_y = sum_y /. fn in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. ((x -. mean_x) ** 2.0)) 0.0 points in
  let sxy =
    List.fold_left (fun acc (x, y) -> acc +. ((x -. mean_x) *. (y -. mean_y))) 0.0 points
  in
  let syy = List.fold_left (fun acc (_, y) -> acc +. ((y -. mean_y) ** 2.0)) 0.0 points in
  if sxx = 0.0 then invalid_arg "Regression.linear: zero variance in x";
  let slope = sxy /. sxx in
  let intercept = mean_y -. (slope *. mean_x) in
  let ss_res =
    List.fold_left
      (fun acc (x, y) ->
        let err = y -. ((slope *. x) +. intercept) in
        acc +. (err *. err))
      0.0 points
  in
  let r_squared = if syy = 0.0 then 1.0 else 1.0 -. (ss_res /. syy) in
  { slope; intercept; r_squared; n }

let power_law points =
  let transformed =
    List.map
      (fun (x, y) ->
        if x <= 0.0 || y <= 0.0 then
          invalid_arg "Regression.power_law: coordinates must be positive";
        (log x, log y))
      points
  in
  linear transformed

let exponential points =
  let transformed =
    List.map
      (fun (x, y) ->
        if y <= 0.0 then invalid_arg "Regression.exponential: y must be positive";
        (x, log y))
      points
  in
  linear transformed

let predict fit x = (fit.slope *. x) +. fit.intercept

let pp ppf fit =
  Format.fprintf ppf "slope=%.4f intercept=%.4f R\xc2\xb2=%.4f (n=%d)" fit.slope
    fit.intercept fit.r_squared fit.n
