(** Non-parametric bootstrap confidence intervals.

    Heavy-tailed routing-complexity samples (the hypercube near its
    transition) make normal-theory intervals unreliable; the percentile
    bootstrap makes no distributional assumption. *)

val ci :
  Prng.Stream.t ->
  ?replicates:int ->
  ?confidence:float ->
  statistic:(float array -> float) ->
  float array ->
  float * float
(** [ci stream ~statistic xs] is a percentile-bootstrap confidence
    interval (default [confidence = 0.95], [replicates = 1000]) for
    [statistic] of the distribution underlying the sample [xs].
    @raise Invalid_argument if [xs] is empty, [replicates < 1] or
    [confidence] outside (0,1). *)

val mean_ci :
  Prng.Stream.t -> ?replicates:int -> ?confidence:float -> float array -> float * float
(** Bootstrap interval for the mean. *)

val median_ci :
  Prng.Stream.t -> ?replicates:int -> ?confidence:float -> float array -> float * float
(** Bootstrap interval for the median. *)
