lib/stats/histogram.mli:
