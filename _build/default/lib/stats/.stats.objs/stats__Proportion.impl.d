lib/stats/proportion.ml: Float Format
