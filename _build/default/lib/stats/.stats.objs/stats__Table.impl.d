lib/stats/table.ml: List Stdlib String
