lib/stats/proportion.mli: Format
