lib/stats/table.mli:
