lib/stats/censored.ml: Array Format List Stdlib
