lib/stats/quantile.mli:
