lib/stats/censored.mli: Format
