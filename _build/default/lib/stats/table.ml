type align = Left | Right

type t = {
  headers : string list;
  rows : string list list; (* newest first *)
  forced_align : (int * align) list;
}

let create ~headers = { headers; rows = []; forced_align = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch with headers";
  { t with rows = cells :: t.rows }

let add_rows t rows = List.fold_left add_row t rows
let set_align t i a = { t with forced_align = (i, a) :: t.forced_align }

let looks_numeric cell =
  cell <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || List.mem c [ '.'; '-'; '+'; 'e'; 'E'; '%'; '/' ])
       cell

let column_align t i cells =
  match List.assoc_opt i t.forced_align with
  | Some a -> a
  | None -> if List.for_all looks_numeric cells then Right else Left

let render t =
  let rows = List.rev t.rows in
  let columns = List.length t.headers in
  let cell row i = List.nth row i in
  let widths =
    List.init columns (fun i ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (cell row i)))
          (String.length (cell t.headers i))
          rows)
  in
  let aligns =
    List.init columns (fun i -> column_align t i (List.map (fun row -> cell row i) rows))
  in
  let pad width align s =
    let gap = width - String.length s in
    if gap <= 0 then s
    else
      match align with
      | Left -> s ^ String.make gap ' '
      | Right -> String.make gap ' ' ^ s
  in
  let format_row row =
    List.init columns (fun i -> pad (List.nth widths i) (List.nth aligns i) (cell row i))
    |> String.concat "   "
  in
  let rule = List.map (fun w -> String.make w '-') widths |> String.concat "   " in
  String.concat "\n" (format_row t.headers :: rule :: List.map format_row rows) ^ "\n"

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line row = String.concat "," (List.map csv_escape row) in
  String.concat "\n" (line t.headers :: List.map line (List.rev t.rows)) ^ "\n"
