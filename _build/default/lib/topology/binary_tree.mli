(** The complete binary tree of depth [n].

    Vertices use heap numbering shifted to zero: vertex [v] corresponds to
    heap index [v + 1]; the root is vertex 0 and the leaves are the
    [2^n] vertices of depth [n]. A building block for {!Double_tree} and
    a simple substrate for Galton–Watson-style percolation tests (the
    critical probability of edge percolation on the binary tree is 1/2). *)

val graph : int -> Graph.t
(** [graph n] is the depth-[n] complete binary tree with [2^(n+1) - 1]
    vertices. @raise Invalid_argument unless [1 <= n <= 28]. *)

val root : int
(** The root vertex (0). *)

val depth_of : int -> int
(** [depth_of v] is the depth of vertex [v] (root has depth 0). *)

val parent : int -> int option
(** [parent v] is [None] for the root. *)

val children : n:int -> int -> (int * int) option
(** [children ~n v] is [Some (left, right)] unless [v] is a leaf of the
    depth-[n] tree. *)

val is_leaf : n:int -> int -> bool
(** Whether [v] has depth [n]. *)

val leaves : n:int -> int array
(** The [2^n] leaves in left-to-right order. *)
