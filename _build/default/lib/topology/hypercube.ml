let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  if x < 0 then invalid_arg "Hypercube.popcount: negative" else loop x 0

let hamming x y = popcount (x lxor y)
let flip x i = x lxor (1 lsl i)
let antipode ~n x = x lxor ((1 lsl n) - 1)

let fixed_path_in_order bits u v =
  let correct x acc i =
    if (x lxor v) land (1 lsl i) <> 0 then begin
      let x' = flip x i in
      (x', x' :: acc)
    end
    else (x, acc)
  in
  let _, acc = List.fold_left (fun (x, acc) i -> correct x acc i) (u, [ u ]) bits in
  List.rev acc

let fixed_path ~n u v = fixed_path_in_order (List.init n (fun i -> i)) u v
let fixed_path_desc ~n u v = fixed_path_in_order (List.init n (fun i -> n - 1 - i)) u v

let graph n =
  if n < 1 || n > 30 then invalid_arg "Hypercube.graph: need 1 <= n <= 30";
  let size = 1 lsl n in
  let neighbors x = Array.init n (fun i -> flip x i) in
  (* The canonical id of the edge along bit [i] belongs to the endpoint
     with that bit cleared: id = (x with bit i cleared) * n + i. *)
  let edge_id x y =
    let diff = x lxor y in
    if diff = 0 || diff land (diff - 1) <> 0 || x lor y >= size || x < 0 || y < 0 then
      raise (Graph.Not_an_edge (x, y));
    let bit =
      let rec find i = if diff land (1 lsl i) <> 0 then i else find (i + 1) in
      find 0
    in
    ((x land lnot diff) * n) + bit
  in
  {
    Graph.name = Printf.sprintf "hypercube(n=%d)" n;
    vertex_count = size;
    degree = (fun _ -> n);
    neighbors;
    edge_id;
    edge_id_bound = size * n;
    distance = Some hamming;
  }

let dimension g =
  (* vertex_count = 2^n *)
  let rec log2 acc size = if size <= 1 then acc else log2 (acc + 1) (size lsr 1) in
  log2 0 g.Graph.vertex_count
