let vertex ~n ~level ~row = (level lsl n) lor row
let level_of ~n v = v lsr n
let row_of ~n v = v land ((1 lsl n) - 1)

let graph n =
  if n < 3 || n > 24 then invalid_arg "Butterfly.graph: need 3 <= n <= 24";
  let rows = 1 lsl n in
  let size = n * rows in
  let neighbors v =
    let level = level_of ~n v and row = row_of ~n v in
    let up = (level + 1) mod n and down = (level + n - 1) mod n in
    [|
      vertex ~n ~level:up ~row;
      vertex ~n ~level:up ~row:(row lxor (1 lsl level));
      vertex ~n ~level:down ~row;
      vertex ~n ~level:down ~row:(row lxor (1 lsl down));
    |]
  in
  (* Each edge has a unique source (the lower level endpoint, mod-n-wise)
     and a type bit: id = 2·source + type. *)
  let edge_id u v =
    if u < 0 || v < 0 || u >= size || v >= size || u = v then
      raise (Graph.Not_an_edge (u, v));
    let lu = level_of ~n u and lv = level_of ~n v in
    let source, target =
      if (lu + 1) mod n = lv then (u, v)
      else if (lv + 1) mod n = lu then (v, u)
      else raise (Graph.Not_an_edge (u, v))
    in
    let source_level = level_of ~n source in
    let source_row = row_of ~n source and target_row = row_of ~n target in
    if source_row = target_row then 2 * source
    else if source_row lxor target_row = 1 lsl source_level then (2 * source) + 1
    else raise (Graph.Not_an_edge (u, v))
  in
  {
    Graph.name = Printf.sprintf "butterfly(n=%d)" n;
    vertex_count = size;
    degree = (fun _ -> 4);
    neighbors;
    edge_id;
    edge_id_bound = 2 * size;
    distance = None;
  }
