lib/topology/double_tree.mli: Graph
