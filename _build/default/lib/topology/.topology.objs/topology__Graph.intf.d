lib/topology/graph.mli:
