lib/topology/torus.ml: Array Graph List Mesh Printf
