lib/topology/mincut.mli: Graph
