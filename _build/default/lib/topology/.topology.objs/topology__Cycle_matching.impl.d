lib/topology/cycle_matching.ml: Array Graph List Printf Prng
