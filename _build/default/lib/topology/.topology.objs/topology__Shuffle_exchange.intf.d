lib/topology/shuffle_exchange.mli: Graph
