lib/topology/cycle_matching.mli: Graph Prng
