lib/topology/small_world.ml: Array Graph List Mesh Printf Prng
