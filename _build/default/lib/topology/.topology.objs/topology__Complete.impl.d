lib/topology/complete.ml: Array Graph Printf
