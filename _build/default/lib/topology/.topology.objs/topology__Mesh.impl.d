lib/topology/mesh.ml: Array Graph List Printf
