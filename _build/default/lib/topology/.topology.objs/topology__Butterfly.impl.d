lib/topology/butterfly.ml: Graph Printf
