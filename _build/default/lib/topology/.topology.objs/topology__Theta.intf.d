lib/topology/theta.mli: Graph
