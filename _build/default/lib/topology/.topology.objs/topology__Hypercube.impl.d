lib/topology/hypercube.ml: Array Graph List Printf
