lib/topology/double_tree.ml: Array Binary_tree Graph Printf
