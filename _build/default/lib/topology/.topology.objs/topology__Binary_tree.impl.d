lib/topology/binary_tree.ml: Array Graph Printf
