lib/topology/de_bruijn.mli: Graph
