lib/topology/de_bruijn.ml: Array Graph List Printf
