lib/topology/small_world.mli: Graph Prng
