lib/topology/shuffle_exchange.ml: Array Graph List Printf
