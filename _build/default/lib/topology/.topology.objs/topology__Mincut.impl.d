lib/topology/mincut.ml: Array Graph Hashtbl Queue
