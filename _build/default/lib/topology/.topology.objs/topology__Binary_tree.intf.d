lib/topology/binary_tree.mli: Graph
