lib/topology/theta.ml: Array Graph Printf
