(** The double binary tree [TT_n] (paper, Section 2.1).

    Two complete binary trees of depth [n] with their leaves identified
    pairwise. Root-to-root connectivity under edge percolation has
    threshold [p = 1/√2] (Lemma 6); any local router between the roots
    needs [≈ p^{-n}] probes (Theorem 7) while an oracle router that
    probes mirror edge pairs needs only [O(n)] (Theorem 9).

    Vertex layout: tree-1 internal vertices first ([2^n - 1] of them,
    root first in heap order), then the [2^n] shared leaves, then the
    tree-2 internal vertices ([2^n - 1], root first). *)

type role = Internal1 | Leaf | Internal2

val graph : int -> Graph.t
(** [graph n] is [TT_n] with [3·2^n - 2] vertices.
    @raise Invalid_argument unless [1 <= n <= 27]. *)

val root1 : int
(** The root of the first tree (vertex 0). *)

val root2 : n:int -> int
(** The root of the second tree. *)

val role_of : n:int -> int -> role
(** Which of the three vertex classes a vertex belongs to. *)

val leaf : n:int -> int -> int
(** [leaf ~n j] is the [j]-th shared leaf, [0 <= j < 2^n]. *)

val mirror_edge : n:int -> int -> int -> int * int
(** [mirror_edge ~n u v] is the corresponding edge in the {e other} tree:
    the tree-2 copy of a tree-1 edge and vice versa. Together with the
    edge itself it forms the "edge pair" probed by the Theorem 9 oracle
    router. @raise Graph.Not_an_edge if [(u,v)] is not an edge. *)

val depth_of : n:int -> int -> int
(** Distance from the nearer root: internal vertices of either tree have
    their in-tree depth; leaves have depth [n]. *)
