(** The theta graph: [d] edge-disjoint parallel paths of length 2.

    The illustrative example of Section 2 (the "birthday paradox" graph):
    vertices [u = 0] and [v = 1] joined by [d] internally-disjoint
    two-edge paths through middle vertices. With [p = 1/√d] both
    endpoints see about [√d] open edges, so an open path exists with
    probability bounded away from 0, yet by Lemma 5 a local router must
    probe [Ω(d)] cut edges before finding one. *)

val graph : int -> Graph.t
(** [graph d] is the theta graph with [d + 2] vertices and [2d] edges.
    @raise Invalid_argument if [d < 1]. *)

val endpoint_u : int
(** Vertex [u] (0). *)

val endpoint_v : int
(** Vertex [v] (1). *)

val middle : int -> int
(** [middle i] is the internal vertex of path [i], [0 <= i < d]. *)

val connection_probability : d:int -> p:float -> float
(** Exact probability that [u ~ v] in the percolated theta graph:
    [1 - (1 - p²)^d]. Used as ground truth in tests. *)
