(** A cycle plus a uniformly random perfect matching.

    Bollobás–Chung (1988): the [n]-cycle augmented with a random perfect
    matching has diameter [Θ(log n)], yet (Kleinberg 2000) no local
    algorithm can find such short paths — the phenomenon that motivates
    the paper's distinction between path {e existence} and path
    {e findability}. Included as a structurally-random companion
    topology for the exploratory experiments of Section 6.

    Unlike the other topologies the randomness here is structural (which
    matching), not percolation; the matching is drawn once at
    construction time from the supplied stream. *)

val create : Prng.Stream.t -> int -> Graph.t * (int -> int)
(** [create stream n] is the [n]-cycle plus a random perfect matching,
    together with the matching itself as a fixed-point-free involution.
    When the matching happens to pair cycle-adjacent vertices the chord
    is dropped so the graph stays simple (those vertices have degree 2).
    @raise Invalid_argument unless [n] is even and [n >= 4]. *)

val graph : Prng.Stream.t -> int -> Graph.t
(** [graph stream n] is [fst (create stream n)]. *)
