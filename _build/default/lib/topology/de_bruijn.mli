(** The undirected binary De Bruijn graph [B(2, n)].

    Vertices are [n]-bit words; [x] is joined to its shifts
    [(2x + b) mod 2^n]. One of the constant-degree, logarithmic-diameter
    families named in Section 6's open problem about coinciding
    percolation and routing thresholds. Self-loops (at [0] and at the
    all-ones word) are removed, and coinciding shift edges are merged,
    so the graph is simple with degree at most 4. *)

val graph : int -> Graph.t
(** [graph n] is [B(2, n)] on [2^n] vertices.
    @raise Invalid_argument unless [2 <= n <= 28]. *)

val shift : n:int -> int -> int -> int
(** [shift ~n x b] is [((x lsl 1) lor b) mod 2^n], the out-shift of [x]
    with incoming bit [b]. *)
