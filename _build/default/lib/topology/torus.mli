(** The [d]-dimensional torus: the mesh with wraparound edges.

    Used as a boundary-free variant of [M^d] in mesh experiments (the
    paper works in a cube of the infinite mesh; the torus removes
    boundary effects at small sizes). Requires side [m >= 3] so the
    graph stays simple. *)

val graph : d:int -> m:int -> Graph.t
(** [graph ~d ~m] is the torus with [m^d] vertices and degree [2d].
    @raise Invalid_argument if [d < 1], [m < 3] or [m^d] overflows. *)

val l1_distance : d:int -> m:int -> int -> int -> int
(** Toroidal L1 distance (per-axis wraparound minimum). *)

val fixed_path : d:int -> m:int -> int -> int -> int list
(** Canonical monotone shortest path correcting axes in order, taking the
    shorter wraparound direction on each axis. Includes both endpoints. *)
