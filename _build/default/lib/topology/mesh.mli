(** The [d]-dimensional mesh [M^d] with side [m] ([m^d] vertices).

    Vertices are points of [{0..m-1}^d]; two points are adjacent iff they
    differ by 1 in exactly one coordinate. Distance is L1. This is the
    graph of Theorem 4: for any [p > p_c^d] a local router finds a path
    between vertices at distance [n] in expected [O(n)] probes. *)

val graph : d:int -> m:int -> Graph.t
(** [graph ~d ~m] is the mesh with [m^d] vertices.
    @raise Invalid_argument if [d < 1], [m < 2] or [m^d] overflows. *)

val side : Graph.t -> d:int -> int
(** Recovers the side length [m] of a [graph ~d ~m]. *)

val coords : d:int -> m:int -> int -> int array
(** [coords ~d ~m v] is the coordinate vector of vertex [v]
    (least-significant coordinate first). *)

val index : m:int -> int array -> int
(** [index ~m c] is the vertex with coordinate vector [c]. Inverse of
    {!coords}. *)

val l1_distance : d:int -> m:int -> int -> int -> int
(** L1 distance between two vertex indices. *)

val fixed_path : d:int -> m:int -> int -> int -> int list
(** [fixed_path ~d ~m u v] is the canonical monotone shortest path that
    corrects coordinates axis by axis (axis 0 first) — the backbone of
    the Theorem 4 path-following router. Includes both endpoints. *)

val centre : d:int -> m:int -> int
(** The vertex at the centre of the cube (coordinate [m/2] on each axis). *)
