(** The complete graph [K_n].

    Percolating [K_n] with retention probability [p] yields exactly the
    Erdős–Rényi random graph [G_{n,p}] — the "faulty complete graph" of
    Section 5, where local routing costs [Ω(n²)] probes (Theorem 10) and
    oracle routing [Θ(n^{3/2})] (Theorem 11). *)

val graph : int -> Graph.t
(** [graph n] is [K_n].
    @raise Invalid_argument unless [2 <= n] and [n(n-1)/2] fits an int. *)

val edge_id_of_pair : int -> int -> int
(** [edge_id_of_pair u v] for [u <> v] is the triangular-number id
    [max(max-1)/2 + min] — the same ids the graph uses. *)
