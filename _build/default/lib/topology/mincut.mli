(** Edge connectivity and minimum edge cuts (Edmonds–Karp, unit
    capacities).

    The worst-case fault model (paper, Section 1) is the natural foil to
    the random model: an adversary that knows the topology deletes the
    few edges a minimum cut identifies, while random faults must hit the
    same cut by luck. This module computes [s–t] edge connectivity and
    extracts a minimum cut on any implicit {!Graph.t} small enough to
    enumerate. *)

val max_flow : Graph.t -> source:int -> sink:int -> int
(** [max_flow g ~source ~sink] is the maximum number of edge-disjoint
    paths (= edge connectivity of the pair, by Menger).
    @raise Invalid_argument if [source = sink] or out of range. *)

val min_cut : Graph.t -> source:int -> sink:int -> (int * int) list
(** [min_cut g ~source ~sink] is a minimum set of edges whose removal
    disconnects the pair (each pair [(u, v)] with [u] on the source
    side). Its length equals [max_flow]. *)
