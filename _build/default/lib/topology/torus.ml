let axis_delta ~m a b =
  (* Signed step (+1/-1 direction choice) and length of the shorter way
     around the cycle from a to b. *)
  let forward = (b - a + m) mod m in
  let backward = m - forward in
  if forward <= backward then (1, forward) else (-1, backward)

let l1_distance ~d ~m u v =
  let cu = Mesh.coords ~d ~m u and cv = Mesh.coords ~d ~m v in
  let total = ref 0 in
  for axis = 0 to d - 1 do
    let _, len = axis_delta ~m cu.(axis) cv.(axis) in
    total := !total + len
  done;
  !total

let fixed_path ~d ~m u v =
  let cu = Mesh.coords ~d ~m u and cv = Mesh.coords ~d ~m v in
  let current = Array.copy cu in
  let acc = ref [ u ] in
  for axis = 0 to d - 1 do
    let step, len = axis_delta ~m cu.(axis) cv.(axis) in
    for _ = 1 to len do
      current.(axis) <- (current.(axis) + step + m) mod m;
      acc := Mesh.index ~m current :: !acc
    done
  done;
  List.rev !acc

let graph ~d ~m =
  if d < 1 then invalid_arg "Torus.graph: d must be >= 1";
  if m < 3 then invalid_arg "Torus.graph: m must be >= 3 (simple graph)";
  let mesh = Mesh.graph ~d ~m in
  let size = mesh.Graph.vertex_count in
  let strides =
    Array.init d (fun axis ->
        let rec loop i acc = if i = axis then acc else loop (i + 1) (acc * m) in
        loop 0 1)
  in
  let neighbors v =
    let c = Mesh.coords ~d ~m v in
    Array.init (2 * d) (fun slot ->
        let axis = slot / 2 in
        let step = if slot land 1 = 0 then 1 else m - 1 in
        let shifted = (c.(axis) + step) mod m in
        v + ((shifted - c.(axis)) * strides.(axis)))
  in
  (* Edge along [axis] from coordinate k to k+1 (mod m): canonical source
     is the endpoint with coordinate k; id = source*d + axis. *)
  let edge_id u v =
    if u < 0 || v < 0 || u >= size || v >= size then raise (Graph.Not_an_edge (u, v));
    if u = v then raise (Graph.Not_an_edge (u, v));
    let cu = Mesh.coords ~d ~m u and cv = Mesh.coords ~d ~m v in
    let found = ref None in
    for axis = 0 to d - 1 do
      if cu.(axis) <> cv.(axis) then
        match !found with
        | Some _ -> found := Some (-1, -1) (* differ on two axes: not an edge *)
        | None ->
            if (cu.(axis) + 1) mod m = cv.(axis) then found := Some (axis, u)
            else if (cv.(axis) + 1) mod m = cu.(axis) then found := Some (axis, v)
            else found := Some (-1, -1)
    done;
    match !found with
    | Some (axis, source) when axis >= 0 -> (source * d) + axis
    | Some _ | None -> raise (Graph.Not_an_edge (u, v))
  in
  {
    Graph.name = Printf.sprintf "torus(d=%d,m=%d)" d m;
    vertex_count = size;
    degree = (fun _ -> 2 * d);
    neighbors;
    edge_id;
    edge_id_bound = size * d;
    distance = Some (l1_distance ~d ~m);
  }
