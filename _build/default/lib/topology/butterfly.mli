(** The wrapped butterfly network [BF(n)].

    Vertices are pairs (level, row) with [level ∈ \[0,n)] and
    [row ∈ \[0, 2^n)]; vertex ids are [level·2^n + row]. Each vertex has
    a {e straight} edge to [(level+1 mod n, row)] and a {e cross} edge to
    [(level+1 mod n, row xor 2^level)]; degree is 4. The butterfly's
    fault tolerance is studied by Karlin–Nelson–Tamaki and
    Cole–Maggs–Sitaraman (paper's related work); it is also a Section 6
    candidate family. *)

val graph : int -> Graph.t
(** [graph n] is [BF(n)] with [n·2^n] vertices.
    @raise Invalid_argument unless [3 <= n <= 24] (n < 3 creates
    parallel edges in the wrapped construction). *)

val vertex : n:int -> level:int -> row:int -> int
(** Packs (level, row) into a vertex id. *)

val level_of : n:int -> int -> int
val row_of : n:int -> int -> int
