(** The binary shuffle-exchange graph [SE(n)].

    Vertices are [n]-bit words. {e Exchange} edges join [x] to
    [x xor 1]; {e shuffle} edges join [x] to its left rotation. Another
    of Section 6's constant-degree candidates. Self-loop shuffles (at
    constant words) are removed; coinciding shuffle/exchange edges are
    merged, so the graph is simple with degree at most 3. *)

val graph : int -> Graph.t
(** [graph n] is [SE(n)] on [2^n] vertices.
    @raise Invalid_argument unless [2 <= n <= 28]. *)

val rotate_left : n:int -> int -> int
(** [rotate_left ~n x] rotates the [n]-bit word left by one. *)

val rotate_right : n:int -> int -> int
(** Inverse rotation. *)
