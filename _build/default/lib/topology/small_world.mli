(** Kleinberg's small-world lattice (STOC 2000), cited in the paper's
    introduction as {e the} model separating the existence of short
    paths from the ability to find them.

    An [m × m] grid in which every node additionally owns one long-range
    contact, drawn with probability proportional to
    [d(u,v)^{-r}] (grid L1 distance). Kleinberg: decentralised greedy
    routing takes [O(log² m)] steps iff [r = 2]; every other exponent
    forces polynomial time even though short paths exist for all
    [r ≤ 2]. The structural randomness (which contacts) comes from the
    supplied stream — independent of any later percolation. *)

val create : Prng.Stream.t -> m:int -> r:float -> Graph.t * (int -> int)
(** [create stream ~m ~r] is the augmented grid and the contact map
    (the long-range contact each node drew).

    Deliberate deviation from {!Graph.t}'s [distance] convention: the
    exposed metric is the {e lattice} L1 distance, not the true graph
    distance — Kleinberg's model gives nodes exactly that knowledge, and
    it is what decentralised greedy routing must steer by. True
    distances can be shorter through the long links (use
    {!Graph.bfs_distance} for those).
    @raise Invalid_argument if [m < 3] or [r < 0]. *)

val graph : Prng.Stream.t -> m:int -> r:float -> Graph.t
(** [fst (create ...)]. *)
