(** The [n]-dimensional hypercube [H_n].

    Vertices are the bit strings [0 .. 2^n - 1]; [x] and [y] are adjacent
    iff they differ in exactly one bit. Distance is the Hamming distance.
    This is the graph of Theorem 3: local routing on [H_{n,p}] with
    [p = n^{-α}] undergoes a complexity phase transition at [α = 1/2]. *)

val graph : int -> Graph.t
(** [graph n] is [H_n].
    @raise Invalid_argument unless [1 <= n <= 30]. *)

val dimension : Graph.t -> int
(** Recovers [n] from a hypercube built by {!graph}. *)

val hamming : int -> int -> int
(** [hamming x y] is the number of differing bits. *)

val flip : int -> int -> int
(** [flip x i] toggles bit [i]. *)

val antipode : n:int -> int -> int
(** [antipode ~n x] is the vertex differing from [x] in all [n] bits. *)

val fixed_path : n:int -> int -> int -> int list
(** [fixed_path ~n u v] is the canonical shortest path from [u] to [v]
    that corrects differing coordinates in increasing bit order —
    the deterministic backbone used by the Theorem 3(ii) segment router.
    Includes both endpoints; length [hamming u v + 1]. *)

val fixed_path_desc : n:int -> int -> int -> int list
(** Like {!fixed_path} but correcting coordinates in decreasing bit
    order. An ablation backbone: the segment router's complexity should
    be insensitive to the (arbitrary) choice of shortest path. *)

val popcount : int -> int
(** Number of set bits of a non-negative integer. *)
