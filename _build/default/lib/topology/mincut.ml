(* Residual representation for unit-capacity undirected graphs: each
   undirected edge may carry one unit of flow in one direction. We store
   the flow direction (if any) per canonical edge id. An arc u->v is
   usable iff the edge currently carries no flow, or carries flow v->u
   (cancelling). *)

type residual = {
  graph : Graph.t;
  flow : (int, int) Hashtbl.t; (* edge id -> vertex the flow points AT *)
}

let arc_usable r u v =
  let id = r.graph.Graph.edge_id u v in
  match Hashtbl.find_opt r.flow id with
  | None -> true
  | Some toward -> toward = u (* cancelling an opposite unit *)

let push_arc r u v =
  let id = r.graph.Graph.edge_id u v in
  match Hashtbl.find_opt r.flow id with
  | None -> Hashtbl.replace r.flow id v
  | Some toward ->
      if toward = u then Hashtbl.remove r.flow id
      else invalid_arg "Mincut.push_arc: arc saturated"

(* BFS for an augmenting path in the residual graph. *)
let augmenting_path r ~source ~sink =
  let predecessor = Hashtbl.create 64 in
  Hashtbl.replace predecessor source source;
  let queue = Queue.create () in
  Queue.push source queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if (not (Hashtbl.mem predecessor v)) && arc_usable r u v then begin
          Hashtbl.replace predecessor v u;
          if v = sink then found := true else Queue.push v queue
        end)
      (r.graph.Graph.neighbors u)
  done;
  if not !found then None
  else begin
    let rec walk v acc =
      let prev = Hashtbl.find predecessor v in
      if prev = v then v :: acc else walk prev (v :: acc)
    in
    Some (walk sink [])
  end

let solve g ~source ~sink =
  Graph.check_vertex g source;
  Graph.check_vertex g sink;
  if source = sink then invalid_arg "Mincut: source = sink";
  let r = { graph = g; flow = Hashtbl.create 256 } in
  let value = ref 0 in
  let rec augment () =
    match augmenting_path r ~source ~sink with
    | None -> ()
    | Some path ->
        let rec push = function
          | u :: (v :: _ as rest) ->
              push_arc r u v;
              push rest
          | [ _ ] | [] -> ()
        in
        push path;
        incr value;
        augment ()
  in
  augment ();
  (r, !value)

let max_flow g ~source ~sink = snd (solve g ~source ~sink)

let min_cut g ~source ~sink =
  let r, _ = solve g ~source ~sink in
  (* Source side = vertices reachable in the final residual graph. *)
  let side = Hashtbl.create 64 in
  Hashtbl.replace side source ();
  let queue = Queue.create () in
  Queue.push source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if (not (Hashtbl.mem side v)) && arc_usable r u v then begin
          Hashtbl.replace side v ();
          Queue.push v queue
        end)
      (g.Graph.neighbors u)
  done;
  Graph.fold_edges g ~init:[] ~f:(fun acc u v ->
      let u_in = Hashtbl.mem side u and v_in = Hashtbl.mem side v in
      if u_in && not v_in then (u, v) :: acc
      else if v_in && not u_in then (v, u) :: acc
      else acc)
