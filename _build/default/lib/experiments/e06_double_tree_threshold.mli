(** Experiment E6 — double-tree connectivity threshold (Lemma 6). *)

val id : string
val title : string
val claim : string

val exact_connection : n:int -> p:float -> float
(** [exact_connection ~n ~p] is the exact value of [Pr[x ~ y]] in
    [TT_{n,p}], via the Galton–Watson recursion
    [q_0 = 1, q_k = 1 - (1 - p² q_{k-1})²]. *)

val run : ?quick:bool -> Prng.Stream.t -> Report.t
(** [run stream] executes the experiment; [~quick:true] shrinks it. *)
