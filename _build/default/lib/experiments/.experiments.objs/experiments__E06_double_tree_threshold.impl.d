lib/experiments/e06_double_tree_threshold.ml: List Percolation Printf Prng Report Stats Topology
