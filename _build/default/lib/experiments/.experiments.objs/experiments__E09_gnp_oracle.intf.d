lib/experiments/e09_gnp_oracle.mli: Prng Report
