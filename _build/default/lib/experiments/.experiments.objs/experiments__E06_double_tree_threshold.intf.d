lib/experiments/e06_double_tree_threshold.mli: Prng Report
