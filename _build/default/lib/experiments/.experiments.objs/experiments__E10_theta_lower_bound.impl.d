lib/experiments/e10_theta_lower_bound.ml: List Printf Prng Report Routing Stats Topology Trial
