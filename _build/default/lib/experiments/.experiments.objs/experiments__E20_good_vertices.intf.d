lib/experiments/e20_good_vertices.mli: Prng Report
