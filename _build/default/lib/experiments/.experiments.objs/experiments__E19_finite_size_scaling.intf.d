lib/experiments/e19_finite_size_scaling.mli: Prng Report
