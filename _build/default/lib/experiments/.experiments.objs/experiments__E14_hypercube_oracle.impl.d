lib/experiments/e14_hypercube_oracle.ml: List Printf Prng Report Routing Stats Topology Trial
