lib/experiments/catalog.mli: Prng Report
