lib/experiments/report.ml: Buffer List Printf Stats
