lib/experiments/e03_hypercube_exp.mli: Prng Report
