lib/experiments/e21_small_world.mli: Prng Report
