lib/experiments/e12_expanders.ml: Format List Printf Prng Report Routing Stats Topology Trial
