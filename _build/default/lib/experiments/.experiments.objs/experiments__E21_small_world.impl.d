lib/experiments/e21_small_world.ml: List Percolation Printf Prng Report Routing Stats Topology
