lib/experiments/e07_tree_local_vs_oracle.ml: List Printf Prng Report Routing Stats Topology Trial
