lib/experiments/e19_finite_size_scaling.ml: List Percolation Printf Prng Report Stats String Topology
