lib/experiments/e07_tree_local_vs_oracle.mli: Prng Report
