lib/experiments/e17_path_counting.mli: Prng Report
