lib/experiments/trial.ml: List Option Percolation Prng Routing Stats Topology
