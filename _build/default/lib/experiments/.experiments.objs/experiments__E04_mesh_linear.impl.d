lib/experiments/e04_mesh_linear.ml: List Printf Prng Report Routing Stats Topology Trial
