lib/experiments/e02_hypercube_poly.mli: Prng Report
