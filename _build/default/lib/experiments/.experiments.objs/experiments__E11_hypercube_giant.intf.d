lib/experiments/e11_hypercube_giant.mli: Prng Report
