lib/experiments/e22_adversarial.mli: Prng Report
