lib/experiments/report.mli: Stats
