lib/experiments/e15_ablations.mli: Prng Report
