lib/experiments/e24_butterfly_permutation.mli: Prng Report
