lib/experiments/e20_good_vertices.ml: Array List Percolation Printf Prng Report Routing Stats Topology
