lib/experiments/trial.mli: Prng Routing Stats Topology
