lib/experiments/e13_chemical_stretch.ml: List Percolation Printf Prng Report Stats Topology
