lib/experiments/e09_gnp_oracle.ml: E08_gnp_local List Printf Prng Report Routing Stats Topology Trial
