lib/experiments/e05_mesh_threshold.mli: Prng Report
