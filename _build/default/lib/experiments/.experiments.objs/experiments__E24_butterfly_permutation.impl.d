lib/experiments/e24_butterfly_permutation.ml: List Netsim Percolation Printf Prng Report Stats Topology
