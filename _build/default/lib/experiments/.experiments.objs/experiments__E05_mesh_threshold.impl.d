lib/experiments/e05_mesh_threshold.ml: Format List Printf Prng Report Routing Stats Topology Trial
