lib/experiments/e10_theta_lower_bound.mli: Prng Report
