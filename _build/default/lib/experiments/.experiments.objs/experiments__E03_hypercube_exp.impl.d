lib/experiments/e03_hypercube_exp.ml: List Printf Prng Report Routing Stats Topology Trial
