lib/experiments/e18_distributed_lookup.ml: List Netsim Percolation Printf Prng Report Stats Topology
