lib/experiments/e17_path_counting.ml: Printf Prng Report Routing Stats Topology
