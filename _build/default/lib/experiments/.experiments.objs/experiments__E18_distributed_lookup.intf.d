lib/experiments/e18_distributed_lookup.mli: Prng Report
