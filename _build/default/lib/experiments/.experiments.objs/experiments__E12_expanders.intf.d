lib/experiments/e12_expanders.mli: Prng Report
