lib/experiments/e16_torus_boundary.mli: Prng Report
