lib/experiments/e02_hypercube_poly.ml: List Printf Prng Report Routing Stats Topology Trial
