lib/experiments/e08_gnp_local.mli: Prng Report
