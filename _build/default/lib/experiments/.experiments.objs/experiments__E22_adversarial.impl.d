lib/experiments/e22_adversarial.ml: List Percolation Printf Prng Report Routing Stats Topology
