lib/experiments/e15_ablations.ml: Array List Printf Prng Report Routing Stats Topology Trial
