lib/experiments/e13_chemical_stretch.mli: Prng Report
