lib/experiments/e11_hypercube_giant.ml: List Percolation Printf Prng Report Stats Topology
