lib/experiments/e08_gnp_local.ml: List Printf Prng Report Routing Stats Topology Trial
