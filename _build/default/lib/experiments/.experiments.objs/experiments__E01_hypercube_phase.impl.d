lib/experiments/e01_hypercube_phase.ml: List Printf Prng Report Routing Stats Topology Trial
