lib/experiments/e23_site_percolation.ml: Array List Percolation Printf Prng Report Routing Stats String Topology
