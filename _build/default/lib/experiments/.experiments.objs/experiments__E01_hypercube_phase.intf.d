lib/experiments/e01_hypercube_phase.mli: Prng Report
