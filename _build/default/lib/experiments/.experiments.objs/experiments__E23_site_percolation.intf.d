lib/experiments/e23_site_percolation.mli: Prng Report
