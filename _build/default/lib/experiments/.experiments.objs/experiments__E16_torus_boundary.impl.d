lib/experiments/e16_torus_boundary.ml: List Printf Prng Report Routing Stats Topology Trial
