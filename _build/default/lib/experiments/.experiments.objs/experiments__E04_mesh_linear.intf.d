lib/experiments/e04_mesh_linear.mli: Prng Report
