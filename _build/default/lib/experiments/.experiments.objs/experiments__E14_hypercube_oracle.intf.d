lib/experiments/e14_hypercube_oracle.mli: Prng Report
