(** Conditioned routing trials.

    The paper's routing complexity (Definition 2) is conditioned on
    [{u ~ v}]. A trial therefore draws fresh percolation worlds until the
    chosen pair is connected (checked through the uncounted ground-truth
    {!Percolation.Reveal}), then lets the router attempt the routing and
    records the probe count — censored at the budget when one is set.

    The rejection-sampling attempts double as an estimate of
    [Pr\[u ~ v\]], reported alongside. *)

type spec = {
  graph : Topology.Graph.t;
  p : float;
  source : int;
  target : int;
  router : source:int -> target:int -> Routing.Router.t;
      (** Built per pair: backbone routers depend on the endpoints. *)
  budget : int option;  (** Probe cap; [None] = unlimited. *)
  reveal_limit : int option;
      (** Cap on ground-truth exploration; verdict [Unknown] counts as
          not connected. [None] = explore fully. *)
}

val spec :
  ?budget:int ->
  ?reveal_limit:int ->
  graph:Topology.Graph.t ->
  p:float ->
  source:int ->
  target:int ->
  (source:int -> target:int -> Routing.Router.t) ->
  spec

type result = {
  observations : Stats.Censored.t;
      (** One per conditioned trial: distinct probes, censored at budget. *)
  connection : Stats.Proportion.t;
      (** Connected worlds over all attempted worlds. *)
  path_lengths : Stats.Summary.t;  (** Lengths of found paths. *)
  chemical_distances : Stats.Summary.t;
      (** Ground-truth percolation distances of the conditioned pairs. *)
  failures : int;
      (** Routings that returned [No_path] despite ground-truth saying
          connected — must be 0 unless a reveal limit truncated. *)
}

val run : Prng.Stream.t -> trials:int -> ?max_attempts:int -> spec -> result
(** [run stream ~trials spec] performs up to [trials] conditioned
    measurements, drawing at most [max_attempts] (default
    [100 × trials]) worlds in total.
    @raise Invalid_argument if [trials <= 0]. *)

val median_observation : result -> Stats.Censored.observation option
(** Median probe count of the conditioned trials. *)

val mean_probes_lower_bound : result -> float
(** Mean probe count, substituting budget for censored trials. *)
