(** Experiment E8 — G(n,p) local routing is quadratic (Theorem 10). *)

val id : string
val title : string
val claim : string

val c : float
(** The mean-degree constant [c] of [p = c/n]; shared with E9 so the
    local/oracle ratio column compares like for like. *)

val sizes : quick:bool -> int list
(** The sweep of graph sizes, shared with E9. *)

val run : ?quick:bool -> Prng.Stream.t -> Report.t
(** [run stream] executes the experiment; [~quick:true] shrinks it. *)
