(** Experiment EE4 — see the module implementation header and
    DESIGN.md's experiment index for the claim being reproduced. *)

val id : string
(** Catalog id, e.g. "E1". *)

val title : string
(** One-line title shown by the CLI and catalog. *)

val claim : string
(** The paper statement this experiment measures. *)

val run : ?quick:bool -> Prng.Stream.t -> Report.t
(** [run stream] executes the experiment at paper scale; [~quick:true]
    shrinks sizes and trial counts for smoke tests and benches. *)
