type t = {
  id : string;
  title : string;
  claim : string;
  tables : (string * Stats.Table.t) list;
  notes : string list;
  seed : int64;
}

let make ~id ~title ~claim ~seed ?(notes = []) tables =
  { id; title; claim; tables; notes; seed }

let render t =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer (Printf.sprintf "=== %s: %s ===\n" t.id t.title);
  Buffer.add_string buffer (Printf.sprintf "Claim: %s\n" t.claim);
  Buffer.add_string buffer (Printf.sprintf "Seed: %Ld\n" t.seed);
  List.iter
    (fun (caption, table) ->
      Buffer.add_string buffer (Printf.sprintf "\n-- %s --\n" caption);
      Buffer.add_string buffer (Stats.Table.render table))
    t.tables;
  if t.notes <> [] then begin
    Buffer.add_string buffer "\nNotes:\n";
    List.iter (fun note -> Buffer.add_string buffer (Printf.sprintf "  * %s\n" note)) t.notes
  end;
  Buffer.contents buffer

let render_csv t = List.map (fun (caption, table) -> (caption, Stats.Table.to_csv table)) t.tables
let print t = print_string (render t)
