type spec = {
  graph : Topology.Graph.t;
  p : float;
  source : int;
  target : int;
  router : source:int -> target:int -> Routing.Router.t;
  budget : int option;
  reveal_limit : int option;
}

let spec ?budget ?reveal_limit ~graph ~p ~source ~target router =
  { graph; p; source; target; router; budget; reveal_limit }

type result = {
  observations : Stats.Censored.t;
  connection : Stats.Proportion.t;
  path_lengths : Stats.Summary.t;
  chemical_distances : Stats.Summary.t;
  failures : int;
}

let run stream ~trials ?max_attempts spec =
  if trials <= 0 then invalid_arg "Trial.run: trials must be positive";
  let max_attempts = Option.value max_attempts ~default:(100 * trials) in
  let root_seed = Prng.Stream.seed stream in
  let observations = ref Stats.Censored.empty in
  let path_lengths = ref Stats.Summary.empty in
  let chemical = ref Stats.Summary.empty in
  let connected_worlds = ref 0 in
  let attempts = ref 0 in
  let completed = ref 0 in
  let failures = ref 0 in
  while !completed < trials && !attempts < max_attempts do
    incr attempts;
    let seed = Prng.Coin.derive root_seed !attempts in
    let world = Percolation.World.create spec.graph ~p:spec.p ~seed in
    match
      Percolation.Reveal.connected ?limit:spec.reveal_limit world spec.source
        spec.target
    with
    | Percolation.Reveal.Disconnected | Percolation.Reveal.Unknown -> ()
    | Percolation.Reveal.Connected distance ->
        incr connected_worlds;
        incr completed;
        chemical := Stats.Summary.add !chemical (float_of_int distance);
        let router = spec.router ~source:spec.source ~target:spec.target in
        let outcome =
          Routing.Router.run ?budget:spec.budget router world ~source:spec.source
            ~target:spec.target
        in
        observations := Stats.Censored.add !observations (Routing.Outcome.to_observation outcome);
        (match outcome with
        | Routing.Outcome.Found { path; _ } ->
            path_lengths :=
              Stats.Summary.add !path_lengths (float_of_int (List.length path - 1))
        | Routing.Outcome.No_path _ -> incr failures
        | Routing.Outcome.Budget_exceeded _ -> ())
  done;
  {
    observations = !observations;
    connection = Stats.Proportion.make ~successes:!connected_worlds ~trials:!attempts;
    path_lengths = !path_lengths;
    chemical_distances = !chemical;
    failures = !failures;
  }

let median_observation result = Stats.Censored.median result.observations
let mean_probes_lower_bound result = Stats.Censored.mean_lower_bound result.observations
