test/test_netsim.ml: Alcotest Array Int64 List Netsim Percolation Printf Prng QCheck QCheck_alcotest Test Topology
