test/test_percolation.mli:
