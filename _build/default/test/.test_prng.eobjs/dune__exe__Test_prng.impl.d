test/test_prng.ml: Alcotest Array Float Hashtbl Int64 List Printf Prng QCheck QCheck_alcotest Test
