test/test_topology.ml: Alcotest Array Hashtbl List Percolation Printf Prng Topology
