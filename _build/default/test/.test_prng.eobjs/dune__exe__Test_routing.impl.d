test/test_routing.ml: Alcotest Array Format Gen Hashtbl List Percolation Printf Prng QCheck QCheck_alcotest Routing Stats String Test Topology
