test/test_percolation.ml: Alcotest Array Experiments Float Hashtbl List Option Percolation Printf Prng QCheck QCheck_alcotest Stats Test Topology
