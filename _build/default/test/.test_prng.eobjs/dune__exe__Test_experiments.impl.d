test/test_experiments.ml: Alcotest Experiments List Percolation Printf Prng Routing Stats String Topology
