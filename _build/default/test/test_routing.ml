(* Tests for the routing core: outcomes, path validation, every router
   (correctness against ground truth, probe accounting, budget handling,
   locality), and the Lemma 5 lower-bound machinery. *)

module G = Topology.Graph
module P = Percolation
module R = Routing

(* ------------------------------------------------------------------ *)
(* Outcome                                                             *)

let test_outcome_accessors () =
  let found = R.Outcome.Found { path = [ 0; 1; 3 ]; probes = 9; raw_probes = 12 } in
  Alcotest.(check int) "probes" 9 (R.Outcome.probes found);
  Alcotest.(check bool) "found" true (R.Outcome.found found);
  Alcotest.(check (option int)) "length" (Some 2) (R.Outcome.path_length found);
  let missing = R.Outcome.No_path { probes = 4 } in
  Alcotest.(check bool) "not found" false (R.Outcome.found missing);
  Alcotest.(check (option int)) "no length" None (R.Outcome.path_length missing);
  let capped = R.Outcome.Budget_exceeded { probes = 100 } in
  Alcotest.(check int) "capped probes" 100 (R.Outcome.probes capped)

let test_outcome_observation () =
  (match R.Outcome.to_observation (R.Outcome.Found { path = [ 0 ]; probes = 5; raw_probes = 5 }) with
  | Stats.Censored.Exact x -> Alcotest.(check (float 1e-9)) "exact" 5.0 x
  | Stats.Censored.At_least _ -> Alcotest.fail "expected exact");
  match R.Outcome.to_observation (R.Outcome.Budget_exceeded { probes = 7 }) with
  | Stats.Censored.At_least x -> Alcotest.(check (float 1e-9)) "censored" 7.0 x
  | Stats.Censored.Exact _ -> Alcotest.fail "expected censored"

(* ------------------------------------------------------------------ *)
(* Path                                                                *)

let cube = Topology.Hypercube.graph 4
let full_world = P.World.create cube ~p:1.0 ~seed:1L
let empty_world = P.World.create cube ~p:0.0 ~seed:1L

let test_path_validate_ok () =
  Alcotest.(check bool) "valid" true
    (R.Path.is_valid full_world ~source:0 ~target:3 [ 0; 1; 3 ])

let test_path_validate_failures () =
  let check_error expected path source target world =
    match R.Path.validate world ~source ~target path with
    | Ok () -> Alcotest.failf "expected %s" expected
    | Error failure ->
        Alcotest.(check string) "failure kind" expected
          (Format.asprintf "%a" R.Path.pp_failure failure
          |> String.split_on_char ' ' |> List.hd)
  in
  check_error "empty" [] 0 3 full_world;
  check_error "path" [ 1; 3 ] 0 3 full_world;
  (* wrong source *)
  check_error "path" [ 0; 1 ] 0 3 full_world;
  (* wrong target *)
  check_error "0" [ 0; 3 ] 0 3 full_world;
  (* not adjacent: "0 and 3 are not adjacent" *)
  check_error "edge" [ 0; 1; 3 ] 0 3 empty_world;
  (* closed edge *)
  check_error "vertex" [ 0; 1; 0; 2; 3 ] 0 3 full_world
(* repeated vertex — note 0;1;0 repeats 0 *)

let test_path_simplify () =
  Alcotest.(check (list int)) "removes cycle" [ 0; 2; 3 ]
    (R.Path.simplify [ 0; 1; 0; 2; 3 ]);
  Alcotest.(check (list int)) "identity" [ 0; 1; 3 ] (R.Path.simplify [ 0; 1; 3 ]);
  Alcotest.(check (list int)) "single" [ 5 ] (R.Path.simplify [ 5 ]);
  Alcotest.(check (list int)) "collapses to endpoint" [ 7 ]
    (R.Path.simplify [ 7; 3; 7 ])

(* ------------------------------------------------------------------ *)
(* Router.run harness                                                  *)

let test_run_validates_paths () =
  (* A bogus router returning a fake path must be rejected. *)
  let bogus =
    {
      R.Router.name = "bogus";
      policy = P.Oracle.Unrestricted;
      route =
        (fun oracle ~target ->
          ignore target;
          R.Router.found_outcome oracle [ 0; 1; 3 ]);
    }
  in
  match R.Router.run bogus empty_world ~source:0 ~target:3 with
  | _ -> Alcotest.fail "expected Invalid_route"
  | exception R.Router.Invalid_route { router = "bogus"; _ } -> ()

let test_run_budget_translation () =
  (* With p = 1 and a budget of 1, BFS must report Budget_exceeded. *)
  match R.Router.run ~budget:1 R.Local_bfs.router full_world ~source:0 ~target:15 with
  | R.Outcome.Budget_exceeded { probes } -> Alcotest.(check int) "one probe" 1 probes
  | _ -> Alcotest.fail "expected budget exceeded"

let test_run_trivial_pair () =
  match R.Router.run R.Local_bfs.router full_world ~source:5 ~target:5 with
  | R.Outcome.Found { path; probes; _ } ->
      Alcotest.(check (list int)) "trivial" [ 5 ] path;
      Alcotest.(check int) "free" 0 probes
  | _ -> Alcotest.fail "expected trivial success"

(* ------------------------------------------------------------------ *)
(* Router correctness against ground truth                             *)

(* Routers that perform a complete search: Found iff Reveal says
   connected; No_path iff disconnected. *)
let check_router_against_truth router world ~source ~target =
  let outcome = R.Router.run router world ~source ~target in
  let truth = P.Reveal.connected world source target in
  match (outcome, truth) with
  | R.Outcome.Found { path; probes; _ }, P.Reveal.Connected _ ->
      Alcotest.(check bool) "path valid" true
        (R.Path.is_valid world ~source ~target path);
      Alcotest.(check bool) "probes >= path edges" true
        (probes >= List.length path - 1)
  | R.Outcome.No_path _, P.Reveal.Disconnected -> ()
  | R.Outcome.Found _, P.Reveal.Disconnected ->
      Alcotest.fail "router found a path in a disconnected world"
  | R.Outcome.No_path _, P.Reveal.Connected _ ->
      Alcotest.fail "router missed an existing path"
  | R.Outcome.Budget_exceeded _, _ -> Alcotest.fail "no budget set"
  | _, P.Reveal.Unknown -> Alcotest.fail "no reveal limit set"

let many_worlds ~count f =
  for trial = 1 to count do
    let seed = Prng.Coin.derive 4242L trial in
    f seed
  done

let test_local_bfs_correct () =
  many_worlds ~count:60 (fun seed ->
      let world = P.World.create cube ~p:0.5 ~seed in
      check_router_against_truth R.Local_bfs.router world ~source:0 ~target:15)

let test_local_bfs_randomized_correct () =
  let stream = Prng.Stream.create 3L in
  many_worlds ~count:40 (fun seed ->
      let world = P.World.create cube ~p:0.5 ~seed in
      check_router_against_truth
        (R.Local_bfs.router_randomized stream)
        world ~source:0 ~target:15)

let test_greedy_correct () =
  many_worlds ~count:60 (fun seed ->
      let world = P.World.create cube ~p:0.5 ~seed in
      check_router_against_truth R.Greedy.router world ~source:0 ~target:15)

let test_greedy_fault_free_is_direct () =
  (* Without faults greedy walks a shortest path: probes ~ n per step. *)
  match R.Router.run R.Greedy.router full_world ~source:0 ~target:15 with
  | R.Outcome.Found { path; probes; _ } ->
      Alcotest.(check int) "shortest path" 5 (List.length path);
      Alcotest.(check bool) (Printf.sprintf "modest probes (%d)" probes) true
        (probes <= 4 * 4)
  | _ -> Alcotest.fail "expected success"

let test_greedy_requires_metric () =
  let tree = Topology.Double_tree.graph 3 in
  let world = P.World.create tree ~p:1.0 ~seed:1L in
  match R.Router.run R.Greedy.router world ~source:0 ~target:5 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_path_follow_correct () =
  many_worlds ~count:60 (fun seed ->
      let world = P.World.create cube ~p:0.5 ~seed in
      let router = R.Path_follow.hypercube ~n:4 ~source:0 ~target:15 in
      check_router_against_truth router world ~source:0 ~target:15)

let test_path_follow_fault_free_follows_backbone () =
  let router = R.Path_follow.hypercube ~n:4 ~source:0 ~target:15 in
  match R.Router.run router full_world ~source:0 ~target:15 with
  | R.Outcome.Found { path; _ } -> Alcotest.(check int) "backbone length" 5 (List.length path)
  | _ -> Alcotest.fail "expected success"

let test_path_follow_mesh_correct () =
  let d = 2 and m = 8 in
  let grid = Topology.Mesh.graph ~d ~m in
  let source = Topology.Mesh.index ~m [| 1; 1 |] in
  let target = Topology.Mesh.index ~m [| 6; 6 |] in
  many_worlds ~count:60 (fun seed ->
      let world = P.World.create grid ~p:0.7 ~seed in
      let router = R.Path_follow.mesh ~d ~m ~source ~target in
      check_router_against_truth router world ~source ~target)

let test_path_follow_torus_correct () =
  let d = 2 and m = 7 in
  let torus = Topology.Torus.graph ~d ~m in
  let source = 0 in
  let target = Topology.Mesh.index ~m [| 5; 5 |] in
  many_worlds ~count:40 (fun seed ->
      let world = P.World.create torus ~p:0.7 ~seed in
      let router = R.Path_follow.torus ~d ~m ~source ~target in
      check_router_against_truth router world ~source ~target)

let test_path_follow_empty_backbone () =
  Alcotest.check_raises "empty" (Invalid_argument "Path_follow.router: empty backbone")
    (fun () -> ignore (R.Path_follow.router ~backbone:[||]))

let test_bidirectional_correct () =
  many_worlds ~count:60 (fun seed ->
      let world = P.World.create cube ~p:0.5 ~seed in
      check_router_against_truth R.Bidirectional.router world ~source:0 ~target:15);
  (* Also on the complete graph, its natural habitat. *)
  let k = Topology.Complete.graph 30 in
  many_worlds ~count:30 (fun seed ->
      let world = P.World.create k ~p:0.1 ~seed in
      check_router_against_truth R.Bidirectional.router world ~source:0 ~target:29)

let test_bidirectional_rejects_local_oracle () =
  let o = P.Oracle.create ~policy:P.Oracle.Local full_world ~source:0 in
  match R.Bidirectional.router.R.Router.route o ~target:15 with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_tree_pair_dfs_correct () =
  let n = 5 in
  let tree = Topology.Double_tree.graph n in
  let source = Topology.Double_tree.root1 in
  let target = Topology.Double_tree.root2 ~n in
  let router = R.Tree_pair_dfs.router ~n in
  let found = ref 0 and missing = ref 0 in
  many_worlds ~count:80 (fun seed ->
      let world = P.World.create tree ~p:0.85 ~seed in
      let outcome = R.Router.run router world ~source ~target in
      let truth = P.Reveal.connected world source target in
      match (outcome, truth) with
      | R.Outcome.Found { path; _ }, P.Reveal.Connected _ ->
          incr found;
          Alcotest.(check bool) "valid" true (R.Path.is_valid world ~source ~target path);
          Alcotest.(check int) "length 2n" (2 * n) (List.length path - 1)
      | R.Outcome.No_path _, P.Reveal.Disconnected -> incr missing
      | R.Outcome.Found _, P.Reveal.Disconnected ->
          Alcotest.fail "found path in disconnected world"
      | R.Outcome.No_path _, P.Reveal.Connected _ ->
          Alcotest.fail "missed an existing root path"
      | _, _ -> Alcotest.fail "unexpected outcome");
  Alcotest.(check bool) "mixed outcomes exercised" true (!found > 0 && !missing > 0)

let test_tree_pair_dfs_reverse_direction () =
  let n = 4 in
  let tree = Topology.Double_tree.graph n in
  let world = P.World.create tree ~p:1.0 ~seed:1L in
  let router = R.Tree_pair_dfs.router ~n in
  match
    R.Router.run router world ~source:(Topology.Double_tree.root2 ~n)
      ~target:Topology.Double_tree.root1
  with
  | R.Outcome.Found { path; _ } ->
      Alcotest.(check int) "length" ((2 * n) + 1) (List.length path)
  | _ -> Alcotest.fail "expected success"

let test_tree_pair_dfs_wrong_pair () =
  let n = 4 in
  let tree = Topology.Double_tree.graph n in
  let world = P.World.create tree ~p:1.0 ~seed:1L in
  let router = R.Tree_pair_dfs.router ~n in
  match R.Router.run router world ~source:0 ~target:5 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_tree_pair_linear_growth () =
  (* Oracle probes on TT_n at p=0.9 should grow roughly linearly: the
     ratio probes/n must stay small for n up to 12. *)
  let stream = Prng.Stream.create 31L in
  List.iter
    (fun n ->
      let tree = Topology.Double_tree.graph n in
      let source = Topology.Double_tree.root1 in
      let target = Topology.Double_tree.root2 ~n in
      let router = R.Tree_pair_dfs.router ~n in
      let rec routed_probes attempt =
        if attempt > 50 then None
        else begin
          let seed = Prng.Coin.derive (Prng.Stream.seed stream) (attempt + (n * 100)) in
          let world = P.World.create tree ~p:0.9 ~seed in
          match P.Reveal.connected world source target with
          | P.Reveal.Connected _ ->
              Some (R.Outcome.probes (R.Router.run router world ~source ~target))
          | P.Reveal.Disconnected | P.Reveal.Unknown -> routed_probes (attempt + 1)
        end
      in
      match routed_probes 0 with
      | Some probes ->
          Alcotest.(check bool)
            (Printf.sprintf "n=%d probes=%d small" n probes)
            true
            (probes <= 40 * n)
      | None -> Alcotest.fail "no connected world found")
    [ 4; 8; 12 ]

(* ------------------------------------------------------------------ *)
(* Probe accounting invariants                                         *)

let test_probe_counts_truthful () =
  (* The outcome's probe count must equal the oracle's distinct count:
     run through Router.run and compare against a manual oracle replay. *)
  many_worlds ~count:20 (fun seed ->
      let world = P.World.create cube ~p:0.5 ~seed in
      match R.Router.run R.Local_bfs.router world ~source:0 ~target:15 with
      | R.Outcome.Found { probes; raw_probes; _ } ->
          Alcotest.(check bool) "distinct <= raw" true (probes <= raw_probes)
      | R.Outcome.No_path { probes } ->
          (* Exhaustive search: probed every edge reachable. *)
          Alcotest.(check bool) "bounded by edges" true (probes <= G.edge_count cube)
      | R.Outcome.Budget_exceeded _ -> Alcotest.fail "no budget")

let test_local_routers_obey_locality () =
  (* Running local routers through a Local-policy oracle raises on any
     locality violation, so termination without exception is the test. *)
  many_worlds ~count:40 (fun seed ->
      let world = P.World.create cube ~p:0.4 ~seed in
      ignore (R.Router.run R.Local_bfs.router world ~source:0 ~target:15);
      ignore (R.Router.run R.Greedy.router world ~source:0 ~target:15);
      let segment = R.Path_follow.hypercube ~n:4 ~source:0 ~target:15 in
      ignore (R.Router.run segment world ~source:0 ~target:15))

(* ------------------------------------------------------------------ *)
(* Lower bound machinery                                               *)

let test_bound_evaluation () =
  Alcotest.(check (float 1e-9)) "basic" 0.5
    (R.Lower_bound.bound ~t:5.0 ~eta:0.1 ~pr_path_in_s:0.0 ~pr_connected:1.0);
  Alcotest.(check (float 1e-9)) "clamped" 1.0
    (R.Lower_bound.bound ~t:100.0 ~eta:1.0 ~pr_path_in_s:0.0 ~pr_connected:1.0);
  Alcotest.check_raises "bad denominator"
    (Invalid_argument "Lower_bound.bound: pr_connected must be positive") (fun () ->
      ignore (R.Lower_bound.bound ~t:1.0 ~eta:0.1 ~pr_path_in_s:0.0 ~pr_connected:0.0))

let test_eta_formulas () =
  Alcotest.(check (float 1e-9)) "theta" 0.25 (R.Lower_bound.eta_theta ~p:0.25);
  Alcotest.(check (float 1e-9)) "double tree" (0.8 ** 5.0)
    (R.Lower_bound.eta_double_tree ~p:0.8 ~n:5);
  (* Hypercube eta must be finite and tiny for alpha > 1/2 + beta. *)
  let eta = R.Lower_bound.eta_hypercube ~alpha:0.8 ~beta:0.2 ~n:64 in
  Alcotest.(check bool) "tiny" true (eta > 0.0 && eta < 0.01);
  Alcotest.check_raises "divergent"
    (Invalid_argument
       "Lower_bound.eta_hypercube: series diverges (need beta < alpha - 1/2)")
    (fun () -> ignore (R.Lower_bound.eta_hypercube ~alpha:0.5 ~beta:0.3 ~n:64))

let test_connected_within () =
  let theta = Topology.Theta.graph 5 in
  let world = P.World.create theta ~p:1.0 ~seed:1L in
  let member v = v <> Topology.Theta.endpoint_u in
  (* v is connected to every middle within S. *)
  Alcotest.(check bool) "inside" true
    (R.Lower_bound.connected_within world ~member (Topology.Theta.middle 0)
       Topology.Theta.endpoint_v);
  (* u is outside S. *)
  Alcotest.(check bool) "outside" false
    (R.Lower_bound.connected_within world ~member Topology.Theta.endpoint_u
       Topology.Theta.endpoint_v)

let test_estimate_eta_matches_theta_formula () =
  (* Lemma 5's eta for the theta graph is exactly p: the middle endpoint
     of a cut edge reaches v within S iff edge (middle, v) is open. *)
  let d = 30 in
  let p = 0.3 in
  let graph = Topology.Theta.graph d in
  let member v = v <> Topology.Theta.endpoint_u in
  let stream = Prng.Stream.create 61L in
  let estimate =
    R.Lower_bound.estimate_eta stream ~trials:800 ~graph ~p ~member
      ~target:Topology.Theta.endpoint_v
      ~cut_edge:(Topology.Theta.endpoint_u, Topology.Theta.middle 0)
  in
  Alcotest.(check bool) "wilson interval covers p" true
    (Stats.Proportion.within estimate ~lo:p ~hi:p)

let test_estimate_eta_matches_double_tree_formula () =
  (* For TT_n with S = second tree, eta = p^n exactly (unique branch). *)
  let n = 4 in
  let p = 0.7 in
  let graph = Topology.Double_tree.graph n in
  let member v =
    Topology.Double_tree.role_of ~n v <> Topology.Double_tree.Internal1
  in
  let leaf = Topology.Double_tree.leaf ~n 0 in
  let parent_in_tree1 =
    (* The tree-1 parent of leaf 0 (outside S). *)
    Array.to_list (graph.G.neighbors leaf)
    |> List.find (fun w -> Topology.Double_tree.role_of ~n w = Topology.Double_tree.Internal1)
  in
  let stream = Prng.Stream.create 62L in
  let estimate =
    R.Lower_bound.estimate_eta stream ~trials:2000 ~graph ~p ~member
      ~target:(Topology.Double_tree.root2 ~n)
      ~cut_edge:(parent_in_tree1, leaf)
  in
  let expected = R.Lower_bound.eta_double_tree ~p ~n in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.3f covers p^n = %.3f"
       (Stats.Proportion.estimate estimate) expected)
    true
    (Stats.Proportion.within estimate ~lo:expected ~hi:expected)

(* ------------------------------------------------------------------ *)
(* Ball walks (Theorem 3(i) counting lemma)                            *)

let test_ball_walks_base_case () =
  (* Length-l walks from centre to a distance-l boundary vertex are
     exactly the l! coordinate orderings. *)
  List.iter
    (fun l ->
      let target = R.Ball_walks.boundary_vertex ~l in
      let exact =
        R.Ball_walks.count_walks ~n:8 ~center:0 ~radius:l ~target ~length:l
      in
      let rec factorial i = if i <= 1 then 1.0 else float_of_int i *. factorial (i - 1) in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "l=%d" l) (factorial l) exact)
    [ 1; 2; 3; 4 ]

let test_ball_walks_parity () =
  (* Walks of wrong parity cannot reach the target. *)
  let target = R.Ball_walks.boundary_vertex ~l:2 in
  Alcotest.(check (float 1e-9)) "odd length" 0.0
    (R.Ball_walks.count_walks ~n:6 ~center:0 ~radius:2 ~target ~length:3);
  Alcotest.(check (float 1e-9)) "too short" 0.0
    (R.Ball_walks.count_walks ~n:6 ~center:0 ~radius:2 ~target ~length:0)

let test_ball_walks_bound_respected () =
  (* The proof's bound |A_k| <= n^k l^{2k} l! must dominate the exact
     count for every k — on several (n, l). *)
  List.iter
    (fun (n, l) ->
      let target = R.Ball_walks.boundary_vertex ~l in
      for k = 0 to 4 do
        let exact =
          R.Ball_walks.count_walks ~n ~center:0 ~radius:l ~target
            ~length:(l + (2 * k))
        in
        let bound = R.Ball_walks.bound_ak ~n ~l ~k in
        Alcotest.(check bool)
          (Printf.sprintf "n=%d l=%d k=%d: %.0f <= %.0f" n l k exact bound)
          true (exact <= bound)
      done)
    [ (6, 2); (8, 3); (10, 2); (12, 3) ]

let test_ball_walks_brute_force () =
  (* Cross-check the DP against explicit enumeration on a tiny case. *)
  let n = 4 and radius = 2 in
  let target = R.Ball_walks.boundary_vertex ~l:2 in
  let member v = Topology.Hypercube.hamming 0 v <= radius in
  let rec enumerate v remaining =
    if remaining = 0 then if v = target then 1 else 0
    else begin
      let total = ref 0 in
      for bit = 0 to n - 1 do
        let w = Topology.Hypercube.flip v bit in
        if member w then total := !total + enumerate w (remaining - 1)
      done;
      !total
    end
  in
  List.iter
    (fun length ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "length %d" length)
        (float_of_int (enumerate 0 length))
        (R.Ball_walks.count_walks ~n ~center:0 ~radius ~target ~length))
    [ 2; 4; 6 ]

let test_ball_walks_series_below_closed_form () =
  (* Exact-count series must sit below the closed form whenever the
     closed form converges. *)
  let n = 10 and l = 2 in
  let p = 0.12 in
  let series = R.Ball_walks.connection_probability_series ~n ~p ~l ~terms:6 in
  let closed = R.Ball_walks.eta_closed_form ~n ~p ~l in
  Alcotest.(check bool) "series <= closed" true (series <= closed)

let test_ball_walks_errors () =
  Alcotest.check_raises "target outside"
    (Invalid_argument "Ball_walks.count_walks: target outside the ball") (fun () ->
      ignore (R.Ball_walks.count_walks ~n:6 ~center:0 ~radius:1 ~target:7 ~length:3));
  Alcotest.check_raises "divergent"
    (Invalid_argument "Ball_walks.eta_closed_form: series diverges") (fun () ->
      ignore (R.Ball_walks.eta_closed_form ~n:10 ~p:0.5 ~l:3))

(* ------------------------------------------------------------------ *)
(* Good vertices (Theorem 3(ii) scaffolding)                           *)

let test_good_vertex_thresholds () =
  Alcotest.(check (float 1e-9)) "degree" 3.0
    (R.Good_vertex.degree_threshold ~n:10 ~p:0.6);
  Alcotest.(check (float 1e-9)) "ball" 9.0 (R.Good_vertex.ball_threshold ~n:10 ~p:0.6)

let test_good_vertex_full_world () =
  let g = Topology.Hypercube.graph 6 in
  let w = P.World.create g ~p:1.0 ~seed:1L in
  for v = 0 to 63 do
    Alcotest.(check bool) "all good" true (R.Good_vertex.is_good w v)
  done;
  match R.Good_vertex.good_pair_distance w 0 7 with
  | `Distance d -> Alcotest.(check int) "distance 3" 3 d
  | `Not_good | `Disconnected -> Alcotest.fail "good pair expected"

let test_good_vertex_empty_world () =
  let g = Topology.Hypercube.graph 6 in
  let w = P.World.create g ~p:0.0 ~seed:1L in
  for v = 0 to 63 do
    Alcotest.(check bool) "none good" false (R.Good_vertex.is_good w v)
  done;
  Alcotest.(check bool) "pair not good" true
    (R.Good_vertex.good_pair_distance w 0 7 = `Not_good)

let test_good_vertex_fraction_monotone () =
  let g = Topology.Hypercube.graph 8 in
  let fraction p =
    let w = P.World.create g ~p ~seed:3L in
    Stats.Proportion.estimate
      (R.Good_vertex.fraction_good (Prng.Stream.create 5L) w ~samples:150)
  in
  Alcotest.(check bool) "richer worlds have more good vertices" true
    (fraction 0.9 >= fraction 0.35)

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)

let qcheck_tests =
  let open QCheck in
  let simplify_tests =
    [
      Test.make ~name:"simplify: simple path with same endpoints" ~count:300
        (list_of_size (Gen.int_range 0 40) (int_bound 3))
        (fun flips ->
          (* A random walk on H_4 encoded as bit flips from vertex 0. *)
          let walk =
            List.fold_left (fun acc bit ->
                match acc with
                | v :: _ -> Topology.Hypercube.flip v bit :: acc
                | [] -> assert false)
              [ 0 ] flips
            |> List.rev
          in
          let simplified = R.Path.simplify walk in
          let first = List.hd simplified in
          let rec last = function [ x ] -> x | _ :: r -> last r | [] -> assert false in
          let seen = Hashtbl.create 16 in
          let simple =
            List.for_all
              (fun v ->
                if Hashtbl.mem seen v then false
                else begin
                  Hashtbl.replace seen v ();
                  true
                end)
              simplified
          in
          let rec adjacent = function
            | a :: (b :: _ as rest) ->
                Topology.Hypercube.hamming a b = 1 && adjacent rest
            | [ _ ] | [] -> true
          in
          first = List.hd walk && last simplified = last walk && simple
          && adjacent simplified);
    ]
  in
  let routers =
    [
      ("bfs", fun ~source:_ ~target:_ -> R.Local_bfs.router);
      ("greedy", fun ~source:_ ~target:_ -> R.Greedy.router);
      ("segment", fun ~source ~target -> R.Path_follow.hypercube ~n:4 ~source ~target);
      ("bidi", fun ~source:_ ~target:_ -> R.Bidirectional.router);
    ]
  in
  List.map
    (fun (name, make_router) ->
      Test.make
        ~name:(Printf.sprintf "%s: outcome matches ground truth" name)
        ~count:150
        (triple int64 (int_bound 15) (int_bound 15))
        (fun (seed, source, target) ->
          QCheck.assume (source <> target);
          let world = P.World.create cube ~p:0.45 ~seed in
          let router = make_router ~source ~target in
          let outcome = R.Router.run router world ~source ~target in
          let truth = P.Reveal.connected world source target in
          match (outcome, truth) with
          | R.Outcome.Found { path; _ }, P.Reveal.Connected _ ->
              R.Path.is_valid world ~source ~target path
          | R.Outcome.No_path _, P.Reveal.Disconnected -> true
          | _, _ -> false))
    routers
  @ simplify_tests

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "routing"
    [
      ( "outcome",
        [ case "accessors" test_outcome_accessors; case "observation" test_outcome_observation ]
      );
      ( "path",
        [
          case "validate ok" test_path_validate_ok;
          case "validate failures" test_path_validate_failures;
          case "simplify" test_path_simplify;
        ] );
      ( "harness",
        [
          case "validates paths" test_run_validates_paths;
          case "budget translation" test_run_budget_translation;
          case "trivial pair" test_run_trivial_pair;
        ] );
      ( "local bfs",
        [
          case "correct" test_local_bfs_correct;
          case "randomized correct" test_local_bfs_randomized_correct;
        ] );
      ( "greedy",
        [
          case "correct" test_greedy_correct;
          case "fault-free direct" test_greedy_fault_free_is_direct;
          case "requires metric" test_greedy_requires_metric;
        ] );
      ( "path follow",
        [
          case "hypercube correct" test_path_follow_correct;
          case "fault-free backbone" test_path_follow_fault_free_follows_backbone;
          case "mesh correct" test_path_follow_mesh_correct;
          case "torus correct" test_path_follow_torus_correct;
          case "empty backbone" test_path_follow_empty_backbone;
        ] );
      ( "bidirectional",
        [
          case "correct" test_bidirectional_correct;
          case "rejects local oracle" test_bidirectional_rejects_local_oracle;
        ] );
      ( "tree pair dfs",
        [
          case "correct" test_tree_pair_dfs_correct;
          case "reverse direction" test_tree_pair_dfs_reverse_direction;
          case "wrong pair" test_tree_pair_dfs_wrong_pair;
          case "linear growth" test_tree_pair_linear_growth;
        ] );
      ( "accounting",
        [
          case "truthful counts" test_probe_counts_truthful;
          case "locality obeyed" test_local_routers_obey_locality;
        ] );
      ( "lower bound",
        [
          case "bound evaluation" test_bound_evaluation;
          case "eta formulas" test_eta_formulas;
          case "connected within" test_connected_within;
          case "estimate eta (theta)" test_estimate_eta_matches_theta_formula;
          case "estimate eta (double tree)" test_estimate_eta_matches_double_tree_formula;
        ] );
      ( "good vertices",
        [
          case "thresholds" test_good_vertex_thresholds;
          case "full world" test_good_vertex_full_world;
          case "empty world" test_good_vertex_empty_world;
          case "fraction monotone" test_good_vertex_fraction_monotone;
        ] );
      ( "ball walks",
        [
          case "base case l!" test_ball_walks_base_case;
          case "parity" test_ball_walks_parity;
          case "bound respected" test_ball_walks_bound_respected;
          case "brute force" test_ball_walks_brute_force;
          case "series below closed form" test_ball_walks_series_below_closed_form;
          case "errors" test_ball_walks_errors;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
    ]
