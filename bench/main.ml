(* Benchmark harness.

   Two layers:

   1. A bechamel suite with one Test.make per experiment (E1..E13), each
      exercising that experiment's core routing/percolation kernel at a
      small fixed size — wall-clock and allocation profiles of the
      machinery itself.

   2. The experiment tables: every report from the catalog, in quick
      mode by default (pass --full for paper-scale parameters). These are
      the reproduction's "figures"; EXPERIMENTS.md records a full-scale
      run. *)

open Bechamel
open Toolkit

let seed = 0xBE7CAL

(* All fixed topologies go through the registry, like the CLI and the
   examples; only parametrised families outside it (small-world) are
   built directly. *)
let topo name ~size =
  match Topology.Registry.of_spec name with
  | Ok spec ->
      (Topology.Registry.build spec ~default_size:size (Prng.Stream.create seed))
        .Topology.Registry.graph
  | Error message -> failwith message

(* ------------------------------------------------------------------ *)
(* Kernels: one per experiment, small enough to run repeatedly.        *)

let conditioned_route graph ~p ~source ~target router_of =
  (* One conditioned routing attempt: scan derived seeds for a connected
     world (bounded), then route. Mirrors Trial.run's inner loop. *)
  let rec attempt k =
    if k > 50 then 0
    else begin
      let world_seed = Prng.Coin.derive seed k in
      let world = Percolation.World.create graph ~p ~seed:world_seed in
      match Percolation.Reveal.connected world source target with
      | Percolation.Reveal.Connected _ ->
          let outcome = Routing.Router.run (router_of ()) world ~source ~target in
          Routing.Outcome.probes outcome
      | Percolation.Reveal.Disconnected | Percolation.Reveal.Unknown -> attempt (k + 1)
    end
  in
  attempt 1

let bench_e1 () =
  let n = 10 in
  let graph = topo "hypercube" ~size:n in
  let target = Topology.Hypercube.antipode ~n 0 in
  conditioned_route graph ~p:(float_of_int n ** -0.3) ~source:0 ~target (fun () ->
      Routing.Path_follow.hypercube ~n ~source:0 ~target)

let bench_e2 () =
  let n = 12 in
  let graph = topo "hypercube" ~size:n in
  let target = Topology.Hypercube.antipode ~n 0 in
  conditioned_route graph ~p:(float_of_int n ** -0.4) ~source:0 ~target (fun () ->
      Routing.Path_follow.hypercube ~n ~source:0 ~target)

let bench_e3 () =
  let n = 10 in
  let graph = topo "hypercube" ~size:n in
  let target = Topology.Hypercube.antipode ~n 0 in
  conditioned_route graph ~p:(float_of_int n ** -0.7) ~source:0 ~target (fun () ->
      Routing.Local_bfs.router)

let bench_e4 () =
  let d = 2 and m = 40 in
  let graph = topo "mesh2" ~size:m in
  let source = Topology.Mesh.index ~m [| 10; 20 |] in
  let target = Topology.Mesh.index ~m [| 30; 20 |] in
  conditioned_route graph ~p:0.7 ~source ~target (fun () ->
      Routing.Path_follow.mesh ~d ~m ~source ~target)

let bench_e5 () =
  let m = 30 in
  let graph = topo "mesh2" ~size:m in
  let world = Percolation.World.create graph ~p:0.5 ~seed in
  (Percolation.Clusters.census world).Percolation.Clusters.largest

let bench_e6 () =
  let n = 10 in
  let graph = topo "double-tree" ~size:n in
  let world = Percolation.World.create graph ~p:0.75 ~seed in
  match
    Percolation.Reveal.connected world Topology.Double_tree.root1
      (Topology.Double_tree.root2 ~n)
  with
  | Percolation.Reveal.Connected d -> d
  | Percolation.Reveal.Disconnected | Percolation.Reveal.Unknown -> -1

let bench_e7 () =
  let n = 10 in
  let graph = topo "double-tree" ~size:n in
  let target = Topology.Double_tree.root2 ~n in
  conditioned_route graph ~p:0.8 ~source:Topology.Double_tree.root1 ~target (fun () ->
      Routing.Tree_pair_dfs.router ~n)

let bench_e8 () =
  let n = 300 in
  let graph = topo "complete" ~size:n in
  conditioned_route graph ~p:(3.0 /. float_of_int n) ~source:0 ~target:(n - 1)
    (fun () -> Routing.Local_bfs.router)

let bench_e9 () =
  let n = 300 in
  let graph = topo "complete" ~size:n in
  conditioned_route graph ~p:(3.0 /. float_of_int n) ~source:0 ~target:(n - 1)
    (fun () -> Routing.Bidirectional.router)

let bench_e10 () =
  let d = 256 in
  let graph = topo "theta" ~size:d in
  conditioned_route graph
    ~p:(1.0 /. sqrt (float_of_int d))
    ~source:Topology.Theta.endpoint_u ~target:Topology.Theta.endpoint_v (fun () ->
      Routing.Local_bfs.router)

let bench_e11 () =
  let n = 12 in
  let graph = topo "hypercube" ~size:n in
  let world = Percolation.World.create graph ~p:(1.5 /. float_of_int n) ~seed in
  (Percolation.Clusters.census world).Percolation.Clusters.largest

let bench_e12 () =
  let graph = topo "de-bruijn" ~size:10 in
  conditioned_route graph ~p:0.6 ~source:1
    ~target:(graph.Topology.Graph.vertex_count - 2) (fun () -> Routing.Local_bfs.router)

let bench_e13 () =
  let m = 40 in
  let graph = topo "mesh2" ~size:m in
  let world = Percolation.World.create graph ~p:0.7 ~seed in
  let source = Topology.Mesh.index ~m [| 10; 20 |] in
  let target = Topology.Mesh.index ~m [| 30; 20 |] in
  match Percolation.Chemical.distance world source target with
  | Some dist -> dist
  | None -> -1

let bench_e14 () =
  let n = 10 in
  let graph = topo "hypercube" ~size:n in
  let target = Topology.Hypercube.antipode ~n 0 in
  conditioned_route graph ~p:(float_of_int n ** -0.7) ~source:0 ~target (fun () ->
      Routing.Bidirectional.router)

let bench_e15 () =
  let n = 10 in
  let graph = topo "hypercube" ~size:n in
  let target = (1 lsl (n / 2)) - 1 in
  conditioned_route graph ~p:(float_of_int n ** -0.35) ~source:0 ~target (fun () ->
      let backbone =
        Array.of_list (Topology.Hypercube.fixed_path_desc ~n 0 target)
      in
      Routing.Path_follow.router ~backbone)

let bench_e16 () =
  let d = 2 and m = 30 in
  let graph = topo "torus2" ~size:m in
  let source = 0 in
  let target = Topology.Mesh.index ~m [| 15; 0 |] in
  conditioned_route graph ~p:0.7 ~source ~target (fun () ->
      Routing.Path_follow.torus ~d ~m ~source ~target)

let bench_e17 () =
  Routing.Ball_walks.count_walks ~n:10 ~center:0 ~radius:3
    ~target:(Routing.Ball_walks.boundary_vertex ~l:3)
    ~length:9
  |> int_of_float

let bench_e18 () =
  let n = 8 in
  let graph = topo "hypercube" ~size:n in
  let world = Percolation.World.create graph ~p:0.6 ~seed in
  let engine = Netsim.Engine.create world Netsim.Flood.protocol in
  Netsim.Flood.start engine ~source:0;
  let target = Topology.Hypercube.antipode ~n 0 in
  match
    Netsim.Engine.run engine ~until:(fun e -> Netsim.Flood.informed_at e target <> None)
  with
  | `Stopped rounds -> rounds
  | `Quiescent rounds -> rounds
  | `Out_of_rounds -> -1

let bench_e19 () =
  let stream = Prng.Stream.create seed in
  let curve =
    Percolation.Scaling.measure_giant_curve stream
      ~graph_of_size:(fun m -> topo "mesh2" ~size:m)
      ~size:16
      ~ps:[ 0.45; 0.5; 0.55 ]
      ~trials:3
  in
  List.length curve.Percolation.Scaling.points

let bench_e20 () =
  let n = 10 in
  let graph = topo "hypercube" ~size:n in
  let world = Percolation.World.create graph ~p:(float_of_int n ** -0.3) ~seed in
  if Routing.Good_vertex.is_good world 0 then 1 else 0

let bench_e21 () =
  let stream = Prng.Stream.create seed in
  let graph = Topology.Small_world.graph stream ~m:12 ~r:2.0 in
  let world = Percolation.World.create graph ~p:1.0 ~seed in
  match Routing.Router.run Routing.Greedy.router world ~source:0 ~target:(graph.Topology.Graph.vertex_count - 1) with
  | Routing.Outcome.Found { probes; _ } -> probes
  | Routing.Outcome.No_path { probes } | Routing.Outcome.Budget_exceeded { probes } -> probes

let bench_e22 () =
  let graph = topo "hypercube" ~size:8 in
  Topology.Mincut.max_flow graph ~source:0 ~sink:255

let bench_e23 () =
  let graph = topo "mesh2" ~size:30 in
  let world = Percolation.World.create ~site_p:0.7 graph ~p:1.0 ~seed in
  (Percolation.Clusters.census world).Percolation.Clusters.largest

let bench_e24 () =
  let n = 5 in
  let graph = topo "butterfly" ~size:n in
  let world = Percolation.World.create graph ~p:0.95 ~seed in
  let engine =
    Netsim.Engine.create ~link_capacity:1 world (Netsim.Butterfly_route.protocol ~n)
  in
  Netsim.Butterfly_route.inject_permutation (Prng.Stream.create seed) engine ~n
    ~passes:3;
  ignore (Netsim.Engine.run ~max_rounds:500 engine ~until:(fun _ -> false));
  Netsim.Butterfly_route.delivered engine

let tests =
  [
    ("E1:hypercube-segment", bench_e1);
    ("E2:hypercube-segment-12", bench_e2);
    ("E3:hypercube-bfs-hard", bench_e3);
    ("E4:mesh-path-follow", bench_e4);
    ("E5:mesh-census", bench_e5);
    ("E6:double-tree-reveal", bench_e6);
    ("E7:tree-pair-dfs", bench_e7);
    ("E8:gnp-local-bfs", bench_e8);
    ("E9:gnp-bidirectional", bench_e9);
    ("E10:theta-bfs", bench_e10);
    ("E11:hypercube-census", bench_e11);
    ("E12:de-bruijn-bfs", bench_e12);
    ("E13:mesh-chemical", bench_e13);
    ("E14:hypercube-oracle", bench_e14);
    ("E15:segment-desc", bench_e15);
    ("E16:torus-path-follow", bench_e16);
    ("E17:ball-walk-count", bench_e17);
    ("E18:netsim-flood", bench_e18);
    ("E19:scaling-curve", bench_e19);
    ("E20:good-vertex", bench_e20);
    ("E21:small-world-greedy", bench_e21);
    ("E22:mincut", bench_e22);
    ("E23:site-census", bench_e23);
    ("E24:butterfly-permutation", bench_e24);
  ]

let benchmark () =
  let test =
    Test.make_grouped ~name:"experiments"
      (List.map
         (fun (name, kernel) ->
           Test.make ~name (Staged.stage (fun () -> Sys.opaque_identity (kernel ()))))
         tests)
  in
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  Analyze.merge ols instances results

let report_benchmarks results =
  let () =
    List.iter
      (fun instance -> Bechamel_notty.Unit.add instance (Measure.unit instance))
      Instance.[ monotonic_clock; minor_allocated ]
  in
  let window = { Bechamel_notty.w = 100; h = 1 } in
  let image =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results
  in
  Notty_unix.eol image |> Notty_unix.output_image

(* ------------------------------------------------------------------ *)
(* Parallel engine: wall-clock of the full quick catalog at jobs = 1
   versus jobs = N, plus a byte-identity check on the rendered reports.
   Speedup is bounded by the machine's core count — on a single-core
   host the two times coincide.                                        *)

let timed_run_all ~jobs =
  Engine_par.Pool.set_default_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Engine_par.Pool.set_default_jobs 1)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let reports = Experiments.Catalog.run_all ~quick:true ~jobs ~seed:0x5EEDL () in
      let elapsed = Unix.gettimeofday () -. t0 in
      (elapsed, String.concat "\n" (List.map Experiments.Report.render reports)))

let report_parallel_speedup () =
  let jobs = Stdlib.max 2 (Engine_par.Pool.recommended_jobs ()) in
  Printf.printf "== parallel trial engine (quick catalog, %d cores recommended) ==\n"
    (Engine_par.Pool.recommended_jobs ());
  let sequential, reference = timed_run_all ~jobs:1 in
  let parallel, rendered = timed_run_all ~jobs in
  Printf.printf "jobs=1: %6.2f s\njobs=%d: %6.2f s\nspeedup: %.2fx\n" sequential jobs
    parallel (sequential /. parallel);
  Printf.printf "reports byte-identical across job counts: %b\n\n" (rendered = reference)

let () =
  let full = Array.exists (fun a -> a = "--full") Sys.argv in
  let skip_micro = Array.exists (fun a -> a = "--tables-only") Sys.argv in
  if not skip_micro then begin
    print_endline "== bechamel micro-benchmarks (one kernel per experiment) ==";
    report_benchmarks (benchmark ());
    print_newline ()
  end;
  if not skip_micro then report_parallel_speedup ();
  Printf.printf "== experiment tables (%s mode) ==\n\n" (if full then "full" else "quick");
  let reports = Experiments.Catalog.run_all ~quick:(not full) ~seed:0x5EEDL () in
  List.iter
    (fun r ->
      Experiments.Report.print r;
      print_newline ())
    reports
