(* Benchmark harness.

   Two layers:

   1. A bechamel suite with one Test.make per experiment (E1..E13), each
      exercising that experiment's core routing/percolation kernel at a
      small fixed size — wall-clock and allocation profiles of the
      machinery itself.

   2. The experiment tables: every report from the catalog, in quick
      mode by default (pass --full for paper-scale parameters). These are
      the reproduction's "figures"; EXPERIMENTS.md records a full-scale
      run. *)

open Bechamel
open Toolkit

let seed = 0xBE7CAL

(* All fixed topologies go through the registry, like the CLI and the
   examples; only parametrised families outside it (small-world) are
   built directly. *)
let topo name ~size =
  match Topology.Registry.of_spec name with
  | Ok spec ->
      (Topology.Registry.build spec ~default_size:size (Prng.Stream.create seed))
        .Topology.Registry.graph
  | Error message -> failwith message

(* ------------------------------------------------------------------ *)
(* Kernels: one per experiment, small enough to run repeatedly.        *)

let conditioned_route graph ~p ~source ~target router_of =
  (* One conditioned routing attempt: scan derived seeds for a connected
     world (bounded), then route. Mirrors Trial.run's inner loop. *)
  let rec attempt k =
    if k > 50 then 0
    else begin
      let world_seed = Prng.Coin.derive seed k in
      let world = Percolation.World.create graph ~p ~seed:world_seed in
      match Percolation.Reveal.connected world source target with
      | Percolation.Reveal.Connected _ ->
          let outcome = Routing.Router.run (router_of ()) world ~source ~target in
          Routing.Outcome.probes outcome
      | Percolation.Reveal.Disconnected | Percolation.Reveal.Unknown -> attempt (k + 1)
    end
  in
  attempt 1

let bench_e1 () =
  let n = 10 in
  let graph = topo "hypercube" ~size:n in
  let target = Topology.Hypercube.antipode ~n 0 in
  conditioned_route graph ~p:(float_of_int n ** -0.3) ~source:0 ~target (fun () ->
      Routing.Path_follow.hypercube ~n ~source:0 ~target)

let bench_e2 () =
  let n = 12 in
  let graph = topo "hypercube" ~size:n in
  let target = Topology.Hypercube.antipode ~n 0 in
  conditioned_route graph ~p:(float_of_int n ** -0.4) ~source:0 ~target (fun () ->
      Routing.Path_follow.hypercube ~n ~source:0 ~target)

let bench_e3 () =
  let n = 10 in
  let graph = topo "hypercube" ~size:n in
  let target = Topology.Hypercube.antipode ~n 0 in
  conditioned_route graph ~p:(float_of_int n ** -0.7) ~source:0 ~target (fun () ->
      Routing.Local_bfs.router)

let bench_e4 () =
  let d = 2 and m = 40 in
  let graph = topo "mesh2" ~size:m in
  let source = Topology.Mesh.index ~m [| 10; 20 |] in
  let target = Topology.Mesh.index ~m [| 30; 20 |] in
  conditioned_route graph ~p:0.7 ~source ~target (fun () ->
      Routing.Path_follow.mesh ~d ~m ~source ~target)

let bench_e5 () =
  let m = 30 in
  let graph = topo "mesh2" ~size:m in
  let world = Percolation.World.create graph ~p:0.5 ~seed in
  (Percolation.Clusters.census world).Percolation.Clusters.largest

let bench_e6 () =
  let n = 10 in
  let graph = topo "double-tree" ~size:n in
  let world = Percolation.World.create graph ~p:0.75 ~seed in
  match
    Percolation.Reveal.connected world Topology.Double_tree.root1
      (Topology.Double_tree.root2 ~n)
  with
  | Percolation.Reveal.Connected d -> d
  | Percolation.Reveal.Disconnected | Percolation.Reveal.Unknown -> -1

let bench_e7 () =
  let n = 10 in
  let graph = topo "double-tree" ~size:n in
  let target = Topology.Double_tree.root2 ~n in
  conditioned_route graph ~p:0.8 ~source:Topology.Double_tree.root1 ~target (fun () ->
      Routing.Tree_pair_dfs.router ~n)

let bench_e8 () =
  let n = 300 in
  let graph = topo "complete" ~size:n in
  conditioned_route graph ~p:(3.0 /. float_of_int n) ~source:0 ~target:(n - 1)
    (fun () -> Routing.Local_bfs.router)

let bench_e9 () =
  let n = 300 in
  let graph = topo "complete" ~size:n in
  conditioned_route graph ~p:(3.0 /. float_of_int n) ~source:0 ~target:(n - 1)
    (fun () -> Routing.Bidirectional.router)

let bench_e10 () =
  let d = 256 in
  let graph = topo "theta" ~size:d in
  conditioned_route graph
    ~p:(1.0 /. sqrt (float_of_int d))
    ~source:Topology.Theta.endpoint_u ~target:Topology.Theta.endpoint_v (fun () ->
      Routing.Local_bfs.router)

let bench_e11 () =
  let n = 12 in
  let graph = topo "hypercube" ~size:n in
  let world = Percolation.World.create graph ~p:(1.5 /. float_of_int n) ~seed in
  (Percolation.Clusters.census world).Percolation.Clusters.largest

let bench_e12 () =
  let graph = topo "de-bruijn" ~size:10 in
  conditioned_route graph ~p:0.6 ~source:1
    ~target:(graph.Topology.Graph.vertex_count - 2) (fun () -> Routing.Local_bfs.router)

let bench_e13 () =
  let m = 40 in
  let graph = topo "mesh2" ~size:m in
  let world = Percolation.World.create graph ~p:0.7 ~seed in
  let source = Topology.Mesh.index ~m [| 10; 20 |] in
  let target = Topology.Mesh.index ~m [| 30; 20 |] in
  match Percolation.Chemical.distance world source target with
  | Some dist -> dist
  | None -> -1

let bench_e14 () =
  let n = 10 in
  let graph = topo "hypercube" ~size:n in
  let target = Topology.Hypercube.antipode ~n 0 in
  conditioned_route graph ~p:(float_of_int n ** -0.7) ~source:0 ~target (fun () ->
      Routing.Bidirectional.router)

let bench_e15 () =
  let n = 10 in
  let graph = topo "hypercube" ~size:n in
  let target = (1 lsl (n / 2)) - 1 in
  conditioned_route graph ~p:(float_of_int n ** -0.35) ~source:0 ~target (fun () ->
      let backbone =
        Array.of_list (Topology.Hypercube.fixed_path_desc ~n 0 target)
      in
      Routing.Path_follow.router ~backbone)

let bench_e16 () =
  let d = 2 and m = 30 in
  let graph = topo "torus2" ~size:m in
  let source = 0 in
  let target = Topology.Mesh.index ~m [| 15; 0 |] in
  conditioned_route graph ~p:0.7 ~source ~target (fun () ->
      Routing.Path_follow.torus ~d ~m ~source ~target)

let bench_e17 () =
  Routing.Ball_walks.count_walks ~n:10 ~center:0 ~radius:3
    ~target:(Routing.Ball_walks.boundary_vertex ~l:3)
    ~length:9
  |> int_of_float

let bench_e18 () =
  let n = 8 in
  let graph = topo "hypercube" ~size:n in
  let world = Percolation.World.create graph ~p:0.6 ~seed in
  let engine = Netsim.Engine.create world Netsim.Flood.protocol in
  Netsim.Flood.start engine ~source:0;
  let target = Topology.Hypercube.antipode ~n 0 in
  match
    Netsim.Engine.run engine ~until:(fun e -> Netsim.Flood.informed_at e target <> None)
  with
  | `Stopped rounds -> rounds
  | `Quiescent rounds -> rounds
  | `Out_of_rounds -> -1

let bench_e19 () =
  let stream = Prng.Stream.create seed in
  let curve =
    Percolation.Scaling.measure_giant_curve stream
      ~graph_of_size:(fun m -> topo "mesh2" ~size:m)
      ~size:16
      ~ps:[ 0.45; 0.5; 0.55 ]
      ~trials:3
  in
  List.length curve.Percolation.Scaling.points

let bench_e20 () =
  let n = 10 in
  let graph = topo "hypercube" ~size:n in
  let world = Percolation.World.create graph ~p:(float_of_int n ** -0.3) ~seed in
  if Routing.Good_vertex.is_good world 0 then 1 else 0

let bench_e21 () =
  let stream = Prng.Stream.create seed in
  let graph = Topology.Small_world.graph stream ~m:12 ~r:2.0 in
  let world = Percolation.World.create graph ~p:1.0 ~seed in
  match Routing.Router.run Routing.Greedy.router world ~source:0 ~target:(graph.Topology.Graph.vertex_count - 1) with
  | Routing.Outcome.Found { probes; _ } -> probes
  | Routing.Outcome.No_path { probes } | Routing.Outcome.Budget_exceeded { probes } -> probes

let bench_e22 () =
  let graph = topo "hypercube" ~size:8 in
  Topology.Mincut.max_flow graph ~source:0 ~sink:255

let bench_e23 () =
  let graph = topo "mesh2" ~size:30 in
  let world = Percolation.World.create ~site_p:0.7 graph ~p:1.0 ~seed in
  (Percolation.Clusters.census world).Percolation.Clusters.largest

let bench_e24 () =
  let n = 5 in
  let graph = topo "butterfly" ~size:n in
  let world = Percolation.World.create graph ~p:0.95 ~seed in
  let engine =
    Netsim.Engine.create ~link_capacity:1 world (Netsim.Butterfly_route.protocol ~n)
  in
  Netsim.Butterfly_route.inject_permutation (Prng.Stream.create seed) engine ~n
    ~passes:3;
  ignore (Netsim.Engine.run ~max_rounds:500 engine ~until:(fun _ -> false));
  Netsim.Butterfly_route.delivered engine

let tests =
  [
    ("E1:hypercube-segment", bench_e1);
    ("E2:hypercube-segment-12", bench_e2);
    ("E3:hypercube-bfs-hard", bench_e3);
    ("E4:mesh-path-follow", bench_e4);
    ("E5:mesh-census", bench_e5);
    ("E6:double-tree-reveal", bench_e6);
    ("E7:tree-pair-dfs", bench_e7);
    ("E8:gnp-local-bfs", bench_e8);
    ("E9:gnp-bidirectional", bench_e9);
    ("E10:theta-bfs", bench_e10);
    ("E11:hypercube-census", bench_e11);
    ("E12:de-bruijn-bfs", bench_e12);
    ("E13:mesh-chemical", bench_e13);
    ("E14:hypercube-oracle", bench_e14);
    ("E15:segment-desc", bench_e15);
    ("E16:torus-path-follow", bench_e16);
    ("E17:ball-walk-count", bench_e17);
    ("E18:netsim-flood", bench_e18);
    ("E19:scaling-curve", bench_e19);
    ("E20:good-vertex", bench_e20);
    ("E21:small-world-greedy", bench_e21);
    ("E22:mincut", bench_e22);
    ("E23:site-census", bench_e23);
    ("E24:butterfly-permutation", bench_e24);
  ]

let benchmark () =
  let test =
    Test.make_grouped ~name:"experiments"
      (List.map
         (fun (name, kernel) ->
           Test.make ~name (Staged.stage (fun () -> Sys.opaque_identity (kernel ()))))
         tests)
  in
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  Analyze.merge ols instances results

let report_benchmarks results =
  let () =
    List.iter
      (fun instance -> Bechamel_notty.Unit.add instance (Measure.unit instance))
      Instance.[ monotonic_clock; minor_allocated ]
  in
  let window = { Bechamel_notty.w = 100; h = 1 } in
  let image =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results
  in
  Notty_unix.eol image |> Notty_unix.output_image

(* ------------------------------------------------------------------ *)
(* Percolation hot path: cached vs lazy worlds.

   Three kernels per size-gated topology, each run over both world
   representations with the same seeds (identical coins, identical
   work — only the machinery differs):

   - reveal-BFS: full open-cluster exploration from a fixed source,
     fresh world per iteration (arena BFS + memoised coins vs Hashtbl
     frontier + rehash-per-query);
   - oracle-probe: an unrestricted probe sweep over every edge followed
     by a full re-probe pass (bitset probe memory vs Hashtbl), plus a
     local-BFS routing attempt (the realistic mix of oracle bookkeeping
     and world queries);
   - trial-run: a whole [Trial.run] under the default (cached)
     representation — the end-to-end number the catalog feels.

   Results land in BENCH_percolation.json (schema
   bench_percolation/v3) so the perf trajectory is tracked in-repo.    *)

let perc_bench_seed = 0xB37CA5EL

let time_median ~reps f =
  ignore (Sys.opaque_identity (f ()));
  (* warmup *)
  let samples =
    Array.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (f ()));
        Unix.gettimeofday () -. t0)
  in
  Array.sort compare samples;
  samples.(Array.length samples / 2)

type perc_case = {
  case_name : string;
  graph : Topology.Graph.t;
  p : float;
  source : int;
  target : int;
  edges : int array Lazy.t;
      (* Flat [u0; v0; u1; v1; ...] — boxed (int * int) tuples would put
         a pointer chase in front of every probe and drown the store
         costs the kernel is meant to compare. *)
}

let edges_of graph =
  lazy
    (let out = ref [] in
     Topology.Graph.iter_edges graph (fun u v -> out := v :: u :: !out);
     Array.of_list (List.rev !out))

let perc_cases () =
  let case name graph p source target =
    { case_name = name; graph; p; source; target; edges = edges_of graph }
  in
  (* Sizes are picked so the per-world state (coin tables, probe memos,
     distance maps) is well past L2 on the lazy/Hashtbl reference path
     while staying far under {!Percolation.World.cache_gate}: the cached
     representation's point is its memory behaviour, which toy instances
     whose Hashtbls fit in cache understate. *)
  let hyper_n = 16 in
  let mesh_m = 150 in
  let gnp_n = 500 in
  let db_n = 17 in
  let hyper = topo "hypercube" ~size:hyper_n in
  let mesh = topo "mesh2" ~size:mesh_m in
  let gnp = topo "complete" ~size:gnp_n in
  let db = topo "de-bruijn" ~size:db_n in
  [
    (* Supercritical but sparse (mean open degree 2 of 16): the cached
       arena stores only open neighbors, while the lazy reference hashes
       a coin for every one of the 16 incident edges per expansion — the
       open-row compression that dense-graph/low-p regimes buy. *)
    case
      (Printf.sprintf "hypercube(n=%d)" hyper_n)
      hyper
      (2.0 /. float_of_int hyper_n)
      0
      (Topology.Hypercube.antipode ~n:hyper_n 0);
    case
      (Printf.sprintf "mesh2(m=%d)" mesh_m)
      mesh 0.7
      (Topology.Mesh.index ~m:mesh_m [| 10; 20 |])
      (Topology.Mesh.index ~m:mesh_m [| 130; 20 |]);
    case
      (Printf.sprintf "complete(n=%d)" gnp_n)
      gnp
      (3.0 /. float_of_int gnp_n)
      0 (gnp_n - 1);
    (* The low-fault routing regime (10% edge failures): almost every
       probe lands on an open edge, so both sides pay their
       reached-set/extension bookkeeping on nearly every memo hit —
       Hashtbl lookups on the lazy path against flat array reads on the
       cached one. *)
    case
      (Printf.sprintf "de-bruijn(n=%d)" db_n)
      db 0.9 1
      (db.Topology.Graph.vertex_count - 2);
  ]

let world_of case ~cache k =
  Percolation.World.create ~cache case.graph ~p:case.p
    ~seed:(Prng.Coin.derive perc_bench_seed k)

let reveal_kernel case ~worlds ~cache ~engine () =
  (* Four BFS passes per world — the Trial.run pattern (conditioning
     reveal, chemical distance, routing ground truth) revisits the same
     world's coins repeatedly, which is what the cache amortises. The
     engine is pinned explicitly so each timing measures one path:
     Table over lazy worlds is the historical reference, Arena and
     Bitset over cached worlds are the two production engines. *)
  let acc = ref 0 in
  for k = 1 to worlds do
    let world = world_of case ~cache k in
    (* Resident worlds are prefilled in production (worldpool/serve), so
       the cached engines are measured the same way: one sequential row
       sweep — timed here — instead of random-order fills during the
       first BFS. *)
    if cache then Percolation.World.prefill world;
    for _pass = 1 to 4 do
      let size, _ = Percolation.Reveal.cluster_size_via engine world case.source in
      acc := !acc + size
    done
  done;
  !acc

let oracle_kernel case ~worlds ~cache () =
  let acc = ref 0 in
  for k = 1 to worlds do
    let world = world_of case ~cache k in
    (* Unrestricted sweep over a pre-collected edge array: every edge
       probed once, then re-probed three more times (the memo path
       routers lean on). The array keeps edge enumeration out of the
       measurement. *)
    let oracle =
      Percolation.Oracle.create ~policy:Percolation.Oracle.Unrestricted world
        ~source:case.source
    in
    let edges = Lazy.force case.edges in
    let pairs = Array.length edges / 2 in
    for _pass = 1 to 4 do
      for i = 0 to pairs - 1 do
        ignore
          (Percolation.Oracle.probe oracle edges.(2 * i) edges.((2 * i) + 1))
      done
    done;
    acc := !acc + Percolation.Oracle.distinct_probes oracle
    (* The realistic reveal-then-route mix lives in [trial_kernel]; this
       kernel stays a pure probe sweep so the store representations are
       compared without identical router overhead diluting the ratio. *)
  done;
  !acc

let trial_kernel case ~trials () =
  let stream = Prng.Stream.create perc_bench_seed in
  let result =
    Experiments.Trial.run stream ~trials
      (Experiments.Trial.spec ~graph:case.graph ~p:case.p ~source:case.source
         ~target:case.target (fun _rand ~source:_ ~target:_ ->
           Routing.Local_bfs.router))
  in
  Stats.Censored.count result.Experiments.Trial.observations

type perc_timing = { lazy_ns : float; cached_ns : float }

(* Reveal additionally times the bitset engine, the third kernel beside
   the queue pair; lazy/cached keep their historical meaning (Table on
   a lazy world vs Arena on a cached one) so the regression history
   stays comparable across schema versions. *)
type reveal_timing = { reveal : perc_timing; bitset_ns : float }

let perc_speedup t = t.lazy_ns /. t.cached_ns
let bitset_speedup t = t.reveal.lazy_ns /. t.bitset_ns

let compare_paths ~reps kernel =
  let lazy_s = time_median ~reps (fun () -> kernel ~cache:false ()) in
  let cached_s = time_median ~reps (fun () -> kernel ~cache:true ()) in
  { lazy_ns = lazy_s *. 1e9; cached_ns = cached_s *. 1e9 }

let compare_reveal ~reps case ~worlds =
  let time engine ~cache =
    time_median ~reps (fun () -> reveal_kernel case ~worlds ~cache ~engine ())
    *. 1e9
  in
  {
    reveal =
      {
        lazy_ns = time Percolation.Reveal.Table ~cache:false;
        cached_ns = time Percolation.Reveal.Arena ~cache:true;
      };
    bitset_ns = time Percolation.Reveal.Bitset ~cache:true;
  }

(* Provenance for bench snapshots: where and when the numbers came
   from. Best-effort — a missing git (tarball build) yields null. *)
let git_commit () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | ic ->
      let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
      (match Unix.close_process_in ic with
      | Unix.WEXITED 0 -> (match line with Some "" -> None | l -> l)
      | _ -> None)
  | exception Unix.Unix_error _ -> None

let iso8601_utc () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* The churn stepper: every (edge, round) liveness query on a mesh
   under the E26-style renewal plan, fresh trajectories per iteration.
   This is the per-round cost a churned netsim run adds on top of the
   engine, so it gets its own history-tracked row. *)
let churn_step_kernel ~rounds graph =
  let plan = Netsim.Churn.make ~fail:0.05 ~repair:0.3 ~seed:perc_bench_seed () in
  let edge_count = Topology.Graph.edge_count graph in
  fun () ->
    let state = Netsim.Churn.instantiate plan ~world_seed:1L in
    let up = ref 0 in
    for round = 1 to rounds do
      for edge = 0 to edge_count - 1 do
        if Netsim.Churn.link_up state ~edge ~round then incr up
      done
    done;
    !up

let perc_json ~mode ~worlds ~churn_step results =
  let buffer = Buffer.create 2048 in
  let timing_fields t =
    Printf.sprintf "{\"lazy_ns\": %.0f, \"cached_ns\": %.0f, \"speedup\": %.2f}"
      t.lazy_ns t.cached_ns (perc_speedup t)
  in
  let reveal_fields r =
    Printf.sprintf
      "{\"lazy_ns\": %.0f, \"cached_ns\": %.0f, \"speedup\": %.2f, \
       \"bitset_ns\": %.0f, \"bitset_speedup\": %.2f}"
      r.reveal.lazy_ns r.reveal.cached_ns (perc_speedup r.reveal) r.bitset_ns
      (bitset_speedup r)
  in
  Buffer.add_string buffer "{\n";
  Buffer.add_string buffer "  \"schema\": \"bench_percolation/v3\",\n";
  Buffer.add_string buffer
    (Printf.sprintf "  \"commit\": %s,\n"
       (match git_commit () with
       | Some c -> Printf.sprintf "%S" c
       | None -> "null"));
  Buffer.add_string buffer
    (Printf.sprintf "  \"timestamp\": %S,\n" (iso8601_utc ()));
  Buffer.add_string buffer (Printf.sprintf "  \"mode\": \"%s\",\n" mode);
  Buffer.add_string buffer (Printf.sprintf "  \"worlds_per_kernel\": %d,\n" worlds);
  Buffer.add_string buffer "  \"topologies\": [\n";
  List.iteri
    (fun _i (case, cached, reveal, oracle, trial_ns, trials) ->
      Buffer.add_string buffer
        (Printf.sprintf
           "    {\"name\": %S, \"cached\": %b,\n\
           \     \"reveal_bfs\": %s,\n\
           \     \"oracle_probe\": %s,\n\
           \     \"trial_run\": {\"ns\": %.0f, \"trials\": %d}}%s\n"
           case.case_name cached (reveal_fields reveal) (timing_fields oracle)
           trial_ns trials ","))
    results;
  (let churn_ns, churn_queries = churn_step in
   Buffer.add_string buffer
     (Printf.sprintf
        "    {\"name\": \"churn-stepper\", \"churn_step\": {\"ns\": %.0f, \
         \"queries\": %d}}\n"
        churn_ns churn_queries));
  Buffer.add_string buffer "  ]\n}\n";
  Buffer.contents buffer

let report_percolation ~quick ~out =
  let worlds = if quick then 10 else 50 in
  let reps = if quick then 5 else 11 in
  let trials = if quick then 5 else 20 in
  Printf.printf "== percolation hot path (cached vs lazy worlds, %s mode) ==\n"
    (if quick then "quick" else "full");
  let results =
    List.map
      (fun case ->
        let cached =
          Percolation.World.cached
            (Percolation.World.create case.graph ~p:case.p ~seed:1L)
        in
        let reveal = compare_reveal ~reps case ~worlds in
        let oracle = compare_paths ~reps (fun ~cache -> oracle_kernel case ~worlds ~cache) in
        let trial_ns = time_median ~reps:3 (trial_kernel case ~trials) *. 1e9 in
        Printf.printf
          "%-18s reveal-BFS %6.2fx (bitset %6.2fx)   oracle-probe %6.2fx   \
           trial %6.2f ms\n\
           %!"
          case.case_name (perc_speedup reveal.reveal) (bitset_speedup reveal)
          (perc_speedup oracle) (trial_ns /. 1e6);
        (case, cached, reveal, oracle, trial_ns, trials))
      (perc_cases ())
  in
  let churn_rounds = if quick then 50 else 200 in
  let churn_graph = topo "mesh2" ~size:60 in
  let churn_ns =
    time_median ~reps (churn_step_kernel ~rounds:churn_rounds churn_graph) *. 1e9
  in
  let churn_queries = churn_rounds * Topology.Graph.edge_count churn_graph in
  Printf.printf "%-18s churn-step %6.1f ns/query (%d queries)\n%!" "churn-stepper"
    (churn_ns /. float_of_int churn_queries)
    churn_queries;
  if not (Float.is_finite churn_ns && churn_ns > 0.0) then
    failwith "bench: bad timing for churn-stepper";
  let json =
    perc_json
      ~mode:(if quick then "quick" else "full")
      ~worlds
      ~churn_step:(churn_ns, churn_queries)
      results
  in
  (* Self-validate before writing: every timing positive and finite. *)
  List.iter
    (fun (case, _, reveal, oracle, trial_ns, _) ->
      let ok t =
        Float.is_finite t.lazy_ns && Float.is_finite t.cached_ns && t.lazy_ns > 0.0
        && t.cached_ns > 0.0
      in
      if
        not
          (ok reveal.reveal && ok oracle
          && Float.is_finite reveal.bitset_ns
          && reveal.bitset_ns > 0.0
          && Float.is_finite trial_ns && trial_ns > 0.0)
      then failwith (Printf.sprintf "bench: bad timing for %s" case.case_name))
    results;
  let channel = open_out out in
  output_string channel json;
  close_out channel;
  Printf.printf "wrote %s\n\n" out

(* The --kernels leg: the three reveal engines head-to-head per
   topology, plus the oracle pair — the quick view of where the
   word-level kernels stand without running the full percolation
   report. *)
let report_kernels ~quick =
  let worlds = if quick then 10 else 50 in
  let reps = if quick then 5 else 11 in
  Printf.printf
    "== reveal/oracle kernels (table-on-lazy vs arena vs bitset, %s mode) ==\n"
    (if quick then "quick" else "full");
  List.iter
    (fun case ->
      let r = compare_reveal ~reps case ~worlds in
      let o = compare_paths ~reps (fun ~cache -> oracle_kernel case ~worlds ~cache) in
      Printf.printf
        "%-18s reveal  table %8.0f us  arena %8.0f us (%5.2fx)  bitset %8.0f \
         us (%5.2fx)\n\
         %-18s oracle  lazy  %8.0f us  flat  %8.0f us (%5.2fx)\n\
         %!"
        case.case_name (r.reveal.lazy_ns /. 1e3) (r.reveal.cached_ns /. 1e3)
        (perc_speedup r.reveal) (r.bitset_ns /. 1e3) (bitset_speedup r) ""
        (o.lazy_ns /. 1e3) (o.cached_ns /. 1e3) (perc_speedup o))
    (perc_cases ())

(* Append the snapshot at [out] to a JSONL history file, flagging
   cached-path timings more than 15% slower than the trailing snapshot
   of the same mode. Timing noise makes this advisory: flags print, the
   exit code stays 0. *)
let append_history ~out ~history =
  let contents = In_channel.with_open_text out In_channel.input_all in
  match Result.bind (Obs.Json.of_string contents) Obs.Bench_history.of_json with
  | Error message -> Printf.eprintf "bench history: %s is unusable: %s\n" out message
  | Ok current ->
      let past =
        if Sys.file_exists history then
          let lines =
            String.split_on_char '\n'
              (In_channel.with_open_text history In_channel.input_all)
          in
          match Obs.Bench_history.parse_lines lines with
          | Ok snapshots -> snapshots
          | Error message ->
              Printf.eprintf
                "bench history: ignoring unreadable %s (%s)\n" history message;
              []
        else []
      in
      (match Obs.Bench_history.trailing_baseline ~mode:current.mode past with
      | None ->
          Printf.printf "bench history: no prior %s-mode snapshot to compare\n"
            current.Obs.Bench_history.mode
      | Some baseline ->
          let slow = Obs.Bench_history.regressions ~baseline current in
          if slow = [] then
            Printf.printf
              "bench history: no >15%% cached-path slowdowns vs %s\n"
              (Option.value baseline.Obs.Bench_history.commit ~default:"(uncommitted)")
          else
            List.iter
              (fun r ->
                Printf.printf
                  "BENCH SLOWDOWN %s: %.2fx (%.0f ns -> %.0f ns vs %s)\n"
                  r.Obs.Bench_history.key r.Obs.Bench_history.ratio
                  r.Obs.Bench_history.baseline_ns r.Obs.Bench_history.current_ns
                  (Option.value baseline.Obs.Bench_history.commit
                     ~default:"(uncommitted)"))
              slow);
      (* Atomic append (temp + rename): a kill mid-append must corrupt
         neither the existing history nor the new line, or every later
         bench run would drop the whole file as unreadable. *)
      (match Obs.Json.of_string contents with
      | Ok json ->
          Obs.Atomic_file.append_line ~path:history
            ~line:(Obs.Json.to_string json ^ "\n")
      | Error _ -> ());
      Printf.printf "appended snapshot to %s (%d entries)\n" history
        (List.length past + 1)

(* ------------------------------------------------------------------ *)
(* Parallel engine: wall-clock of the full quick catalog at jobs = 1
   versus jobs = N, plus a byte-identity check on the rendered reports.
   Speedup is bounded by the machine's core count — on a single-core
   host the two times coincide.                                        *)

let timed_run_all ~jobs =
  Engine_par.Pool.set_default_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Engine_par.Pool.set_default_jobs 1)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let reports = Experiments.Catalog.run_all ~quick:true ~jobs ~seed:0x5EEDL () in
      let elapsed = Unix.gettimeofday () -. t0 in
      (elapsed, String.concat "\n" (List.map Experiments.Report.render reports)))

let report_parallel_speedup () =
  let jobs = Stdlib.max 2 (Engine_par.Pool.recommended_jobs ()) in
  Printf.printf "== parallel trial engine (quick catalog, %d cores recommended) ==\n"
    (Engine_par.Pool.recommended_jobs ());
  let sequential, reference = timed_run_all ~jobs:1 in
  let parallel, rendered = timed_run_all ~jobs in
  Printf.printf "jobs=1: %6.2f s\njobs=%d: %6.2f s\nspeedup: %.2fx\n" sequential jobs
    parallel (sequential /. parallel);
  Printf.printf "reports byte-identical across job counts: %b\n\n" (rendered = reference)

(* ------------------------------------------------------------------ *)
(* Observability: profiling spans and the zero-cost-when-off guard.    *)

let report_profile ?profile_out () =
  Obs.Timing.reset ();
  Obs.Timing.enable ();
  let t0 = Unix.gettimeofday () in
  let reports = Experiments.Catalog.run_all ~quick:true ~seed:0x5EEDL () in
  let elapsed = Unix.gettimeofday () -. t0 in
  Obs.Timing.disable ();
  Printf.printf
    "== profiling spans (quick catalog, %d reports, %.2f s wall) ==\n"
    (List.length reports) elapsed;
  Printf.printf "%s\n"
    (Format.asprintf "%a" Obs.Timing.pp_report (Obs.Timing.report ()));
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (Obs.Timing.profile_json ());
      close_out oc;
      Printf.printf "profile/v1 written to %s\n" path)
    profile_out

(* The zero-cost-when-off contract, checked empirically: the
   oracle-probe kernel is timed with instrumentation disabled, then an
   instrumented run (tracing into a null sink, metrics into a scratch
   registry) exercises every hook, then the kernel is timed disabled
   again. The two disabled timings must agree to within 5% — a leak of
   instrumentation state (a ring left installed, a flag left set) shows
   up as a persistent slowdown. A small absolute floor keeps the check
   meaningful on noisy CI machines. *)
let obs_guard () =
  (* A small fixed case, not the first (big) percolation case: the
     guard compares two timings of identical code, so what it needs is
     a kernel stable across the ~45 repetitions — the cache-footprint
     cases drift with thermal/frequency state over that window, and a
     constant instrumentation leak shows up as a larger fraction of a
     small kernel anyway. *)
  let hyper_n = 10 in
  let graph = topo "hypercube" ~size:hyper_n in
  let case =
    {
      case_name = Printf.sprintf "hypercube(n=%d)" hyper_n;
      graph;
      p = float_of_int hyper_n ** -0.3;
      source = 0;
      target = Topology.Hypercube.antipode ~n:hyper_n 0;
      edges = edges_of graph;
    }
  in
  let worlds = 10 in
  let kernel () = oracle_kernel case ~worlds ~cache:true () in
  (* Best-of-N, not median: the guard compares two timings of the same
     code, so any difference is pure noise — and the minimum is the
     estimator least contaminated by scheduler interference. *)
  let time_best f =
    ignore (Sys.opaque_identity (f ()));
    let best = ref infinity in
    for _ = 1 to 15 do
      let t0 = Unix.gettimeofday () in
      ignore (Sys.opaque_identity (f ()));
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  Printf.printf "== obs guard (oracle-probe kernel, %s) ==\n" case.case_name;
  let disabled_before = time_best kernel in
  Obs.Trace.enable ~sink:(fun _ -> ());
  Obs.Metrics.enable ();
  let registry = Obs.Metrics.create () in
  let (_ : int), (_ : Obs.Trace.record) =
    Obs.Trace.capture ~index:1 (fun () ->
        Obs.Metrics.with_ambient registry kernel)
  in
  Obs.Trace.disable ();
  Obs.Metrics.disable ();
  let probes = Obs.Metrics.counter (Obs.Metrics.snapshot registry) "oracle.probe.fresh" in
  if probes = 0 then begin
    print_endline "obs-guard: FAIL — instrumented run recorded no probes";
    1
  end
  else begin
    let disabled_after = time_best kernel in
    let delta = abs_float (disabled_after -. disabled_before) in
    let relative = delta /. disabled_before in
    Printf.printf
      "disabled before: %.3f ms   disabled after: %.3f ms   delta: %.1f%%\n"
      (disabled_before *. 1e3) (disabled_after *. 1e3) (relative *. 100.0);
    if relative < 0.05 || delta < 0.002 then begin
      print_endline "obs-guard: OK — instrumentation leaves the disabled path alone";
      0
    end
    else begin
      print_endline
        "obs-guard: FAIL — disabled-path cost shifted by more than 5% after an \
         instrumented run";
      1
    end
  end

(* A real single-pass parser (no cmdliner in the bench image): every
   flag is matched exactly, value flags consume the next word, and an
   unknown argument is a usage error — unlike the old [Array.exists]
   scans, a typo can no longer silently run the default suite. *)
type bench_args = {
  mutable full : bool;
  mutable quick : bool;
  mutable tables_only : bool;
  mutable perc_only : bool;
  mutable kernels : bool;
  mutable obs_guard : bool;
  mutable profile : bool;
  mutable profile_out : string option;
  mutable out : string;
  mutable history : string option;
}

let usage_lines =
  [
    "usage: bench [--full|--quick] [--tables-only] [--percolation-only]";
    "             [--kernels] [--obs-guard] [--profile] [--profile-out FILE]";
    "             [--out FILE] [--history FILE]";
    "";
    "  --full              full-size tables and percolation cases";
    "  --quick             smoke-test sizes";
    "  --tables-only       skip the bechamel micro-benchmarks";
    "  --percolation-only  only the percolation kernel comparison";
    "  --kernels           only the reveal/oracle kernel micro-table";
    "  --obs-guard         check instrumentation costs nothing when off";
    "  --profile           profile the quick catalog, print the span table";
    "  --profile-out FILE  also write the profile/v1 span tree to FILE";
    "  --out FILE          percolation snapshot path (default BENCH_percolation.json)";
    "  --history FILE      append the snapshot to a JSONL history and flag regressions";
  ]

let parse_args () =
  let a =
    {
      full = false;
      quick = false;
      tables_only = false;
      perc_only = false;
      kernels = false;
      obs_guard = false;
      profile = false;
      profile_out = None;
      out = "BENCH_percolation.json";
      history = None;
    }
  in
  let argc = Array.length Sys.argv in
  let die message =
    Printf.eprintf "bench: %s\n" message;
    List.iter prerr_endline usage_lines;
    exit 2
  in
  let rec loop i =
    if i < argc then
      let value name =
        if i + 1 >= argc then die (Printf.sprintf "%s needs a value" name)
        else Sys.argv.(i + 1)
      in
      match Sys.argv.(i) with
      | "--full" ->
          a.full <- true;
          loop (i + 1)
      | "--quick" ->
          a.quick <- true;
          loop (i + 1)
      | "--tables-only" ->
          a.tables_only <- true;
          loop (i + 1)
      | "--percolation-only" ->
          a.perc_only <- true;
          loop (i + 1)
      | "--kernels" ->
          a.kernels <- true;
          loop (i + 1)
      | "--obs-guard" ->
          a.obs_guard <- true;
          loop (i + 1)
      | "--profile" ->
          a.profile <- true;
          loop (i + 1)
      | "--profile-out" ->
          a.profile_out <- Some (value "--profile-out");
          loop (i + 2)
      | "--out" ->
          a.out <- value "--out";
          loop (i + 2)
      | "--history" ->
          a.history <- Some (value "--history");
          loop (i + 2)
      | "--help" | "-h" ->
          List.iter print_endline usage_lines;
          exit 0
      | arg -> die (Printf.sprintf "unknown argument %S" arg)
  in
  loop 1;
  a

let () =
  let args = parse_args () in
  if args.obs_guard then exit (obs_guard ());
  if args.profile || args.profile_out <> None then begin
    report_profile ?profile_out:args.profile_out ();
    exit 0
  end;
  let full = args.full in
  let skip_micro = args.tables_only in
  let quick_flag = args.quick in
  let out = args.out in
  let maybe_history () =
    Option.iter (fun history -> append_history ~out ~history) args.history
  in
  if args.kernels then begin
    report_kernels ~quick:(quick_flag || not full);
    exit 0
  end;
  if args.perc_only then begin
    report_percolation ~quick:quick_flag ~out;
    maybe_history ();
    exit 0
  end;
  if not skip_micro then begin
    print_endline "== bechamel micro-benchmarks (one kernel per experiment) ==";
    report_benchmarks (benchmark ());
    print_newline ()
  end;
  if not skip_micro then report_parallel_speedup ();
  if not skip_micro then begin
    report_percolation ~quick:(not full) ~out;
    maybe_history ()
  end;
  Printf.printf "== experiment tables (%s mode) ==\n\n" (if full then "full" else "quick");
  let reports = Experiments.Catalog.run_all ~quick:(not full) ~seed:0x5EEDL () in
  List.iter
    (fun r ->
      Experiments.Report.print r;
      print_newline ())
    reports
