(* faultroute — command-line front end.

   Subcommands:
     list                      enumerate experiments, topologies, routers
     exp <id> [--quick]        run one experiment, print its report
     all [--quick]             run every experiment
     check [--quick]           evaluate machine-checked claims vs a baseline
     route <topology> ...      one routing attempt with a chosen router
     census <topology> ...     component census of one percolated world
     threshold <topology> ...  bisect a critical probability
     serve --manifest <file>   resident-world streamed JSONL query service
     evidence <file>           validate an evidence/v1 summary
     trace <file>              replay a trace/v1 JSONL file and audit it

   Observability: [--trace FILE] streams probe-level trace/v1 JSONL,
   [--metrics-out FILE] writes the merged metrics/v1 counters, and
   [--strict-shortfall] turns under-sampled reports into exit code 3.
   All instrumentation is off (and free) unless a flag asks for it.
   These recur across subcommands, so they travel as one [common]
   record built by one shared cmdliner term (same flag names, docs and
   defaults everywhere); the fault-tolerance flags travel likewise as a
   [supervision] record.

   Fault tolerance (exp/all/check): [--retries N] and
   [--chunk-deadline S] arm the supervised worker pool, [--inject SPEC]
   / [--fault-plan FILE] install a deterministic fault plan, and
   [--checkpoint DIR] journals completed chunks ([--resume] restores
   them). Recovered faults are reported on stderr as faults/v1;
   unrecoverable ones (quarantined chunks, failed experiments) exit 5.

   Exit codes are centralised in [Verdict.Exit_code]; see the README
   table.

   Topologies and routers are resolved through their registries
   ([Topology.Registry], [Routing.Registry]); this file contains no
   name-matching of its own. A topology spec is NAME or NAME:SIZE. *)

let default_seed = 0x5EEDL

(* The flags shared by exp/all/check/route/simulate/serve, as data:
   one record, one term (see [common_term] below), no per-subcommand
   duplicates to drift apart. *)
type common = {
  seed : int64;
  jobs : int;
  trace : string option;
  metrics_out : string option;
  telemetry : bool;
  telemetry_out : string option;
  profile_out : string option;
  ledger : string option;
  strict : bool;
}

(* The fault-tolerance flags of the campaign subcommands
   (exp/all/check), likewise unified. *)
type supervision = {
  inject : string option;
  fault_plan : string option;
  checkpoint : string option;
  resume : bool;
  retries : int option;
  deadline : float option;
}

let with_instance spec_string ~size stream k =
  match Topology.Registry.of_spec spec_string with
  | Error message ->
      prerr_endline message;
      1
  | Ok spec -> (
      match Topology.Registry.build spec ~default_size:size stream with
      | instance -> k instance
      | exception Invalid_argument message ->
          prerr_endline message;
          1)

(* ------------------------------------------------------------------ *)
(* Observability plumbing: arm tracing/metrics around a subcommand
   body, then flush the sinks whatever happens.                        *)

let with_observability ~trace ~metrics_out ~telemetry ~telemetry_out
    ~profile_out k =
  let trace_channel =
    Option.map
      (fun path ->
        let oc = open_out path in
        Obs.Trace.enable ~sink:(fun s -> output_string oc s);
        oc)
      trace
  in
  if Option.is_some metrics_out then begin
    Obs.Metrics.reset_global ();
    Obs.Metrics.enable ()
  end;
  let telemetered = telemetry || Option.is_some telemetry_out in
  let telemetry_channel =
    if not telemetered then None
    else begin
      Obs.Telemetry.reset ();
      match telemetry_out with
      | None ->
          (* Default sink: heartbeat lines on stderr, out of the way of
             answers and reports on stdout. *)
          Obs.Telemetry.enable ();
          None
      | Some path ->
          let oc = open_out path in
          Obs.Telemetry.set_sink (fun s ->
              output_string oc s;
              flush oc);
          Obs.Telemetry.enable ();
          Some oc
    end
  in
  if Option.is_some profile_out then begin
    Obs.Timing.reset ();
    Obs.Timing.enable ()
  end;
  Fun.protect
    ~finally:(fun () ->
      Option.iter
        (fun oc ->
          Obs.Trace.disable ();
          close_out oc)
        trace_channel;
      Option.iter
        (fun path ->
          Obs.Metrics.disable ();
          let oc = open_out path in
          output_string oc (Obs.Metrics.to_json (Obs.Metrics.global_snapshot ()));
          close_out oc)
        metrics_out;
      if telemetered then begin
        (* One final forced snapshot so even a subcommand that never
           heartbeats leaves a complete telemetry/v1 artifact. *)
        Obs.Telemetry.heartbeat ();
        Obs.Telemetry.disable ();
        Obs.Telemetry.set_sink (fun s ->
            output_string stderr s;
            flush stderr);
        Option.iter close_out telemetry_channel
      end;
      Option.iter
        (fun path ->
          Obs.Timing.disable ();
          let oc = open_out path in
          output_string oc (Obs.Timing.profile_json ());
          close_out oc)
        profile_out)
    k

(* Arm the run ledger when [--ledger] asked for one: the record binds
   this invocation (subcommand, argv digest, seed, jobs) to every
   artifact the common flags will write. Digests are taken at process
   exit, after with_observability's finally has flushed and closed the
   sinks, so they cover the final bytes. *)
let arm_ledger ~cmd common =
  Option.iter
    (fun path ->
      Obs.Ledger.arm ~path ~subcommand:cmd
        ~config_digest:
          (Obs.Ledger.digest_string
             (String.concat "\x00" (Array.to_list Sys.argv)))
        ~seed:common.seed ~jobs:common.jobs;
      List.iter
        (Option.iter Obs.Ledger.note_artifact)
        [
          common.trace; common.metrics_out; common.telemetry_out;
          common.profile_out;
        ])
    common.ledger

(* Arm everything the [common] record asks for around a subcommand
   body: the ambient job count, the run ledger, then
   tracing/metrics/telemetry. *)
let with_common ~cmd common k =
  Engine_par.Pool.set_default_jobs common.jobs;
  arm_ledger ~cmd common;
  with_observability ~trace:common.trace ~metrics_out:common.metrics_out
    ~telemetry:common.telemetry ~telemetry_out:common.telemetry_out
    ~profile_out:common.profile_out k

let strict_shortfall_exit ~strict reports =
  let short = List.filter Experiments.Report.has_shortfall reports in
  if strict && short <> [] then begin
    Printf.eprintf
      "strict-shortfall: %d report(s) under-sampled (%s): %s\n"
      (List.length short) Experiments.Report.shortfall_marker
      (String.concat ", " (List.map (fun r -> r.Experiments.Report.id) short));
    Verdict.Exit_code.strict_shortfall
  end
  else Verdict.Exit_code.ok

(* ------------------------------------------------------------------ *)
(* Supervision plumbing: resolve the fault plan, arm the supervisor
   policy and the checkpoint around a campaign body, then surface the
   fault summary. Recovered faults go to stderr only — stdout must stay
   byte-identical to a fault-free run when every chunk eventually
   succeeded. Unrecoverable losses (quarantined chunks, failed
   experiments) escalate the exit code to 5. *)

let with_supervision { inject; fault_plan; checkpoint; resume; retries; deadline }
    k =
  let plan =
    match (inject, fault_plan) with
    | Some spec, _ -> Result.map Option.some (Faultsim.Plan.of_spec spec)
    | None, Some path -> Result.map Option.some (Faultsim.Plan.load path)
    | None, None -> Ok None
  in
  match plan with
  | Error message ->
      prerr_endline message;
      Verdict.Exit_code.error
  | Ok plan ->
      let supervised =
        plan <> None || checkpoint <> None || retries <> None
        || deadline <> None
      in
      if not supervised then k ()
      else begin
        let base = Engine_par.Supervisor.default_policy in
        let policy =
          {
            base with
            Engine_par.Supervisor.max_attempts =
              Option.value retries
                ~default:base.Engine_par.Supervisor.max_attempts;
            deadline_s = deadline;
          }
        in
        let checkpoint_ready =
          match checkpoint with
          | None -> Ok ()
          | Some dir ->
              Option.iter
                (fun p ->
                  Experiments.Checkpoint.set_kill_after
                    (Faultsim.Plan.die_after_chunks p))
                plan;
              Experiments.Checkpoint.configure ~dir ~resume
        in
        match checkpoint_ready with
        | Error message ->
            Printf.eprintf "checkpoint: %s\n" message;
            Verdict.Exit_code.error
        | Ok () -> (
            Engine_par.Supervisor.reset_global ();
            Engine_par.Supervisor.arm policy;
            Faultsim.Plan.set_ambient plan;
            (* SIGINT: the journal is flushed line by line, so a clean
               close is all an interrupted campaign needs to resume. *)
            let previous_sigint =
              Sys.signal Sys.sigint
                (Sys.Signal_handle
                   (fun _ ->
                     Experiments.Checkpoint.deconfigure ();
                     exit 130))
            in
            let code =
              Fun.protect
                ~finally:(fun () ->
                  Sys.set_signal Sys.sigint previous_sigint;
                  if Obs.Metrics.on () then begin
                    Obs.Metrics.absorb
                      (Engine_par.Supervisor.metrics_snapshot ());
                    if Experiments.Checkpoint.active () then
                      Obs.Metrics.absorb
                        (Experiments.Checkpoint.metrics_snapshot ())
                  end;
                  Experiments.Checkpoint.deconfigure ();
                  Faultsim.Plan.set_ambient None;
                  Engine_par.Supervisor.disarm ())
                k
            in
            let summary : Engine_par.Supervisor.summary =
              Engine_par.Supervisor.global_summary ()
            in
            if
              summary.retries > 0
              || summary.failures <> []
              || summary.quarantined <> []
              || summary.failed_units <> []
            then
              Printf.eprintf "%s\n"
                (Obs.Json.to_string
                   (Engine_par.Supervisor.summary_json summary));
            if Engine_par.Supervisor.unrecoverable summary then begin
              Printf.eprintf
                "unrecoverable faults: %d chunk(s) quarantined, %d \
                 experiment(s) failed\n"
                (List.length summary.quarantined)
                (List.length summary.failed_units);
              Verdict.Exit_code.worst
                [ code; Verdict.Exit_code.unrecoverable_faults ]
            end
            else code)
      end

(* ------------------------------------------------------------------ *)
(* Subcommand implementations.                                         *)

let cmd_list () =
  print_endline "experiments:";
  List.iter
    (fun e ->
      Printf.printf "  %-4s %s\n" e.Experiments.Catalog.id e.Experiments.Catalog.title)
    Experiments.Catalog.all;
  print_endline "topologies (spec: NAME or NAME:SIZE):";
  List.iter
    (fun e ->
      Printf.printf "  %-17s %s\n" e.Topology.Registry.name e.Topology.Registry.doc)
    Topology.Registry.entries;
  print_endline "routers:";
  List.iter
    (fun e ->
      Printf.printf "  %-17s %s\n" e.Routing.Registry.name e.Routing.Registry.doc)
    Routing.Registry.entries;
  0

let cmd_exp id quick csv common supervision =
  match Experiments.Catalog.find id with
  | None ->
      Printf.eprintf "no experiment %S; see `faultroute list`\n" id;
      1
  | Some e ->
      with_common ~cmd:"exp" common @@ fun () ->
      with_supervision supervision @@ fun () ->
      let stream = Prng.Stream.create common.seed in
      let report = e.Experiments.Catalog.run ~quick stream in
      if csv then
        List.iter
          (fun (caption, body) -> Printf.printf "# %s\n%s" caption body)
          (Experiments.Report.render_csv report)
      else Experiments.Report.print report;
      strict_shortfall_exit ~strict:common.strict [ report ]

let cmd_all quick common supervision =
  with_common ~cmd:"all" common @@ fun () ->
  with_supervision supervision @@ fun () ->
  let reports =
    Experiments.Catalog.run_all ~quick ~jobs:common.jobs ~seed:common.seed ()
  in
  List.iter
    (fun r ->
      Experiments.Report.print r;
      print_newline ())
    reports;
  strict_shortfall_exit ~strict:common.strict reports

let default_baseline_path ~quick =
  if quick then "verdicts/baseline.json" else "verdicts/baseline-full.json"

(* Load evidence/v1 files named by [check --evidence] and turn each
   into its machine-checkable claims; a file that fails to load or
   validate is itself a failed check. *)
let evidence_claims paths =
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | path :: rest -> (
        match Serve.Evidence.load path with
        | Error message -> Error (Printf.sprintf "%s: %s" path message)
        | Ok evidence -> (
            match Serve.Evidence.validate evidence with
            | Error message -> Error (Printf.sprintf "%s: %s" path message)
            | Ok () -> collect (Serve.Evidence.claims evidence @ acc) rest))
  in
  collect [] paths

let cmd_check quick baseline_path out update evidence_files common supervision =
  Engine_par.Pool.set_default_jobs common.jobs;
  (* check bypasses with_common (no observability sinks), but still
     ledgers its invocation and the verdict file it writes. *)
  arm_ledger ~cmd:"check" common;
  Option.iter Obs.Ledger.note_artifact out;
  let seed = common.seed and jobs = common.jobs in
  let mode = if quick then "quick" else "full" in
  let path = Option.value baseline_path ~default:(default_baseline_path ~quick) in
  match evidence_claims evidence_files with
  | Error message ->
      Printf.eprintf "check: evidence %s\n" message;
      Verdict.Exit_code.claim_fail
  | Ok evidence_claims ->
  with_supervision supervision
  @@ fun () ->
  let reports = Experiments.Catalog.run_all ~quick ~jobs ~seed () in
  let claims =
    List.concat_map (fun r -> r.Experiments.Report.claims) reports
    @ evidence_claims
  in
  let baseline =
    if update then None
    else
      match Verdict.Baseline.load path with
      | Ok b ->
          if b.Verdict.Baseline.mode <> mode || b.Verdict.Baseline.seed <> seed
          then begin
            Printf.eprintf
              "check: baseline %s is for (mode %s, seed %Ld), this run is \
               (mode %s, seed %Ld); ignoring it\n"
              path b.Verdict.Baseline.mode b.Verdict.Baseline.seed mode seed;
            None
          end
          else Some b
      | Error message ->
          Printf.eprintf "check: no usable baseline at %s (%s); evaluating \
                          claims without drift detection\n"
            path message;
          None
  in
  let verdict = Verdict.Engine.evaluate ~mode ~seed ?baseline claims in
  print_string (Verdict.Engine.render verdict);
  Option.iter
    (fun out_path ->
      let oc = open_out out_path in
      output_string oc (Obs.Json.to_string (Verdict.Engine.to_json verdict));
      output_char oc '\n';
      close_out oc)
    out;
  let shortfall = strict_shortfall_exit ~strict:common.strict reports in
  let code = Verdict.Engine.exit_code verdict in
  if update then
    if code = Verdict.Exit_code.claim_fail then begin
      prerr_endline "check: refusing to --update a baseline from failing claims";
      Verdict.Exit_code.claim_fail
    end
    else begin
      (* Baseline.save creates missing parent directories and writes
         atomically, so --update works on a fresh clone where the
         verdicts/ tree does not exist yet. *)
      Verdict.Baseline.save path (Verdict.Engine.baseline verdict);
      Printf.printf "baseline written: %s (%d claims)\n" path
        (List.length claims);
      shortfall
    end
  else if code = Verdict.Exit_code.claim_fail then code
  else if shortfall <> Verdict.Exit_code.ok then shortfall
  else code

let cmd_route topology size p source target router_name budget common =
  let seed = common.seed in
  let stream = Prng.Stream.create seed in
  with_instance topology ~size (Prng.Stream.split stream 0) @@ fun instance ->
  let graph = instance.Topology.Registry.graph in
  let source = Option.value source ~default:0 in
  let target = Option.value target ~default:(graph.Topology.Graph.vertex_count - 1) in
  let router =
    Result.bind (Routing.Registry.of_spec router_name) (fun entry ->
        entry.Routing.Registry.build ~instance ~source ~target
          (Prng.Stream.split stream 1))
  in
  match router with
  | Error message ->
      prerr_endline message;
      1
  | Ok router ->
      with_common ~cmd:"route" common @@ fun () ->
      (* The world's seed must come from its own split of the root
         stream, not the raw CLI seed: splits 0 and 1 already feed
         topology and router randomness, and reusing the root seed for
         the edge coins would correlate router coin draws with edge
         states (the same discipline as Trial.run_attempt). *)
      let world_seed = Prng.Stream.seed (Prng.Stream.split stream 2) in
      let world = Percolation.World.create graph ~p ~seed:world_seed in
      let registry = if Obs.Metrics.on () then Some (Obs.Metrics.create ()) else None in
      let compute () =
        let traced = Obs.Trace.on () in
        if traced then Obs.Trace.emit (Obs.Trace.Attempt_start { index = 1 });
        let ground_truth = Percolation.Reveal.connected world source target in
        let outcome = Routing.Router.run ?budget router world ~source ~target in
        (if traced then
           match ground_truth with
           | Percolation.Reveal.Connected d ->
               Obs.Trace.emit
                 (Obs.Trace.Accept
                    { distance = d; probes = Routing.Outcome.probes outcome })
           | Percolation.Reveal.Disconnected ->
               Obs.Trace.emit (Obs.Trace.Reject { reason = Obs.Trace.Disconnected })
           | Percolation.Reveal.Unknown ->
               Obs.Trace.emit (Obs.Trace.Reject { reason = Obs.Trace.Reveal_limit }));
        (ground_truth, outcome)
      in
      let with_metrics f =
        match registry with Some r -> Obs.Metrics.with_ambient r f | None -> f ()
      in
      let ground_truth, outcome =
        if Obs.Trace.on () then begin
          let result, record =
            Obs.Trace.capture ~index:1 (fun () -> with_metrics compute)
          in
          let buffer = Buffer.create 1024 in
          Buffer.add_string buffer
            (Obs.Trace.header_line
               [
                 ("graph", Obs.Json.String graph.Topology.Graph.name);
                 ("p", Obs.Json.Float p);
                 ("source", Obs.Json.Int source);
                 ("target", Obs.Json.Int target);
                 ("router", Obs.Json.String router.Routing.Router.name);
                 ( "budget",
                   match budget with
                   | Some b -> Obs.Json.Int b
                   | None -> Obs.Json.Null );
                 ("trials", Obs.Json.Int 1);
                 ("max_attempts", Obs.Json.Int 1);
               ]);
          List.iter (Buffer.add_string buffer) (Obs.Trace.record_lines record);
          let accepted =
            match fst result with Percolation.Reveal.Connected _ -> 1 | _ -> 0
          in
          Buffer.add_string buffer (Obs.Trace.end_line ~attempts:1 ~accepted);
          Obs.Trace.write_line (Buffer.contents buffer);
          result
        end
        else with_metrics compute
      in
      Option.iter (fun r -> Obs.Metrics.absorb (Obs.Metrics.snapshot r)) registry;
      Printf.printf "world: %s, p = %.4f, seed = %Ld\n" graph.Topology.Graph.name p seed;
      Printf.printf "pair: %d -> %d\n" source target;
      (match ground_truth with
      | Percolation.Reveal.Connected d ->
          Printf.printf "ground truth: connected, percolation distance %d\n" d
      | Percolation.Reveal.Disconnected -> print_endline "ground truth: disconnected"
      | Percolation.Reveal.Unknown -> print_endline "ground truth: unknown (limit)");
      Printf.printf "router %s: %s\n" router.Routing.Router.name
        (Format.asprintf "%a" Routing.Outcome.pp outcome);
      0

let cmd_census topology size p seed =
  let stream = Prng.Stream.create seed in
  with_instance topology ~size stream @@ fun instance ->
  let graph = instance.Topology.Registry.graph in
  let world = Percolation.World.create graph ~p ~seed in
  let census = Percolation.Clusters.census world in
  Printf.printf "world: %s, p = %.4f, seed = %Ld\n" graph.Topology.Graph.name p seed;
  Printf.printf "vertices: %d, open edges: %d\n" census.Percolation.Clusters.vertex_count
    census.Percolation.Clusters.open_edge_count;
  Printf.printf "components: %d, largest: %d (%.2f%%), second: %d\n"
    census.Percolation.Clusters.component_count census.Percolation.Clusters.largest
    (100.0 *. Percolation.Clusters.giant_fraction census)
    census.Percolation.Clusters.second_largest;
  Printf.printf "giant present: %b\n" (Percolation.Clusters.has_giant census);
  0

let cmd_threshold topology size seed jobs trials =
  let stream = Prng.Stream.create seed in
  with_instance topology ~size stream @@ fun instance ->
  let graph = instance.Topology.Registry.graph in
  let event ~p ~seed =
    let world = Percolation.World.create graph ~p ~seed in
    Percolation.Clusters.has_giant (Percolation.Clusters.census world)
  in
  let estimate =
    Percolation.Threshold.bisect ~jobs ~trials_per_pivot:trials stream ~event ~lo:0.0
      ~hi:1.0
  in
  Printf.printf "%s: estimated giant-component threshold p_c ~= %.4f\n"
    graph.Topology.Graph.name estimate;
  0

let cmd_mincut topology size seed source target =
  let stream = Prng.Stream.create seed in
  with_instance topology ~size stream @@ fun instance ->
  let graph = instance.Topology.Registry.graph in
  let source = Option.value source ~default:0 in
  let target = Option.value target ~default:(graph.Topology.Graph.vertex_count - 1) in
  let flow = Topology.Mincut.max_flow graph ~source ~sink:target in
  let cut = Topology.Mincut.min_cut graph ~source ~sink:target in
  Printf.printf "%s: edge connectivity of (%d, %d) = %d\n" graph.Topology.Graph.name
    source target flow;
  Printf.printf "one minimum cut: %s\n"
    (String.concat ", " (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) cut));
  0

let cmd_simulate topology size p protocol_name source target max_rounds rounds
    churn_spec common =
  (* Eager validation, same convention as the bench arg parser: a
     malformed flag dies on stderr with usage and exit 2 before any
     world is built. *)
  let die message =
    Printf.eprintf "simulate: %s\n" message;
    prerr_endline "usage: faultroute simulate TOPOLOGY[:SIZE] [-p P]";
    prerr_endline
      "         [--protocol flood|gossip|greedy|walk] [--source U] [--target V]";
    prerr_endline
      ("         [--max-rounds R] [--rounds N] [--churn "
     ^ Netsim.Churn.spec_syntax ^ "]");
    2
  in
  match Option.map Netsim.Churn.of_spec churn_spec with
  | Some (Error message) -> die message
  | (None | Some (Ok _)) as parsed_churn ->
  if (match rounds with Some n -> n < 1 | None -> false) then
    die "--rounds must be >= 1"
  else begin
  let churn =
    match parsed_churn with Some (Ok plan) -> Some plan | _ -> None
  in
  let seed = common.seed in
  let stream = Prng.Stream.create seed in
  with_instance topology ~size stream @@ fun instance ->
  let graph = instance.Topology.Registry.graph in
  let world = Percolation.World.create graph ~p ~seed in
  let source = Option.value source ~default:0 in
  let target = Option.value target ~default:(graph.Topology.Graph.vertex_count - 1) in
  with_common ~cmd:"simulate" common @@ fun () ->
  Printf.printf "world: %s, p = %.4f, seed = %Ld; %s from %d to %d%s\n"
    graph.Topology.Graph.name p seed protocol_name source target
    (match churn with
    | Some plan -> Printf.sprintf " (churn %s)" (Netsim.Churn.describe plan)
    | None -> "");
  let describe metrics result =
    (match result with
    | `Stopped rounds -> Printf.printf "outcome: target reached at round %d\n" rounds
    | `Quiescent rounds ->
        Printf.printf "outcome: network quiescent at round %d (target not reached)\n"
          rounds
    | `Out_of_rounds -> print_endline "outcome: round limit hit");
    Printf.printf "cost: %s\n" (Format.asprintf "%a" Netsim.Metrics.pp metrics);
    if Obs.Metrics.on () then Obs.Metrics.absorb (Netsim.Metrics.snapshot metrics);
    0
  in
  (* With [--rounds] the engine steps one round at a time, printing a
     delivery summary per round from the metric deltas (stopping early
     when the target is reached); otherwise the plain [run] loop. *)
  let run_protocol :
      type s m.
      (s, m) Netsim.Engine.t ->
      until:((s, m) Netsim.Engine.t -> bool) ->
      [ `Stopped of int | `Quiescent of int | `Out_of_rounds ] =
   fun engine ~until ->
    match rounds with
    | None -> Netsim.Engine.run ~max_rounds engine ~until
    | Some n ->
        let metrics = Netsim.Engine.metrics engine in
        let outcome = ref None in
        let r = ref 0 in
        while !outcome = None && !r < n do
          let sent0 = Netsim.Metrics.messages_sent metrics in
          let delivered0 = Netsim.Metrics.messages_delivered metrics in
          let blocked0 = Netsim.Metrics.churn_blocked metrics in
          Netsim.Engine.run_round engine;
          incr r;
          Printf.printf "round %d: sent %d delivered %d churn-blocked %d in-flight %d\n"
            !r
            (Netsim.Metrics.messages_sent metrics - sent0)
            (Netsim.Metrics.messages_delivered metrics - delivered0)
            (Netsim.Metrics.churn_blocked metrics - blocked0)
            (Netsim.Engine.in_flight engine);
          if until engine then outcome := Some (`Stopped !r)
        done;
        (match !outcome with Some o -> o | None -> `Out_of_rounds)
  in
  (* Traced runs wrap the whole simulation in one trace/v1 attempt:
     engine probes emit probe events inside the capture, and the
     terminal accept/reject carries the distinct-probe count so the
     replay checker audits the same accounting as routed runs. *)
  let run_and_describe :
      type s m.
      (s, m) Netsim.Engine.t ->
      until:((s, m) Netsim.Engine.t -> bool) ->
      extra:((s, m) Netsim.Engine.t -> unit) ->
      int =
   fun engine ~until ~extra ->
    let metrics = Netsim.Engine.metrics engine in
    let compute () =
      if Obs.Trace.on () then
        Obs.Trace.emit (Obs.Trace.Attempt_start { index = 1 });
      let result = run_protocol engine ~until in
      (if Obs.Trace.on () then
         match result with
         | `Stopped r ->
             Obs.Trace.emit
               (Obs.Trace.Accept
                  { distance = r; probes = Netsim.Metrics.distinct_probes metrics })
         | `Quiescent _ | `Out_of_rounds ->
             Obs.Trace.emit (Obs.Trace.Reject { reason = Obs.Trace.Disconnected }));
      result
    in
    let result =
      if Obs.Trace.on () then begin
        let result, record = Obs.Trace.capture ~index:1 compute in
        let buffer = Buffer.create 1024 in
        Buffer.add_string buffer
          (Obs.Trace.header_line
             [
               ("graph", Obs.Json.String graph.Topology.Graph.name);
               ("p", Obs.Json.Float p);
               ("source", Obs.Json.Int source);
               ("target", Obs.Json.Int target);
               ("protocol", Obs.Json.String (Netsim.Engine.protocol_name engine));
               ( "churn",
                 match churn with
                 | Some plan -> Netsim.Churn.to_json plan
                 | None -> Obs.Json.Null );
               ("trials", Obs.Json.Int 1);
               ("max_attempts", Obs.Json.Int 1);
             ]);
        List.iter (Buffer.add_string buffer) (Obs.Trace.record_lines record);
        let accepted = match result with `Stopped _ -> 1 | _ -> 0 in
        Buffer.add_string buffer (Obs.Trace.end_line ~attempts:1 ~accepted);
        Obs.Trace.write_line (Buffer.contents buffer);
        result
      end
      else compute ()
    in
    extra engine;
    describe metrics result
  in
  match String.lowercase_ascii protocol_name with
  | "flood" ->
      let engine = Netsim.Engine.create ?churn world Netsim.Flood.protocol in
      Netsim.Flood.start engine ~source;
      run_and_describe engine
        ~until:(fun e -> Netsim.Flood.informed_at e target <> None)
        ~extra:(fun e ->
          match Netsim.Flood.latency e ~source ~target with
          | Some latency -> Printf.printf "flood latency: %d rounds\n" latency
          | None -> ())
  | "gossip" ->
      let engine = Netsim.Engine.create ?churn world Netsim.Gossip.protocol in
      Netsim.Gossip.start engine ~source;
      run_and_describe engine
        ~until:(fun e -> Netsim.Gossip.informed_at e target <> None)
        ~extra:(fun e ->
          Printf.printf "informed nodes: %d\n" (Netsim.Gossip.informed_count e))
  | "greedy" -> (
      match graph.Topology.Graph.distance with
      | None ->
          prerr_endline "greedy simulation needs a topology with a metric";
          1
      | Some metric ->
          let engine =
            Netsim.Engine.create ?churn world
              (Netsim.Greedy_forward.protocol ~target ~metric)
          in
          Netsim.Greedy_forward.start engine ~source;
          run_and_describe engine
            ~until:(fun e -> Netsim.Greedy_forward.arrived e ~target <> None)
            ~extra:(fun e ->
              match Netsim.Greedy_forward.dropped e with
              | Some node -> Printf.printf "token dropped at node %d\n" node
              | None -> ()))
  | "walk" ->
      let engine =
        Netsim.Engine.create ?churn world (Netsim.Random_walk.protocol ~target)
      in
      Netsim.Random_walk.start engine ~source;
      run_and_describe engine
        ~until:(fun e -> Netsim.Random_walk.arrived e ~target <> None)
        ~extra:(fun _ -> ())
  | other ->
      Printf.eprintf "unknown protocol %S (try flood, gossip, greedy, walk)\n" other;
      1
  end

let cmd_trace file =
  match
    let ic = open_in file in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error message ->
      prerr_endline message;
      1
  | contents -> (
      let lines =
        String.split_on_char '\n' contents
        |> List.filter (fun l -> String.trim l <> "")
      in
      match Obs.Trace.Replay.parse lines with
      | Error message ->
          Printf.eprintf "trace parse error: %s\n" message;
          1
      | Ok runs ->
          let v = Obs.Trace.Replay.check runs in
          Printf.printf "runs: %d\nattempts: %d\naccepted: %d\nchecked: %d\n"
            v.Obs.Trace.Replay.runs v.Obs.Trace.Replay.attempts
            v.Obs.Trace.Replay.accepted v.Obs.Trace.Replay.checked;
          if v.Obs.Trace.Replay.unverifiable > 0 then
            Printf.printf "unverifiable (dropped events): %d\n"
              v.Obs.Trace.Replay.unverifiable;
          List.iter
            (fun (attempt, derived, recorded) ->
              Printf.printf
                "MISMATCH attempt %d: replay derives %d distinct probes, accept \
                 line recorded %d\n"
                attempt derived recorded)
            v.Obs.Trace.Replay.mismatches;
          List.iter
            (fun e -> Printf.printf "COUNT ERROR: %s\n" e)
            v.Obs.Trace.Replay.count_errors;
          if Obs.Trace.Replay.ok v then begin
            print_endline
              "probe accounting: OK — every accepted attempt's distinct-probe \
               count re-derives exactly from its fresh probe events";
            0
          end
          else Verdict.Exit_code.claim_fail)

let cmd_serve manifest queries out evidence_out common =
  match Serve.Session.load ~default_seed:common.seed manifest with
  | Error message ->
      prerr_endline message;
      Verdict.Exit_code.manifest_error
  | Ok session -> (
      with_common ~cmd:"serve" common @@ fun () ->
      Option.iter Obs.Ledger.note_artifact out;
      Option.iter Obs.Ledger.note_artifact evidence_out;
      match Serve.Service.start session with
      | Error message ->
          prerr_endline message;
          Verdict.Exit_code.manifest_error
      | Ok service ->
          let with_input k =
            match queries with
            | None -> Ok (k (Serve.Service.read_lines stdin))
            | Some path -> (
                match
                  In_channel.with_open_bin path (fun ic ->
                      k (Serve.Service.read_lines ic))
                with
                | outcome -> Ok outcome
                | exception Sys_error message -> Error message)
          in
          let run_session read =
            match out with
            | None ->
                let outcome =
                  Serve.Service.serve service ~read ~write:print_string
                in
                flush stdout;
                outcome
            | Some path ->
                Out_channel.with_open_bin path (fun oc ->
                    Serve.Service.serve service ~read
                      ~write:(Out_channel.output_string oc))
          in
          (match with_input run_session with
          | Error message ->
              prerr_endline message;
              Verdict.Exit_code.error
          | Ok { Serve.Service.evidence; overflowed } ->
              Option.iter
                (fun path ->
                  Out_channel.with_open_bin path (fun oc ->
                      Out_channel.output_string oc
                        (Serve.Evidence.to_string evidence)))
                evidence_out;
              if overflowed then begin
                Printf.eprintf
                  "serve: admission cap %s reached, %d query line(s) rejected\n"
                  (match evidence.Serve.Evidence.max_queries with
                  | Some m -> string_of_int m
                  | None -> "?")
                  evidence.Serve.Evidence.rejected;
                Verdict.Exit_code.queue_overflow
              end
              else Verdict.Exit_code.ok))

let cmd_evidence file =
  match Serve.Evidence.load file with
  | Error message ->
      prerr_endline message;
      1
  | Ok evidence -> (
      match Serve.Evidence.validate evidence with
      | Error message ->
          Printf.eprintf "evidence: %s\n" message;
          Verdict.Exit_code.claim_fail
      | Ok () ->
          Printf.printf
            "evidence/v1: session %S, digest %s\n\
             admitted %d, answered %d (malformed %d, errors %d), rejected %d\n\
             probes %d across %d world(s)\n"
            evidence.Serve.Evidence.session
            evidence.Serve.Evidence.config_digest
            evidence.Serve.Evidence.admitted evidence.Serve.Evidence.answered
            evidence.Serve.Evidence.malformed evidence.Serve.Evidence.errors
            evidence.Serve.Evidence.rejected evidence.Serve.Evidence.probes
            (List.length evidence.Serve.Evidence.worlds);
          let claims = Serve.Evidence.claims evidence in
          let failed =
            List.filter
              (fun c -> not (Experiments.Claim.holds c))
              claims
          in
          List.iter
            (fun c ->
              Printf.printf "%-6s %-28s %s (observed %s, want %s)\n"
                (if Experiments.Claim.holds c then "OK" else "FAIL")
                c.Experiments.Claim.id c.Experiments.Claim.description
                (Experiments.Claim.describe_observed c)
                (Experiments.Claim.describe_expected c))
            claims;
          if failed = [] then Verdict.Exit_code.ok
          else Verdict.Exit_code.claim_fail)

(* ------------------------------------------------------------------ *)
(* The obs subcommands: one inspector for every artifact the toolkit
   emits (Obs.Inspect does the sniffing/validation; loading IS schema
   validation, so `obs validate` only reports verdicts).               *)

let cmd_obs_validate files =
  let failed = ref 0 in
  List.iter
    (fun file ->
      match Obs.Inspect.load file with
      | Ok artifact ->
          Printf.printf "%s: ok (%s)\n" file
            (Obs.Inspect.kind_name (Obs.Inspect.kind artifact))
      | Error message ->
          incr failed;
          Printf.printf "INVALID %s\n" message)
    files;
  if !failed = 0 then Verdict.Exit_code.ok else Verdict.Exit_code.claim_fail

let cmd_obs_report files =
  let ppf = Format.std_formatter in
  let loaded =
    List.filter_map
      (fun file ->
        match Obs.Inspect.load file with
        | Ok artifact -> Some (file, artifact)
        | Error message ->
            prerr_endline message;
            None)
      files
  in
  List.iter
    (fun (file, artifact) ->
      if List.length files > 1 then Format.fprintf ppf "== %s ==@." file;
      Obs.Inspect.report ppf artifact)
    loaded;
  (* Several metrics files fold into one cross-run view — the same
     merge the engine itself uses, so the aggregate is exact. *)
  (match
     List.filter (fun (_, a) -> Obs.Inspect.kind a = `Metrics) loaded
   with
  | (_ :: _ :: _ as metrics) ->
      let merged =
        List.fold_left
          (fun acc (_, a) ->
            match acc with
            | Error _ as e -> e
            | Ok acc -> Obs.Inspect.aggregate acc a)
          (Ok (snd (List.hd metrics)))
          (List.tl metrics)
      in
      (match merged with
      | Ok a ->
          Format.fprintf ppf "== aggregate of %d metrics files ==@."
            (List.length metrics);
          Obs.Inspect.report ppf a
      | Error message -> prerr_endline message)
  | _ -> ());
  if List.length loaded = List.length files then Verdict.Exit_code.ok
  else Verdict.Exit_code.claim_fail

let cmd_obs_diff file_a file_b =
  match (Obs.Inspect.load file_a, Obs.Inspect.load file_b) with
  | Error m, _ | _, Error m ->
      prerr_endline m;
      Verdict.Exit_code.claim_fail
  | Ok a, Ok b -> (
      Printf.printf "%s -> %s\n" file_a file_b;
      match Obs.Inspect.diff Format.std_formatter a b with
      | Ok () -> Verdict.Exit_code.ok
      | Error m ->
          prerr_endline m;
          Verdict.Exit_code.error)

let cmd_obs_folded file =
  match Obs.Inspect.load file with
  | Error m ->
      prerr_endline m;
      Verdict.Exit_code.claim_fail
  | Ok artifact -> (
      match Obs.Inspect.folded_of_profile artifact with
      | Ok lines ->
          List.iter print_endline lines;
          Verdict.Exit_code.ok
      | Error m ->
          prerr_endline m;
          Verdict.Exit_code.error)

(* ------------------------------------------------------------------ *)
(* faultroute top: a terminal view over telemetry/v1 heartbeats —
   live (tail the file a serve/campaign run is writing), --replay
   (step through a complete file), or --once (render the newest
   heartbeat and exit; CI snapshot mode). Rendering is Obs.Top; this
   is only tailing, clearing and pacing.                               *)

let cmd_top file replay once interval =
  let parse_frames contents =
    String.split_on_char '\n' contents
    |> List.filter (fun l -> String.trim l <> "")
    |> List.filter_map (fun l ->
           match Obs.Top.frame_of_line l with
           | Ok f -> Some f
           | Error _ -> None)
  in
  let total_gaps frames =
    let rec total acc = function
      | a :: (b :: _ as rest) -> total (acc + Obs.Top.gap ~prev:a b) rest
      | _ -> acc
    in
    total 0 frames
  in
  let warn_gaps frames =
    let missing = total_gaps frames in
    if missing > 0 then
      Printf.eprintf "top: %d heartbeat(s) missing (seq gaps)\n" missing
  in
  let read_whole () =
    match In_channel.with_open_bin file In_channel.input_all with
    | contents -> Ok contents
    | exception Sys_error m -> Error m
  in
  let clear () = print_string "\027[2J\027[H" in
  let no_heartbeat () =
    Printf.eprintf "top: no telemetry/v1 heartbeat in %s\n" file;
    Verdict.Exit_code.claim_fail
  in
  if once then
    match read_whole () with
    | Error m ->
        prerr_endline m;
        Verdict.Exit_code.error
    | Ok contents -> (
        let frames = parse_frames contents in
        match List.rev frames with
        | [] -> no_heartbeat ()
        | last :: _ ->
            warn_gaps frames;
            print_string (Obs.Top.render last);
            Verdict.Exit_code.ok)
  else if replay then
    match read_whole () with
    | Error m ->
        prerr_endline m;
        Verdict.Exit_code.error
    | Ok contents -> (
        match parse_frames contents with
        | [] -> no_heartbeat ()
        | frames ->
            List.iter
              (fun f ->
                clear ();
                print_string (Obs.Top.render f);
                flush stdout;
                Unix.sleepf interval)
              frames;
            warn_gaps frames;
            Verdict.Exit_code.ok)
  else begin
    (* Live: tail by byte offset, feeding only complete
       newline-terminated lines to the parser; a shrunken file means
       rotation/truncation, so start over. Runs until interrupted. *)
    let offset = ref 0 in
    let carry = Buffer.create 256 in
    let last = ref None in
    let prev = ref None in
    let missing = ref 0 in
    let poll () =
      match open_in_bin file with
      | exception Sys_error _ -> false
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () ->
              let len = in_channel_length ic in
              if len < !offset then begin
                offset := 0;
                Buffer.clear carry
              end;
              seek_in ic !offset;
              let fresh = really_input_string ic (len - !offset) in
              offset := len;
              Buffer.add_string carry fresh;
              let rec complete acc = function
                | [] -> (List.rev acc, "")
                | [ tail ] -> (List.rev acc, tail)
                | l :: rest -> complete (l :: acc) rest
              in
              let lines, tail =
                complete [] (String.split_on_char '\n' (Buffer.contents carry))
              in
              Buffer.clear carry;
              Buffer.add_string carry tail;
              let changed = ref false in
              List.iter
                (fun l ->
                  if String.trim l <> "" then
                    match Obs.Top.frame_of_line l with
                    | Ok f ->
                        (match !prev with
                        | Some p -> missing := !missing + Obs.Top.gap ~prev:p f
                        | None -> ());
                        prev := Some f;
                        last := Some f;
                        changed := true
                    | Error _ -> ())
                lines;
              !changed)
    in
    let rec live () =
      (if poll () then
         match !last with
         | Some f ->
             clear ();
             print_string (Obs.Top.render f);
             if !missing > 0 then
               Printf.printf "(%d heartbeat(s) missing)\n" !missing;
             flush stdout
         | None -> ());
      Unix.sleepf interval;
      live ()
    in
    live ()
  end

(* ------------------------------------------------------------------ *)
(* Cmdliner wiring.                                                    *)

open Cmdliner

let seed_arg =
  let doc = "Root random seed (decimal 64-bit)." in
  Arg.(value & opt int64 default_seed & info [ "seed" ] ~docv:"SEED" ~doc)

let quick_arg =
  let doc = "Shrink sizes and trial counts (smoke-test mode)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let csv_arg =
  let doc = "Emit tables as CSV instead of aligned text." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let trace_arg =
  let doc =
    "Stream a probe-level $(b,trace/v1) JSONL trace to $(docv) (audit it with \
     $(b,faultroute trace))."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Write the run's merged $(b,metrics/v1) counters to $(docv)." in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let telemetry_arg =
  let doc =
    "Emit $(b,telemetry/v1) heartbeat lines (gauges, pool utilization, \
     latency histograms) on stderr while the run progresses. Telemetry is \
     reporting-layer only: result bytes are identical with it on or off."
  in
  Arg.(value & flag & info [ "telemetry" ] ~doc)

let telemetry_out_arg =
  let doc =
    "Write $(b,telemetry/v1) heartbeat lines to $(docv) instead of stderr \
     (implies $(b,--telemetry))."
  in
  Arg.(
    value & opt (some string) None & info [ "telemetry-out" ] ~docv:"FILE" ~doc)

let profile_out_arg =
  let doc =
    "Write the hierarchical $(b,profile/v1) span tree to $(docv) at exit \
     (arms wall-clock profiling; inspect with $(b,faultroute obs))."
  in
  Arg.(
    value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE" ~doc)

let ledger_arg =
  let doc =
    "Append one $(b,runledger/v1) record for this invocation to $(docv): \
     subcommand, config digest, seed, jobs, wall time, exit code, and the \
     path + content digest of every artifact written. Audit with $(b,faultroute \
     obs validate) — a tampered or stale artifact exits 2."
  in
  Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE" ~doc)

let strict_shortfall_arg =
  let doc =
    "Exit with status 3 when any report is under-sampled (its attempt cap ran \
     out before the requested trial count)."
  in
  Arg.(value & flag & info [ "strict-shortfall" ] ~doc)

let inject_arg =
  let doc =
    "Install a deterministic fault plan from a compact spec: \
     comma-separated $(b,crash\\@CHUNK), $(b,stall\\@CHUNK), \
     $(b,flaky:RATExMAX), $(b,die\\@CHUNKS), $(b,seed=N) — e.g. \
     $(b,crash\\@3,flaky:0.02x2,seed=7). Overrides $(b,--fault-plan)."
  in
  Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SPEC" ~doc)

let fault_plan_arg =
  let doc = "Load a $(b,faultplan/v1) JSON fault plan from $(docv)." in
  Arg.(value & opt (some string) None & info [ "fault-plan" ] ~docv:"FILE" ~doc)

let checkpoint_arg =
  let doc =
    "Journal every completed trial chunk to $(docv)/checkpoint.jsonl \
     ($(b,checkpoint/v1)) so an interrupted campaign can be resumed with \
     $(b,--resume)."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR" ~doc)

let resume_arg =
  let doc =
    "With $(b,--checkpoint), restore completed chunks from the existing \
     journal instead of truncating it; only missing chunks are recomputed and \
     the report is byte-identical to an uninterrupted run."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let retries_arg =
  let doc =
    "Attempts per trial chunk before it is quarantined (arms the supervised \
     worker pool; default 3 once armed)."
  in
  Arg.(value & opt (some int) None & info [ "retries" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc =
    "Cooperative per-chunk deadline in seconds: a chunk past its budget is \
     failed and retried (arms the supervised worker pool)."
  in
  Arg.(
    value & opt (some float) None & info [ "chunk-deadline" ] ~docv:"SECONDS" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for trial running (default: the machine's recommended \
     count). Output is bit-identical for every value."
  in
  let positive_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n > 0 -> Ok n
      | Some _ -> Error (`Msg "must be positive")
      | None -> Error (`Msg "not an integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt positive_int (Engine_par.Pool.recommended_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* The shared flag records: every subcommand that takes [--seed],
   [--jobs], [--trace], [--metrics-out] or [--strict-shortfall] gets
   all of them from this one term, so names, docs and defaults cannot
   diverge between subcommands. *)
let common_term =
  let make seed jobs trace metrics_out telemetry telemetry_out profile_out
      ledger strict =
    {
      seed;
      jobs;
      trace;
      metrics_out;
      telemetry;
      telemetry_out;
      profile_out;
      ledger;
      strict;
    }
  in
  Term.(
    const make $ seed_arg $ jobs_arg $ trace_arg $ metrics_arg $ telemetry_arg
    $ telemetry_out_arg $ profile_out_arg $ ledger_arg $ strict_shortfall_arg)

let supervision_term =
  let make inject fault_plan checkpoint resume retries deadline =
    { inject; fault_plan; checkpoint; resume; retries; deadline }
  in
  Term.(
    const make $ inject_arg $ fault_plan_arg $ checkpoint_arg $ resume_arg
    $ retries_arg $ deadline_arg)

let topology_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"TOPOLOGY"
        ~doc:"Topology spec: NAME or NAME:SIZE (see `faultroute list`).")

let size_arg =
  Arg.(
    value & opt int 10
    & info [ "size"; "n" ] ~docv:"N"
        ~doc:
          "Topology size parameter (dimension, depth, side or vertex count) when \
           the spec carries none.")

let p_arg =
  Arg.(
    value & opt float 0.6
    & info [ "p" ] ~docv:"P" ~doc:"Edge retention probability.")

let list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"List experiments, topologies and routers.")
    Term.(const cmd_list $ const ())

let exp_cmd =
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id, e.g. E1.")
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Run one experiment and print its report.")
    Term.(const cmd_exp $ id_arg $ quick_arg $ csv_arg $ common_term
          $ supervision_term)

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in the catalog.")
    Term.(const cmd_all $ quick_arg $ common_term $ supervision_term)

let check_cmd =
  let baseline_arg =
    let doc =
      "Baseline file to compare against (default: verdicts/baseline.json in \
       --quick mode, verdicts/baseline-full.json otherwise)."
    in
    Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Write the $(b,verdict/v1) JSON report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let update_arg =
    let doc =
      "Rewrite the baseline from this run's observed values instead of \
       comparing (refused if any claim fails)."
    in
    Arg.(value & flag & info [ "update" ] ~doc)
  in
  let evidence_arg =
    let doc =
      "Also gate on a serve session's $(b,evidence/v1) summary: the file must \
       load, validate, and its claims (answered = admitted, outcome \
       accounting, single construction, no overflow) join the evaluated set. \
       Repeatable."
    in
    Arg.(
      value & opt_all string [] & info [ "evidence" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run every experiment and evaluate its machine-checked claims: exit 0 \
          when all claims hold and match the committed baseline, 2 on a failed \
          claim, 4 on drift (values moved while the claim still holds).")
    Term.(
      const cmd_check $ quick_arg $ baseline_arg $ out_arg $ update_arg
      $ evidence_arg $ common_term $ supervision_term)

let route_cmd =
  let source_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "source" ] ~docv:"U" ~doc:"Source vertex (default 0).")
  in
  let target_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "target" ] ~docv:"V" ~doc:"Target vertex (default |V|-1).")
  in
  let router_arg =
    Arg.(
      value & opt string "bfs"
      & info [ "router" ] ~docv:"ROUTER"
          ~doc:"Routing algorithm (see `faultroute list`).")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"B" ~doc:"Distinct-probe budget.")
  in
  Cmd.v
    (Cmd.info "route" ~doc:"Run one routing attempt on one percolated world.")
    Term.(
      const cmd_route $ topology_arg $ size_arg $ p_arg $ source_arg
      $ target_arg $ router_arg $ budget_arg $ common_term)

let census_cmd =
  Cmd.v
    (Cmd.info "census" ~doc:"Component census of one percolated world.")
    Term.(const cmd_census $ topology_arg $ size_arg $ p_arg $ seed_arg)

let threshold_cmd =
  let trials_arg =
    Arg.(
      value & opt int 20
      & info [ "trials" ] ~docv:"T" ~doc:"Worlds per bisection pivot.")
  in
  Cmd.v
    (Cmd.info "threshold" ~doc:"Estimate a giant-component threshold by bisection.")
    Term.(const cmd_threshold $ topology_arg $ size_arg $ seed_arg $ jobs_arg $ trials_arg)

let simulate_cmd =
  let protocol_arg =
    Arg.(
      value & opt string "flood"
      & info [ "protocol" ] ~docv:"PROTO" ~doc:"flood, gossip, greedy or walk.")
  in
  let source_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "source" ] ~docv:"U" ~doc:"Source node (default 0).")
  in
  let target_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "target" ] ~docv:"V" ~doc:"Target node (default |V|-1).")
  in
  let rounds_arg =
    Arg.(
      value & opt int 10_000
      & info [ "max-rounds" ] ~docv:"R" ~doc:"Round limit.")
  in
  let exact_rounds_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "rounds" ] ~docv:"N"
          ~doc:
            "Step exactly $(docv) rounds, printing a per-round delivery \
             summary (stops early once the target is reached).")
  in
  let churn_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "churn" ] ~docv:"SPEC"
          ~doc:
            "Link churn plan, $(b,fail=RATE[,repair=RATE][,seed=N]): links \
             fail and repair mid-run with geometric sojourn times.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a message-passing protocol on one percolated world.")
    Term.(
      const cmd_simulate $ topology_arg $ size_arg $ p_arg $ protocol_arg
      $ source_arg $ target_arg $ rounds_arg $ exact_rounds_arg $ churn_arg
      $ common_term)

let serve_cmd =
  let manifest_arg =
    let doc = "The $(b,session/v1) manifest: worlds, limits, query mix." in
    Arg.(
      required
      & opt (some string) None
      & info [ "manifest" ] ~docv:"FILE" ~doc)
  in
  let queries_arg =
    let doc =
      "Replay newline-delimited JSON queries from $(docv) instead of stdin."
    in
    Arg.(value & opt (some string) None & info [ "queries" ] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Write answer lines to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let evidence_arg =
    let doc =
      "Write the session's $(b,evidence/v1) summary to $(docv) (gate it with \
       $(b,faultroute check --evidence))."
    in
    Arg.(
      value & opt (some string) None & info [ "evidence-out" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Load a session/v1 manifest into a resident world pool (each world \
          built exactly once) and answer newline-delimited JSON queries \
          (route, reveal, cluster, stats) from stdin or a replay file, \
          sharding batches across worker domains. Answers, evidence and \
          trace bytes are identical for every --jobs value. Exit 6 on a \
          manifest error, 7 when the admission cap rejected queries.")
    Term.(
      const cmd_serve $ manifest_arg $ queries_arg $ out_arg $ evidence_arg
      $ common_term)

let evidence_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"An evidence/v1 summary written by serve --evidence-out.")
  in
  Cmd.v
    (Cmd.info "evidence"
       ~doc:
         "Validate an evidence/v1 summary: schema, internal accounting, and \
          its machine-checkable claims. Exit 2 when any check fails.")
    Term.(const cmd_evidence $ file_arg)

let trace_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"A trace/v1 JSONL file written by --trace.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay a trace/v1 JSONL file: re-derive each accepted attempt's \
          distinct-probe count from its fresh probe events and check it against \
          the recorded count.")
    Term.(const cmd_trace $ file_arg)

let obs_cmd =
  let files_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "Observability artifacts: trace/v1, metrics/v1, profile/v1, \
             telemetry/v1, runledger/v1, or bench_percolation history files \
             (sniffed by schema tag).")
  in
  let file_a_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BEFORE" ~doc:"Baseline artifact.")
  in
  let file_b_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"AFTER" ~doc:"Artifact to compare against BEFORE.")
  in
  let profile_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"A profile/v1 file written by --profile-out.")
  in
  let validate =
    Cmd.v
      (Cmd.info "validate"
         ~doc:
           "Schema-validate artifacts (traces are also replay-checked; run \
            ledgers are cross-checked against the artifacts on disk, so a \
            tampered or stale artifact fails). Exit 2 if any file is \
            invalid.")
      Term.(const cmd_obs_validate $ files_arg)
  in
  let report =
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Pretty-print artifacts: counters/gauges, per-domain pool \
            utilization, latency percentiles, span trees, replay verdicts. \
            Several metrics/v1 files are additionally aggregated into one \
            merged view.")
      Term.(const cmd_obs_report $ files_arg)
  in
  let diff =
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Diff two artifacts of the same kind: counter/gauge/histogram \
            deltas, significant span movement, or bench regressions.")
      Term.(const cmd_obs_diff $ file_a_arg $ file_b_arg)
  in
  let folded =
    Cmd.v
      (Cmd.info "folded"
         ~doc:
           "Print flamegraph folded-stack lines (span;path self-us) from a \
            profile/v1 file — pipe into standard flamegraph tooling.")
      Term.(const cmd_obs_folded $ profile_arg)
  in
  Cmd.group
    (Cmd.info "obs"
       ~doc:
         "Inspect observability artifacts: validate, pretty-print, \
          aggregate and diff the \
          trace/metrics/profile/telemetry/ledger/bench family.")
    [ validate; report; diff; folded ]

let top_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "A telemetry/v1 heartbeat file (written by \
             $(b,--telemetry-out)).")
  in
  let replay_arg =
    let doc =
      "The file is complete: step through every heartbeat and exit instead \
       of tailing."
    in
    Arg.(value & flag & info [ "replay" ] ~doc)
  in
  let once_arg =
    let doc =
      "Render the newest heartbeat once and exit — a CI snapshot. Exit 2 \
       when the file holds no parseable heartbeat."
    in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let interval_arg =
    let doc = "Seconds between redraws (live) or replayed frames." in
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SECONDS" ~doc)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal view of a telemetry/v1 heartbeat file: run progress, \
          per-domain pool utilization and GC pressure, and per-op latency \
          percentiles, redrawn as the producing run heartbeats. Tails the \
          file until interrupted; see $(b,--replay) and $(b,--once) for \
          post-hoc use.")
    Term.(const cmd_top $ file_arg $ replay_arg $ once_arg $ interval_arg)

let mincut_cmd =
  let source_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "source" ] ~docv:"U" ~doc:"Source vertex (default 0).")
  in
  let target_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "target" ] ~docv:"V" ~doc:"Target vertex (default |V|-1).")
  in
  Cmd.v
    (Cmd.info "mincut" ~doc:"Edge connectivity and a minimum cut of a vertex pair.")
    Term.(const cmd_mincut $ topology_arg $ size_arg $ seed_arg $ source_arg $ target_arg)

let () =
  let info =
    Cmd.info "faultroute" ~version:"1.0.0"
      ~doc:"Routing complexity of faulty networks — reproduction toolkit"
  in
  let group =
    Cmd.group info
      [
        list_cmd;
        exp_cmd;
        all_cmd;
        check_cmd;
        route_cmd;
        census_cmd;
        threshold_cmd;
        simulate_cmd;
        mincut_cmd;
        serve_cmd;
        evidence_cmd;
        trace_cmd;
        obs_cmd;
        top_cmd;
      ]
  in
  let code = Cmd.eval' group in
  (* The ledger record carries the exit code and digests of the final
     artifact bytes, so it is appended here — after every
     with_observability finally has flushed and closed its sinks. *)
  Obs.Ledger.finalize ~exit_code:code;
  exit code
