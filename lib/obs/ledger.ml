(* The run ledger: one [runledger/v1] JSONL record per faultroute
   invocation, binding the artifacts a run wrote (by path + content
   digest) to the invocation that produced them. Appended through
   [Atomic_file.append_line] so a crashed writer can at worst leave a
   torn final line, which the parser tolerates exactly like the
   checkpoint journal does. Strictly operational: nothing here touches
   result bytes, and the record itself (wall time) is not expected to
   be deterministic. *)

let schema = "runledger/v1"

type artifact = { path : string; digest : string }

type record = {
  subcommand : string;
  config_digest : string;
  seed : int64;
  jobs : int;
  wall_s : float;
  exit_code : int;
  artifacts : artifact list;
}

(* Digests reuse the stdlib MD5 convention of
   [Experiments.Checkpoint.digest_key] — hex over the canonical
   string / the file bytes. *)
let digest_string s = Digest.to_hex (Digest.string s)

let digest_file path =
  match Digest.file path with
  | d -> Ok (Digest.to_hex d)
  | exception Sys_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Encoding.                                                           *)

let record_line r =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String schema);
         ("subcommand", Json.String r.subcommand);
         ("config_digest", Json.String r.config_digest);
         ("seed", Json.String (Int64.to_string r.seed));
         ("jobs", Json.Int r.jobs);
         ("wall_s", Json.Float r.wall_s);
         ("exit", Json.Int r.exit_code);
         ( "artifacts",
           Json.List
             (List.map
                (fun a ->
                  Json.Obj
                    [
                      ("path", Json.String a.path);
                      ("digest", Json.String a.digest);
                    ])
                r.artifacts) );
       ])
  ^ "\n"

let append ~path r = Atomic_file.append_line ~path ~line:(record_line r)

(* ------------------------------------------------------------------ *)
(* Parsing. A malformed final line is a torn append (process killed
   mid-write) and is dropped, mirroring the checkpoint journal's
   tolerance; a malformed line anywhere else is corruption and an
   error.                                                              *)

let ( let* ) = Result.bind

let str_field name j =
  match Option.bind (Json.member name j) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field %S" name)

let int_field name j =
  match Option.bind (Json.member name j) Json.to_int with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "missing int field %S" name)

let parse_record j =
  let* tag = str_field "schema" j in
  if tag <> schema then Error (Printf.sprintf "unsupported schema %S" tag)
  else
    let* subcommand = str_field "subcommand" j in
    let* config_digest = str_field "config_digest" j in
    let* seed_s = str_field "seed" j in
    let* seed =
      match Int64.of_string_opt seed_s with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "seed %S is not a 64-bit integer" seed_s)
    in
    let* jobs = int_field "jobs" j in
    let* wall_s =
      match Option.bind (Json.member "wall_s" j) Json.to_float with
      | Some f -> Ok f
      | None -> Error "missing number field \"wall_s\""
    in
    let* exit_code = int_field "exit" j in
    let* artifacts =
      match Option.bind (Json.member "artifacts" j) Json.to_list with
      | None -> Error "missing list field \"artifacts\""
      | Some items ->
          let rec loop acc = function
            | [] -> Ok (List.rev acc)
            | item :: rest ->
                let* path = str_field "path" item in
                let* digest = str_field "digest" item in
                loop ({ path; digest } :: acc) rest
          in
          loop [] items
    in
    Ok { subcommand; config_digest; seed; jobs; wall_s; exit_code; artifacts }

let parse_lines lines =
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  let total = List.length lines in
  let rec loop acc i = function
    | [] -> Ok (List.rev acc, false)
    | line :: rest -> (
        match
          let* j = Json.of_string (String.trim line) in
          parse_record j
        with
        | Ok r -> loop (r :: acc) (i + 1) rest
        | Error m ->
            if i = total then Ok (List.rev acc, true)
            else Error (Printf.sprintf "line %d: %s" i m))
  in
  loop [] 1 lines

(* ------------------------------------------------------------------ *)
(* Verification: cross-check every recorded artifact against the file
   on disk. Paths are resolved as recorded (i.e. relative to the
   invoking working directory), so validate from where the run ran.    *)

let verify records =
  let errors = ref [] in
  List.iteri
    (fun i r ->
      List.iter
        (fun a ->
          if not (Sys.file_exists a.path) then
            errors :=
              Printf.sprintf "record %d: artifact %s is missing" (i + 1) a.path
              :: !errors
          else
            match digest_file a.path with
            | Error m ->
                errors :=
                  Printf.sprintf "record %d: artifact %s: %s" (i + 1) a.path m
                  :: !errors
            | Ok d ->
                if d <> a.digest then
                  errors :=
                    Printf.sprintf
                      "record %d: artifact %s: digest mismatch (ledger %s, \
                       disk %s)"
                      (i + 1) a.path a.digest d
                    :: !errors)
        r.artifacts)
    records;
  List.rev !errors

(* ------------------------------------------------------------------ *)
(* The ambient per-process ledger the CLI arms: one [arm] at subcommand
   start, [note_artifact] for every file the run will write, one
   [finalize] after the exit code is known. All no-ops unless armed.   *)

type armed = {
  a_path : string;
  a_subcommand : string;
  a_config_digest : string;
  a_seed : int64;
  a_jobs : int;
  a_started : float;
  mutable a_artifacts : string list;  (* reversed *)
}

let lock = Mutex.create ()
let state : armed option ref = ref None

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let arm ~path ~subcommand ~config_digest ~seed ~jobs =
  locked (fun () ->
      state :=
        Some
          {
            a_path = path;
            a_subcommand = subcommand;
            a_config_digest = config_digest;
            a_seed = seed;
            a_jobs = jobs;
            a_started = Unix.gettimeofday ();
            a_artifacts = [];
          })

let armed () = locked (fun () -> !state <> None)

let note_artifact path =
  locked (fun () ->
      match !state with
      | None -> ()
      | Some a ->
          if not (List.mem path a.a_artifacts) then
            a.a_artifacts <- path :: a.a_artifacts)

let finalize ~exit_code =
  match locked (fun () -> !state) with
  | None -> ()
  | Some a ->
      locked (fun () -> state := None);
      let artifacts =
        List.filter_map
          (fun path ->
            if Sys.file_exists path then
              match digest_file path with
              | Ok digest -> Some { path; digest }
              | Error _ -> None
            else None)
          (List.rev a.a_artifacts)
      in
      let r =
        {
          subcommand = a.a_subcommand;
          config_digest = a.a_config_digest;
          seed = a.a_seed;
          jobs = a.a_jobs;
          wall_s = Unix.gettimeofday () -. a.a_started;
          exit_code;
          artifacts;
        }
      in
      append ~path:a.a_path r
