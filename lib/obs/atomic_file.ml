let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* The temp sibling carries the pid so concurrent writers (two CLI
   processes updating the same baseline) cannot clobber each other's
   staging file; the final rename still serialises them. *)
let temp_sibling path = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())

let replace_via_temp path emit =
  mkdir_p (Filename.dirname path);
  let temp = temp_sibling path in
  let oc = open_out temp in
  (try
     emit oc;
     flush oc;
     close_out oc
   with exn ->
     close_out_noerr oc;
     (try Sys.remove temp with Sys_error _ -> ());
     raise exn);
  Sys.rename temp path

let write ~path ~contents =
  replace_via_temp path (fun oc -> output_string oc contents)

let append_line ~path ~line =
  let existing =
    if Sys.file_exists path then
      In_channel.with_open_bin path In_channel.input_all
    else ""
  in
  replace_via_temp path (fun oc ->
      output_string oc existing;
      output_string oc line)
