(** The rendering core of [faultroute top] — one [telemetry/v1]
    heartbeat line in, one plain-text frame out.

    Pure: the CLI owns file tailing, screen clearing and pacing, so a
    frame is a deterministic function of the heartbeat bytes and
    [--once]/[--replay] snapshots are testable as strings. A frame
    shows run progress (the [serve.*] gauges), per-domain pool
    utilization, per-domain GC pressure (the [runtime.domain.<slot>.*]
    gauges published by the pool), the process heap, and
    p50/p95/p99/max latency rows for every histogram ([_ns] names
    scaled to ms). Sections with no data are omitted. *)

type frame = {
  seq : int option;  (** Heartbeat sequence number; [None] on legacy files. *)
  uptime_s : float;
  session : string option;
  table : Inspect.table;
}

val frame_of_line : string -> (frame, string) result
(** Parse one [telemetry/v1] JSONL line. Errors on malformed JSON or a
    different schema tag. *)

val gap : prev:frame -> frame -> int
(** Heartbeats lost between two consecutive frames: [seq] delta minus
    one, or 0 when either side carries no [seq] (or on reorder —
    {!Inspect.report} flags those). *)

val render : frame -> string
(** The full frame as plain text (no ANSI), newline-terminated. *)
