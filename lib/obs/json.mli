(** A minimal JSON value type with an emitter and a parser.

    Just enough machinery for the [trace/v1] and [metrics/v1] wire
    formats: objects, arrays, strings, booleans, null, and numbers
    (integers kept exact as [Int]). No external dependency — the repo
    policy is hand-rolled JSON, see [bench/main.ml]'s
    [bench_percolation/v1] emitter. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no trailing newline). Object fields
    are emitted in the order given — emitters sort them where byte
    determinism matters.

    {b Non-finite float policy.} JSON has no literal for [nan] or
    [±infinity], so a non-finite [Float] is emitted as [null] — the
    document stays parseable and a reader sees an explicitly absent
    value rather than a junk token. This is the right default for the
    float-heavy wall-clock artifacts ([profile/v1], [telemetry/v1]),
    where a non-finite value means "not measured". Emitters that must
    {e round-trip} non-finite values (e.g. {!Verdict.Baseline}) encode
    them as the strings ["nan"]/["inf"]/["-inf"] at their own layer;
    this module never produces those strings itself. Finite floats
    round-trip exactly: [of_string (to_string (Float f)) = Ok (Float f)]
    for every finite [f] (integer-valued floats are emitted with a
    [.0] suffix so they parse back as [Float], not [Int]). *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing whitespace allowed, anything else
    after the value is an error. Numbers without [.], [e] or [E] parse
    as [Int]. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing field or non-object. *)

val to_int : t -> int option
val to_bool : t -> bool option
val to_str : t -> string option

val to_float : t -> float option
(** [Float] as-is; [Int] widened — JSON writers drop the fraction on
    round values. *)

val to_list : t -> t list option
