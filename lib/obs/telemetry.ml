(* Wall-clock run telemetry: float gauges + nanosecond histograms
   behind one global mutex, emitted as [telemetry/v1] JSONL heartbeats.
   Strictly reporting-layer, like [Timing]: nothing here may influence
   result bytes. Hot paths that would contend on the mutex accumulate
   into a [local] histogram and [absorb] it once per unit of work. *)

let enabled = Atomic.make false

let[@inline] on () = Atomic.get enabled

(* Histograms reuse the power-of-two bucketing of [Metrics] over
   integer nanoseconds: plenty of resolution for latency percentiles
   and a bounded, mergeable representation. *)

let bucket_count = Metrics.bucket_count

type local = {
  mutable l_count : int;
  mutable l_sum_ns : float;
  mutable l_min_ns : float;
  mutable l_max_ns : float;
  l_buckets : int array;
}

let local_create () =
  {
    l_count = 0;
    l_sum_ns = 0.;
    l_min_ns = infinity;
    l_max_ns = neg_infinity;
    l_buckets = Array.make bucket_count 0;
  }

let local_observe_ns l ns =
  l.l_count <- l.l_count + 1;
  l.l_sum_ns <- l.l_sum_ns +. ns;
  if ns < l.l_min_ns then l.l_min_ns <- ns;
  if ns > l.l_max_ns then l.l_max_ns <- ns;
  let b =
    Metrics.bucket_of (if ns >= float_of_int max_int then max_int else int_of_float ns)
  in
  l.l_buckets.(b) <- l.l_buckets.(b) + 1

(* ------------------------------------------------------------------ *)
(* The global registry.                                                *)

type cell = Gauge of float ref | Hist of local

let lock = Mutex.create ()
let cells : (string, cell) Hashtbl.t = Hashtbl.create 32
let started_at = ref 0.
let sink : (string -> unit) ref =
  ref (fun line ->
      output_string stderr line;
      flush stderr)
let interval = ref 1.0
let last_beat = ref neg_infinity

(* Heartbeats are numbered 1, 2, 3, ... per enable/reset. The counter
   bumps only when a line is actually emitted, so a well-formed
   telemetry file carries contiguous [seq] values — any gap means
   lines were lost after emission (truncation, a dropped pipe), which
   [Inspect] and [faultroute top] flag. *)
let seq = ref 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let enable () =
  locked (fun () ->
      started_at := Unix.gettimeofday ();
      last_beat := neg_infinity;
      seq := 0);
  Atomic.set enabled true

let disable () = Atomic.set enabled false

let reset () =
  locked (fun () ->
      Hashtbl.reset cells;
      started_at := Unix.gettimeofday ();
      last_beat := neg_infinity;
      seq := 0)

let set_sink f = locked (fun () -> sink := f)
let set_interval s = locked (fun () -> interval := Float.max 0.01 s)

let gauge_cell name =
  match Hashtbl.find_opt cells name with
  | Some (Gauge r) -> r
  | Some (Hist _) -> invalid_arg ("Telemetry: " ^ name ^ " is a histogram")
  | None ->
      let r = ref 0. in
      Hashtbl.replace cells name (Gauge r);
      r

let hist_cell name =
  match Hashtbl.find_opt cells name with
  | Some (Hist h) -> h
  | Some (Gauge _) -> invalid_arg ("Telemetry: " ^ name ^ " is a gauge")
  | None ->
      let h = local_create () in
      Hashtbl.replace cells name (Hist h);
      h

let add_to name v =
  if on () then locked (fun () ->
      let r = gauge_cell name in
      r := !r +. v)

let set_gauge name v =
  if on () then locked (fun () -> gauge_cell name := v)

let max_gauge name v =
  if on () then locked (fun () ->
      let r = gauge_cell name in
      if v > !r then r := v)

let observe_ns name ns =
  if on () then locked (fun () -> local_observe_ns (hist_cell name) ns)

let absorb name (l : local) =
  if on () && l.l_count > 0 then
    locked (fun () ->
        let h = hist_cell name in
        h.l_count <- h.l_count + l.l_count;
        h.l_sum_ns <- h.l_sum_ns +. l.l_sum_ns;
        if l.l_min_ns < h.l_min_ns then h.l_min_ns <- l.l_min_ns;
        if l.l_max_ns > h.l_max_ns then h.l_max_ns <- l.l_max_ns;
        Array.iteri
          (fun i c -> if c > 0 then h.l_buckets.(i) <- h.l_buckets.(i) + c)
          l.l_buckets)

(* ------------------------------------------------------------------ *)
(* Snapshots.                                                          *)

type hist_view = {
  h_count : int;
  h_sum_ns : float;
  h_min_ns : float;
  h_max_ns : float;
  h_buckets : (int * int) list;  (* (lower bound, count), sparse *)
}

type view = {
  uptime_s : float;
  gauges : (string * float) list;
  hists : (string * hist_view) list;
}

let hist_quantile_ns v q =
  if v.h_count = 0 || not (Float.is_finite q) || q < 0. || q > 1. then None
  else
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int v.h_count)))
    in
    (* Sparse buckets are sorted by lower bound; the quantile estimate
       is the holding bucket's upper bound, clamped into [min, max]
       like [Metrics.quantile]. *)
    let rec find seen = function
      | [] -> Some v.h_max_ns
      | (lb, c) :: rest ->
          let seen = seen + c in
          if seen >= rank then
            let upper = if lb <= 1 then float_of_int lb else float_of_int ((2 * lb) - 1) in
            Some (Float.min v.h_max_ns (Float.max v.h_min_ns upper))
          else find seen rest
    in
    find 0 v.h_buckets

let snapshot () =
  locked (fun () ->
      let uptime_s =
        if !started_at = 0. then 0. else Unix.gettimeofday () -. !started_at
      in
      let gauges, hists =
        Hashtbl.fold
          (fun name cell (gs, hs) ->
            match cell with
            | Gauge r -> ((name, !r) :: gs, hs)
            | Hist h ->
                let buckets =
                  List.filter_map
                    (fun i ->
                      if h.l_buckets.(i) = 0 then None
                      else Some (Metrics.bucket_lower_bound i, h.l_buckets.(i)))
                    (List.init bucket_count Fun.id)
                in
                ( gs,
                  ( name,
                    {
                      h_count = h.l_count;
                      h_sum_ns = h.l_sum_ns;
                      h_min_ns = h.l_min_ns;
                      h_max_ns = h.l_max_ns;
                      h_buckets = buckets;
                    } )
                  :: hs ))
          cells ([], [])
      in
      let by_name (a, _) (b, _) = String.compare a b in
      {
        uptime_s;
        gauges = List.sort by_name gauges;
        hists = List.sort by_name hists;
      })

let to_json_line ?seq:seq_n ?(extra = []) (v : view) =
  let hist_json (name, h) =
    let q p =
      match hist_quantile_ns h p with Some ns -> Json.Float ns | None -> Json.Null
    in
    ( name,
      Json.Obj
        [
          ("count", Json.Int h.h_count);
          ("sum_ns", Json.Float h.h_sum_ns);
          ("min_ns", if h.h_count = 0 then Json.Null else Json.Float h.h_min_ns);
          ("max_ns", if h.h_count = 0 then Json.Null else Json.Float h.h_max_ns);
          ("p50_ns", q 0.5);
          ("p95_ns", q 0.95);
          ("p99_ns", q 0.99);
          ( "buckets",
            Json.List
              (List.map
                 (fun (lb, c) -> Json.List [ Json.Int lb; Json.Int c ])
                 h.h_buckets) );
        ] )
  in
  Json.to_string
    (Json.Obj
       ([ ("schema", Json.String "telemetry/v1") ]
       @ (match seq_n with Some n -> [ ("seq", Json.Int n) ] | None -> [])
       @ extra
       @ [
           ("uptime_s", Json.Float v.uptime_s);
           ("gauges", Json.Obj (List.map (fun (n, g) -> (n, Json.Float g)) v.gauges));
           ("histograms", Json.Obj (List.map hist_json v.hists));
         ]))
  ^ "\n"

let heartbeat ?extra () =
  if on () then begin
    let n =
      locked (fun () ->
          incr seq;
          !seq)
    in
    let line = to_json_line ~seq:n ?extra (snapshot ()) in
    let emit = locked (fun () -> !sink) in
    emit line;
    locked (fun () -> last_beat := Unix.gettimeofday ())
  end

let maybe_heartbeat ?extra () =
  if on () then begin
    let due =
      locked (fun () -> Unix.gettimeofday () -. !last_beat >= !interval)
    in
    if due then heartbeat ?extra ()
  end
