(** Run telemetry: wall-clock gauges and latency histograms emitted as
    [telemetry/v1] heartbeat lines — the service-facing sibling of
    {!Timing}.

    Strictly reporting-layer, like {!Timing}: nothing recorded here may
    influence result bytes, so a telemetry-enabled run stays
    byte-identical to a telemetry-off run at any [--jobs]. Values are
    floats (seconds, nanoseconds, counts-as-floats); the deterministic
    integer side lives in {!Metrics}.

    One process-global registry behind a mutex. Callers on hot paths
    that would contend (pool workers) accumulate into a {!local}
    histogram and {!absorb} it once per unit of work; everything else
    calls the locked one-shot recorders. When disabled (the default)
    every recorder reduces to one [Atomic.get] branch. *)

val on : unit -> bool
val enabled : bool Atomic.t

val enable : unit -> unit
(** Arm recording and start the uptime clock. *)

val disable : unit -> unit

val reset : unit -> unit
(** Drop all cells and restart the uptime clock. *)

(** {2 Recording} *)

val add_to : string -> float -> unit
(** Accumulate into a float gauge (creating it at 0). *)

val set_gauge : string -> float -> unit
(** Overwrite a gauge — for instantaneous readings (queue depth). *)

val max_gauge : string -> float -> unit
(** Keep the maximum seen — for peaks. *)

val observe_ns : string -> float -> unit
(** Record one duration (nanoseconds) into the named histogram
    (power-of-two nanosecond buckets shared with {!Metrics}). *)

(** {2 Contention-free accumulation} *)

type local
(** A private histogram a single domain fills without locking. *)

val local_create : unit -> local
val local_observe_ns : local -> float -> unit

val absorb : string -> local -> unit
(** Merge a local histogram into the named global one (one lock
    acquisition); no-op when the local is empty or telemetry is off. *)

(** {2 Snapshots and heartbeats} *)

type hist_view = {
  h_count : int;
  h_sum_ns : float;
  h_min_ns : float;
  h_max_ns : float;
  h_buckets : (int * int) list;
      (** sparse [(lower bound, count)], sorted ascending *)
}

type view = {
  uptime_s : float;  (** seconds since {!enable}/{!reset} *)
  gauges : (string * float) list;  (** name-sorted *)
  hists : (string * hist_view) list;  (** name-sorted *)
}

val snapshot : unit -> view

val hist_quantile_ns : hist_view -> float -> float option
(** Bucket-upper-bound quantile estimate, clamped into [min, max] —
    same semantics as {!Metrics.quantile}. [None] on an empty view or
    [q] outside [\[0, 1\]]. *)

val to_json_line : ?seq:int -> ?extra:(string * Json.t) list -> view -> string
(** One [telemetry/v1] JSONL line:
    [{"schema": "telemetry/v1", "seq": n, ...extra, "uptime_s": ..,
    "gauges": {...}, "histograms": {name: {count, sum_ns, min_ns,
    max_ns, p50_ns, p95_ns, p99_ns, buckets: [[lb, n], ...]}}}].
    Ends in a newline. [extra] fields (session id, progress counters)
    are spliced in right after the schema tag; [seq] (emitted by
    {!heartbeat}, omitted when absent) precedes them. *)

val set_sink : (string -> unit) -> unit
(** Where heartbeat lines go; default writes to stderr. *)

val set_interval : float -> unit
(** Minimum seconds between {!maybe_heartbeat} emissions (default 1.0,
    floor 0.01). *)

val heartbeat : ?extra:(string * Json.t) list -> unit -> unit
(** Emit a snapshot line to the sink now (when enabled). Each emitted
    line carries a monotonic [seq] field (1, 2, 3, ... per
    {!enable}/{!reset}), so a gap in a heartbeat file proves lines
    were dropped after emission — {!Inspect} and [faultroute top]
    flag such gaps. *)

val maybe_heartbeat : ?extra:(string * Json.t) list -> unit -> unit
(** Emit only if at least the configured interval has passed since the
    last emission — cheap enough to call once per batch. *)
