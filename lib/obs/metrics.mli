(** A registry of named counters and histograms with pure, mergeable
    snapshots — the deterministic half of the observability layer.

    Every value is an {e integer} (counts, probe totals, distances).
    Integer sums are associative and commutative, so merging snapshots
    in any order yields byte-identical JSON; the trial engine
    nevertheless merges per-attempt snapshots in fixed chunk order
    (see {!Experiments.Trial}), matching the accumulator discipline of
    [Engine_par.Pool]. Wall-clock profiling lives in {!Timing}, not
    here: floating-point time sums are order-sensitive and would break
    cross-[--jobs] byte identity.

    {2 Ambient recording}

    Instrumented hot paths ({!Percolation.Oracle}, {!Percolation.Reveal},
    routers) do not take a metrics argument — they tick the {e ambient}
    registry, a domain-local slot installed by whoever owns the current
    unit of work (one trial attempt, one simulation run). When metrics
    are disabled ({!on} is [false], the default) every hook reduces to
    one predictable branch; nothing is allocated or written. *)

(** {2 Bucket scheme}

    Histograms bucket by bit length: value [v ≥ 0] lands in bucket
    [bits v] — 0 → 0, 1 → 1, 2..3 → 2, 4..7 → 3, so bucket [i ≥ 1]
    covers [\[2^(i-1), 2^i)]. Exposed so other layers ({!Telemetry})
    can reuse the same scheme. *)

val bucket_count : int
val bucket_of : int -> int

val bucket_lower_bound : int -> int
(** Inclusive lower bound of bucket [i] (0, 1, 2, 4, 8, ...). *)

type t
(** A mutable registry. Not thread-safe: use one per domain (the
    ambient discipline guarantees this) and merge snapshots. *)

val create : unit -> t

val incr : t -> string -> unit
(** Add 1 to the named counter, creating it at 0 first if needed. *)

val add : t -> string -> int -> unit
(** Add [n] to the named counter. *)

val observe : t -> string -> int -> unit
(** Record one value into the named histogram (power-of-two buckets,
    plus exact count / sum / min / max). *)

val peek : t -> string -> int
(** Live value of a counter in the registry, 0 when absent — for thin
    metric views (e.g. [Netsim.Metrics]) that read while the run is
    still mutating.
    @raise Invalid_argument on a histogram name. *)

(** {2 Snapshots} *)

type snapshot
(** An immutable view: name-sorted counters and histograms. *)

val empty : snapshot
val is_empty : snapshot -> bool
val snapshot : t -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Pointwise sum of counters; bucket-wise sum (and count/sum add,
    min/max combine) of histograms. Associative and commutative. *)

val counter : snapshot -> string -> int
(** Value of a counter, 0 when absent. *)

val counters : snapshot -> (string * int) list
(** All counters, sorted by name. *)

val histogram_count : snapshot -> string -> int
(** Number of observations of a histogram, 0 when absent. *)

val histogram_sum : snapshot -> string -> int
(** Sum of observations of a histogram, 0 when absent. *)

val quantile : snapshot -> string -> float -> int option
(** [quantile s name q] estimates the [q]-quantile (q in [\[0, 1\]]) of
    the named histogram from its power-of-two buckets. The estimate is
    the {e inclusive upper bound} of the bucket holding the rank-
    [max 1 (ceil (q * count))] observation — bucket 0 → 0, bucket 1 →
    1, bucket [i ≥ 2] → [2^i - 1] — clamped into [\[min, max\]], so it
    never under-reports by more than one bucket width and is exact at
    the extremes. Deterministic: depends only on the snapshot. [None]
    when the histogram is absent or empty, or [q] is outside [\[0, 1\]]
    or non-finite. *)

val quantiles : snapshot -> string -> float list -> int list option
(** {!quantile} for several probabilities at once; [None] if any single
    query would be [None]. *)

val to_json : snapshot -> string
(** The [metrics/v1] document: a single JSON object
    [{"schema": "metrics/v1", "counters": {...}, "histograms": {...}}]
    with name-sorted fields and sparse [\[lower_bound, count\]] bucket
    pairs — byte-identical for equal snapshots. Ends in a newline. *)

(** {2 Enable switch and ambient registry} *)

val on : unit -> bool
(** Whether metrics collection is enabled (off by default). *)

val enabled : bool Atomic.t
(** The switch behind {!on}, exposed so per-edge hot loops can read it
    with an inlined [Atomic.get] instead of a cross-module call. Treat
    as read-only: always arm through {!enable}/{!disable}. *)

val enable : unit -> unit

val disable : unit -> unit

val with_ambient : t -> (unit -> 'a) -> 'a
(** Install [t] as the current domain's ambient registry for the call,
    restoring the previous one afterwards (exception-safe). *)

val tick : string -> unit
(** {!incr} on the ambient registry; no-op when none is installed. *)

val tick_n : string -> int -> unit
(** {!add} on the ambient registry; no-op when none is installed. *)

val record : string -> int -> unit
(** {!observe} on the ambient registry; no-op when none is installed. *)

(** {2 The process-global accumulator}

    [Trial.run] absorbs each run's merged snapshot here (when {!on});
    the CLI writes it out at exit via [--metrics-out]. Absorption order
    may vary across schedules — integer merges make the final bytes
    identical regardless. *)

val absorb : snapshot -> unit
(** Thread-safe add into the global accumulator. *)

val global_snapshot : unit -> snapshot

val reset_global : unit -> unit
