(* GC and allocation gauges for [telemetry/v1] — the first reader of
   [Gc] anywhere in lib/. Per-domain pressure is measured as
   [Gc.quick_stat] deltas over a pool slot (quick_stat reads only the
   calling domain's counters plus cheap global words, no stop-the-
   world), accumulated locally and published through the same
   few-locks-per-slot path as the pool's busy/tasks gauges. Strictly
   reporting-layer: nothing here can influence result bytes, and when
   telemetry is off nothing reads the clock or the GC. *)

type sample = {
  s_minor_words : float;
  s_promoted_words : float;
  s_major_words : float;
  s_minor_collections : int;
  s_major_collections : int;
}

let sample () =
  let s = Gc.quick_stat () in
  {
    s_minor_words = s.Gc.minor_words;
    s_promoted_words = s.Gc.promoted_words;
    s_major_words = s.Gc.major_words;
    s_minor_collections = s.Gc.minor_collections;
    s_major_collections = s.Gc.major_collections;
  }

type delta = {
  minor_collections : int;
  major_collections : int;
  promoted_words : float;
  allocated_words : float;
}

let delta_since s0 =
  let s1 = sample () in
  {
    minor_collections = s1.s_minor_collections - s0.s_minor_collections;
    major_collections = s1.s_major_collections - s0.s_major_collections;
    promoted_words = s1.s_promoted_words -. s0.s_promoted_words;
    (* Words allocated by this domain: minor allocations plus major
       allocations that did not come from promotion. *)
    allocated_words =
      s1.s_minor_words -. s0.s_minor_words
      +. (s1.s_major_words -. s0.s_major_words)
      -. (s1.s_promoted_words -. s0.s_promoted_words);
  }

let publish_slot ~slot d =
  if Telemetry.on () then begin
    let prefix = Printf.sprintf "runtime.domain.%d." slot in
    Telemetry.add_to
      (prefix ^ "minor_collections")
      (float_of_int d.minor_collections);
    Telemetry.add_to
      (prefix ^ "major_collections")
      (float_of_int d.major_collections);
    Telemetry.add_to (prefix ^ "promoted_words") d.promoted_words;
    Telemetry.add_to (prefix ^ "allocated_words") d.allocated_words
  end

let publish_process () =
  if Telemetry.on () then begin
    let s = Gc.quick_stat () in
    Telemetry.set_gauge "runtime.heap_words" (float_of_int s.Gc.heap_words);
    Telemetry.max_gauge "runtime.top_heap_words"
      (float_of_int s.Gc.top_heap_words);
    Telemetry.set_gauge "runtime.compactions" (float_of_int s.Gc.compactions);
    Telemetry.set_gauge "runtime.minor_collections"
      (float_of_int s.Gc.minor_collections);
    Telemetry.set_gauge "runtime.major_collections"
      (float_of_int s.Gc.major_collections)
  end
