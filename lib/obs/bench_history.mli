(** Bench snapshot history: parse [bench_percolation/v1|v2|v3] JSON,
    keep an append-only JSONL trail, and flag slowdowns against the
    trailing same-mode baseline.

    The cached-path timings ([*.cached_ns]), the bitset reveal engine
    ([reveal_bfs.bitset_ns], v3 only) and the end-to-end
    [trial_run.ns] are the tracked metrics; lazy-path numbers exist
    only to compute speedups and are deliberately not compared (they
    measure the machinery we moved away from). *)

type snapshot = {
  mode : string;  (** ["quick"] or ["full"]. *)
  commit : string option;  (** v2 provenance; [None] for v1 files. *)
  timestamp : string option;  (** ISO 8601 UTC; [None] for v1. *)
  metrics : (string * float) list;
      (** Keys like ["mesh2(m=40)/reveal_bfs.cached_ns"] and
          ["mesh2(m=40)/trial_run.ns"]; values in nanoseconds. *)
}

val of_json : Json.t -> (snapshot, string) result
(** Accepts [bench_percolation/v1] (no provenance fields), [/v2], and
    [/v3] (adds [reveal_bfs.bitset_ns] to the harvested metrics). *)

val parse_lines : string list -> (snapshot list, string) result
(** Parse a JSONL history (one snapshot per line, blanks skipped),
    oldest first — the order the lines appear in. *)

val trailing_baseline : mode:string -> snapshot list -> snapshot option
(** The most recent snapshot of the same mode, i.e. the last matching
    element of an oldest-first list. *)

type regression = {
  key : string;
  baseline_ns : float;
  current_ns : float;
  ratio : float;  (** [current/baseline], always above the threshold. *)
}

val regressions :
  ?threshold:float -> baseline:snapshot -> snapshot -> regression list
(** Metrics of the current snapshot slower than the baseline by more
    than [threshold] (default 0.15, i.e. >15%). Metrics missing from
    either side are skipped. *)
