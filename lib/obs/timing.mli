(** Hierarchical profiling spans — the non-deterministic half of the
    observability layer, kept strictly at the reporting layer.

    Wall-clock measurements can never be byte-reproducible, so they
    live apart from {!Metrics}: each domain keeps its own span stack
    and tree of per-path nodes (no cross-domain contention on the hot
    path) and {!tree}/{!report} fold the domains together on demand.
    Enabling timing changes {e no} computed result — only how long
    things take to compute (two clock reads per span).

    Attribution is by {e stack path}, not by flat name: a span entered
    while another is open becomes that span's child, its wall time is
    part of the parent's [total] but subtracted from the parent's
    [self]. Summing [self] over the whole tree therefore reproduces
    measured wall time exactly once — the flat-table double count the
    old name-keyed implementation documented is gone. Recursive spans
    (same name nested under itself) appear as nested tree nodes; the
    flat {!report} counts such a name's total only at its outermost
    occurrence.

    When disabled (the default) {!span} is the guarded thunk call and
    nothing else. *)

val on : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val enabled : bool Atomic.t
(** The switch behind {!on}, exposed so per-edge hot loops can read it
    with an inlined [Atomic.get] instead of a cross-module call. Treat
    as read-only: always arm through {!enable}/{!disable}. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], attributing its wall time to the tree node
    for [name] under the current stack path when timing is enabled.
    Exception-safe. Stacks deeper than an internal cap (64) stop
    growing the tree — further spans fold into the innermost node. *)

val add : string -> float -> unit
(** Credit [seconds] to [name] directly (for call sites that already
    hold their own timestamps, like the bench harness). The credit
    lands at the current stack position like a zero-length child span:
    it counts toward the enclosing span's children, not its self time.
    No-op when disabled. *)

(** {2 Folded views}

    All views fold the per-domain trees by name path. They read the
    live trees racily — safe, but take them when worker domains are
    quiescent for exact numbers. *)

type tree = {
  span_name : string;
  calls : int;
  total : float;  (** inclusive wall seconds (children counted in) *)
  self : float;  (** exclusive wall seconds (children subtracted) *)
  children : tree list;
}

val tree : unit -> tree list
(** The merged span tree since the last {!reset}; siblings sorted by
    name for stable output. *)

type entry = { name : string; count : int; total_s : float; self_s : float }

val report : unit -> entry list
(** Flat per-name summary of {!tree}, sorted by descending total time.
    [self_s] columns sum to measured wall time; [total_s] is inclusive
    and counts recursive occurrences once. *)

val reset : unit -> unit

val profile_json : unit -> string
(** The [profile/v1] document: a single JSON object
    [{"schema": "profile/v1", "spans": [{name, count, total_s, self_s,
    children: [...]}, ...]}] mirroring {!tree}. Ends in a newline. *)

val folded : unit -> string list
(** Folded-stack lines ["root;child;leaf <self-us>"] for standard
    flamegraph tooling (one line per tree node with nonzero self time,
    value in integer microseconds). Semicolons in span names are
    rewritten to [':'] to keep the format unambiguous. *)

val pp_report : Format.formatter -> entry list -> unit
(** Aligned table: name, call count, total, self, mean. *)
