(** Profiling spans — the non-deterministic half of the observability
    layer, kept strictly at the reporting layer.

    Wall-clock measurements can never be byte-reproducible, so they
    live apart from {!Metrics}: spans accumulate into per-domain
    tables (no cross-domain contention on the hot path) and
    {!report} folds them together on demand. Enabling timing changes
    {e no} computed result — only how long things take to compute
    (two clock reads per span).

    When disabled (the default) {!span} is the guarded thunk call and
    nothing else. *)

val on : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val enabled : bool Atomic.t
(** The switch behind {!on}, exposed so per-edge hot loops can read it
    with an inlined [Atomic.get] instead of a cross-module call. Treat
    as read-only: always arm through {!enable}/{!disable}. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], attributing its wall time to [name] when
    timing is enabled. Exception-safe; nested spans both count their
    own wall time (attribution is by name, not a stack). *)

val add : string -> float -> unit
(** Credit [seconds] to [name] directly (for call sites that already
    hold their own timestamps, like the bench harness). No-op when
    disabled. *)

type entry = { name : string; count : int; total_s : float }

val report : unit -> entry list
(** All spans recorded since the last {!reset}, summed across domains,
    sorted by descending total time. *)

val reset : unit -> unit

val pp_report : Format.formatter -> entry list -> unit
(** Aligned table: name, call count, total, mean. *)
