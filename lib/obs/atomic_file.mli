(** Crash-safe file writes: temp file in the target directory, then an
    atomic rename.

    A process killed mid-write must never leave a half-written
    [verdicts/*.json] baseline or a corrupt [BENCH_history.jsonl] line
    behind: readers see either the old contents or the new, nothing in
    between. POSIX [rename(2)] within one directory gives exactly that,
    so every write lands in a [.tmp.<pid>] sibling first.

    Append-only streams that must survive mid-line truncation by design
    (the [checkpoint/v1] trial journal) do {e not} use this module —
    their readers tolerate a torn final line instead, which is cheaper
    than rewriting the file per record. *)

val mkdir_p : string -> unit
(** Create a directory and any missing parents ([mkdir -p]). Existing
    directories are fine; raises [Unix.Unix_error] only on genuine
    failures (permissions, a file in the way). *)

val write : path:string -> contents:string -> unit
(** Replace the file at [path] with [contents] atomically. Parent
    directories are created as needed. *)

val append_line : path:string -> line:string -> unit
(** Append [line] (which should include its newline) to [path]
    atomically: the old contents plus the new line are written to a
    temp sibling which then replaces [path], so a crash can corrupt
    neither the existing history nor the new record. Creates the file
    (and parent directories) when missing. Not for hot paths — cost is
    proportional to the file size. *)
