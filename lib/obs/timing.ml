let enabled = Atomic.make false

let[@inline] on () = Atomic.get enabled
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false

(* Each domain keeps a span *stack* plus a tree of per-path nodes;
   contexts register themselves in a global list on first use so
   [tree]/[report] can fold them. Nodes are only written by their
   owning domain — readers fold racily, which is fine for a profiling
   summary. *)

(* Beyond this depth new spans stop growing the tree and fold into the
   innermost frame's node — a runaway recursion gets a bounded tree
   instead of one node per stack level. *)
let max_depth = 64

type node = {
  name : string;
  mutable count : int;
  mutable total_s : float;
  mutable self_s : float;
  (* How many frames on this domain's stack point at this node right
     now. Only the outermost activation adds to [total_s]; without the
     guard a depth-capped (node-reusing) span would count its wall
     time once per nesting level. *)
  mutable active : int;
  children : (string, node) Hashtbl.t;
}

type frame = {
  node : node;
  start : float;
  mutable child_s : float;
  outer : bool;
}

type ctx = {
  roots : (string, node) Hashtbl.t;
  mutable stack : frame list;
  mutable depth : int;
}

let ctxs_lock = Mutex.create ()
let ctxs : ctx list ref = ref []

let domain_ctx : ctx Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let c = { roots = Hashtbl.create 16; stack = []; depth = 0 } in
      Mutex.lock ctxs_lock;
      ctxs := c :: !ctxs;
      Mutex.unlock ctxs_lock;
      c)

let find_node ctx name =
  let table =
    match ctx.stack with [] -> ctx.roots | f :: _ -> f.node.children
  in
  match Hashtbl.find_opt table name with
  | Some n -> n
  | None ->
      let n =
        {
          name;
          count = 0;
          total_s = 0.;
          self_s = 0.;
          active = 0;
          children = Hashtbl.create 4;
        }
      in
      Hashtbl.replace table name n;
      n

let enter ctx name =
  let node =
    match ctx.stack with
    | top :: _ when ctx.depth >= max_depth -> top.node
    | _ -> find_node ctx name
  in
  let frame =
    { node; start = Unix.gettimeofday (); child_s = 0.; outer = node.active = 0 }
  in
  node.active <- node.active + 1;
  ctx.stack <- frame :: ctx.stack;
  ctx.depth <- ctx.depth + 1;
  frame

let leave ctx frame =
  let elapsed = Unix.gettimeofday () -. frame.start in
  (match ctx.stack with
  | top :: rest when top == frame ->
      ctx.stack <- rest;
      ctx.depth <- ctx.depth - 1
  | stack ->
      (* Unbalanced pop — a concurrent [reset] tore the stack. Drop
         everything down to (and including) our frame. *)
      let rec pop = function
        | top :: rest when top == frame -> rest
        | _ :: rest -> pop rest
        | [] -> []
      in
      ctx.stack <- pop stack;
      ctx.depth <- List.length ctx.stack);
  let node = frame.node in
  node.active <- node.active - 1;
  node.count <- node.count + 1;
  if frame.outer then node.total_s <- node.total_s +. elapsed;
  node.self_s <- node.self_s +. Float.max 0. (elapsed -. frame.child_s);
  match ctx.stack with
  | parent :: _ -> parent.child_s <- parent.child_s +. elapsed
  | [] -> ()

let span name f =
  if not (on ()) then f ()
  else begin
    let ctx = Domain.DLS.get domain_ctx in
    let frame = enter ctx name in
    Fun.protect ~finally:(fun () -> leave ctx frame) f
  end

let add name seconds =
  if on () then begin
    let ctx = Domain.DLS.get domain_ctx in
    let node =
      match ctx.stack with
      | top :: _ when ctx.depth >= max_depth -> top.node
      | _ -> find_node ctx name
    in
    node.count <- node.count + 1;
    node.self_s <- node.self_s +. seconds;
    if node.active = 0 then node.total_s <- node.total_s +. seconds;
    match ctx.stack with
    | parent :: _ -> parent.child_s <- parent.child_s +. seconds
    | [] -> ()
  end

(* ------------------------------------------------------------------ *)
(* Folding: merge the per-domain trees by name path.                   *)

type tree = {
  span_name : string;
  calls : int;
  total : float;
  self : float;
  children : tree list;
}

let rec merge_tables (tables : (string, node) Hashtbl.t list) : tree list =
  let names = Hashtbl.create 16 in
  List.iter
    (fun t -> Hashtbl.iter (fun name _ -> Hashtbl.replace names name ()) t)
    tables;
  Hashtbl.fold (fun name () acc -> name :: acc) names []
  |> List.sort String.compare
  |> List.map (fun name ->
         let nodes = List.filter_map (fun t -> Hashtbl.find_opt t name) tables in
         {
           span_name = name;
           calls = List.fold_left (fun a n -> a + n.count) 0 nodes;
           total = List.fold_left (fun a n -> a +. n.total_s) 0. nodes;
           self = List.fold_left (fun a n -> a +. n.self_s) 0. nodes;
           children = merge_tables (List.map (fun (n : node) -> n.children) nodes);
         })

let tree () =
  Mutex.lock ctxs_lock;
  let snapshot = !ctxs in
  Mutex.unlock ctxs_lock;
  merge_tables (List.map (fun c -> c.roots) snapshot)

type entry = { name : string; count : int; total_s : float; self_s : float }

type acc_cell = {
  mutable a_count : int;
  mutable a_total : float;
  mutable a_self : float;
}

let report () =
  let acc : (string, acc_cell) Hashtbl.t = Hashtbl.create 16 in
  let rec walk ancestors (t : tree) =
    let c =
      match Hashtbl.find_opt acc t.span_name with
      | Some c -> c
      | None ->
          let c = { a_count = 0; a_total = 0.; a_self = 0. } in
          Hashtbl.replace acc t.span_name c;
          c
    in
    c.a_count <- c.a_count + t.calls;
    c.a_self <- c.a_self +. t.self;
    (* A recursive occurrence is already inside an ancestor's total for
       the same name — adding it again would double count the flat
       column. *)
    if not (List.mem t.span_name ancestors) then c.a_total <- c.a_total +. t.total;
    List.iter (walk (t.span_name :: ancestors)) t.children
  in
  List.iter (walk []) (tree ());
  Hashtbl.fold
    (fun name c l ->
      { name; count = c.a_count; total_s = c.a_total; self_s = c.a_self } :: l)
    acc []
  |> List.sort (fun a b ->
         match Float.compare b.total_s a.total_s with
         | 0 -> String.compare a.name b.name
         | c -> c)

let reset () =
  Mutex.lock ctxs_lock;
  List.iter
    (fun c ->
      Hashtbl.reset c.roots;
      c.stack <- [];
      c.depth <- 0)
    !ctxs;
  Mutex.unlock ctxs_lock

(* ------------------------------------------------------------------ *)
(* Exports.                                                            *)

let profile_json () =
  let rec node_json t =
    Json.Obj
      ([
         ("name", Json.String t.span_name);
         ("count", Json.Int t.calls);
         ("total_s", Json.Float t.total);
         ("self_s", Json.Float t.self);
       ]
      @
      if t.children = [] then []
      else [ ("children", Json.List (List.map node_json t.children)) ])
  in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String "profile/v1");
         ("spans", Json.List (List.map node_json (tree ())));
       ])
  ^ "\n"

let folded () =
  (* Flamegraph folded-stack lines: "root;child;leaf <self-us>". The
     separator is load-bearing for the format, so scrub it from names. *)
  let clean name = String.map (fun c -> if c = ';' then ':' else c) name in
  let lines = ref [] in
  let rec walk prefix t =
    let path =
      if prefix = "" then clean t.span_name else prefix ^ ";" ^ clean t.span_name
    in
    let us = int_of_float (Float.round (t.self *. 1e6)) in
    if us > 0 then lines := Printf.sprintf "%s %d" path us :: !lines;
    List.iter (walk path) t.children
  in
  List.iter (walk "") (tree ());
  List.rev !lines

let pp_report ppf entries =
  let width =
    List.fold_left (fun acc e -> Stdlib.max acc (String.length e.name)) 10 entries
  in
  Format.fprintf ppf "%-*s %10s %12s %12s %12s@." width "span" "calls" "total ms"
    "self ms" "mean us";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-*s %10d %12.2f %12.2f %12.2f@." width e.name e.count
        (e.total_s *. 1e3) (e.self_s *. 1e3)
        (if e.count = 0 then 0.0
         else e.total_s /. float_of_int e.count *. 1e6))
    entries
