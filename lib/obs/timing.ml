let enabled = Atomic.make false

let[@inline] on () = Atomic.get enabled
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false

(* Each domain accumulates into its own table; tables register
   themselves in a global list on first use so [report] can fold them.
   Entries are only written by their owning domain — [report] reads
   them racily, which is fine for a profiling summary. *)

type cell = { mutable count : int; mutable total_s : float }

type table = (string, cell) Hashtbl.t

let tables_lock = Mutex.create ()
let tables : table list ref = ref []

let domain_table : table Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let t : table = Hashtbl.create 16 in
      Mutex.lock tables_lock;
      tables := t :: !tables;
      Mutex.unlock tables_lock;
      t)

let add name seconds =
  if on () then begin
    let table = Domain.DLS.get domain_table in
    match Hashtbl.find_opt table name with
    | Some cell ->
        cell.count <- cell.count + 1;
        cell.total_s <- cell.total_s +. seconds
    | None -> Hashtbl.replace table name { count = 1; total_s = seconds }
  end

let span name f =
  if not (on ()) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> add name (Unix.gettimeofday () -. t0)) f
  end

type entry = { name : string; count : int; total_s : float }

let report () =
  Mutex.lock tables_lock;
  let snapshot = !tables in
  Mutex.unlock tables_lock;
  let merged : (string, cell) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (table : table) ->
      Hashtbl.iter
        (fun name (cell : cell) ->
          match Hashtbl.find_opt merged name with
          | Some m ->
              m.count <- m.count + cell.count;
              m.total_s <- m.total_s +. cell.total_s
          | None -> Hashtbl.replace merged name { count = cell.count; total_s = cell.total_s })
        table)
    snapshot;
  Hashtbl.fold
    (fun name (cell : cell) acc ->
      { name; count = cell.count; total_s = cell.total_s } :: acc)
    merged []
  |> List.sort (fun a b ->
         match Float.compare b.total_s a.total_s with
         | 0 -> String.compare a.name b.name
         | c -> c)

let reset () =
  Mutex.lock tables_lock;
  List.iter Hashtbl.reset !tables;
  Mutex.unlock tables_lock

let pp_report ppf entries =
  let width =
    List.fold_left (fun acc e -> Stdlib.max acc (String.length e.name)) 10 entries
  in
  Format.fprintf ppf "%-*s %10s %12s %12s@." width "span" "calls" "total ms" "mean us";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-*s %10d %12.2f %12.2f@." width e.name e.count
        (e.total_s *. 1e3)
        (if e.count = 0 then 0.0 else e.total_s /. float_of_int e.count *. 1e6))
    entries
