type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emitter.                                                            *)

let escape buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let rec emit buffer = function
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float f when not (Float.is_finite f) ->
      (* JSON has no nan/inf literal. Emitting them raw would produce a
         document no parser (including ours) accepts, so non-finite
         floats degrade to null — see the policy note in the mli.
         Emitters that must round-trip non-finite values encode them
         as strings instead (Verdict.Baseline). *)
      Buffer.add_string buffer "null"
  | Float f ->
      (* %.17g round-trips every double; strip needless width by trying
         shorter forms first. *)
      let s =
        let short = Printf.sprintf "%.12g" f in
        if float_of_string short = f then short else Printf.sprintf "%.17g" f
      in
      Buffer.add_string buffer
        (if Float.is_integer f && Float.abs f < 1e15 then
           Printf.sprintf "%.1f" f
         else s)
  | String s -> escape buffer s
  | List xs ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buffer ", ";
          emit buffer x)
        xs;
      Buffer.add_char buffer ']'
  | Obj fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buffer ", ";
          escape buffer k;
          Buffer.add_string buffer ": ";
          emit buffer v)
        fields;
      Buffer.add_char buffer '}'

let to_string t =
  let buffer = Buffer.create 128 in
  emit buffer t;
  Buffer.contents buffer

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over a string with an index cursor.       *)

exception Parse_error of string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let fail message = raise (Parse_error message) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C at offset %d" c !pos)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "bad literal at offset %d" !pos)
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        let c = input.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buffer
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = input.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
                Buffer.add_char buffer e;
                loop ()
            | 'n' ->
                Buffer.add_char buffer '\n';
                loop ()
            | 't' ->
                Buffer.add_char buffer '\t';
                loop ()
            | 'r' ->
                Buffer.add_char buffer '\r';
                loop ()
            | 'b' ->
                Buffer.add_char buffer '\b';
                loop ()
            | 'f' ->
                Buffer.add_char buffer '\012';
                loop ()
            | 'u' ->
                if !pos + 4 > n then fail "short \\u escape";
                let code = int_of_string ("0x" ^ String.sub input !pos 4) in
                pos := !pos + 4;
                (* ASCII only in our own emitter; replace others. *)
                if code < 0x80 then Buffer.add_char buffer (Char.chr code)
                else Buffer.add_char buffer '?';
                loop ()
            | _ -> fail "bad escape")
        | c ->
            Buffer.add_char buffer c;
            loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char input.[!pos] do
      advance ()
    done;
    let s = String.sub input start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" s)
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "bad number %S" s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            fields := (key, value) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail (Printf.sprintf "expected ',' or '}' at offset %d" !pos)
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let value = parse_value () in
            items := value :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail (Printf.sprintf "expected ',' or ']' at offset %d" !pos)
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let value = parse_value () in
    skip_ws ();
    if !pos <> n then fail (Printf.sprintf "trailing garbage at offset %d" !pos);
    value
  with
  | value -> Ok value
  | exception Parse_error message -> Error message

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None
