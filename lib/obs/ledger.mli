(** The run ledger — the [runledger/v1] JSONL stream.

    Every [faultroute] invocation that asks for one ([--ledger FILE])
    appends exactly one record binding the run to its outputs: the
    subcommand, a canonical config digest, the root seed and job
    count, wall time, the process exit code, and the path + content
    digest of every artifact the run wrote. Appends go through
    {!Atomic_file.append_line}, so a crashed writer leaves at worst a
    torn final line — which {!parse_lines} tolerates, mirroring the
    checkpoint/v1 journal.

    The ledger is {e operational} metadata, deliberately outside the
    determinism contract: wall time and digests of wall-clock-bearing
    artifacts (telemetry, profiles) vary run to run. What it buys is
    {e auditability}: [faultroute obs validate] cross-checks every
    recorded digest against the file on disk, so a tampered or stale
    artifact is detected (exit 2). *)

val schema : string
(** ["runledger/v1"]. *)

type artifact = { path : string; digest : string }
(** [digest] is the hex MD5 of the file bytes ({!digest_file}). *)

type record = {
  subcommand : string;
  config_digest : string;
      (** Canonical invocation digest ({!digest_string} over the argv
          vector) — ties the record to the exact flags used. *)
  seed : int64;
  jobs : int;
  wall_s : float;
  exit_code : int;
  artifacts : artifact list;
}

val digest_string : string -> string
(** Hex MD5 of a string — the same stdlib convention as
    [Experiments.Checkpoint.digest_key]. *)

val digest_file : string -> (string, string) result
(** Hex MD5 of a file's bytes; [Error] on an unreadable path. *)

val record_line : record -> string
(** One [runledger/v1] JSON line, newline included. *)

val append : path:string -> record -> unit
(** Append one record to the ledger at [path] (atomic rewrite). *)

val parse_lines : string list -> (record list * bool, string) result
(** Parse ledger lines (blank lines skipped). A malformed {e final}
    line is a torn append: it is dropped and reported as [true] in the
    second component. A malformed line anywhere else is corruption and
    an [Error]. *)

val verify : record list -> string list
(** Cross-check every recorded artifact against the file on disk:
    missing files and digest mismatches (tampered or stale artifacts)
    each produce one message; [[]] means the ledger matches reality.
    Paths are resolved relative to the current working directory, as
    they were recorded. *)

(** {2 The ambient process ledger}

    The CLI arms one ledger per invocation; everything below is a
    no-op unless {!arm} was called. *)

val arm :
  path:string ->
  subcommand:string ->
  config_digest:string ->
  seed:int64 ->
  jobs:int ->
  unit
(** Start the wall clock and remember the invocation identity. *)

val armed : unit -> bool

val note_artifact : string -> unit
(** Register a path the run will (or did) write; duplicates are
    ignored. Digests are taken at {!finalize} time, after every sink
    has been flushed and closed. *)

val finalize : exit_code:int -> unit
(** Digest every registered artifact that exists on disk, append the
    record, and disarm. Call exactly once, after the subcommand's exit
    code is known. *)
