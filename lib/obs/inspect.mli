(** One inspector for the whole observability artifact family — the
    engine behind [faultroute obs].

    {!load} sniffs a file by the [schema] tag on its first JSON line
    and parses {e and validates} it in one step: [trace/v1] (JSONL,
    replay-checked on load), [metrics/v1], [profile/v1],
    [telemetry/v1] (JSONL heartbeats; the last line wins) and
    [bench_percolation/v1..v3] documents or history trails. A
    successful load {e is} schema validation — "obs validate" prints
    nothing but the verdict. *)

type artifact

type kind = [ `Trace | `Metrics | `Telemetry | `Profile | `Bench ]

val kind : artifact -> kind
val kind_name : kind -> string

val load : string -> (artifact, string) result
(** Read, sniff, parse and validate one artifact file. The error
    message is prefixed with the path. *)

val report : Format.formatter -> artifact -> unit
(** Pretty-print one artifact: counter/gauge tables (with per-domain
    pool utilization derived from the [pool.domain.<slot>.*] gauges),
    histogram quantile rows (p50/p95/p99/max, [_ns] names scaled to
    ms), the indented span tree for profiles, the replay verdict for
    traces, and snapshots + trailing-baseline regressions for bench
    histories. *)

val aggregate : artifact -> artifact -> (artifact, string) result
(** Merge two artifacts into one ([metrics/v1] only: pointwise counter
    and bucket sums, the same merge the engine itself uses). *)

val diff : Format.formatter -> artifact -> artifact -> (unit, string) result
(** Print what changed from the first artifact to the second. Both
    must be the same kind: counter/gauge/histogram deltas for metrics
    and telemetry, significant span-time movement for profiles
    (>1% and >0.1 ms), replay-verdict counts for traces, and
    regression flags ({!Bench_history.regressions}) for bench
    histories. *)

val folded_of_profile : artifact -> (string list, string) result
(** Flamegraph folded-stack lines ["a;b;c <self-us>"] from a
    [profile/v1] artifact (zero-self nodes skipped). *)
