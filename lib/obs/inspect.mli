(** One inspector for the whole observability artifact family — the
    engine behind [faultroute obs].

    {!load} sniffs a file by the [schema] tag on its first JSON line
    and parses {e and validates} it in one step: [trace/v1] (JSONL,
    replay-checked on load), [metrics/v1], [profile/v1],
    [telemetry/v1] (JSONL heartbeats; the last line wins),
    [runledger/v1] (JSONL run records; every recorded artifact digest
    is cross-checked against the file on disk, so a tampered or stale
    artifact fails the load) and [bench_percolation/v1..v3] documents
    or history trails. A successful load {e is} schema validation —
    "obs validate" prints nothing but the verdict. *)

type hist = {
  count : int;
  sum : float;
  min_v : float option;
  max_v : float option;
  buckets : (int * int) list;  (** (lower bound, count), ascending *)
}

type table = {
  counters : (string * float) list;  (** name-sorted *)
  hists : (string * hist) list;  (** name-sorted *)
}
(** The normalized counter/gauge + histogram shape metrics and
    telemetry both parse into — exposed so {!Top} can render
    heartbeats with the same machinery. *)

type artifact

type kind = [ `Trace | `Metrics | `Telemetry | `Profile | `Bench | `Ledger ]

val kind : artifact -> kind
val kind_name : kind -> string

val hist_quantile : hist -> float -> float option
(** Bucket-upper-bound quantile clamped into [min, max] — the same
    estimator as [Metrics.quantile]. *)

val utilization_rows : (string * float) list -> (int * float * float * float) list
(** Fold [pool.domain.<slot>.busy_s/.wall_s/.tasks] gauges into one
    [(slot, busy_s, wall_s, tasks)] row per domain slot, slot-sorted. *)

val parse_heartbeat :
  Json.t -> (int option * float * string option * table, string) result
(** Decompose one [telemetry/v1] heartbeat line: monotonic [seq]
    (absent on legacy files), uptime seconds, optional session label,
    and the gauge/histogram table. *)

val load : string -> (artifact, string) result
(** Read, sniff, parse and validate one artifact file. The error
    message is prefixed with the path. *)

val report : Format.formatter -> artifact -> unit
(** Pretty-print one artifact: counter/gauge tables (with per-domain
    pool utilization derived from the [pool.domain.<slot>.*] gauges),
    histogram quantile rows (p50/p95/p99/max, [_ns] names scaled to
    ms), the indented span tree for profiles, the replay verdict for
    traces (including the query-span lifecycle audit), run rows with
    their artifact digests for ledgers, and snapshots +
    trailing-baseline regressions for bench histories. An empty table
    prints an explicit ["(no samples)"] row; telemetry with heartbeat
    [seq] gaps prints a warning line. *)

val aggregate : artifact -> artifact -> (artifact, string) result
(** Merge two artifacts into one ([metrics/v1] only: pointwise counter
    and bucket sums, the same merge the engine itself uses). *)

val diff : Format.formatter -> artifact -> artifact -> (unit, string) result
(** Print what changed from the first artifact to the second. Both
    must be the same kind: counter/gauge/histogram deltas for metrics
    and telemetry, significant span-time movement for profiles
    (>1% and >0.1 ms), replay-verdict counts for traces, and
    regression flags ({!Bench_history.regressions}) for bench
    histories. *)

val folded_of_profile : artifact -> (string list, string) result
(** Flamegraph folded-stack lines ["a;b;c <self-us>"] from a
    [profile/v1] artifact (zero-self nodes skipped). *)
