(* The rendering core of `faultroute top`: one telemetry/v1 heartbeat
   line in, one plain-text frame out. Pure — the CLI owns tailing,
   ANSI clearing and pacing, so every layout decision here is unit-
   testable and `--once`/`--replay` snapshots are deterministic given
   the heartbeat bytes. *)

type frame = {
  seq : int option;
  uptime_s : float;
  session : string option;
  table : Inspect.table;
}

let ( let* ) = Result.bind

let frame_of_line line =
  let* j = Json.of_string (String.trim line) in
  match Option.bind (Json.member "schema" j) Json.to_str with
  | Some "telemetry/v1" ->
      let* seq, uptime_s, session, table = Inspect.parse_heartbeat j in
      Ok { seq; uptime_s; session; table }
  | Some other -> Error (Printf.sprintf "not a telemetry/v1 line (%S)" other)
  | None -> Error "line has no \"schema\" tag"

let gap ~prev f =
  match (prev.seq, f.seq) with
  | Some p, Some s when s > p + 1 -> s - p - 1
  | _ -> 0

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let is_suffix ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let scaled name v = if is_suffix ~suffix:"_ns" name then v /. 1e6 else v
let unit_of name = if is_suffix ~suffix:"_ns" name then "ms" else ""

(* runtime.domain.<slot>.{minor,major,promoted,allocated} gauges folded
   into one GC row per domain slot, like Inspect.utilization_rows. *)
let gc_rows counters =
  let slots = Hashtbl.create 8 in
  List.iter
    (fun (name, v) ->
      match String.split_on_char '.' name with
      | [ "runtime"; "domain"; slot; leaf ] -> (
          match int_of_string_opt slot with
          | None -> ()
          | Some slot ->
              let row =
                match Hashtbl.find_opt slots slot with
                | Some r -> r
                | None ->
                    let r = (ref 0., ref 0., ref 0., ref 0.) in
                    Hashtbl.replace slots slot r;
                    r
              in
              let minor, major, promoted, allocated = row in
              (match leaf with
              | "minor_collections" -> minor := v
              | "major_collections" -> major := v
              | "promoted_words" -> promoted := v
              | "allocated_words" -> allocated := v
              | _ -> ()))
      | _ -> ())
    counters;
  Hashtbl.fold
    (fun slot (minor, major, promoted, allocated) acc ->
      (slot, !minor, !major, !promoted, !allocated) :: acc)
    slots []
  |> List.sort compare

let mwords v = v /. 1e6

let render f =
  let buffer = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buffer in
  let t = f.table in
  let counter name = List.assoc_opt name t.Inspect.counters in
  Format.fprintf ppf "faultroute top — uptime %.3f s" f.uptime_s;
  (match f.seq with
  | Some n -> Format.fprintf ppf " · beat %d" n
  | None -> ());
  (match f.session with
  | Some s -> Format.fprintf ppf " · session %s" s
  | None -> ());
  Format.fprintf ppf "@.";
  (* Progress: the serve gauges, when this heartbeat came from a serve
     session. *)
  (match counter "serve.admitted" with
  | Some admitted ->
      let v name = Option.value (counter name) ~default:0. in
      Format.fprintf ppf
        "progress   admitted %.0f · answered %.0f · rejected %.0f · queue \
         %.0f (peak %.0f)@."
        admitted (v "serve.answered") (v "serve.rejected")
        (v "serve.queue_depth")
        (v "serve.queue_depth_peak")
  | None -> ());
  (* Pool utilization per domain slot. *)
  (match Inspect.utilization_rows t.Inspect.counters with
  | [] -> ()
  | rows ->
      Format.fprintf ppf "pool       %6s %10s %10s %7s %10s@." "domain"
        "busy s" "wall s" "util%" "tasks";
      List.iter
        (fun (slot, busy, wall, tasks) ->
          let util = if wall > 0. then 100. *. busy /. wall else 0. in
          Format.fprintf ppf "           %6d %10.3f %10.3f %7.1f %10.0f@."
            slot busy wall util tasks)
        rows);
  (* GC pressure per domain, plus the process heap. *)
  (match gc_rows t.Inspect.counters with
  | [] -> ()
  | rows ->
      Format.fprintf ppf "gc         %6s %8s %8s %12s %12s@." "domain"
        "minor" "major" "promoted Mw" "alloc Mw";
      List.iter
        (fun (slot, minor, major, promoted, allocated) ->
          Format.fprintf ppf "           %6d %8.0f %8.0f %12.2f %12.2f@." slot
            minor major (mwords promoted) (mwords allocated))
        rows);
  (match counter "runtime.heap_words" with
  | Some heap ->
      Format.fprintf ppf "heap       %.2f Mwords" (mwords heap);
      (match counter "runtime.top_heap_words" with
      | Some top -> Format.fprintf ppf " (peak %.2f)" (mwords top)
      | None -> ());
      (match counter "runtime.major_collections" with
      | Some majors -> Format.fprintf ppf " · %.0f major GCs" majors
      | None -> ());
      Format.fprintf ppf "@."
  | None -> ());
  (* Latency quantiles, one row per histogram (per-op serve latencies,
     pool task service and queue wait). *)
  (match t.Inspect.hists with
  | [] -> ()
  | hists ->
      let width =
        List.fold_left
          (fun acc (n, _) -> Stdlib.max acc (String.length n))
          9 hists
      in
      Format.fprintf ppf "latency    %-*s %10s %9s %9s %9s %9s %4s@." width
        "op" "count" "p50" "p95" "p99" "max" "unit";
      List.iter
        (fun (name, h) ->
          let q p =
            match Inspect.hist_quantile h p with
            | Some v -> Printf.sprintf "%.3g" (scaled name v)
            | None -> "-"
          in
          let mx =
            match h.Inspect.max_v with
            | Some v -> Printf.sprintf "%.3g" (scaled name v)
            | None -> "-"
          in
          Format.fprintf ppf "           %-*s %10d %9s %9s %9s %9s %4s@."
            width name h.Inspect.count (q 0.5) (q 0.95) (q 0.99) mx
            (unit_of name))
        hists);
  Format.pp_print_flush ppf ();
  Buffer.contents buffer
