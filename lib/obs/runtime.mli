(** GC and allocation gauges for [telemetry/v1] heartbeats.

    Two publication paths, both no-ops when {!Telemetry.on} is false:

    - {e per pool slot}: a worker takes a {!sample} when it joins a
      pool dispatch and publishes the {!delta_since} it at slot end —
      [runtime.domain.<slot>.minor_collections / major_collections /
      promoted_words / allocated_words] accumulate across dispatches
      exactly like the pool's [busy_s]/[tasks] gauges, costing a
      handful of lock acquisitions per slot and nothing per task.
    - {e per heartbeat}: {!publish_process} snapshots the caller
      domain's [Gc.quick_stat] into instantaneous process gauges
      ([runtime.heap_words], [runtime.top_heap_words],
      [runtime.compactions], [runtime.minor_collections],
      [runtime.major_collections]) right before a heartbeat.

    Strictly reporting-layer: answers and artifacts on the
    deterministic side are byte-identical with these gauges on or
    off. *)

type sample
(** A [Gc.quick_stat] capture for the calling domain. *)

val sample : unit -> sample

type delta = {
  minor_collections : int;
  major_collections : int;
  promoted_words : float;
  allocated_words : float;
      (** Words this domain allocated since the sample: minor words
          plus non-promotion major words. *)
}

val delta_since : sample -> delta
(** GC activity on the calling domain since [sample] was taken. *)

val publish_slot : slot:int -> delta -> unit
(** Accumulate a slot's delta into the [runtime.domain.<slot>.*]
    gauges (one [add_to] per field). *)

val publish_process : unit -> unit
(** Overwrite the instantaneous process gauges from a fresh
    [Gc.quick_stat] — call just before emitting a heartbeat. *)
