(** Structured probe-level tracing — the [trace/v1] JSONL stream.

    The paper's sole cost measure is the probe count (Definition 2);
    this module records {e where} those probes go. Instrumented code
    ({!Percolation.Oracle}, {!Percolation.Reveal}, {!Routing.Router},
    the trial engine) emits events into a per-attempt ring buffer
    installed by {!capture}; the trial engine collects the buffers and
    writes them to the JSONL sink in attempt order, {e out of band} —
    after the deterministic accumulator merge, never from worker
    domains — so tracing can change neither results nor their bytes,
    and the trace file itself is byte-identical for every [--jobs]
    value.

    When tracing is off (the default) every hook reduces to one
    predictable branch on {!on}; nothing is allocated.

    {2 The [trace/v1] schema}

    One JSON object per line. A run starts with
    [{"schema": "trace/v1", "ev": "run_start", ...}] carrying the trial
    spec, ends with [{"ev": "run_end", "attempts": n, "accepted": m}],
    and in between each attempt contributes, in attempt order:
    [attempt_start], zero or more [reveal_step] (ground-truth
    conditioning BFS), zero or more [probe] (the oracle's counted
    interface; [fresh] marks a first-time — i.e. counted — probe),
    at most one [budget_hit], and a final [accept] or [reject].
    A [dropped] line reports ring-buffer overflow (capacity
    {!default_ring_capacity}); the replay checker treats such attempts
    as unverifiable rather than wrong. Under supervision, run-level
    [fault] lines (see {!fault_line}) may appear between the last
    attempt and [run_end].

    Serve runs additionally carry {e query lifecycle spans}: [qspan]
    events keyed by admission index [q] with stage
    [admit]/[enqueue]/[execute]/[tally]. The admit/enqueue/tally forms
    are run-level lines written by the sequential session loop (see
    {!qspan_line}); the execute form is emitted inside the query's
    attempt ring and carries an [attempt] field. The replay checker
    verifies per-query ordering and exactly-once tally. *)

type reject_reason = Disconnected | Reveal_limit

type qstage = Admit | Enqueue | Execute | Tally
(** Lifecycle stage of one admitted serve query. *)

val qstage_string : qstage -> string

type event =
  | Attempt_start of { index : int }
  | Reveal_step of { v : int; dist : int }
      (** Ground-truth BFS discovered [v] at percolation distance
          [dist]. Uncounted by the oracle — conditioning, not routing. *)
  | Probe of { u : int; v : int; open_ : bool; fresh : bool }
      (** One oracle probe of edge [{u,v}]. [fresh = true] increments
          [distinct_probes]; [fresh = false] covers both re-probes and
          free [probe_known] hits, neither of which counts. *)
  | Budget_hit of { probes : int }
      (** The distinct-probe budget blocked a fresh probe. *)
  | Reject of { reason : reject_reason }
      (** World resampled: pair not connected ([Disconnected]) or the
          reveal limit truncated the verdict ([Reveal_limit]). *)
  | Accept of { distance : int; probes : int }
      (** Conditioned attempt measured: ground-truth distance and the
          oracle's final [distinct_probes] (the observation, possibly
          censored at the budget). *)
  | Query_span of { q : int; stage : qstage }
      (** A query lifecycle stage. Only [Execute] is emitted through
          the ring (inside the query's attempt); the run-level stages
          use {!qspan_line}. *)

val distinct_probes_of_events : event list -> int
(** Number of [Probe] events with [fresh = true] — by the oracle's
    counting contract, exactly [Oracle.distinct_probes] at the end of
    the attempt. The replay checker's independent derivation. *)

(** {2 Enable switch and sink} *)

val on : unit -> bool
(** Whether tracing is enabled (off by default). *)

val enabled : bool Atomic.t
(** The switch behind {!on}, exposed so per-edge hot loops can read it
    with an inlined [Atomic.get] instead of a cross-module call. Treat
    as read-only: arming tracing without installing a sink is a bug —
    always go through {!enable}/{!disable}. *)

val enable : sink:(string -> unit) -> unit
(** Arm tracing; [sink] receives complete JSONL lines (newline
    included) from {!write_line}. *)

val disable : unit -> unit
(** Disarm and drop the sink. *)

val write_line : string -> unit
(** Send text to the sink (the trial engine passes a whole run's lines
    in one call, so concurrent runs never interleave); no-op when
    tracing is off. An ambient sink installed by {!with_sink} takes
    precedence over the global one. *)

val with_sink : (string -> unit) -> (unit -> 'a) -> 'a
(** Redirect this domain's {!write_line} output into [sink] for the
    call (exception-safe). Lets an orchestrator that runs work units in
    parallel — e.g. [Catalog.run_all] running experiments on the pool —
    buffer each unit's trace and forward the buffers in deterministic
    order afterwards, keeping the trace file byte-identical across
    [--jobs]. *)

(** {2 Recording} *)

val default_ring_capacity : int
(** Events kept per attempt before the oldest are dropped (65536 —
    far above any quick- or paper-scale attempt). *)

val set_ring_capacity : int -> unit
(** Override the per-attempt ring capacity (tests use small rings to
    exercise the drop path).
    @raise Invalid_argument if not positive. *)

type record
(** The events of one attempt, in emission order, plus a drop count. *)

val record_index : record -> int
val record_events : record -> event list
val record_dropped : record -> int

val capture : index:int -> (unit -> 'a) -> 'a * record
(** Run the thunk with a fresh ring installed as this domain's ambient
    buffer (restoring the previous one afterwards, exception-safe) and
    return what it emitted. Call only when {!on}. *)

val emit : event -> unit
(** Append to the ambient ring; no-op when none is installed. Hot-path
    callers guard with [if Trace.on () then Trace.emit ...]. *)

(** {2 JSONL encoding} *)

val header_line : (string * Json.t) list -> string
(** The [run_start] line: given spec fields, prepends
    [schema]/[ev] tags. Includes the trailing newline. *)

val end_line : attempts:int -> accepted:int -> string

val qspan_line : q:int -> stage:qstage -> string
(** A run-level query lifecycle line
    [{"ev": "qspan", "q": N, "stage": "..."}] — written immediately by
    the sequential serve loop (admit/enqueue) or appended after a
    query's record lines (tally), so the stream stays byte-identical
    across [--jobs]. *)

val fault_line : chunk:int -> attempt:int -> kind:string -> string
(** A run-level supervision event: chunk [chunk]'s attempt [attempt]
    failed with [kind] (an [Engine_par.Supervisor.kind_string]) and was
    retried or quarantined. The trial engine writes these between the
    last attempt's events and [run_end]; they carry no probe data, so
    the replay checker only counts them. *)

val record_lines : record -> string list
(** One line per event (a trailing [dropped] line when the ring
    overflowed), each tagged with the record's attempt index. *)

(** {2 Replay — the independent probe accounting check} *)

module Replay : sig
  type attempt = {
    index : int;
    fresh_probes : int;  (** Derived: [probe] events with [fresh]. *)
    stale_probes : int;  (** Derived: [probe] events without [fresh]. *)
    reveal_steps : int;
    budget_hit : bool;
    outcome : [ `Accept of int * int  (** distance, recorded probes *)
              | `Reject of reject_reason
              | `Open  (** no terminal event — truncated trace *) ];
    dropped : int;
  }

  type run = {
    header : (string * Json.t) list;  (** [run_start] fields. *)
    attempts : attempt list;  (** In attempt order. *)
    declared_attempts : int option;  (** From [run_end]. *)
    declared_accepted : int option;
    faults : int;  (** Run-level [fault] lines seen. *)
    qspans : (int * qstage) list;
        (** Query lifecycle events in emission order. *)
  }

  val parse : string list -> (run list, string) result
  (** Parse JSONL lines (with or without trailing newlines) into runs.
      Errors on malformed JSON, unknown [ev], or events outside a
      run. *)

  val derived_accept_probes : run -> int list
  (** The derived distinct-probe count of each accepted attempt, in
      attempt order — the multiset a report's probe statistics were
      computed from. *)

  type verdict = {
    runs : int;
    attempts : int;
    accepted : int;
    checked : int;  (** Accepted attempts with no drops. *)
    mismatches : (int * int * int) list;
        (** (attempt, derived, recorded) where they disagree. *)
    unverifiable : int;  (** Accepted attempts with dropped events. *)
    count_errors : string list;
        (** [run_end] totals that contradict the replayed attempts. *)
    qspans : int;  (** Query lifecycle events replayed. *)
    qspan_errors : string list;
        (** Lifecycle violations: a stage out of
            admit < enqueue < execute < tally order, a duplicate
            stage, an event after (or a query without) its
            exactly-once tally. *)
  }

  val check : run list -> verdict
  (** Re-derive every accepted attempt's distinct-probe count from its
      [fresh] probe events and compare with the [accept] line's
      recorded count — an end-to-end audit of the oracle's
      accounting. Also audits query lifecycle spans (see
      [qspan_errors]). *)

  val ok : verdict -> bool
  (** No mismatches, no count errors, no lifecycle violations. *)
end
