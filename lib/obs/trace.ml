type reject_reason = Disconnected | Reveal_limit

type qstage = Admit | Enqueue | Execute | Tally

let qstage_string = function
  | Admit -> "admit"
  | Enqueue -> "enqueue"
  | Execute -> "execute"
  | Tally -> "tally"

type event =
  | Attempt_start of { index : int }
  | Reveal_step of { v : int; dist : int }
  | Probe of { u : int; v : int; open_ : bool; fresh : bool }
  | Budget_hit of { probes : int }
  | Reject of { reason : reject_reason }
  | Accept of { distance : int; probes : int }
  | Query_span of { q : int; stage : qstage }

let distinct_probes_of_events events =
  List.fold_left
    (fun acc -> function Probe { fresh = true; _ } -> acc + 1 | _ -> acc)
    0 events

(* ------------------------------------------------------------------ *)
(* Enable switch and sink. The sink is only ever driven from the
   caller's domain (the trial engine writes after its deterministic
   merge), so a plain mutex suffices and ordering is the caller's.     *)

let enabled = Atomic.make false

let[@inline] on () = Atomic.get enabled

let sink_lock = Mutex.create ()
let sink : (string -> unit) option ref = ref None

let enable ~sink:s =
  Mutex.lock sink_lock;
  sink := Some s;
  Mutex.unlock sink_lock;
  Atomic.set enabled true

let disable () =
  Atomic.set enabled false;
  Mutex.lock sink_lock;
  sink := None;
  Mutex.unlock sink_lock

let local_sink : (string -> unit) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_sink s f =
  let previous = Domain.DLS.get local_sink in
  Domain.DLS.set local_sink (Some s);
  Fun.protect ~finally:(fun () -> Domain.DLS.set local_sink previous) f

let write_line line =
  if on () then
    match Domain.DLS.get local_sink with
    | Some s -> s line
    | None ->
        Mutex.lock sink_lock;
        (match !sink with Some s -> s line | None -> ());
        Mutex.unlock sink_lock

(* ------------------------------------------------------------------ *)
(* Per-attempt ring buffers.                                           *)

let default_ring_capacity = 65536

let ring_capacity = Atomic.make default_ring_capacity

let set_ring_capacity c =
  if c <= 0 then invalid_arg "Trace.set_ring_capacity: capacity must be positive";
  Atomic.set ring_capacity c

type ring = {
  index : int;
  events : event array;
  capacity : int;
  mutable length : int;  (* events currently held, <= capacity *)
  mutable total : int;  (* events ever pushed *)
}

let dummy_event = Attempt_start { index = -1 }

let ring_create index =
  let capacity = Atomic.get ring_capacity in
  { index; events = Array.make capacity dummy_event; capacity; length = 0; total = 0 }

let ring_push r ev =
  (* Overwrite the oldest once full: slot [total mod capacity] always
     receives the newest event. *)
  r.events.(r.total mod r.capacity) <- ev;
  r.total <- r.total + 1;
  if r.length < r.capacity then r.length <- r.length + 1

type record = { rec_index : int; rec_events : event list; rec_dropped : int }

let record_index r = r.rec_index
let record_events r = r.rec_events
let record_dropped r = r.rec_dropped

let ring_record r =
  let oldest = r.total - r.length in
  {
    rec_index = r.index;
    rec_events =
      List.init r.length (fun k -> r.events.((oldest + k) mod r.capacity));
    rec_dropped = oldest;
  }

let ambient : ring option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let capture ~index f =
  let ring = ring_create index in
  let previous = Domain.DLS.get ambient in
  Domain.DLS.set ambient (Some ring);
  let result =
    Fun.protect ~finally:(fun () -> Domain.DLS.set ambient previous) f
  in
  (result, ring_record ring)

let emit ev =
  match Domain.DLS.get ambient with Some r -> ring_push r ev | None -> ()

(* ------------------------------------------------------------------ *)
(* JSONL encoding.                                                     *)

let reason_string = function
  | Disconnected -> "disconnected"
  | Reveal_limit -> "reveal_limit"

let event_fields attempt = function
  | Attempt_start _ ->
      [ ("ev", Json.String "attempt_start"); ("attempt", Json.Int attempt) ]
  | Reveal_step { v; dist } ->
      [
        ("ev", Json.String "reveal_step");
        ("attempt", Json.Int attempt);
        ("v", Json.Int v);
        ("dist", Json.Int dist);
      ]
  | Probe { u; v; open_; fresh } ->
      [
        ("ev", Json.String "probe");
        ("attempt", Json.Int attempt);
        ("u", Json.Int u);
        ("v", Json.Int v);
        ("open", Json.Bool open_);
        ("fresh", Json.Bool fresh);
      ]
  | Budget_hit { probes } ->
      [
        ("ev", Json.String "budget_hit");
        ("attempt", Json.Int attempt);
        ("probes", Json.Int probes);
      ]
  | Reject { reason } ->
      [
        ("ev", Json.String "reject");
        ("attempt", Json.Int attempt);
        ("reason", Json.String (reason_string reason));
      ]
  | Accept { distance; probes } ->
      [
        ("ev", Json.String "accept");
        ("attempt", Json.Int attempt);
        ("distance", Json.Int distance);
        ("probes", Json.Int probes);
      ]
  | Query_span { q; stage } ->
      [
        ("ev", Json.String "qspan");
        ("attempt", Json.Int attempt);
        ("q", Json.Int q);
        ("stage", Json.String (qstage_string stage));
      ]

let line fields = Json.to_string (Json.Obj fields) ^ "\n"

let header_line fields =
  line (("schema", Json.String "trace/v1") :: ("ev", Json.String "run_start") :: fields)

let end_line ~attempts ~accepted =
  line
    [
      ("ev", Json.String "run_end");
      ("attempts", Json.Int attempts);
      ("accepted", Json.Int accepted);
    ]

let qspan_line ~q ~stage =
  line
    [
      ("ev", Json.String "qspan");
      ("q", Json.Int q);
      ("stage", Json.String (qstage_string stage));
    ]

let fault_line ~chunk ~attempt ~kind =
  line
    [
      ("ev", Json.String "fault");
      ("chunk", Json.Int chunk);
      ("fault_attempt", Json.Int attempt);
      ("kind", Json.String kind);
    ]

let record_lines r =
  let events = List.map (fun ev -> line (event_fields r.rec_index ev)) r.rec_events in
  if r.rec_dropped = 0 then events
  else
    events
    @ [
        line
          [
            ("ev", Json.String "dropped");
            ("attempt", Json.Int r.rec_index);
            ("count", Json.Int r.rec_dropped);
          ];
      ]

(* ------------------------------------------------------------------ *)
(* Replay.                                                             *)

module Replay = struct
  type attempt = {
    index : int;
    fresh_probes : int;
    stale_probes : int;
    reveal_steps : int;
    budget_hit : bool;
    outcome : [ `Accept of int * int | `Reject of reject_reason | `Open ];
    dropped : int;
  }

  type run = {
    header : (string * Json.t) list;
    attempts : attempt list;
    declared_attempts : int option;
    declared_accepted : int option;
    faults : int;
    qspans : (int * qstage) list;  (* in emission order after flush *)
  }

  let empty_attempt index =
    {
      index;
      fresh_probes = 0;
      stale_probes = 0;
      reveal_steps = 0;
      budget_hit = false;
      outcome = `Open;
      dropped = 0;
    }

  (* Parsing folds lines into a little state machine: a current run
     being assembled, whose attempts arrive strictly in order (the
     engine writes them that way). *)
  type state = {
    done_runs : run list;  (* reversed *)
    current : run option;  (* attempts reversed *)
    open_attempt : attempt option;
  }

  let flush_attempt state =
    match (state.current, state.open_attempt) with
    | Some run, Some attempt ->
        { state with current = Some { run with attempts = attempt :: run.attempts }; open_attempt = None }
    | _, None -> state
    | None, Some _ -> state

  let flush_run state =
    let state = flush_attempt state in
    match state.current with
    | None -> state
    | Some run ->
        {
          state with
          done_runs =
            {
              run with
              attempts = List.rev run.attempts;
              qspans = List.rev run.qspans;
            }
            :: state.done_runs;
          current = None;
        }

  let require_attempt state line_no =
    match state.open_attempt with
    | Some a -> Ok a
    | None -> Error (Printf.sprintf "line %d: event outside an attempt" line_no)

  let int_field name json line_no =
    match Option.bind (Json.member name json) Json.to_int with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "line %d: missing int field %S" line_no name)

  let bool_field name json line_no =
    match Option.bind (Json.member name json) Json.to_bool with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "line %d: missing bool field %S" line_no name)

  let ( let* ) = Result.bind

  let step state line_no json =
    match Option.bind (Json.member "ev" json) Json.to_str with
    | None -> Error (Printf.sprintf "line %d: no \"ev\" field" line_no)
    | Some ev -> (
        match ev with
        | "run_start" ->
            let state = flush_run state in
            let header =
              match json with
              | Json.Obj fields ->
                  List.filter (fun (k, _) -> k <> "schema" && k <> "ev") fields
              | _ -> []
            in
            (match Option.bind (Json.member "schema" json) Json.to_str with
            | Some "trace/v1" ->
                Ok
                  {
                    state with
                    current =
                      Some
                        {
                          header;
                          attempts = [];
                          declared_attempts = None;
                          declared_accepted = None;
                          faults = 0;
                          qspans = [];
                        };
                  }
            | Some other ->
                Error (Printf.sprintf "line %d: unsupported schema %S" line_no other)
            | None -> Error (Printf.sprintf "line %d: run_start without schema" line_no))
        | "run_end" ->
            let state = flush_attempt state in
            let* attempts = int_field "attempts" json line_no in
            let* accepted = int_field "accepted" json line_no in
            (match state.current with
            | None -> Error (Printf.sprintf "line %d: run_end outside a run" line_no)
            | Some run ->
                Ok
                  (flush_run
                     {
                       state with
                       current =
                         Some
                           {
                             run with
                             declared_attempts = Some attempts;
                             declared_accepted = Some accepted;
                           };
                     }))
        | "attempt_start" ->
            if state.current = None then
              Error (Printf.sprintf "line %d: attempt outside a run" line_no)
            else
              let state = flush_attempt state in
              let* index = int_field "attempt" json line_no in
              Ok { state with open_attempt = Some (empty_attempt index) }
        | "reveal_step" ->
            let* a = require_attempt state line_no in
            Ok { state with open_attempt = Some { a with reveal_steps = a.reveal_steps + 1 } }
        | "probe" ->
            let* a = require_attempt state line_no in
            let* fresh = bool_field "fresh" json line_no in
            let a =
              if fresh then { a with fresh_probes = a.fresh_probes + 1 }
              else { a with stale_probes = a.stale_probes + 1 }
            in
            Ok { state with open_attempt = Some a }
        | "budget_hit" ->
            let* a = require_attempt state line_no in
            Ok { state with open_attempt = Some { a with budget_hit = true } }
        | "reject" ->
            let* a = require_attempt state line_no in
            let* reason =
              match Option.bind (Json.member "reason" json) Json.to_str with
              | Some "disconnected" -> Ok Disconnected
              | Some "reveal_limit" -> Ok Reveal_limit
              | Some other ->
                  Error (Printf.sprintf "line %d: unknown reject reason %S" line_no other)
              | None -> Error (Printf.sprintf "line %d: reject without reason" line_no)
            in
            Ok { state with open_attempt = Some { a with outcome = `Reject reason } }
        | "accept" ->
            let* a = require_attempt state line_no in
            let* distance = int_field "distance" json line_no in
            let* probes = int_field "probes" json line_no in
            Ok { state with open_attempt = Some { a with outcome = `Accept (distance, probes) } }
        | "fault" -> (
            (* Run-level supervision event: a chunk attempt failed and
               was retried or quarantined. Written between the last
               attempt and run_end, outside any attempt. *)
            let state = flush_attempt state in
            match state.current with
            | None -> Error (Printf.sprintf "line %d: fault outside a run" line_no)
            | Some run ->
                Ok { state with current = Some { run with faults = run.faults + 1 } })
        | "qspan" -> (
            (* Query lifecycle span (serve): admit/enqueue/tally are
               run-level lines written by the sequential session loop;
               execute rides inside the query's attempt ring, so only
               the run-level forms close an open attempt. *)
            let* q = int_field "q" json line_no in
            let* stage =
              match Option.bind (Json.member "stage" json) Json.to_str with
              | Some "admit" -> Ok Admit
              | Some "enqueue" -> Ok Enqueue
              | Some "execute" -> Ok Execute
              | Some "tally" -> Ok Tally
              | Some other ->
                  Error
                    (Printf.sprintf "line %d: unknown qspan stage %S" line_no
                       other)
              | None ->
                  Error (Printf.sprintf "line %d: qspan without stage" line_no)
            in
            let state =
              if Json.member "attempt" json = None then flush_attempt state
              else state
            in
            match state.current with
            | None ->
                Error (Printf.sprintf "line %d: qspan outside a run" line_no)
            | Some run ->
                Ok
                  {
                    state with
                    current =
                      Some { run with qspans = (q, stage) :: run.qspans };
                  })
        | "dropped" ->
            let* a = require_attempt state line_no in
            let* count = int_field "count" json line_no in
            Ok { state with open_attempt = Some { a with dropped = count } }
        | other -> Error (Printf.sprintf "line %d: unknown event %S" line_no other))

  let parse lines =
    let rec loop state line_no = function
      | [] -> Ok (List.rev (flush_run state).done_runs)
      | line :: rest ->
          let trimmed = String.trim line in
          if trimmed = "" then loop state (line_no + 1) rest
          else
            let* json =
              Result.map_error
                (fun e -> Printf.sprintf "line %d: %s" line_no e)
                (Json.of_string trimmed)
            in
            let* state = step state line_no json in
            loop state (line_no + 1) rest
    in
    loop { done_runs = []; current = None; open_attempt = None } 1 lines

  let derived_accept_probes run =
    List.filter_map
      (fun a -> match a.outcome with `Accept _ -> Some a.fresh_probes | _ -> None)
      run.attempts

  (* Per-query lifecycle audit: stages of a query must appear in
     strictly increasing admit < enqueue < execute < tally order (each
     at most once, later stages may be skipped — a stats query goes
     admit -> tally, a failed parse skips execute), the first event
     must be the admit, and every query that appears must be tallied
     exactly once. *)
  let qspan_errors_of_run run =
    let order = function Admit -> 0 | Enqueue -> 1 | Execute -> 2 | Tally -> 3 in
    let last_stage = Hashtbl.create 64 in
    let errs = ref [] in
    let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
    List.iter
      (fun (q, stage) ->
        let o = order stage in
        match Hashtbl.find_opt last_stage q with
        | None ->
            if stage <> Admit then
              err "query %d: %s before admit" q (qstage_string stage);
            Hashtbl.replace last_stage q o
        | Some last ->
            if last = order Tally then
              err "query %d: %s after tally" q (qstage_string stage)
            else if o <= last then
              err "query %d: %s out of order" q (qstage_string stage)
            else Hashtbl.replace last_stage q o)
      run.qspans;
    let untallied =
      Hashtbl.fold
        (fun q last acc -> if last <> order Tally then q :: acc else acc)
        last_stage []
    in
    List.iter
      (fun q -> err "query %d: admitted but never tallied" q)
      (List.sort compare untallied);
    List.rev !errs

  type verdict = {
    runs : int;
    attempts : int;
    accepted : int;
    checked : int;
    mismatches : (int * int * int) list;
    unverifiable : int;
    count_errors : string list;
    qspans : int;
    qspan_errors : string list;
  }

  let check runs =
    let verdict =
      {
        runs = List.length runs;
        attempts = 0;
        accepted = 0;
        checked = 0;
        mismatches = [];
        unverifiable = 0;
        count_errors = [];
        qspans = 0;
        qspan_errors = [];
      }
    in
    let verdict =
      List.fold_left
        (fun v (run : run) ->
          let v =
            List.fold_left
              (fun v a ->
                let v = { v with attempts = v.attempts + 1 } in
                match a.outcome with
                | `Reject _ | `Open -> v
                | `Accept (_, recorded) ->
                    let v = { v with accepted = v.accepted + 1 } in
                    if a.dropped > 0 then { v with unverifiable = v.unverifiable + 1 }
                    else if a.fresh_probes <> recorded then
                      {
                        v with
                        checked = v.checked + 1;
                        mismatches = (a.index, a.fresh_probes, recorded) :: v.mismatches;
                      }
                    else { v with checked = v.checked + 1 })
              v run.attempts
          in
          let count_error declared actual what =
            match declared with
            | Some d when d <> actual ->
                Some
                  (Printf.sprintf "run_end declares %d %s, trace replays %d" d what actual)
            | Some _ | None -> None
          in
          let run_accepted =
            List.length
              (List.filter
                 (fun a -> match a.outcome with `Accept _ -> true | _ -> false)
                 run.attempts)
          in
          let errors =
            List.filter_map Fun.id
              [
                count_error run.declared_attempts (List.length run.attempts) "attempts";
                count_error run.declared_accepted run_accepted "accepted attempts";
              ]
          in
          {
            v with
            count_errors = v.count_errors @ errors;
            qspans = v.qspans + List.length run.qspans;
            qspan_errors = v.qspan_errors @ qspan_errors_of_run run;
          })
        verdict runs
    in
    { verdict with mismatches = List.rev verdict.mismatches }

  let ok v = v.mismatches = [] && v.count_errors = [] && v.qspan_errors = []
end
