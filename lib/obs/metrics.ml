(* Histograms bucket by bit length: value [v >= 0] lands in bucket
   [bits v], i.e. 0 -> 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ... so bucket
   [i >= 1] covers [2^(i-1), 2^i). Negative values clamp to bucket 0
   (none of our instruments produce them). 64 buckets cover every
   OCaml int. *)

let bucket_count = 64

let bucket_of v =
  if v <= 0 then 0
  else
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    bits 0 v

let bucket_lower_bound i = if i <= 1 then i else 1 lsl (i - 1)

type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  buckets : int array;
}

type cell = Counter of int ref | Hist of hist

type t = (string, cell) Hashtbl.t

let create () : t = Hashtbl.create 32

let add t name n =
  match Hashtbl.find_opt t name with
  | Some (Counter r) -> r := !r + n
  | Some (Hist _) -> invalid_arg ("Metrics.add: " ^ name ^ " is a histogram")
  | None -> Hashtbl.replace t name (Counter (ref n))

let incr t name = add t name 1

let peek t name =
  match Hashtbl.find_opt t name with
  | Some (Counter r) -> !r
  | Some (Hist _) -> invalid_arg ("Metrics.peek: " ^ name ^ " is a histogram")
  | None -> 0

let observe t name v =
  match Hashtbl.find_opt t name with
  | Some (Hist h) ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum + v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      let b = h.buckets in
      b.(bucket_of v) <- b.(bucket_of v) + 1
  | Some (Counter _) -> invalid_arg ("Metrics.observe: " ^ name ^ " is a counter")
  | None ->
      let h =
        { h_count = 1; h_sum = v; h_min = v; h_max = v; buckets = Array.make bucket_count 0 }
      in
      h.buckets.(bucket_of v) <- 1;
      Hashtbl.replace t name (Hist h)

(* ------------------------------------------------------------------ *)
(* Snapshots: immutable, name-sorted association lists. Small enough
   (dozens of names) that list merges beat fancier structures.         *)

type hist_snapshot = {
  s_count : int;
  s_sum : int;
  s_min : int;
  s_max : int;
  s_buckets : int array;
}

type value = V_counter of int | V_hist of hist_snapshot

type snapshot = (string * value) list

let empty : snapshot = []
let is_empty s = s = []

let snapshot (t : t) : snapshot =
  Hashtbl.fold
    (fun name cell acc ->
      let value =
        match cell with
        | Counter r -> V_counter !r
        | Hist h ->
            V_hist
              {
                s_count = h.h_count;
                s_sum = h.h_sum;
                s_min = h.h_min;
                s_max = h.h_max;
                s_buckets = Array.copy h.buckets;
              }
      in
      (name, value) :: acc)
    t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_value name a b =
  match (a, b) with
  | V_counter x, V_counter y -> V_counter (x + y)
  | V_hist x, V_hist y ->
      V_hist
        {
          s_count = x.s_count + y.s_count;
          s_sum = x.s_sum + y.s_sum;
          s_min = Stdlib.min x.s_min y.s_min;
          s_max = Stdlib.max x.s_max y.s_max;
          s_buckets = Array.init bucket_count (fun i -> x.s_buckets.(i) + y.s_buckets.(i));
        }
  | V_counter _, V_hist _ | V_hist _, V_counter _ ->
      invalid_arg ("Metrics.merge: " ^ name ^ " is a counter in one snapshot, a histogram in the other")

let rec merge (a : snapshot) (b : snapshot) : snapshot =
  match (a, b) with
  | [], s | s, [] -> s
  | (ka, va) :: resta, (kb, vb) :: restb ->
      let c = String.compare ka kb in
      if c < 0 then (ka, va) :: merge resta b
      else if c > 0 then (kb, vb) :: merge a restb
      else (ka, merge_value ka va vb) :: merge resta restb

let counter s name =
  match List.assoc_opt name s with Some (V_counter v) -> v | _ -> 0

let counters s =
  List.filter_map
    (function name, V_counter v -> Some (name, v) | _, V_hist _ -> None)
    s

let histogram_count s name =
  match List.assoc_opt name s with Some (V_hist h) -> h.s_count | _ -> 0

let histogram_sum s name =
  match List.assoc_opt name s with Some (V_hist h) -> h.s_sum | _ -> 0

(* A bucket only records "somewhere in [2^(i-1), 2^i)", so a quantile
   read off the buckets is the bucket's inclusive upper bound — a
   conservative (never under-reporting) estimate. The exact min/max
   tighten the two ends. *)
let bucket_upper_bound i = if i <= 1 then i else (1 lsl i) - 1

let quantile s name q =
  if not (Float.is_finite q) || q < 0. || q > 1. then None
  else
    match List.assoc_opt name s with
    | Some (V_hist h) when h.s_count > 0 ->
        let rank =
          Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.s_count)))
        in
        let rec find i seen =
          if i >= bucket_count then h.s_max
          else
            let seen = seen + h.s_buckets.(i) in
            if seen >= rank then
              Stdlib.min h.s_max (Stdlib.max h.s_min (bucket_upper_bound i))
            else find (i + 1) seen
        in
        Some (find 0 0)
    | _ -> None

let quantiles s name qs =
  let rec collect acc = function
    | [] -> Some (List.rev acc)
    | q :: rest -> (
        match quantile s name q with
        | Some v -> collect (v :: acc) rest
        | None -> None)
  in
  collect [] qs

let to_json (s : snapshot) =
  let counters =
    List.filter_map
      (function name, V_counter v -> Some (name, Json.Int v) | _ -> None)
      s
  in
  let histograms =
    List.filter_map
      (function
        | _, V_counter _ -> None
        | name, V_hist h ->
            let buckets =
              List.filter_map
                (fun i ->
                  if h.s_buckets.(i) = 0 then None
                  else
                    Some
                      (Json.List
                         [ Json.Int (bucket_lower_bound i); Json.Int h.s_buckets.(i) ]))
                (List.init bucket_count Fun.id)
            in
            Some
              ( name,
                Json.Obj
                  [
                    ("count", Json.Int h.s_count);
                    ("sum", Json.Int h.s_sum);
                    ("min", Json.Int h.s_min);
                    ("max", Json.Int h.s_max);
                    ("buckets", Json.List buckets);
                  ] ))
      s
  in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String "metrics/v1");
         ("counters", Json.Obj counters);
         ("histograms", Json.Obj histograms);
       ])
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* Enable switch and the ambient (domain-local) registry.              *)

let enabled = Atomic.make false

let[@inline] on () = Atomic.get enabled
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false

let ambient : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_ambient t f =
  let previous = Domain.DLS.get ambient in
  Domain.DLS.set ambient (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient previous) f

let tick name =
  match Domain.DLS.get ambient with Some t -> incr t name | None -> ()

let tick_n name n =
  match Domain.DLS.get ambient with Some t -> add t name n | None -> ()

let record name v =
  match Domain.DLS.get ambient with Some t -> observe t name v | None -> ()

(* ------------------------------------------------------------------ *)
(* Process-global accumulator.                                         *)

let global_lock = Mutex.create ()
let global : snapshot ref = ref empty

let absorb s =
  if s <> empty then begin
    Mutex.lock global_lock;
    global := merge !global s;
    Mutex.unlock global_lock
  end

let global_snapshot () =
  Mutex.lock global_lock;
  let s = !global in
  Mutex.unlock global_lock;
  s

let reset_global () =
  Mutex.lock global_lock;
  global := empty;
  Mutex.unlock global_lock
