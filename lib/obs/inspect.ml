(* One loader/reporter for the whole artifact family. Each artifact is
   sniffed by its schema tag, parsed into a small normalized form, and
   validated on the way in — [load] refuses documents that miss
   required fields, so "obs validate" is just a successful load.
   Metrics and telemetry normalize into the same [table] shape, which
   is what lets report/diff/aggregate share one implementation. *)

type hist = {
  count : int;
  sum : float;
  min_v : float option;
  max_v : float option;
  buckets : (int * int) list;  (* (lower bound, count), ascending *)
}

type table = {
  counters : (string * float) list;  (* name-sorted *)
  hists : (string * hist) list;  (* name-sorted *)
}

type pnode = {
  p_name : string;
  p_count : int;
  p_total_s : float;
  p_self_s : float;
  p_children : pnode list;
}

type artifact =
  | Trace of Trace.Replay.run list
  | Metrics of table
  | Telemetry of {
      beats : int;
      uptime_s : float;
      seq_missing : int;  (* heartbeats lost between consecutive lines *)
      seq_reordered : int;  (* lines whose seq did not advance *)
      table : table;
    }
  | Profile of pnode list
  | Bench of Bench_history.snapshot list  (* oldest first, non-empty *)
  | Ledger of Ledger.record list

type kind = [ `Trace | `Metrics | `Telemetry | `Profile | `Bench | `Ledger ]

let kind = function
  | Trace _ -> `Trace
  | Metrics _ -> `Metrics
  | Telemetry _ -> `Telemetry
  | Profile _ -> `Profile
  | Bench _ -> `Bench
  | Ledger _ -> `Ledger

let kind_name = function
  | `Trace -> "trace/v1"
  | `Metrics -> "metrics/v1"
  | `Telemetry -> "telemetry/v1"
  | `Profile -> "profile/v1"
  | `Bench -> "bench_percolation history"
  | `Ledger -> "runledger/v1"

(* ------------------------------------------------------------------ *)
(* Parsing helpers.                                                    *)

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let num_field name j =
  let* v = field name j in
  match Json.to_float v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S is not a number" name)

let int_field name j =
  let* v = field name j in
  match Json.to_int v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S is not an integer" name)

let opt_num_field name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match Json.to_float v with
      | Some f -> Ok (Some f)
      | None -> Error (Printf.sprintf "field %S is not a number or null" name))

let obj_fields what = function
  | Json.Obj fields -> Ok fields
  | _ -> Error (Printf.sprintf "%s is not an object" what)

let parse_buckets j =
  let* b = field "buckets" j in
  match Json.to_list b with
  | None -> Error "field \"buckets\" is not a list"
  | Some pairs ->
      let rec loop acc = function
        | [] -> Ok (List.rev acc)
        | Json.List [ lb; c ] :: rest -> (
            match (Json.to_int lb, Json.to_int c) with
            | Some lb, Some c -> loop ((lb, c) :: acc) rest
            | _ -> Error "bucket entries must be [int, int] pairs")
        | _ -> Error "bucket entries must be [int, int] pairs"
      in
      loop [] pairs

let parse_hist ~sum_key ~min_key ~max_key name j =
  let ctx msg = Printf.sprintf "histogram %S: %s" name msg in
  match
    let* count = int_field "count" j in
    let* sum = num_field sum_key j in
    let* min_v = opt_num_field min_key j in
    let* max_v = opt_num_field max_key j in
    let* buckets = parse_buckets j in
    Ok { count; sum; min_v; max_v; buckets }
  with
  | Ok h -> Ok h
  | Error m -> Error (ctx m)

let by_name (a, _) (b, _) = String.compare a b

let parse_table ~counters_key ~sum_key ~min_key ~max_key j =
  let* counters_obj = field counters_key j in
  let* counter_fields = obj_fields (Printf.sprintf "%S" counters_key) counters_obj in
  let* counters =
    List.fold_left
      (fun acc (name, v) ->
        let* acc = acc in
        match Json.to_float v with
        | Some f -> Ok ((name, f) :: acc)
        | None -> Error (Printf.sprintf "%s %S is not a number" counters_key name))
      (Ok []) counter_fields
  in
  let* hists_obj = field "histograms" j in
  let* hist_fields = obj_fields "\"histograms\"" hists_obj in
  let* hists =
    List.fold_left
      (fun acc (name, v) ->
        let* acc = acc in
        let* h = parse_hist ~sum_key ~min_key ~max_key name v in
        Ok ((name, h) :: acc))
      (Ok []) hist_fields
  in
  Ok { counters = List.sort by_name counters; hists = List.sort by_name hists }

let parse_metrics j =
  let* t =
    parse_table ~counters_key:"counters" ~sum_key:"sum" ~min_key:"min"
      ~max_key:"max" j
  in
  Ok (Metrics t)

let merge_hist a b =
  let opt f x y =
    match (x, y) with
    | None, v | v, None -> v
    | Some x, Some y -> Some (f x y)
  in
  let rec merge_buckets xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | (la, ca) :: ra, (lb, cb) :: rb ->
        if la < lb then (la, ca) :: merge_buckets ra ys
        else if la > lb then (lb, cb) :: merge_buckets xs rb
        else (la, ca + cb) :: merge_buckets ra rb
  in
  {
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    min_v = opt Float.min a.min_v b.min_v;
    max_v = opt Float.max a.max_v b.max_v;
    buckets = merge_buckets a.buckets b.buckets;
  }

let merge_tables a b =
  let rec merge_assoc combine xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | (ka, va) :: ra, (kb, vb) :: rb ->
        let c = String.compare ka kb in
        if c < 0 then (ka, va) :: merge_assoc combine ra ys
        else if c > 0 then (kb, vb) :: merge_assoc combine xs rb
        else (ka, combine va vb) :: merge_assoc combine ra rb
  in
  {
    counters = merge_assoc ( +. ) a.counters b.counters;
    hists = merge_assoc merge_hist a.hists b.hists;
  }

let parse_telemetry_line j =
  parse_table ~counters_key:"gauges" ~sum_key:"sum_ns" ~min_key:"min_ns"
    ~max_key:"max_ns" j

(* One heartbeat line, decomposed: the monotonic seq (absent on legacy
   files), uptime, the optional session label, and the gauge/histogram
   table. Shared with [Top], which renders heartbeats one at a time. *)
let parse_heartbeat j =
  let* seq =
    match Json.member "seq" j with
    | None | Some Json.Null -> Ok None
    | Some v -> (
        match Json.to_int v with
        | Some n -> Ok (Some n)
        | None -> Error "field \"seq\" is not an integer")
  in
  let* uptime_s = num_field "uptime_s" j in
  let session = Option.bind (Json.member "session" j) Json.to_str in
  let* table = parse_telemetry_line j in
  Ok (seq, uptime_s, session, table)

let parse_telemetry lines =
  (* Heartbeats are cumulative snapshots of the same registry: the last
     line is the run's final state, earlier ones only add the beat
     count — so "merge" is take-latest, not sum. Consecutive seq values
     must advance by exactly one (the emitter only bumps on emission);
     a jump means lines were lost, a non-advance means reordering. *)
  let rec loop i last prev_seq missing reordered = function
    | [] -> (
        match last with
        | None -> Error "no telemetry lines"
        | Some (uptime_s, table, beats) ->
            Ok
              (Telemetry
                 {
                   beats;
                   uptime_s;
                   seq_missing = missing;
                   seq_reordered = reordered;
                   table;
                 }))
    | line :: rest -> (
        match Json.of_string line with
        | Error m -> Error (Printf.sprintf "line %d: %s" i m)
        | Ok j -> (
            match parse_heartbeat j with
            | Error m -> Error (Printf.sprintf "line %d: %s" i m)
            | Ok (seq, uptime_s, _session, table) ->
                let beats =
                  match last with None -> 1 | Some (_, _, n) -> n + 1
                in
                let prev_seq, missing, reordered =
                  match (prev_seq, seq) with
                  | Some p, Some s when s > p + 1 ->
                      (Some s, missing + (s - p - 1), reordered)
                  | Some p, Some s when s <= p ->
                      (Some s, missing, reordered + 1)
                  | _, Some s -> (Some s, missing, reordered)
                  | _, None -> (prev_seq, missing, reordered)
                in
                loop (i + 1)
                  (Some (uptime_s, table, beats))
                  prev_seq missing reordered rest))
  in
  loop 1 None None 0 0 lines

let rec parse_pnode j =
  let* p_name =
    let* v = field "name" j in
    match Json.to_str v with
    | Some s -> Ok s
    | None -> Error "span \"name\" is not a string"
  in
  match
    let* p_count = int_field "count" j in
    let* p_total_s = num_field "total_s" j in
    let* p_self_s = num_field "self_s" j in
    let* p_children =
      match Json.member "children" j with
      | None -> Ok []
      | Some v -> (
          match Json.to_list v with
          | Some kids -> parse_pnodes kids
          | None -> Error "\"children\" is not a list")
    in
    Ok { p_name; p_count; p_total_s; p_self_s; p_children }
  with
  | Ok n -> Ok n
  | Error m -> Error (Printf.sprintf "span %S: %s" p_name m)

and parse_pnodes js =
  List.fold_left
    (fun acc j ->
      let* acc = acc in
      let* n = parse_pnode j in
      Ok (acc @ [ n ]))
    (Ok []) js

let parse_profile j =
  let* spans = field "spans" j in
  match Json.to_list spans with
  | None -> Error "\"spans\" is not a list"
  | Some js ->
      let* nodes = parse_pnodes js in
      Ok (Profile nodes)

let parse_trace lines =
  let* runs = Trace.Replay.parse lines in
  let verdict = Trace.Replay.check runs in
  if Trace.Replay.ok verdict then Ok (Trace runs)
  else
    Error
      (Printf.sprintf "replay check failed: %d probe mismatches, %d count errors"
         (List.length verdict.Trace.Replay.mismatches)
         (List.length verdict.Trace.Replay.count_errors))

let parse_bench lines =
  let* snapshots = Bench_history.parse_lines lines in
  if snapshots = [] then Error "no bench snapshots" else Ok (Bench snapshots)

let parse_ledger lines =
  (* Loading IS validation for the ledger too: beyond the schema, every
     recorded artifact digest is cross-checked against the file on disk
     so `obs validate` catches tampered or stale artifacts (exit 2). A
     torn final line (crashed writer) is tolerated, like checkpoints. *)
  let* records, _torn = Ledger.parse_lines lines in
  if records = [] then Error "no ledger records"
  else
    match Ledger.verify records with
    | [] -> Ok (Ledger records)
    | errs -> Error (String.concat "; " errs)

(* ------------------------------------------------------------------ *)
(* Loading.                                                            *)

let non_empty_lines content =
  String.split_on_char '\n' content
  |> List.filter (fun l -> String.trim l <> "")

let load path =
  let* content =
    try Ok (In_channel.with_open_bin path In_channel.input_all)
    with Sys_error m -> Error m
  in
  let annotate = Result.map_error (fun m -> Printf.sprintf "%s: %s" path m) in
  annotate
    (match non_empty_lines content with
    | [] -> Error "empty file"
    | first :: _ as lines -> (
        let* doc =
          Result.map_error (fun m -> "line 1: " ^ m) (Json.of_string first)
        in
        match Option.bind (Json.member "schema" doc) Json.to_str with
        | None -> Error "line 1 has no \"schema\" tag"
        | Some "trace/v1" -> parse_trace lines
        | Some "metrics/v1" -> parse_metrics doc
        | Some "profile/v1" -> parse_profile doc
        | Some "telemetry/v1" -> parse_telemetry lines
        | Some "runledger/v1" -> parse_ledger lines
        | Some s when String.length s >= 18
                      && String.sub s 0 18 = "bench_percolation/" ->
            parse_bench lines
        | Some s -> Error (Printf.sprintf "unknown schema %S" s)))

(* ------------------------------------------------------------------ *)
(* Shared formatting.                                                  *)

(* Same estimator as [Metrics.quantile], over the parsed sparse
   buckets: upper bound of the bucket holding the ceil(q*count)-th
   observation, clamped into [min, max]. *)
let hist_quantile h q =
  if h.count = 0 then None
  else
    let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.count))) in
    let rec find seen = function
      | [] -> h.max_v
      | (lb, c) :: rest ->
          let seen = seen + c in
          if seen >= rank then
            let upper = float_of_int (if lb <= 1 then lb else (2 * lb) - 1) in
            let clamped =
              match (h.min_v, h.max_v) with
              | Some lo, Some hi -> Float.min hi (Float.max lo upper)
              | _ -> upper
            in
            Some clamped
          else find seen rest
    in
    find 0 h.buckets

let is_suffix ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

(* Latency-style names carry nanoseconds; report them in ms. *)
let scaled name v = if is_suffix ~suffix:"_ns" name then v /. 1e6 else v
let unit_of name = if is_suffix ~suffix:"_ns" name then "ms" else ""

let pp_hist_rows ppf hists =
  if hists <> [] then begin
    let width =
      List.fold_left (fun acc (n, _) -> Stdlib.max acc (String.length n)) 9 hists
    in
    Format.fprintf ppf "  %-*s %10s %10s %10s %10s %10s %5s@." width "histogram"
      "count" "p50" "p95" "p99" "max" "unit";
    List.iter
      (fun (name, h) ->
        let q p =
          match hist_quantile h p with
          | Some v -> Printf.sprintf "%.3g" (scaled name v)
          | None -> "-"
        in
        let mx =
          match h.max_v with
          | Some v -> Printf.sprintf "%.3g" (scaled name v)
          | None -> "-"
        in
        Format.fprintf ppf "  %-*s %10d %10s %10s %10s %10s %5s@." width name
          h.count (q 0.5) (q 0.95) (q 0.99) mx (unit_of name))
      hists
  end

(* The pool publishes [pool.domain.<slot>.busy_s/.wall_s/.tasks]
   gauges; fold them into one utilization row per domain slot. *)
let utilization_rows counters =
  let slots = Hashtbl.create 8 in
  List.iter
    (fun (name, v) ->
      match String.split_on_char '.' name with
      | [ "pool"; "domain"; slot; leaf ] -> (
          match int_of_string_opt slot with
          | None -> ()
          | Some slot ->
              let row =
                match Hashtbl.find_opt slots slot with
                | Some r -> r
                | None ->
                    let r = (ref 0., ref 0., ref 0.) in
                    Hashtbl.replace slots slot r;
                    r
              in
              let busy, wall, tasks = row in
              (match leaf with
              | "busy_s" -> busy := v
              | "wall_s" -> wall := v
              | "tasks" -> tasks := v
              | _ -> ()))
      | _ -> ())
    counters;
  Hashtbl.fold
    (fun slot (busy, wall, tasks) acc -> (slot, !busy, !wall, !tasks) :: acc)
    slots []
  |> List.sort compare

let pp_utilization ppf counters =
  match utilization_rows counters with
  | [] -> ()
  | rows ->
      Format.fprintf ppf "  pool utilization (slot 0 = caller)@.";
      Format.fprintf ppf "  %6s %12s %12s %14s %10s@." "domain" "busy s"
        "wall s" "utilization %" "tasks";
      List.iter
        (fun (slot, busy, wall, tasks) ->
          let util = if wall > 0. then 100. *. busy /. wall else 0. in
          Format.fprintf ppf "  %6d %12.4f %12.4f %14.1f %10.0f@." slot busy
            wall util tasks)
        rows

let pp_counters ppf label counters =
  if counters <> [] then begin
    let width =
      List.fold_left
        (fun acc (n, _) -> Stdlib.max acc (String.length n))
        (String.length label) counters
    in
    Format.fprintf ppf "  %-*s %14s@." width label "value";
    List.iter
      (fun (name, v) ->
        if Float.is_integer v && Float.abs v < 1e15 then
          Format.fprintf ppf "  %-*s %14.0f@." width name v
        else Format.fprintf ppf "  %-*s %14.4f@." width name v)
      counters
  end

let pp_table ppf ~label t =
  (* An empty or header-only artifact renders an explicit marker, not a
     silently empty table — "nothing was recorded" is a finding. *)
  if t.counters = [] && t.hists = [] then
    Format.fprintf ppf "  (no samples)@."
  else begin
    pp_counters ppf label t.counters;
    pp_utilization ppf t.counters;
    pp_hist_rows ppf t.hists
  end

(* ------------------------------------------------------------------ *)
(* Reports.                                                            *)

let rec pp_pnode ppf depth n =
  Format.fprintf ppf "  %s%-*s %8d %12.2f %12.2f@."
    (String.make (2 * depth) ' ')
    (Stdlib.max 1 (32 - (2 * depth)))
    n.p_name n.p_count (n.p_total_s *. 1e3) (n.p_self_s *. 1e3)
  ;
  List.iter (pp_pnode ppf (depth + 1)) n.p_children

let report ppf = function
  | Metrics t ->
      Format.fprintf ppf "metrics/v1@.";
      pp_table ppf ~label:"counter" t
  | Telemetry { beats; uptime_s; seq_missing; seq_reordered; table } ->
      Format.fprintf ppf "telemetry/v1: %d heartbeat%s, uptime %.3f s@." beats
        (if beats = 1 then "" else "s")
        uptime_s;
      if seq_missing > 0 || seq_reordered > 0 then
        Format.fprintf ppf
          "  WARNING: heartbeat seq gaps — %d missing, %d reordered line(s)@."
          seq_missing seq_reordered;
      pp_table ppf ~label:"gauge" table
  | Profile nodes ->
      Format.fprintf ppf "profile/v1@.";
      Format.fprintf ppf "  %-32s %8s %12s %12s@." "span" "calls" "total ms"
        "self ms";
      List.iter (pp_pnode ppf 0) nodes
  | Trace runs ->
      let v = Trace.Replay.check runs in
      Format.fprintf ppf
        "trace/v1: %d run%s, %d attempts, %d accepted, %d checked, %d \
         unverifiable — replay %s@."
        v.Trace.Replay.runs
        (if v.Trace.Replay.runs = 1 then "" else "s")
        v.Trace.Replay.attempts v.Trace.Replay.accepted v.Trace.Replay.checked
        v.Trace.Replay.unverifiable
        (if Trace.Replay.ok v then "ok" else "FAILED");
      if v.Trace.Replay.qspans > 0 then
        Format.fprintf ppf "  query spans: %d lifecycle event%s, %s@."
          v.Trace.Replay.qspans
          (if v.Trace.Replay.qspans = 1 then "" else "s")
          (if v.Trace.Replay.qspan_errors = [] then
             "ordering and exactly-once tally ok"
           else
             Printf.sprintf "%d violation(s)"
               (List.length v.Trace.Replay.qspan_errors))
  | Ledger records ->
      Format.fprintf ppf "runledger/v1: %d record%s, digests verified@."
        (List.length records)
        (if List.length records = 1 then "" else "s");
      Format.fprintf ppf "  %-12s %-14s %5s %5s %9s %10s@." "subcommand"
        "config" "jobs" "exit" "wall s" "artifacts";
      List.iter
        (fun (r : Ledger.record) ->
          let short =
            if String.length r.Ledger.config_digest > 12 then
              String.sub r.Ledger.config_digest 0 12
            else r.Ledger.config_digest
          in
          Format.fprintf ppf "  %-12s %-14s %5d %5d %9.3f %10d@."
            r.Ledger.subcommand short r.Ledger.jobs r.Ledger.exit_code
            r.Ledger.wall_s
            (List.length r.Ledger.artifacts);
          List.iter
            (fun (a : Ledger.artifact) ->
              Format.fprintf ppf "    %s %s@." a.Ledger.digest a.Ledger.path)
            r.Ledger.artifacts)
        records
  | Bench snapshots ->
      Format.fprintf ppf "bench history: %d snapshot%s@." (List.length snapshots)
        (if List.length snapshots = 1 then "" else "s");
      List.iter
        (fun (s : Bench_history.snapshot) ->
          Format.fprintf ppf "  %-6s %-22s %-12s %d metrics@." s.mode
            (Option.value s.timestamp ~default:"-")
            (Option.value s.commit ~default:"-")
            (List.length s.metrics))
        snapshots;
      let current = List.nth snapshots (List.length snapshots - 1) in
      let earlier = List.filteri (fun i _ -> i < List.length snapshots - 1) snapshots in
      (match Bench_history.trailing_baseline ~mode:current.mode earlier with
      | None -> ()
      | Some baseline -> (
          match Bench_history.regressions ~baseline current with
          | [] ->
              Format.fprintf ppf
                "  no regressions vs trailing %s baseline@." current.mode
          | rs ->
              List.iter
                (fun (r : Bench_history.regression) ->
                  Format.fprintf ppf "  REGRESSION %s: %.0f -> %.0f ns (%.2fx)@."
                    r.key r.baseline_ns r.current_ns r.ratio)
                rs))

(* ------------------------------------------------------------------ *)
(* Aggregation and diff.                                               *)

let aggregate a b =
  match (a, b) with
  | Metrics x, Metrics y -> Ok (Metrics (merge_tables x y))
  | _ ->
      Error
        (Printf.sprintf "cannot aggregate %s with %s (only metrics/v1 merge)"
           (kind_name (kind a)) (kind_name (kind b)))

let diff_tables ppf xa xb =
  let names l = List.map fst l in
  let all =
    List.sort_uniq String.compare (names xa.counters @ names xb.counters)
  in
  let changed = ref 0 in
  List.iter
    (fun name ->
      let va = List.assoc_opt name xa.counters in
      let vb = List.assoc_opt name xb.counters in
      match (va, vb) with
      | Some a, Some b when a = b -> ()
      | _ ->
          incr changed;
          let s = function Some v -> Printf.sprintf "%.4g" v | None -> "-" in
          Format.fprintf ppf "  %-40s %14s -> %-14s@." name (s va) (s vb))
    all;
  let hall = List.sort_uniq String.compare (names xa.hists @ names xb.hists) in
  List.iter
    (fun name ->
      let ca = List.assoc_opt name xa.hists in
      let cb = List.assoc_opt name xb.hists in
      let count = function Some h -> h.count | None -> 0 in
      let sum = function Some h -> h.sum | None -> 0. in
      if count ca <> count cb || sum ca <> sum cb then begin
        incr changed;
        Format.fprintf ppf "  %-40s count %d -> %d, sum %.4g -> %.4g@." name
          (count ca) (count cb) (sum ca) (sum cb)
      end)
    hall;
  if !changed = 0 then Format.fprintf ppf "  identical@."

let rec flatten_pnodes prefix acc nodes =
  List.fold_left
    (fun acc n ->
      let path = if prefix = "" then n.p_name else prefix ^ ";" ^ n.p_name in
      let acc = (path, (n.p_count, n.p_total_s, n.p_self_s)) :: acc in
      flatten_pnodes path acc n.p_children)
    acc nodes

let diff ppf a b =
  match (a, b) with
  | Metrics x, Metrics y ->
      Ok (diff_tables ppf x y)
  | Telemetry x, Telemetry y ->
      Format.fprintf ppf "  uptime %.3f s -> %.3f s@." x.uptime_s y.uptime_s;
      if
        x.seq_missing + x.seq_reordered + y.seq_missing + y.seq_reordered > 0
      then
        Format.fprintf ppf
          "  heartbeat seq anomalies: %d missing/%d reordered -> %d \
           missing/%d reordered@."
          x.seq_missing x.seq_reordered y.seq_missing y.seq_reordered;
      Ok (diff_tables ppf x.table y.table)
  | Profile x, Profile y ->
      let fa = flatten_pnodes "" [] x and fb = flatten_pnodes "" [] y in
      let all =
        List.sort_uniq String.compare (List.map fst fa @ List.map fst fb)
      in
      let changed = ref 0 in
      List.iter
        (fun path ->
          let get l = List.assoc_opt path l in
          let total = function Some (_, t, _) -> t | None -> 0. in
          let ta = total (get fa) and tb = total (get fb) in
          (* Wall clock never repeats exactly; only report meaningful
             movement (>1% and >0.1 ms). *)
          let delta = Float.abs (tb -. ta) in
          if delta > 1e-4 && delta > 0.01 *. Float.max ta tb then begin
            incr changed;
            Format.fprintf ppf "  %-40s total %.2f ms -> %.2f ms@." path
              (ta *. 1e3) (tb *. 1e3)
          end)
        all;
      if !changed = 0 then Format.fprintf ppf "  no significant span movement@.";
      Ok ()
  | Trace x, Trace y ->
      let vx = Trace.Replay.check x and vy = Trace.Replay.check y in
      Format.fprintf ppf
        "  attempts %d -> %d, accepted %d -> %d, checked %d -> %d@."
        vx.Trace.Replay.attempts vy.Trace.Replay.attempts
        vx.Trace.Replay.accepted vy.Trace.Replay.accepted
        vx.Trace.Replay.checked vy.Trace.Replay.checked;
      Ok ()
  | Bench xs, Bench ys ->
      let last l = List.nth l (List.length l - 1) in
      let baseline = last xs and current = last ys in
      (match Bench_history.regressions ~baseline current with
      | [] -> Format.fprintf ppf "  no regressions@."
      | rs ->
          List.iter
            (fun (r : Bench_history.regression) ->
              Format.fprintf ppf "  REGRESSION %s: %.0f -> %.0f ns (%.2fx)@."
                r.key r.baseline_ns r.current_ns r.ratio)
            rs);
      Ok ()
  | a, b ->
      Error
        (Printf.sprintf "cannot diff %s against %s" (kind_name (kind a))
           (kind_name (kind b)))

let folded_of_profile = function
  | Profile nodes ->
      let lines =
        flatten_pnodes "" [] nodes
        |> List.rev_map (fun (path, (_, _, self)) ->
               (path, int_of_float (Float.round (self *. 1e6))))
        |> List.filter (fun (_, us) -> us > 0)
        |> List.map (fun (path, us) -> Printf.sprintf "%s %d" path us)
      in
      Ok lines
  | a -> Error (Printf.sprintf "not a profile/v1 artifact (%s)" (kind_name (kind a)))
