type snapshot = {
  mode : string;
  commit : string option;
  timestamp : string option;
  metrics : (string * float) list;
}

let schema_v1 = "bench_percolation/v1"
let schema_v2 = "bench_percolation/v2"
let schema_v3 = "bench_percolation/v3"

let of_json json =
  let ( let* ) r f = Result.bind r f in
  let* schema =
    match Option.bind (Json.member "schema" json) Json.to_str with
    | Some s -> Ok s
    | None -> Error "bench snapshot: missing schema"
  in
  let* () =
    if schema = schema_v1 || schema = schema_v2 || schema = schema_v3 then Ok ()
    else Error (Printf.sprintf "bench snapshot: unknown schema %S" schema)
  in
  let* mode =
    match Option.bind (Json.member "mode" json) Json.to_str with
    | Some m -> Ok m
    | None -> Error "bench snapshot: missing mode"
  in
  let commit = Option.bind (Json.member "commit" json) Json.to_str in
  let timestamp = Option.bind (Json.member "timestamp" json) Json.to_str in
  let* topologies =
    match Option.bind (Json.member "topologies" json) Json.to_list with
    | Some l -> Ok l
    | None -> Error "bench snapshot: missing topologies"
  in
  let* metrics =
    List.fold_left
      (fun acc entry ->
        let* acc = acc in
        match Option.bind (Json.member "name" entry) Json.to_str with
        | None -> Error "bench snapshot: topology without a name"
        | Some name ->
            let kernel_ns kernel field =
              Option.bind (Json.member kernel entry) (fun k ->
                  Option.bind (Json.member field k) Json.to_float)
              |> Option.map (fun ns ->
                     (Printf.sprintf "%s/%s.%s" name kernel field, ns))
            in
            let found =
              List.filter_map Fun.id
                [
                  kernel_ns "reveal_bfs" "cached_ns";
                  (* v3 snapshots carry the bitset engine's time too, so
                     the >15% regression flag covers all three reveal
                     kernels; absent on v1/v2 lines. *)
                  kernel_ns "reveal_bfs" "bitset_ns";
                  kernel_ns "oracle_probe" "cached_ns";
                  kernel_ns "trial_run" "ns";
                  (* The churn-stepper row (every (edge, round) liveness
                     query under a renewal plan); absent on snapshots
                     written before churn landed. *)
                  kernel_ns "churn_step" "ns";
                ]
            in
            if found = [] then
              Error
                (Printf.sprintf "bench snapshot: no timings under %S" name)
            else Ok (List.rev_append found acc))
      (Ok []) topologies
  in
  Ok { mode; commit; timestamp; metrics = List.rev metrics }

let parse_lines lines =
  let ( let* ) r f = Result.bind r f in
  List.fold_left
    (fun acc (i, line) ->
      let* acc = acc in
      if String.trim line = "" then Ok acc
      else
        let* json =
          Result.map_error
            (Printf.sprintf "history line %d: %s" (i + 1))
            (Json.of_string line)
        in
        let* snapshot =
          Result.map_error
            (Printf.sprintf "history line %d: %s" (i + 1))
            (of_json json)
        in
        Ok (snapshot :: acc))
    (Ok [])
    (List.mapi (fun i l -> (i, l)) lines)
  |> Result.map List.rev

let trailing_baseline ~mode history =
  List.fold_left
    (fun acc snapshot -> if snapshot.mode = mode then Some snapshot else acc)
    None history

type regression = {
  key : string;
  baseline_ns : float;
  current_ns : float;
  ratio : float;
}

let regressions ?(threshold = 0.15) ~baseline current =
  List.filter_map
    (fun (key, current_ns) ->
      match List.assoc_opt key baseline.metrics with
      | Some baseline_ns
        when baseline_ns > 0.0
             && current_ns > baseline_ns *. (1.0 +. threshold) ->
          Some { key; baseline_ns; current_ns; ratio = current_ns /. baseline_ns }
      | _ -> None)
    current.metrics
