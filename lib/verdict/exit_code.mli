(** The CLI's exit-code contract, in one place.

    Scripts and CI legs branch on these numbers, so they are API: every
    [faultroute] subcommand maps its outcome through this module, and
    the README table is generated from the same list. Codes compose by
    severity — when several conditions hold the largest code wins
    ({!worst}), so a run that both drifted and lost chunks reports the
    loss. *)

val ok : int
(** 0 — success. *)

val error : int
(** 1 — usage or I/O error (cmdliner's default failure code). *)

val claim_fail : int
(** 2 — a machine-checked claim does not hold. *)

val strict_shortfall : int
(** 3 — [--strict-shortfall] and a report is under-sampled. *)

val drift : int
(** 4 — claims hold but drifted from the committed baseline. *)

val unrecoverable_faults : int
(** 5 — supervision exhausted its retry budget: chunks quarantined or
    experiments failed; the report is partial. *)

val manifest_error : int
(** 6 — a [serve] session manifest failed to parse or to build its
    worlds; nothing was answered. *)

val queue_overflow : int
(** 7 — the [serve] admission cap ([limits.max_queries]) was reached
    after backpressure: excess queries were drained unanswered, and
    the evidence file records how many. *)

val worst : int list -> int
(** The most severe of the given codes (their maximum; 0 for []). *)

val describe : int -> string
(** Human summary for the code, used in CLI help and the README. *)
