let schema = "verdict/v1"

type status = Pass | Drift | Fail | New

let status_name = function
  | Pass -> "pass"
  | Drift -> "DRIFT"
  | Fail -> "FAIL"
  | New -> "new"

type entry = {
  claim : Experiments.Claim.t;
  status : status;
  baseline_values : float list option;
  deviation : float;
}

type t = {
  mode : string;
  seed : int64;
  tolerance : float;
  entries : entry list;
  missing : string list;
}

(* Relative for large magnitudes, absolute near zero: fractions like a
   censoring rate of 0.0 must not blow up the denominator. *)
let value_deviation a b =
  if Float.is_nan a && Float.is_nan b then 0.0
  else if (not (Float.is_finite a)) || not (Float.is_finite b) then
    if a = b then 0.0 else Float.infinity
  else Float.abs (a -. b) /. Float.max 1.0 (Float.abs b)

let list_deviation run baseline =
  if List.length run <> List.length baseline then Float.infinity
  else List.fold_left2 (fun d a b -> Float.max d (value_deviation a b)) 0.0 run baseline

let evaluate ~mode ~seed ?baseline claims =
  let tolerance =
    match baseline with Some b -> b.Baseline.tolerance | None -> 1e-9
  in
  let entries =
    List.map
      (fun claim ->
        let baseline_values =
          Option.bind baseline (fun b ->
              Baseline.find b claim.Experiments.Claim.id)
        in
        let deviation =
          match baseline_values with
          | None -> 0.0
          | Some values ->
              list_deviation (Experiments.Claim.values claim) values
        in
        let status =
          if not (Experiments.Claim.holds claim) then Fail
          else
            match baseline_values with
            | None -> if baseline = None then Pass else New
            | Some _ -> if deviation > tolerance then Drift else Pass
        in
        { claim; status; baseline_values; deviation })
      claims
  in
  let run_ids =
    List.map (fun c -> c.Experiments.Claim.id) claims
  in
  let missing =
    match baseline with
    | None -> []
    | Some b ->
        List.filter_map
          (fun (id, _) -> if List.mem id run_ids then None else Some id)
          b.Baseline.entries
  in
  { mode; seed; tolerance; entries; missing }

let count status t =
  List.length (List.filter (fun e -> e.status = status) t.entries)

let exit_code t =
  if count Fail t > 0 then Exit_code.claim_fail
  else if count Drift t > 0 || t.missing <> [] then Exit_code.drift
  else Exit_code.ok

let baseline ?tolerance t =
  Baseline.make ~mode:t.mode ~seed:t.seed ?tolerance
    (List.map
       (fun e ->
         (e.claim.Experiments.Claim.id, Experiments.Claim.values e.claim))
       t.entries)

let render t =
  let table =
    List.fold_left
      (fun table e ->
        Stats.Table.add_row table
          [
            e.claim.Experiments.Claim.id;
            status_name e.status;
            Experiments.Claim.describe_observed e.claim;
            Experiments.Claim.describe_expected e.claim;
            (match e.baseline_values with
            | None -> "-"
            | Some _ when e.deviation = 0.0 -> "="
            | Some _ -> Printf.sprintf "dev %.3g" e.deviation);
          ])
      (Stats.Table.create
         ~headers:[ "claim"; "status"; "observed"; "expected"; "baseline" ])
      t.entries
  in
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer (Stats.Table.render table);
  List.iter
    (fun id ->
      Buffer.add_string buffer
        (Printf.sprintf "missing from run (in baseline): %s\n" id))
    t.missing;
  Buffer.add_string buffer
    (Printf.sprintf "%d claims: %d pass, %d drift, %d fail, %d new%s\n"
       (List.length t.entries) (count Pass t) (count Drift t) (count Fail t)
       (count New t)
       (if t.missing = [] then ""
        else Printf.sprintf ", %d missing" (List.length t.missing)));
  Buffer.contents buffer

(* Deliberately timestamp-free: the verdict of a (mode, seed) run is a
   pure value, byte-identical across --jobs and reruns. *)
let to_json t =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String schema);
      ("mode", Obs.Json.String t.mode);
      ("seed", Obs.Json.String (Printf.sprintf "%Ld" t.seed));
      ("tolerance", Obs.Json.Float t.tolerance);
      ("exit_code", Obs.Json.Int (exit_code t));
      ( "summary",
        Obs.Json.Obj
          [
            ("pass", Obs.Json.Int (count Pass t));
            ("drift", Obs.Json.Int (count Drift t));
            ("fail", Obs.Json.Int (count Fail t));
            ("new", Obs.Json.Int (count New t));
            ("missing", Obs.Json.Int (List.length t.missing));
          ] );
      ( "entries",
        Obs.Json.List
          (List.map
             (fun e ->
               Obs.Json.Obj
                 [
                   ("claim", Experiments.Claim.to_json e.claim);
                   ("status", Obs.Json.String (status_name e.status));
                   ( "baseline",
                     match e.baseline_values with
                     | None -> Obs.Json.Null
                     | Some values ->
                         Obs.Json.List (List.map Baseline.json_of_value values)
                   );
                   ("deviation", Obs.Json.Float e.deviation);
                 ])
             t.entries) );
      ("missing", Obs.Json.List (List.map (fun id -> Obs.Json.String id) t.missing));
    ]
