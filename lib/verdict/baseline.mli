(** Committed claim baselines ([verdict_baseline/v1]).

    A baseline records, per claim id, the observed values of a reference
    run at a fixed (mode, seed). The verdict engine compares a fresh
    run's values against it: the claim's bounds live in code, so a
    baseline mismatch is {e drift} (a measurement moved), not failure.

    Seeds are serialised as strings ([%Ld]) because JSON numbers cannot
    carry a full int64. [to_string] emits one entry per line, sorted by
    id, so baseline updates diff reviewably in git. *)

val schema : string
(** ["verdict_baseline/v1"]. *)

type t = private {
  mode : string;  (** ["quick"] or ["full"]. *)
  seed : int64;  (** Root seed of the reference run. *)
  tolerance : float;  (** Max relative deviation counted as equal. *)
  entries : (string * float list) list;  (** Sorted by claim id. *)
}

val make : mode:string -> seed:int64 -> ?tolerance:float -> (string * float list) list -> t
(** Sorts entries by id. Default [tolerance] is [1e-9].
    @raise Invalid_argument on duplicate ids or a negative tolerance. *)

val find : t -> string -> float list option

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result

val json_of_value : float -> Obs.Json.t
(** Finite floats as numbers; non-finite as ["nan"]/["inf"]/["-inf"]
    strings (JSON has no literals for them). *)

val value_of_json : Obs.Json.t -> float option
(** Inverse of [json_of_value]; also widens [Int]. *)

val to_string : t -> string
(** Pretty, diff-friendly rendering (one entry per line, trailing
    newline). Non-finite values are encoded as the strings ["nan"],
    ["inf"], ["-inf"]. *)

val of_string : string -> (t, string) result

val load : string -> (t, string) result
(** Read and parse a baseline file; [Error] carries the I/O or parse
    message. *)

val save : string -> t -> unit
