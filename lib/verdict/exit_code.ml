let ok = 0
let error = 1
let claim_fail = 2
let strict_shortfall = 3
let drift = 4
let unrecoverable_faults = 5
let manifest_error = 6
let queue_overflow = 7

let worst codes = List.fold_left Stdlib.max ok codes

let describe code =
  if code = ok then "success"
  else if code = error then "usage or I/O error"
  else if code = claim_fail then "a machine-checked claim does not hold"
  else if code = strict_shortfall then
    "--strict-shortfall and a report is under-sampled"
  else if code = drift then "claims hold but drifted from the baseline"
  else if code = unrecoverable_faults then
    "unrecoverable worker faults: the report is partial"
  else if code = manifest_error then
    "a serve session manifest failed to parse or build"
  else if code = queue_overflow then
    "the serve admission cap rejected queries after backpressure"
  else Printf.sprintf "unknown exit code %d" code
