(** The verdict engine: claims vs baseline, with a pass/drift/fail table.

    Semantics:
    - {b Fail}: the claim's declared band is violated — the paper-facing
      assertion did not survive the run. Bounds live in code, so a Fail
      means either a real regression or a deliberately perturbed band.
    - {b Drift}: the band holds, but the observed values deviate from the
      committed baseline beyond its tolerance — a refactor moved a
      measured number. Baselines are per (mode, seed); drift is the
      signal to inspect and, if intended, [--update] the baseline.
    - {b New}: the band holds and the claim has no baseline entry yet.
    - {b Pass}: band holds, values match the baseline (or no baseline
      was supplied at all).

    The rendered table, JSON ([verdict/v1]) and exit code are pure in
    (claims, baseline) — no timestamps — so a (mode, seed) verdict is
    byte-identical across [--jobs] and reruns. *)

val schema : string
(** ["verdict/v1"]. *)

type status = Pass | Drift | Fail | New

val status_name : status -> string
(** ["pass"], ["DRIFT"], ["FAIL"], ["new"] — failure states shout so
    they stand out in the table. *)

type entry = {
  claim : Experiments.Claim.t;
  status : status;
  baseline_values : float list option;
  deviation : float;
      (** Max per-value deviation vs baseline: relative for magnitudes
          above 1, absolute below (fractions near 0 must not blow up the
          denominator); [infinity] on arity mismatch. 0 without a
          baseline entry. *)
}

type t = {
  mode : string;
  seed : int64;
  tolerance : float;
  entries : entry list;  (** In the order the claims were supplied. *)
  missing : string list;
      (** Baseline ids the run did not produce (e.g. a full-only claim
          checked against a quick run) — counted as drift. *)
}

val evaluate :
  mode:string -> seed:int64 -> ?baseline:Baseline.t -> Experiments.Claim.t list -> t
(** Tolerance is taken from the baseline ([1e-9] when absent). *)

val exit_code : t -> int
(** [2] if any claim fails, else [4] if anything drifted (including
    baseline ids missing from the run), else [0]. *)

val count : status -> t -> int

val baseline : ?tolerance:float -> t -> Baseline.t
(** The baseline this run would commit ([check --update]). *)

val render : t -> string
(** Human table plus a one-line summary (trailing newline). *)

val to_json : t -> Obs.Json.t
(** [verdict/v1]: schema, mode, seed, tolerance, exit code, status
    counts, per-claim entries (embedding [claim/v1]), missing ids. *)
