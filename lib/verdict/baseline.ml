let schema = "verdict_baseline/v1"

type t = {
  mode : string;
  seed : int64;
  tolerance : float;
  entries : (string * float list) list;
}

let make ~mode ~seed ?(tolerance = 1e-9) entries =
  if tolerance < 0.0 then invalid_arg "Baseline.make: negative tolerance";
  let sorted =
    List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) entries
  in
  if List.length sorted <> List.length entries then begin
    let ids = List.sort String.compare (List.map fst entries) in
    let dup =
      let rec first = function
        | a :: (b :: _ as rest) -> if a = b then a else first rest
        | _ -> "?"
      in
      first ids
    in
    invalid_arg (Printf.sprintf "Baseline.make: duplicate claim id %s" dup)
  end;
  { mode; seed; tolerance; entries = sorted }

let find t id = List.assoc_opt id t.entries

(* Non-finite observations are representable (a claim that never held
   still gets recorded), but JSON has no literal for them. *)
let json_of_value v =
  if Float.is_finite v then Obs.Json.Float v
  else if Float.is_nan v then Obs.Json.String "nan"
  else if v > 0.0 then Obs.Json.String "inf"
  else Obs.Json.String "-inf"

let value_of_json = function
  | Obs.Json.String "nan" -> Some Float.nan
  | Obs.Json.String "inf" -> Some Float.infinity
  | Obs.Json.String "-inf" -> Some Float.neg_infinity
  | json -> Obs.Json.to_float json

let to_json t =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String schema);
      ("mode", Obs.Json.String t.mode);
      ("seed", Obs.Json.String (Printf.sprintf "%Ld" t.seed));
      ("tolerance", Obs.Json.Float t.tolerance);
      ( "entries",
        Obs.Json.Obj
          (List.map
             (fun (id, values) ->
               (id, Obs.Json.List (List.map json_of_value values)))
             t.entries) );
    ]

(* One entry per line so baseline updates diff reviewably in git. *)
let to_string t =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "{\n";
  Buffer.add_string buffer
    (Printf.sprintf "  \"schema\": \"%s\",\n" schema);
  Buffer.add_string buffer (Printf.sprintf "  \"mode\": \"%s\",\n" t.mode);
  Buffer.add_string buffer (Printf.sprintf "  \"seed\": \"%Ld\",\n" t.seed);
  Buffer.add_string buffer
    (Printf.sprintf "  \"tolerance\": %s,\n"
       (Obs.Json.to_string (Obs.Json.Float t.tolerance)));
  Buffer.add_string buffer "  \"entries\": {\n";
  List.iteri
    (fun i (id, values) ->
      Buffer.add_string buffer
        (Printf.sprintf "    %s: %s%s\n"
           (Obs.Json.to_string (Obs.Json.String id))
           (Obs.Json.to_string (Obs.Json.List (List.map json_of_value values)))
           (if i < List.length t.entries - 1 then "," else "")))
    t.entries;
  Buffer.add_string buffer "  }\n}\n";
  Buffer.contents buffer

let of_json json =
  let ( let* ) r f = Result.bind r f in
  let field name to_value =
    match Option.bind (Obs.Json.member name json) to_value with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "baseline: missing or bad field %S" name)
  in
  let* declared = field "schema" Obs.Json.to_str in
  let* () =
    if declared = schema then Ok ()
    else Error (Printf.sprintf "baseline: schema %S, expected %S" declared schema)
  in
  let* mode = field "mode" Obs.Json.to_str in
  let* seed_text = field "seed" Obs.Json.to_str in
  let* seed =
    match Int64.of_string_opt seed_text with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "baseline: bad seed %S" seed_text)
  in
  let* tolerance = field "tolerance" Obs.Json.to_float in
  let* entries_json =
    match Obs.Json.member "entries" json with
    | Some (Obs.Json.Obj fields) -> Ok fields
    | _ -> Error "baseline: missing or bad field \"entries\""
  in
  let* entries =
    List.fold_left
      (fun acc (id, values_json) ->
        let* acc = acc in
        match Obs.Json.to_list values_json with
        | None -> Error (Printf.sprintf "baseline: entry %S is not a list" id)
        | Some values ->
            let parsed = List.filter_map value_of_json values in
            if List.length parsed <> List.length values then
              Error (Printf.sprintf "baseline: entry %S has a non-number" id)
            else Ok ((id, parsed) :: acc))
      (Ok []) entries_json
  in
  Ok (make ~mode ~seed ~tolerance (List.rev entries))

let of_string text =
  Result.bind (Obs.Json.of_string text) of_json

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error message -> Error message

(* Atomic (temp + rename) so a kill mid-update can never leave a torn
   baseline for the next `check` to choke on; also creates missing
   parent directories, so `check --update` works on a fresh clone. *)
let save path t = Obs.Atomic_file.write ~path ~contents:(to_string t)
