(** One line of the serve wire protocol: a JSON query.

    A query is a single-line JSON object:
    [{"id": ..., "op": "route", "world": "w0", "source": 3, "target": 9,
      "router": "bfs", "budget": 200}].

    [id] is free-form JSON echoed back verbatim in the answer (clients
    correlate; the service never interprets it). [op] selects the
    operation; [world] names a manifest world and is required for every
    op except [stats]. Optional caps ([budget], [limit]) fall back to
    the session's limits. *)

type op =
  | Route of {
      source : int;
      target : int;
      router : string;  (** Routing registry name; default ["bfs"]. *)
      budget : int option;
    }
  | Reveal of { source : int; target : int; limit : int option }
      (** Ground-truth connectivity [source ~ target]. *)
  | Cluster of { vertex : int; limit : int option }
      (** Open-cluster size of [vertex]. *)
  | Stats  (** Session counters so far; forces a queue flush. *)

type t = {
  qid : Obs.Json.t;  (** Echoed back; [Null] when absent. *)
  world : string option;
  op : op;
}

val op_name : op -> string
(** The wire name: ["route"], ["reveal"], ["cluster"], ["stats"]. *)

val parse : string -> (t, string) result
(** Parse one line. Errors are protocol-level (malformed JSON, unknown
    op, missing/mistyped fields); the service answers them with an
    error object instead of dying. Semantic errors (unknown world,
    vertex out of range, inapplicable router) are {e not} detected
    here — they need the session. *)
