module J = Obs.Json

type op =
  | Route of { source : int; target : int; router : string; budget : int option }
  | Reveal of { source : int; target : int; limit : int option }
  | Cluster of { vertex : int; limit : int option }
  | Stats

type t = { qid : J.t; world : string option; op : op }

let op_name = function
  | Route _ -> "route"
  | Reveal _ -> "reveal"
  | Cluster _ -> "cluster"
  | Stats -> "stats"

let ( let* ) = Result.bind

let int_field json name =
  match Option.bind (J.member name json) J.to_int with
  | Some i when i >= 0 -> Ok i
  | Some i -> Error (Printf.sprintf "field %S = %d must be >= 0" name i)
  | None -> Error (Printf.sprintf "missing integer field %S" name)

let opt_cap json name =
  match J.member name json with
  | None | Some J.Null -> Ok None
  | Some v -> (
      match J.to_int v with
      | Some i when i >= 1 -> Ok (Some i)
      | Some i -> Error (Printf.sprintf "field %S = %d must be >= 1" name i)
      | None -> Error (Printf.sprintf "field %S must be a positive integer" name))

let parse line =
  match J.of_string line with
  | Error e -> Error e
  | Ok (J.Obj _ as json) ->
      let qid = Option.value (J.member "id" json) ~default:J.Null in
      let world = Option.bind (J.member "world" json) J.to_str in
      let* op =
        match Option.bind (J.member "op" json) J.to_str with
        | Some "route" ->
            let* source = int_field json "source" in
            let* target = int_field json "target" in
            let router =
              match Option.bind (J.member "router" json) J.to_str with
              | Some r -> r
              | None -> "bfs"
            in
            let* budget = opt_cap json "budget" in
            Ok (Route { source; target; router; budget })
        | Some "reveal" ->
            let* source = int_field json "source" in
            let* target = int_field json "target" in
            let* limit = opt_cap json "limit" in
            Ok (Reveal { source; target; limit })
        | Some "cluster" ->
            let* vertex = int_field json "vertex" in
            let* limit = opt_cap json "limit" in
            Ok (Cluster { vertex; limit })
        | Some "stats" -> Ok Stats
        | Some op -> Error (Printf.sprintf "unknown op %S" op)
        | None -> Error "missing string field \"op\""
      in
      (match op with
      | Stats -> Ok { qid; world; op }
      | _ when world = None ->
          Error (Printf.sprintf "op %S requires a \"world\" field" (op_name op))
      | _ -> Ok { qid; world; op })
  | Ok _ -> Error "query must be a JSON object"
