module J = Obs.Json

type world_row = { wid : string; constructed : int; queries : int; probes : int }

type t = {
  session : string;
  config_digest : string;
  queue : int;
  max_queries : int option;
  admitted : int;
  answered : int;
  malformed : int;
  errors : int;
  rejected : int;
  probes : int;
  outcomes : (string * int) list;
  worlds : world_row list;
}

let schema = "evidence/v1"

let outcome_keys =
  [
    "budget_exceeded"; "cluster"; "connected"; "disconnected"; "error";
    "found"; "malformed"; "no_path"; "stats"; "unknown";
  ]

let ( let* ) = Result.bind
let err fmt = Printf.ksprintf (fun m -> Error ("evidence/v1: " ^ m)) fmt

let world_to_json w =
  J.Obj
    [
      ("id", J.String w.wid);
      ("constructed", J.Int w.constructed);
      ("queries", J.Int w.queries);
      ("probes", J.Int w.probes);
    ]

let to_json t =
  J.Obj
    [
      ("schema", J.String schema);
      ("session", J.String t.session);
      ("config_digest", J.String t.config_digest);
      ("queue", J.Int t.queue);
      ( "max_queries",
        match t.max_queries with None -> J.Null | Some n -> J.Int n );
      ("admitted", J.Int t.admitted);
      ("answered", J.Int t.answered);
      ("malformed", J.Int t.malformed);
      ("errors", J.Int t.errors);
      ("rejected", J.Int t.rejected);
      ("probes", J.Int t.probes);
      ("outcomes", J.Obj (List.map (fun (k, n) -> (k, J.Int n)) t.outcomes));
      ("worlds", J.List (List.map world_to_json t.worlds));
    ]

let to_string t = J.to_string (to_json t) ^ "\n"

let int_field json name =
  match Option.bind (J.member name json) J.to_int with
  | Some i -> Ok i
  | None -> err "missing integer field %S" name

let str_field json name =
  match Option.bind (J.member name json) J.to_str with
  | Some s -> Ok s
  | None -> err "missing string field %S" name

let world_of_json json =
  let* wid = str_field json "id" in
  let* constructed = int_field json "constructed" in
  let* queries = int_field json "queries" in
  let* probes = int_field json "probes" in
  Ok { wid; constructed; queries; probes }

let of_json json =
  match json with
  | J.Obj _ ->
      let* () =
        match Option.bind (J.member "schema" json) J.to_str with
        | Some s when s = schema -> Ok ()
        | Some s -> err "unsupported schema %S (want %S)" s schema
        | None -> err "missing string field \"schema\""
      in
      let* session = str_field json "session" in
      let* config_digest = str_field json "config_digest" in
      let* queue = int_field json "queue" in
      let* max_queries =
        match J.member "max_queries" json with
        | None | Some J.Null -> Ok None
        | Some v -> (
            match J.to_int v with
            | Some n -> Ok (Some n)
            | None -> err "max_queries must be an integer or null")
      in
      let* admitted = int_field json "admitted" in
      let* answered = int_field json "answered" in
      let* malformed = int_field json "malformed" in
      let* errors = int_field json "errors" in
      let* rejected = int_field json "rejected" in
      let* probes = int_field json "probes" in
      let* outcomes =
        match J.member "outcomes" json with
        | Some (J.Obj fields) ->
            let rec collect acc = function
              | [] -> Ok (List.rev acc)
              | (k, J.Int n) :: rest -> collect ((k, n) :: acc) rest
              | (k, _) :: _ -> err "outcome %S must be an integer" k
            in
            collect [] fields
        | _ -> err "missing object field \"outcomes\""
      in
      let* worlds =
        match J.member "worlds" json with
        | Some (J.List entries) ->
            let rec collect acc = function
              | [] -> Ok (List.rev acc)
              | w :: rest ->
                  let* row = world_of_json w in
                  collect (row :: acc) rest
            in
            collect [] entries
        | _ -> err "missing list field \"worlds\""
      in
      Ok
        {
          session; config_digest; queue; max_queries; admitted; answered;
          malformed; errors; rejected; probes; outcomes; worlds;
        }
  | _ -> err "evidence must be a JSON object"

let of_string text =
  match J.of_string text with
  | Error e -> err "%s" e
  | Ok json -> of_json json

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> err "cannot read %s: %s" path e

let outcome_sum t = List.fold_left (fun acc (_, n) -> acc + n) 0 t.outcomes

let validate t =
  let* () =
    if List.map fst t.outcomes <> outcome_keys then
      err "outcome histogram keys differ from the fixed domain"
    else Ok ()
  in
  let all_counts =
    [ t.admitted; t.answered; t.malformed; t.errors; t.rejected; t.probes ]
    @ List.map snd t.outcomes
    @ List.concat_map
        (fun (w : world_row) -> [ w.constructed; w.queries; w.probes ])
        t.worlds
  in
  let* () =
    if List.exists (fun n -> n < 0) all_counts then err "negative count"
    else Ok ()
  in
  let* () =
    if t.answered <> t.admitted then
      err "answered (%d) <> admitted (%d)" t.answered t.admitted
    else Ok ()
  in
  let* () =
    let sum = outcome_sum t in
    if sum <> t.answered then
      err "outcome histogram sums to %d, answered is %d" sum t.answered
    else Ok ()
  in
  let* () =
    if List.sort compare (List.map (fun w -> w.wid) t.worlds)
       <> List.map (fun w -> w.wid) t.worlds
    then err "world rows not sorted by id"
    else Ok ()
  in
  let* () =
    match List.find_opt (fun w -> w.constructed > 1) t.worlds with
    | Some w -> err "world %S constructed %d times" w.wid w.constructed
    | None -> Ok ()
  in
  let world_probes =
    List.fold_left (fun acc (w : world_row) -> acc + w.probes) 0 t.worlds
  in
  if world_probes <> t.probes then
    err "world probe totals sum to %d, session total is %d" world_probes
      t.probes
  else Ok ()

(* Claim ids are "serve:NAME/slug"; the verdict engine groups by the
   prefix before '/', so session names containing '/' are flattened. *)
let claims t =
  let prefix =
    "serve:" ^ String.map (fun c -> if c = '/' then '_' else c) t.session
  in
  let id slug = prefix ^ "/" ^ slug in
  let max_constructed =
    List.fold_left (fun acc w -> max acc w.constructed) 0 t.worlds
  in
  [
    Experiments.Claim.band ~id:(id "answered")
      ~description:"every admitted query was answered" ~lo:0.0 ~hi:0.0
      (float_of_int (t.answered - t.admitted));
    Experiments.Claim.band ~id:(id "accounting")
      ~description:"outcome histogram accounts for every answer" ~lo:0.0
      ~hi:0.0
      (float_of_int (outcome_sum t - t.answered));
    Experiments.Claim.ceiling ~id:(id "construction")
      ~description:"each manifest world was constructed at most once"
      ~max:1.0
      (float_of_int max_constructed);
    Experiments.Claim.ceiling ~id:(id "overflow")
      ~description:"no queries rejected by the admission cap" ~max:0.0
      (float_of_int t.rejected);
  ]
