module J = Obs.Json

type world_spec = {
  wid : string;
  topology : string;
  p : float;
  site_p : float option;
  seed : int64;
}

type limits = {
  queue : int;
  max_queries : int option;
  reveal_limit : int option;
}

type t = {
  name : string;
  seed : int64;
  worlds : world_spec list;
  limits : limits;
  mix : string list;
}

let schema = "session/v1"
let default_queue = 4096
let ops = [ "cluster"; "reveal"; "route"; "stats" ]
let allows t op = t.mix = [] || List.mem op t.mix

let ( let* ) = Result.bind
let err fmt = Printf.ksprintf (fun m -> Error ("session/v1: " ^ m)) fmt

let seed_of_json ~what = function
  | J.Int i -> Ok (Int64.of_int i)
  | J.String s -> (
      match Int64.of_string_opt s with
      | Some v -> Ok v
      | None -> err "%s: bad int64 seed %S" what s)
  | _ -> err "%s: seed must be an integer or a decimal string" what

let opt_field name conv json =
  match J.member name json with
  | None | Some J.Null -> Ok None
  | Some v -> (
      match conv v with Ok r -> Ok (Some r) | Error _ as e -> e)

let probability ~what name v =
  match J.to_float v with
  | Some f when f >= 0.0 && f <= 1.0 -> Ok f
  | Some f -> err "%s: %s = %g is not in [0, 1]" what name f
  | None -> err "%s: %s must be a number" what name

let positive_int ~what name v =
  match J.to_int v with
  | Some i when i >= 1 -> Ok i
  | Some i -> err "%s: %s = %d must be >= 1" what name i
  | None -> err "%s: %s must be a positive integer" what name

let world_of_json ~default_seed json =
  match json with
  | J.Obj _ ->
      let* wid =
        match Option.bind (J.member "id" json) J.to_str with
        | Some id when id <> "" -> Ok id
        | Some _ -> err "world: id must be non-empty"
        | None -> err "world: missing string field \"id\""
      in
      let what = Printf.sprintf "world %S" wid in
      let* topology =
        match Option.bind (J.member "topology" json) J.to_str with
        | Some s -> (
            (* Validate eagerly: a manifest error must surface at load
               time (exit code manifest_error), not mid-stream. *)
            match Topology.Registry.of_spec s with
            | Error e -> err "%s: %s" what e
            | Ok { Topology.Registry.size = None; _ } ->
                err "%s: topology %S must carry an inline size (NAME:SIZE)"
                  what s
            | Ok _ -> Ok s)
        | None -> err "%s: missing string field \"topology\"" what
      in
      let* p =
        match J.member "p" json with
        | Some v -> probability ~what "p" v
        | None -> err "%s: missing field \"p\"" what
      in
      let* site_p = opt_field "site_p" (probability ~what "site_p") json in
      let* seed =
        match J.member "seed" json with
        | None | Some J.Null -> Ok default_seed
        | Some v -> seed_of_json ~what v
      in
      Ok { wid; topology; p; site_p; seed }
  | _ -> err "worlds entries must be objects"

let limits_of_json json =
  match J.member "limits" json with
  | None | Some J.Null ->
      Ok { queue = default_queue; max_queries = None; reveal_limit = None }
  | Some (J.Obj _ as l) ->
      let what = "limits" in
      let* queue =
        match J.member "queue" l with
        | None | Some J.Null -> Ok default_queue
        | Some v -> positive_int ~what "queue" v
      in
      let* max_queries = opt_field "max_queries" (positive_int ~what "max_queries") l in
      let* reveal_limit = opt_field "reveal_limit" (positive_int ~what "reveal_limit") l in
      Ok { queue; max_queries; reveal_limit }
  | Some _ -> err "limits must be an object"

let mix_of_json json =
  match J.member "query_mix" json with
  | None | Some J.Null -> Ok []
  | Some (J.List entries) ->
      let rec collect acc = function
        | [] -> Ok (List.sort_uniq compare (List.rev acc))
        | J.String s :: rest when List.mem s ops -> collect (s :: acc) rest
        | J.String s :: _ ->
            err "query_mix: unknown op %S (known: %s)" s (String.concat ", " ops)
        | _ -> err "query_mix entries must be strings"
      in
      collect [] entries
  | Some _ -> err "query_mix must be a list"

let of_json ~default_seed json =
  match json with
  | J.Obj _ ->
      let* () =
        match Option.bind (J.member "schema" json) J.to_str with
        | Some s when s = schema -> Ok ()
        | Some s -> err "unsupported schema %S (want %S)" s schema
        | None -> err "missing string field \"schema\""
      in
      let name =
        match Option.bind (J.member "name" json) J.to_str with
        | Some n when n <> "" -> n
        | _ -> "session"
      in
      let* seed =
        match J.member "seed" json with
        | None | Some J.Null -> Ok default_seed
        | Some v -> seed_of_json ~what:"session" v
      in
      let* worlds =
        match J.member "worlds" json with
        | Some (J.List (_ :: _ as entries)) ->
            let rec collect acc = function
              | [] -> Ok (List.rev acc)
              | w :: rest ->
                  let* parsed = world_of_json ~default_seed:seed w in
                  if List.exists (fun q -> q.wid = parsed.wid) acc then
                    err "duplicate world id %S" parsed.wid
                  else collect (parsed :: acc) rest
            in
            collect [] entries
        | Some (J.List []) -> err "worlds must be non-empty"
        | _ -> err "missing list field \"worlds\""
      in
      let* limits = limits_of_json json in
      let* mix = mix_of_json json in
      Ok { name; seed; worlds; limits; mix }
  | _ -> err "manifest must be a JSON object"

let of_string ~default_seed text =
  match J.of_string text with
  | Error e -> err "%s" e
  | Ok json -> of_json ~default_seed json

let load ~default_seed path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> of_string ~default_seed text
  | exception Sys_error e -> err "cannot read %s: %s" path e

let seed_json s = J.String (Int64.to_string s)

let world_to_json w =
  J.Obj
    ([ ("id", J.String w.wid); ("topology", J.String w.topology);
       ("p", J.Float w.p) ]
    @ (match w.site_p with None -> [] | Some q -> [ ("site_p", J.Float q) ])
    @ [ ("seed", seed_json w.seed) ])

let to_json t =
  J.Obj
    [
      ("schema", J.String schema);
      ("name", J.String t.name);
      ("seed", seed_json t.seed);
      ("worlds", J.List (List.map world_to_json t.worlds));
      ( "limits",
        J.Obj
          ([ ("queue", J.Int t.limits.queue) ]
          @ (match t.limits.max_queries with
            | None -> []
            | Some n -> [ ("max_queries", J.Int n) ])
          @
          match t.limits.reveal_limit with
          | None -> []
          | Some n -> [ ("reveal_limit", J.Int n) ]) );
      ("query_mix", J.List (List.map (fun s -> J.String s) t.mix));
    ]

let to_string t = J.to_string (to_json t) ^ "\n"
let digest t = Experiments.Checkpoint.digest_key (to_string t)
