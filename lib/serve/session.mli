(** The [session/v1] manifest: which worlds a serve session keeps
    resident, what queries it admits, and where its limits are.

    A manifest is pure data — topology/p/seed triples (the world
    identities), an optional query mix (the admitted operations), and
    limits (batch queue capacity, total admission cap, default reveal
    limit). Two sessions with equal manifests answer equal query files
    with byte-identical output; {!digest} names that equivalence class
    (the [config_digest] of the evidence file).

    Topology specs inside a manifest must carry an inline size
    ([hypercube:10], never a bare [hypercube]) — a session's worlds are
    fixed by the manifest alone, with no CLI default to consult. *)

type world_spec = {
  wid : string;  (** Unique id queries refer to, e.g. ["w0"]. *)
  topology : string;  (** Registry spec with inline size. *)
  p : float;  (** Edge retention probability. *)
  site_p : float option;  (** Vertex survival probability, if sites fail. *)
  seed : int64;
}

type limits = {
  queue : int;
      (** Batch queue capacity — at most this many queries are in
          flight at once (default {!default_queue}). Backpressure, not
          semantics: answers are byte-identical for any capacity. *)
  max_queries : int option;
      (** Admission cap for the whole session; input beyond it is
          rejected and the session exits with the queue-overflow code.
          [None] = unlimited. *)
  reveal_limit : int option;
      (** Default exploration cap for [reveal]/[cluster] queries that
          carry none. [None] = explore fully. *)
}

type t = {
  name : string;
  seed : int64;
      (** Root of the per-query randomness (randomized routers); query
          [i] draws from [Prng.Stream.split (create seed) i]. *)
  worlds : world_spec list;
  limits : limits;
  mix : string list;
      (** Admitted operations, sorted; [[]] admits every op. *)
}

val schema : string
(** ["session/v1"]. *)

val default_queue : int
(** 4096. *)

val ops : string list
(** The known operations: ["cluster"; "reveal"; "route"; "stats"]. *)

val allows : t -> string -> bool
(** Whether the session's query mix admits the named op. *)

val of_json : default_seed:int64 -> Obs.Json.t -> (t, string) result
val of_string : default_seed:int64 -> string -> (t, string) result

val load : default_seed:int64 -> string -> (t, string) result
(** Read and parse a manifest file; I/O errors become [Error]. *)

val to_json : t -> Obs.Json.t
(** Canonical form: fixed field order, defaults made explicit, seeds as
    strings (int64-safe, the baseline-file discipline). Round-trips
    through {!of_json}. *)

val to_string : t -> string
(** Compact canonical JSON, trailing newline. *)

val digest : t -> string
(** Hex digest of the canonical form — the session's [config_digest]. *)
