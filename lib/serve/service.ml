module J = Obs.Json

type resident = {
  wspec : Session.world_spec;
  instance : Topology.Registry.instance;
  world : Percolation.World.t;
  constructed : bool;
}

type t = {
  sess : Session.t;
  residents : resident list;  (* manifest order *)
  by_id : (string, resident) Hashtbl.t;
  root : Prng.Stream.t;
  pool : Experiments.Worldpool.t;
}

let session t = t.sess

let start ?pool (sess : Session.t) =
  let pool =
    match pool with
    | Some p -> p
    | None ->
        Experiments.Worldpool.create
          ~capacity:
            (max Experiments.Worldpool.default_capacity
               (List.length sess.Session.worlds))
          ()
  in
  let build (w : Session.world_spec) =
    match Topology.Registry.of_spec w.Session.topology with
    | Error e -> Error (Printf.sprintf "world %S: %s" w.Session.wid e)
    | Ok spec -> (
        let size = Option.value spec.Topology.Registry.size ~default:0 in
        let stream = Prng.Stream.split (Prng.Stream.create w.Session.seed) 0 in
        match Topology.Registry.build spec ~default_size:size stream with
        | exception Invalid_argument m ->
            Error (Printf.sprintf "world %S: %s" w.Session.wid m)
        | instance ->
            let before =
              (Experiments.Worldpool.stats pool).Experiments.Worldpool.constructed
            in
            let world =
              Experiments.Worldpool.get ?site_p:w.Session.site_p pool
                instance.Topology.Registry.graph ~p:w.Session.p
                ~seed:w.Session.seed
            in
            let after =
              (Experiments.Worldpool.stats pool).Experiments.Worldpool.constructed
            in
            Ok { wspec = w; instance; world; constructed = after > before })
  in
  let rec build_all acc = function
    | [] -> Ok (List.rev acc)
    | w :: rest -> (
        match build w with
        | Error _ as e -> e
        | Ok r -> build_all (r :: acc) rest)
  in
  match build_all [] sess.Session.worlds with
  | Error e -> Error e
  | Ok residents ->
      let by_id = Hashtbl.create 16 in
      List.iter (fun r -> Hashtbl.replace by_id r.wspec.Session.wid r) residents;
      Ok { sess; residents; by_id; root = Prng.Stream.create sess.Session.seed; pool }

(* ------------------------------------------------------------------ *)
(* Per-query evaluation — pure in (session, qindex, item), runs on
   worker domains. Resident worlds are prefilled, so reads are
   write-free; everything else is query-local. *)

type item = Bad of { qid : J.t; error : string } | Ask of Query.t

type acct = {
  ok_world : string option;  (* counted world, ok answers only *)
  op : string;  (* query-type label for latency telemetry *)
  outcome : string;  (* one of Evidence.outcome_keys *)
  probes : int;
  accepted : bool;  (* emitted a trace Accept terminal *)
  record : Obs.Trace.record option;
  metrics : Obs.Metrics.snapshot option;
  elapsed_ns : float;  (* reporting-layer only; 0 when telemetry is off *)
}

let silent_acct ~op outcome =
  {
    ok_world = None;
    op;
    outcome;
    probes = 0;
    accepted = false;
    record = None;
    metrics = None;
    elapsed_ns = 0.;
  }

let json_opt = function None -> J.Null | Some s -> J.String s

let error_answer ~qid ~op ~world ~outcome msg =
  J.to_string
    (J.Obj
       [
         ("id", qid); ("op", op); ("world", world); ("ok", J.Bool false);
         ("outcome", J.String outcome); ("error", J.String msg);
       ])
  ^ "\n"

let ok_answer ~qid ~op ~world fields =
  J.to_string
    (J.Obj
       ([ ("id", qid); ("op", J.String op); ("world", world);
          ("ok", J.Bool true) ]
       @ fields))
  ^ "\n"

(* Run [f] under this query's trace ring and metrics registry; [f]
   emits its own terminal events and returns the tallied answer. *)
let observed ~qindex f =
  let with_metrics g =
    if Obs.Metrics.on () then (
      let registry = Obs.Metrics.create () in
      let v = Obs.Metrics.with_ambient registry g in
      (v, Some (Obs.Metrics.snapshot registry)))
    else (g (), None)
  in
  if Obs.Trace.on () then
    let (v, snapshot), record =
      Obs.Trace.capture ~index:qindex (fun () ->
          with_metrics (fun () ->
              Obs.Trace.emit (Obs.Trace.Attempt_start { index = qindex });
              Obs.Trace.emit
                (Obs.Trace.Query_span { q = qindex; stage = Obs.Trace.Execute });
              f ()))
    in
    (v, snapshot, Some record)
  else
    let v, snapshot = with_metrics (fun () -> f ()) in
    (v, snapshot, None)

let eval_item t ~qindex item =
  match item with
  | Bad { qid; error } ->
      ( error_answer ~qid ~op:J.Null ~world:J.Null ~outcome:"malformed" error,
        silent_acct ~op:"malformed" "malformed" )
  | Ask q -> (
      let qid = q.Query.qid in
      let opn = Query.op_name q.Query.op in
      let wfield = json_opt q.Query.world in
      let fail msg =
        ( error_answer ~qid ~op:(J.String opn) ~world:wfield ~outcome:"error"
            msg,
          silent_acct ~op:opn "error" )
      in
      if not (Session.allows t.sess opn) then
        fail (Printf.sprintf "op %S is not in the session query mix" opn)
      else
        let resident =
          match q.Query.world with
          | None -> Error "missing \"world\""
          | Some wid -> (
              match Hashtbl.find_opt t.by_id wid with
              | Some r -> Ok r
              | None -> Error (Printf.sprintf "unknown world %S" wid))
        in
        match (q.Query.op, resident) with
        | Query.Stats, _ ->
            (* Valid stats queries are answered sequentially by the
               serve loop; reaching here means the mix allowed it but
               the loop did not intercept — a service bug, answered
               (deterministically) rather than asserted. *)
            fail "stats queries are answered by the session loop"
        | _, Error msg -> fail msg
        | op, Ok r -> (
            let n = r.instance.Topology.Registry.graph.Topology.Graph.vertex_count in
            let check name v =
              if v < n then Ok ()
              else
                Error
                  (Printf.sprintf "%s %d out of range (world has %d vertices)"
                     name v n)
            in
            let stream = Prng.Stream.split t.root qindex in
            let wid = r.wspec.Session.wid in
            let default_limit = t.sess.Session.limits.Session.reveal_limit in
            match op with
            | Query.Stats -> assert false (* handled above *)
            | Query.Route { source; target; router; budget } -> (
                match
                  match check "source" source with
                  | Error _ as e -> e
                  | Ok () -> (
                      match check "target" target with
                      | Error _ as e -> e
                      | Ok () -> (
                          match Routing.Registry.of_spec router with
                          | Error _ as e -> e
                          | Ok entry ->
                              entry.Routing.Registry.build
                                ~instance:r.instance ~source ~target stream))
                with
                | Error msg -> fail msg
                | Ok router_t -> (
                    let result, metrics, record =
                      observed ~qindex (fun () ->
                          match
                            Routing.Router.run ?budget router_t r.world
                              ~source ~target
                          with
                          | outcome ->
                              (match outcome with
                              | Routing.Outcome.Found { path; probes; _ } ->
                                  Obs.Trace.emit
                                    (Obs.Trace.Accept
                                       {
                                         distance = List.length path - 1;
                                         probes;
                                       })
                              | Routing.Outcome.No_path _ ->
                                  Obs.Trace.emit
                                    (Obs.Trace.Reject
                                       { reason = Obs.Trace.Disconnected })
                              | Routing.Outcome.Budget_exceeded _ -> ());
                              Ok outcome
                          | exception Routing.Router.Invalid_route { router; _ }
                            ->
                              Error
                                (Printf.sprintf
                                   "router %S returned an invalid route"
                                   router))
                    in
                    match result with
                    | Error msg ->
                        let line, acct = fail msg in
                        (line, { acct with record; metrics })
                    | Ok outcome ->
                        let probes = Routing.Outcome.probes outcome in
                        let key, fields, accepted =
                          match outcome with
                          | Routing.Outcome.Found { path; _ } ->
                              ( "found",
                                [ ("probes", J.Int probes);
                                  ("path_len", J.Int (List.length path - 1)) ],
                                true )
                          | Routing.Outcome.No_path _ ->
                              ("no_path", [ ("probes", J.Int probes) ], false)
                          | Routing.Outcome.Budget_exceeded _ ->
                              ( "budget_exceeded",
                                [ ("probes", J.Int probes) ],
                                false )
                        in
                        ( ok_answer ~qid ~op:opn ~world:wfield
                            (("outcome", J.String key) :: fields),
                          {
                            ok_world = Some wid;
                            op = opn;
                            outcome = key;
                            probes;
                            accepted;
                            record;
                            metrics;
                            elapsed_ns = 0.;
                          } )))
            | Query.Reveal { source; target; limit } -> (
                match
                  match check "source" source with
                  | Error _ as e -> e
                  | Ok () -> check "target" target
                with
                | Error msg -> fail msg
                | Ok () ->
                    let limit =
                      match limit with Some _ -> limit | None -> default_limit
                    in
                    let verdict, metrics, record =
                      observed ~qindex (fun () ->
                          let v =
                            Percolation.Reveal.connected ?limit r.world source
                              target
                          in
                          (match v with
                          | Percolation.Reveal.Connected d ->
                              Obs.Trace.emit
                                (Obs.Trace.Accept { distance = d; probes = 0 })
                          | Percolation.Reveal.Disconnected ->
                              Obs.Trace.emit
                                (Obs.Trace.Reject
                                   { reason = Obs.Trace.Disconnected })
                          | Percolation.Reveal.Unknown ->
                              Obs.Trace.emit
                                (Obs.Trace.Reject
                                   { reason = Obs.Trace.Reveal_limit }));
                          v)
                    in
                    let key, fields, accepted =
                      match verdict with
                      | Percolation.Reveal.Connected d ->
                          ("connected", [ ("distance", J.Int d) ], true)
                      | Percolation.Reveal.Disconnected ->
                          ("disconnected", [], false)
                      | Percolation.Reveal.Unknown -> ("unknown", [], false)
                    in
                    ( ok_answer ~qid ~op:opn ~world:wfield
                        (("outcome", J.String key) :: fields),
                      {
                        ok_world = Some wid;
                        op = opn;
                        outcome = key;
                        probes = 0;
                        accepted;
                        record;
                        metrics;
                        elapsed_ns = 0.;
                      } ))
            | Query.Cluster { vertex; limit } -> (
                match check "vertex" vertex with
                | Error msg -> fail msg
                | Ok () ->
                    let limit =
                      match limit with Some _ -> limit | None -> default_limit
                    in
                    let (size, truncated), metrics, record =
                      observed ~qindex (fun () ->
                          Percolation.Reveal.cluster_size ?limit r.world vertex)
                    in
                    ( ok_answer ~qid ~op:opn ~world:wfield
                        [
                          ("outcome", J.String "cluster");
                          ("size", J.Int size);
                          ("truncated", J.Bool truncated);
                        ],
                      {
                        ok_world = Some wid;
                        op = opn;
                        outcome = "cluster";
                        probes = 0;
                        accepted = false;
                        record;
                        metrics;
                        elapsed_ns = 0.;
                      } ))))

(* Latency measurement wraps the whole evaluation, workers each timing
   their own queries. The reading rides along in the acct and is only
   {e consumed} sequentially at tally time, so it never touches answer
   bytes; when telemetry is off the clock is never read. *)
let eval t ~qindex item =
  if Obs.Telemetry.on () then begin
    let t0 = Unix.gettimeofday () in
    let line, acct = eval_item t ~qindex item in
    (line, { acct with elapsed_ns = (Unix.gettimeofday () -. t0) *. 1e9 })
  end
  else eval_item t ~qindex item

(* ------------------------------------------------------------------ *)
(* The session loop: admit, batch, flush through the pool, tally in
   admission order. *)

type outcome = { evidence : Evidence.t; overflowed : bool }

let read_lines channel () = In_channel.input_line channel

let qid_of_bad_line line =
  match J.of_string line with
  | Ok (J.Obj _ as json) -> Option.value (J.member "id" json) ~default:J.Null
  | _ -> J.Null

let serve ?jobs t ~read ~write =
  let sess = t.sess in
  let capacity = sess.Session.limits.Session.queue in
  let traced = Obs.Trace.on () in
  let metered = Obs.Metrics.on () in
  let telemetered = Obs.Telemetry.on () in
  (* Probe-count distribution over route answers, kept in a local
     always-on registry: the [stats] reply quotes its quantiles, so it
     must exist (and be bit-identical) whether or not [--metrics-out]
     or telemetry is armed. Integer histogram + admission-order feeding
     = jobs-invariant. *)
  let probe_hist = Obs.Metrics.create () in
  (* Sequential tally state — admission-order, shared by flush/stats. *)
  let admitted = ref 0 and answered = ref 0 and rejected = ref 0 in
  let malformed = ref 0 and errors = ref 0 and probes = ref 0 in
  let attempts = ref 0 and accepted = ref 0 in
  let outcome_counts = Hashtbl.create 16 in
  List.iter (fun k -> Hashtbl.replace outcome_counts k 0) Evidence.outcome_keys;
  let world_tallies = Hashtbl.create 16 in
  List.iter
    (fun r ->
      Hashtbl.replace world_tallies r.wspec.Session.wid (ref 0, ref 0))
    t.residents;
  let metrics_acc = ref Obs.Metrics.empty in
  if traced then
    Obs.Trace.write_line
      (Obs.Trace.header_line
         [
           ("kind", J.String "serve");
           ("session", J.String sess.Session.name);
           ("digest", J.String (Session.digest sess));
           ("seed", J.String (Int64.to_string sess.Session.seed));
           ("worlds", J.Int (List.length t.residents));
           ("queue", J.Int capacity);
         ]);
  let tally ~qindex (line, acct) trace_buffer =
    write line;
    incr answered;
    Hashtbl.replace outcome_counts acct.outcome
      (Hashtbl.find outcome_counts acct.outcome + 1);
    (match acct.outcome with
    | "malformed" -> incr malformed
    | "error" -> incr errors
    | _ -> ());
    probes := !probes + acct.probes;
    (match acct.ok_world with
    | Some wid ->
        let queries, world_probes = Hashtbl.find world_tallies wid in
        incr queries;
        world_probes := !world_probes + acct.probes;
        if acct.op = "route" then
          Obs.Metrics.observe probe_hist "serve.route.probes" acct.probes
    | None -> ());
    if telemetered && acct.elapsed_ns > 0. then
      Obs.Telemetry.observe_ns
        ("serve.latency." ^ acct.op ^ "_ns")
        acct.elapsed_ns;
    (match acct.record with
    | Some record ->
        incr attempts;
        if acct.accepted then incr accepted;
        List.iter
          (fun l -> Buffer.add_string trace_buffer l)
          (Obs.Trace.record_lines record)
    | None -> ());
    if traced then
      Buffer.add_string trace_buffer
        (Obs.Trace.qspan_line ~q:qindex ~stage:Obs.Trace.Tally);
    match acct.metrics with
    | Some snapshot -> metrics_acc := Obs.Metrics.merge !metrics_acc snapshot
    | None -> ()
  in
  let pending = ref [] and pending_n = ref 0 in
  let beat ~force () =
    if telemetered then begin
      Obs.Runtime.publish_process ();
      Obs.Telemetry.set_gauge "serve.admitted" (float_of_int !admitted);
      Obs.Telemetry.set_gauge "serve.answered" (float_of_int !answered);
      Obs.Telemetry.set_gauge "serve.rejected" (float_of_int !rejected);
      Obs.Telemetry.set_gauge "serve.queue_depth" (float_of_int !pending_n);
      let extra = [ ("session", J.String sess.Session.name) ] in
      if force then Obs.Telemetry.heartbeat ~extra ()
      else Obs.Telemetry.maybe_heartbeat ~extra ()
    end
  in
  let flush () =
    if !pending_n > 0 then begin
      let items = Array.of_list (List.rev !pending) in
      pending := [];
      pending_n := 0;
      let results =
        Engine_par.Pool.map ?jobs
          (fun (qindex, item) -> eval t ~qindex item)
          items
      in
      let trace_buffer = Buffer.create (if traced then 4096 else 16) in
      Array.iteri
        (fun i r -> tally ~qindex:(fst items.(i)) r trace_buffer)
        results;
      if traced && Buffer.length trace_buffer > 0 then
        Obs.Trace.write_line (Buffer.contents trace_buffer);
      beat ~force:false ()
    end
  in
  let enqueue qindex item =
    if traced then
      Obs.Trace.write_line
        (Obs.Trace.qspan_line ~q:qindex ~stage:Obs.Trace.Enqueue);
    pending := (qindex, item) :: !pending;
    incr pending_n;
    if telemetered then
      Obs.Telemetry.max_gauge "serve.queue_depth_peak" (float_of_int !pending_n);
    if !pending_n >= capacity then flush ()
  in
  let answer_stats qindex qid =
    let t0 = if telemetered then Unix.gettimeofday () else 0. in
    flush ();
    (* Every earlier query is now tallied, so the counters are a pure
       function of the admission index — capacity/jobs cannot show. *)
    let world_counts =
      List.map
        (fun r ->
          let wid = r.wspec.Session.wid in
          let queries, _ = Hashtbl.find world_tallies wid in
          (wid, J.Int !queries))
        (List.sort
           (fun a b -> compare a.wspec.Session.wid b.wspec.Session.wid)
           t.residents)
    in
    let probe_q =
      (* Quantiles of route probe counts so far — integer estimates off
         the deterministic histogram (Metrics.quantile), Null before the
         first route answer. *)
      let snapshot = Obs.Metrics.snapshot probe_hist in
      List.map
        (fun (label, q) ->
          ( label,
            match Obs.Metrics.quantile snapshot "serve.route.probes" q with
            | Some v -> J.Int v
            | None -> J.Null ))
        [ ("probes_p50", 0.5); ("probes_p95", 0.95); ("probes_p99", 0.99) ]
    in
    let line =
      ok_answer ~qid ~op:"stats" ~world:J.Null
        ([
           ("outcome", J.String "stats");
           ("admitted", J.Int qindex);
           ("answered", J.Int !answered);
           ("probes", J.Int !probes);
         ]
        @ probe_q
        @ [ ("worlds", J.Obj world_counts) ])
    in
    let trace_buffer = Buffer.create 16 in
    let acct =
      let base = silent_acct ~op:"stats" "stats" in
      if telemetered then
        { base with elapsed_ns = (Unix.gettimeofday () -. t0) *. 1e9 }
      else base
    in
    tally ~qindex (line, acct) trace_buffer;
    if traced && Buffer.length trace_buffer > 0 then
      Obs.Trace.write_line (Buffer.contents trace_buffer)
  in
  let rec loop () =
    match read () with
    | None -> ()
    | Some raw ->
        let line = String.trim raw in
        if line = "" then loop ()
        else if
          match sess.Session.limits.Session.max_queries with
          | Some m -> !admitted >= m
          | None -> false
        then begin
          (* Admission cap: drain and count — bounded work per line,
             no answer, reported via evidence + exit code. *)
          incr rejected;
          loop ()
        end
        else begin
          incr admitted;
          let qindex = !admitted in
          if traced then
            Obs.Trace.write_line
              (Obs.Trace.qspan_line ~q:qindex ~stage:Obs.Trace.Admit);
          (match Query.parse line with
          | Error e ->
              enqueue qindex (Bad { qid = qid_of_bad_line line; error = e })
          | Ok q when q.Query.op = Query.Stats && Session.allows sess "stats"
            ->
              answer_stats qindex q.Query.qid
          | Ok q -> enqueue qindex (Ask q));
          loop ()
        end
  in
  loop ();
  flush ();
  beat ~force:true ();
  if traced then
    Obs.Trace.write_line
      (Obs.Trace.end_line ~attempts:!attempts ~accepted:!accepted);
  if metered then begin
    Obs.Metrics.absorb !metrics_acc;
    Obs.Metrics.absorb (Obs.Metrics.snapshot probe_hist);
    let registry = Obs.Metrics.create () in
    Obs.Metrics.add registry "serve.admitted" !admitted;
    Obs.Metrics.add registry "serve.answered" !answered;
    Obs.Metrics.add registry "serve.malformed" !malformed;
    Obs.Metrics.add registry "serve.errors" !errors;
    Obs.Metrics.add registry "serve.rejected" !rejected;
    Obs.Metrics.add registry "serve.probes" !probes;
    Hashtbl.iter
      (fun key count ->
        if count > 0 then Obs.Metrics.add registry ("serve.outcome." ^ key) count)
      outcome_counts;
    Obs.Metrics.absorb (Obs.Metrics.snapshot registry);
    Obs.Metrics.absorb (Experiments.Worldpool.metrics_snapshot t.pool)
  end;
  let world_rows =
    List.sort
      (fun (a : Evidence.world_row) b -> compare a.Evidence.wid b.Evidence.wid)
      (List.map
         (fun r ->
           let wid = r.wspec.Session.wid in
           let queries, world_probes = Hashtbl.find world_tallies wid in
           {
             Evidence.wid;
             constructed = (if r.constructed then 1 else 0);
             queries = !queries;
             probes = !world_probes;
           })
         t.residents)
  in
  let evidence =
    {
      Evidence.session = sess.Session.name;
      config_digest = Session.digest sess;
      queue = capacity;
      max_queries = sess.Session.limits.Session.max_queries;
      admitted = !admitted;
      answered = !answered;
      malformed = !malformed;
      errors = !errors;
      rejected = !rejected;
      probes = !probes;
      outcomes =
        List.map (fun k -> (k, Hashtbl.find outcome_counts k)) Evidence.outcome_keys;
      worlds = world_rows;
    }
  in
  { evidence; overflowed = !rejected > 0 }

let run ?jobs ?pool sess ~read ~write =
  match start ?pool sess with
  | Error _ as e -> e
  | Ok t -> Ok (serve ?jobs t ~read ~write)
