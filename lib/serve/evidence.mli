(** The [evidence/v1] summary a serve session leaves behind.

    One JSON object per session: how many queries were admitted,
    answered, malformed, rejected; the outcome histogram; per-world
    query/probe/construction counts; and the manifest's config digest.
    Every field is an integer aggregate in a fixed sort order, so the
    file is byte-identical for any [--jobs] and any queue capacity —
    the artifact [faultroute check --evidence] gates on. *)

type world_row = {
  wid : string;
  constructed : int;  (** Worlds built for this id — must be 0 or 1. *)
  queries : int;  (** Queries answered against this world. *)
  probes : int;  (** Distinct oracle probes charged to them. *)
}

type t = {
  session : string;
  config_digest : string;  (** {!Session.digest} of the manifest. *)
  queue : int;
  max_queries : int option;
  admitted : int;  (** Input lines accepted into the session. *)
  answered : int;  (** Answers emitted — equals [admitted]. *)
  malformed : int;  (** Protocol-error answers among them. *)
  errors : int;  (** Semantic-error answers among them. *)
  rejected : int;  (** Lines refused by the admission cap. *)
  probes : int;  (** Total distinct probes across all worlds. *)
  outcomes : (string * int) list;
      (** Histogram over {!outcome_keys}, every key present, sorted. *)
  worlds : world_row list;  (** Sorted by [wid]. *)
}

val schema : string
(** ["evidence/v1"]. *)

val outcome_keys : string list
(** The fixed histogram domain, sorted: [budget_exceeded], [cluster],
    [connected], [disconnected], [error], [found], [malformed],
    [no_path], [stats], [unknown]. *)

val to_json : t -> Obs.Json.t
val to_string : t -> string
(** Compact canonical JSON, trailing newline — the file bytes. *)

val of_json : Obs.Json.t -> (t, string) result
val of_string : string -> (t, string) result
val load : string -> (t, string) result

val validate : t -> (unit, string) result
(** Internal consistency: [answered = admitted], the outcome histogram
    sums to [answered], per-world constructions are 0 or 1, world
    probe/query totals match the session totals, no negative counts. *)

val claims : t -> Experiments.Claim.t list
(** The session's machine-checkable assertions, for the verdict
    engine: answered-equals-admitted, outcome accounting, each world
    constructed at most once, nothing rejected by admission. *)
