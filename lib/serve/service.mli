(** The streamed query service behind [faultroute serve].

    {!start} loads a {!Session} manifest into a running session: every
    manifest world is built {e exactly once} through a
    {!Experiments.Worldpool} (and prefilled, so worker domains read it
    without writes); {!serve} then answers newline-delimited JSON
    queries ({!Query}) from a line source, sharding batches across
    {!Engine_par.Pool} and streaming one answer line per admitted
    query, in input order.

    {2 Determinism}

    Query [i] (1-based admission order) draws all of its randomness
    from [Prng.Stream.split (create session.seed) i]; resident worlds
    are immutable after {!start}. Batches are only backpressure —
    answers are tallied and written sequentially in admission order
    after each batch, so answer bytes, evidence bytes, and trace bytes
    are identical for every [jobs] value {e and} every queue capacity.
    [stats] queries force a flush first, making their counters a pure
    function of their admission index; the reply also quotes
    [probes_p50]/[probes_p95]/[probes_p99] — bucket-quantile estimates
    ({!Obs.Metrics.quantile}) over the route answers so far, [null]
    before the first one. The quantile histogram is fed in admission
    order from a local always-on registry, so these fields are equally
    jobs- and telemetry-invariant.

    {2 Telemetry}

    With {!Obs.Telemetry} enabled the session reports, out-of-band:
    per-query-type latency histograms ([serve.latency.<op>_ns], each
    query timed on its worker domain, recorded at the sequential
    tally), queue gauges ([serve.queue_depth], [.queue_depth_peak]),
    progress gauges ([serve.admitted]/[.answered]/[.rejected]), and a
    [telemetry/v1] heartbeat line after flushes (rate-limited) plus one
    final forced heartbeat. All of it is reporting-layer: answer,
    evidence and trace bytes are byte-identical with telemetry on or
    off, at any [--jobs].

    {2 Failure containment}

    A malformed line gets an [ok:false] answer (outcome [malformed]);
    a semantically bad query — unknown world, vertex out of range,
    inapplicable router, op outside the session mix — gets an
    [ok:false] answer (outcome [error]); neither kills the session.
    Only admission-cap overflow is reported at the session level (the
    excess lines are drained, counted, and answered with nothing). *)

type t
(** A running session: manifest + resident worlds. *)

val start : ?pool:Experiments.Worldpool.t -> Session.t -> (t, string) result
(** Build every manifest world into the pool (a fresh one sized to the
    manifest unless [pool] is given). [Error] on an unbuildable
    topology — a manifest error, like a parse failure. *)

val session : t -> Session.t

type outcome = {
  evidence : Evidence.t;
  overflowed : bool;
      (** The admission cap rejected at least one line — the session
          should exit with {!Verdict.Exit_code.queue_overflow}. *)
}

val serve :
  ?jobs:int ->
  t ->
  read:(unit -> string option) ->
  write:(string -> unit) ->
  outcome
(** Answer queries from [read] (one raw line per call, [None] at end
    of stream; blank lines are skipped) by passing complete answer
    lines — newline included — to [write], in admission order. With
    {!Obs.Trace} enabled, emits one [trace/v1] run (probe-level events
    per evaluated query); with {!Obs.Metrics} enabled, absorbs
    per-query counters, session totals ([serve.*]) and the world
    pool's construction counters ([worldpool.*]) into the global
    registry. [jobs] defaults to {!Engine_par.Pool.default_jobs}. *)

val read_lines : in_channel -> unit -> string option
(** A [read] function over a channel. *)

val run :
  ?jobs:int ->
  ?pool:Experiments.Worldpool.t ->
  Session.t ->
  read:(unit -> string option) ->
  write:(string -> unit) ->
  (outcome, string) result
(** {!start} then {!serve}. *)
