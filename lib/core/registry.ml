type entry = {
  name : string;
  doc : string;
  build :
    instance:Topology.Registry.instance ->
    source:int ->
    target:int ->
    Prng.Stream.t ->
    (Router.t, string) result;
}

let inapplicable name (instance : Topology.Registry.instance) wanted =
  Error
    (Printf.sprintf "router %S needs %s, not %s" name wanted
       instance.graph.Topology.Graph.name)

let entries =
  [
    {
      name = "bfs";
      doc = "local BFS in topology order; any topology";
      build = (fun ~instance:_ ~source:_ ~target:_ _stream -> Ok Local_bfs.router);
    };
    {
      name = "bfs-random";
      doc = "local BFS probing neighbours in a randomized order; any topology";
      build =
        (fun ~instance:_ ~source:_ ~target:_ stream ->
          Ok (Local_bfs.router_randomized stream));
    };
    {
      name = "greedy";
      doc = "distance-greedy descent; topologies with a distance metric";
      build =
        (fun ~instance ~source:_ ~target:_ _stream ->
          match instance.graph.Topology.Graph.distance with
          | Some _ -> Ok Greedy.router
          | None -> inapplicable "greedy" instance "a topology with a distance metric");
    };
    {
      name = "bidirectional";
      doc = "bidirectional BFS meeting in the middle; any topology";
      build = (fun ~instance:_ ~source:_ ~target:_ _stream -> Ok Bidirectional.router);
    };
    {
      name = "segment";
      doc = "Theorem 3(ii) segment router along a bit-fixing backbone; hypercubes";
      build =
        (fun ~instance ~source ~target _stream ->
          match instance.shape with
          | Hypercube { n } -> Ok (Path_follow.hypercube ~n ~source ~target)
          | _ -> inapplicable "segment" instance "a hypercube");
    };
    {
      name = "path-follow";
      doc = "path-following repair along an axis-order backbone; meshes and tori";
      build =
        (fun ~instance ~source ~target _stream ->
          match instance.shape with
          | Mesh { d; m } -> Ok (Path_follow.mesh ~d ~m ~source ~target)
          | Torus { d; m } -> Ok (Path_follow.torus ~d ~m ~source ~target)
          | _ -> inapplicable "path-follow" instance "a mesh or torus");
    };
    {
      name = "tree-pair";
      doc = "paired-edge DFS over the mirrored trees; double trees";
      build =
        (fun ~instance ~source ~target _stream ->
          match instance.shape with
          | Double_tree { depth } ->
              let root1 = Topology.Double_tree.root1
              and root2 = Topology.Double_tree.root2 ~n:depth in
              if
                (source = root1 && target = root2)
                || (source = root2 && target = root1)
              then Ok (Tree_pair_dfs.router ~n:depth)
              else
                Error
                  (Printf.sprintf
                     "router \"tree-pair\" routes only between the two roots (%d and \
                      %d)"
                     root1 root2)
          | _ -> inapplicable "tree-pair" instance "a double tree");
    };
  ]

let names () = List.map (fun e -> e.name) entries

let find name =
  let wanted = String.lowercase_ascii (String.trim name) in
  List.find_opt (fun e -> e.name = wanted) entries

let of_spec name =
  match find name with
  | Some entry -> Ok entry
  | None ->
      Error
        (Printf.sprintf "unknown router %S (known: %s)" name
           (String.concat ", " (names ())))
