(** First-class registry of the routing algorithms.

    Each entry carries a name, a one-line doc string, and a builder
    that constructs the router for a topology {!Topology.Registry.instance}.
    Applicability is decided from the instance's structured shape —
    the segment router demands a hypercube, the path follower a mesh
    or torus (with the dimension taken from the shape, not guessed),
    the paired-edge DFS a double tree — never from parsing graph
    names. *)

type entry = {
  name : string;  (** Lower-case registry key, e.g. ["segment"]. *)
  doc : string;  (** One line: strategy and applicability. *)
  build :
    instance:Topology.Registry.instance ->
    source:int ->
    target:int ->
    Prng.Stream.t ->
    (Router.t, string) result;
      (** Builds the router for one routing pair. The stream feeds
          randomized routers and is ignored by deterministic ones.
          [Error] explains an inapplicable topology. *)
}

val entries : entry list
(** All registered routers, in presentation order. *)

val names : unit -> string list
(** The registered names, in presentation order. *)

val find : string -> entry option
(** Case-insensitive lookup by name. *)

val of_spec : string -> (entry, string) result
(** Resolves a router name; the error case names the known routers. *)
