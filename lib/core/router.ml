type t = {
  name : string;
  policy : Percolation.Oracle.policy;
  route : Percolation.Oracle.t -> target:int -> Outcome.t;
}

exception Invalid_route of { router : string; failure : Path.failure }

let found_outcome oracle path =
  Outcome.Found
    {
      path;
      probes = Percolation.Oracle.distinct_probes oracle;
      raw_probes = Percolation.Oracle.raw_probes oracle;
    }

let trivial_outcome oracle ~target =
  if Percolation.Oracle.source oracle = target then
    Some (found_outcome oracle [ target ])
  else None

let run ?budget router world ~source ~target =
  let oracle =
    Percolation.Oracle.create ~policy:router.policy ?budget world ~source
  in
  if Obs.Metrics.on () then Obs.Metrics.tick ("router.runs." ^ router.name);
  let route () =
    match router.route oracle ~target with
    | outcome -> outcome
    | exception Percolation.Oracle.Budget_exhausted ->
        Outcome.Budget_exceeded { probes = Percolation.Oracle.distinct_probes oracle }
  in
  (* "router.run" includes the oracle work the router triggers; the
     profiling report reads router logic as run minus oracle.world_query. *)
  let outcome =
    if Obs.Timing.on () then Obs.Timing.span "router.run" route else route ()
  in
  (match outcome with
  | Outcome.Found { path; _ } -> (
      match Path.validate world ~source ~target path with
      | Ok () -> ()
      | Error failure -> raise (Invalid_route { router = router.name; failure }))
  | Outcome.No_path _ | Outcome.Budget_exceeded _ -> ());
  outcome
