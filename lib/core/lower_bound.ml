let bound ~t ~eta ~pr_path_in_s ~pr_connected =
  if pr_connected <= 0.0 then invalid_arg "Lower_bound.bound: pr_connected must be positive";
  let raw = ((t *. eta) +. pr_path_in_s) /. pr_connected in
  Float.max 0.0 (Float.min 1.0 raw)

let eta_theta ~p = p

let eta_double_tree ~p ~n = p ** float_of_int n

let eta_hypercube ~alpha ~beta ~n =
  let nf = float_of_int n in
  let l = nf ** beta in
  let p = nf ** -.alpha in
  let ratio = nf *. l *. l *. p *. p in
  if ratio >= 1.0 then
    invalid_arg "Lower_bound.eta_hypercube: series diverges (need beta < alpha - 1/2)";
  ((l *. p) ** l) /. (1.0 -. ratio)

let connected_within world ~member x y =
  if not (member x && member y) then false
  else if x = y then true
  else begin
    let n = (Percolation.World.graph world).Topology.Graph.vertex_count in
    let seen = Bytes.make n '\000' in
    let queue = Array.make n 0 in
    Bytes.set seen x '\001';
    queue.(0) <- x;
    let head = ref 0 and tail = ref 1 in
    let found = ref false in
    (try
       while !head < !tail do
         let u = queue.(!head) in
         incr head;
         Percolation.World.iter_open_neighbors world u (fun v ->
             if member v && Bytes.get seen v = '\000' then begin
               Bytes.set seen v '\001';
               if v = y then begin
                 found := true;
                 raise Exit
               end;
               queue.(!tail) <- v;
               incr tail
             end)
       done
     with Exit -> ());
    !found
  end

let estimate_eta stream ~trials ~graph ~p ~member ~target ~cut_edge =
  let x, y = cut_edge in
  let inner = if member x then x else y in
  if not (member inner) then
    invalid_arg "Lower_bound.estimate_eta: cut edge has no endpoint in S";
  let successes = ref 0 in
  for trial = 1 to trials do
    let seed = Prng.Coin.derive (Prng.Stream.seed stream) trial in
    let world = Percolation.World.create graph ~p ~seed in
    if connected_within world ~member inner target then incr successes
  done;
  Stats.Proportion.make ~successes:!successes ~trials
