(* E16 — Boundary effects: the paper works in a cube of the infinite
   mesh, while finite simulations have boundaries that thin out the
   giant cluster near the walls. Comparing the mesh against its
   boundary-free twin (the torus) at equal p and distance quantifies the
   finite-size error Theorem 4's measurements carry. *)

let id = "E16"
let title = "Torus vs mesh: quantifying boundary effects in Theorem 4's setup"

let claim =
  "Theorem 4 concerns a cube of the infinite mesh; finite simulations have \
   boundaries. Comparing the mesh against its boundary-free twin (the torus) at \
   equal p and distance quantifies two competing finite-size effects: wraparound \
   adds detour routes, but it also keeps harder worlds connected — worlds the \
   mesh's conditioning would have rejected."

let run ?(quick = false) stream =
  let d = 2 in
  let ps = if quick then [ 0.70 ] else [ 0.55; 0.60; 0.70; 0.85 ] in
  let n = if quick then 12 else 20 in
  let trials = if quick then 6 else 25 in
  let m = n + 20 in
  let mesh = Topology.Mesh.graph ~d ~m in
  let torus = Topology.Torus.graph ~d ~m in
  let row = m / 2 in
  let source = Topology.Mesh.index ~m [| 10; row |] in
  let target = Topology.Mesh.index ~m [| 10 + n; row |] in
  let table =
    ref
      (Stats.Table.create
         ~headers:
           [ "p"; "mesh probes/n"; "torus probes/n"; "mesh P[u~v]"; "torus P[u~v]" ])
  in
  let per_p = ref [] in
  List.iteri
    (fun index p ->
      let substream = Prng.Stream.split stream index in
      let run_on label graph router =
        Trial.run (Prng.Stream.split substream label) ~trials
          ~max_attempts:(trials * 200)
          (Trial.spec ~graph ~p ~source ~target router)
      in
      let mesh_result =
        run_on 1 mesh (fun _rand ~source ~target ->
            Routing.Path_follow.mesh ~d ~m ~source ~target)
      in
      let torus_result =
        run_on 2 torus (fun _rand ~source ~target ->
            Routing.Path_follow.torus ~d ~m ~source ~target)
      in
      let per_hop result =
        Trial.mean_probes_lower_bound result /. float_of_int n
      in
      per_p :=
        ( per_hop mesh_result,
          per_hop torus_result,
          Stats.Proportion.estimate mesh_result.Trial.connection,
          Stats.Proportion.estimate torus_result.Trial.connection )
        :: !per_p;
      table :=
        Stats.Table.add_row !table
          [
            Printf.sprintf "%.2f" p;
            Printf.sprintf "%.1f" (per_hop mesh_result);
            Printf.sprintf "%.1f" (per_hop torus_result);
            Printf.sprintf "%.2f" (Stats.Proportion.estimate mesh_result.Trial.connection);
            Printf.sprintf "%.2f" (Stats.Proportion.estimate torus_result.Trial.connection);
          ])
    ps;
  let notes =
    [
      Printf.sprintf
        "d = 2, distance n = %d in an m = %d cube/torus, same horizontal pair in \
         both; %d conditioned trials per cell."
        n m trials;
      "Near p_c the torus is typically *more* expensive per hop despite having \
       more routes: its higher P[u~v] keeps hard worlds in the conditioned sample \
       that the mesh rejects, and its detours can wrap the long way round. Away \
       from p_c both effects fade and the columns converge.";
    ]
  in
  let claims =
    match !per_p with
    | [] -> []
    | (mesh_hop, torus_hop, _, _) :: _ ->
        (* !per_p is reversed: its head is the largest p of the sweep. *)
        let _, _, mesh_conn_first, torus_conn_first =
          List.nth !per_p (List.length !per_p - 1)
        in
        [
          Claim.band ~id:"E16/per-hop-convergence"
            ~description:
              "torus/mesh per-hop cost ratio at the largest p (boundary \
               effects fade away from p_c)"
            ~lo:0.4 ~hi:2.5 (torus_hop /. mesh_hop);
          Claim.floor ~id:"E16/torus-keeps-worlds"
            ~description:
              "torus P[u~v] minus mesh P[u~v] at the smallest p (wraparound \
               keeps worlds connected; small negative slack for sampling)"
            ~min:(-0.15)
            (torus_conn_first -. mesh_conn_first);
        ]
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes ~claims
    [ ("path-follow cost per hop, mesh vs torus", !table) ]
