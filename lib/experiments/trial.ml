type spec = {
  graph : Topology.Graph.t;
  p : float;
  source : int;
  target : int;
  router : Prng.Stream.t -> source:int -> target:int -> Routing.Router.t;
  budget : int option;
  reveal_limit : int option;
}

let spec ?budget ?reveal_limit ~graph ~p ~source ~target router =
  { graph; p; source; target; router; budget; reveal_limit }

type result = {
  observations : Stats.Censored.t;
  connection : Stats.Proportion.t;
  path_lengths : Stats.Summary.t;
  chemical_distances : Stats.Summary.t;
  failures : int;
  requested : int;
}

let shortfall result = result.requested - Stats.Censored.count result.observations

let shortfall_note ~label result =
  let missing = shortfall result in
  if missing = 0 then None
  else
    Some
      (Printf.sprintf
         "%s: attempt cap exhausted — only %d of %d requested conditioned trials \
          measured (shortfall %d); treat the statistics as under-sampled."
         label
         (Stats.Censored.count result.observations)
         result.requested missing)

(* ------------------------------------------------------------------ *)
(* One attempt.

   Everything random about attempt [i] — the percolation world, and any
   random choices the router makes — derives from [Stream.split root i],
   a pure function of the root seed. Attempts are therefore computable
   in any order on any domain with identical results; the seed equals
   [Coin.derive root i], the same world the historical sequential
   runner drew. *)

type attempt =
  | Rejected  (** World not connected (or reveal limit hit): resampled. *)
  | Accepted of { distance : int; outcome : Routing.Outcome.t }

let run_attempt spec root_stream index =
  let attempt_stream = Prng.Stream.split root_stream index in
  let seed = Prng.Stream.seed attempt_stream in
  let world = Percolation.World.create spec.graph ~p:spec.p ~seed in
  match
    Percolation.Reveal.connected ?limit:spec.reveal_limit world spec.source
      spec.target
  with
  | Percolation.Reveal.Disconnected | Percolation.Reveal.Unknown -> Rejected
  | Percolation.Reveal.Connected distance ->
      let router =
        spec.router attempt_stream ~source:spec.source ~target:spec.target
      in
      let outcome =
        Routing.Router.run ?budget:spec.budget router world ~source:spec.source
          ~target:spec.target
      in
      Accepted { distance; outcome }

(* ------------------------------------------------------------------ *)
(* Per-domain accumulators.

   Each worker folds the attempts of its chunk into a local [acc];
   the caller merges chunk accumulators in chunk-index order, so the
   merged value never depends on which domain computed what. *)

type acc = {
  observations : Stats.Censored.t;
  path_lengths : Stats.Summary.t;
  chemical : Stats.Summary.t;
  accepted : int;
  failures : int;
}

let acc_empty =
  {
    observations = Stats.Censored.empty;
    path_lengths = Stats.Summary.empty;
    chemical = Stats.Summary.empty;
    accepted = 0;
    failures = 0;
  }

let acc_add acc = function
  | Rejected -> acc
  | Accepted { distance; outcome } ->
      let observations =
        Stats.Censored.add acc.observations (Routing.Outcome.to_observation outcome)
      in
      let chemical = Stats.Summary.add acc.chemical (float_of_int distance) in
      let path_lengths, failures =
        match outcome with
        | Routing.Outcome.Found { path; _ } ->
            ( Stats.Summary.add acc.path_lengths
                (float_of_int (List.length path - 1)),
              acc.failures )
        | Routing.Outcome.No_path _ -> (acc.path_lengths, acc.failures + 1)
        | Routing.Outcome.Budget_exceeded _ -> (acc.path_lengths, acc.failures)
      in
      { observations; path_lengths; chemical; accepted = acc.accepted + 1; failures }

let acc_merge a b =
  {
    observations = Stats.Censored.merge a.observations b.observations;
    path_lengths = Stats.Summary.merge a.path_lengths b.path_lengths;
    chemical = Stats.Summary.merge a.chemical b.chemical;
    accepted = a.accepted + b.accepted;
    failures = a.failures + b.failures;
  }

(* ------------------------------------------------------------------ *)
(* The engine.

   The attempt index space 1..max_attempts is cut into fixed chunks of
   [chunk_size] — a constant, never a function of the job count, so
   the accumulator-merge tree is identical however many domains run.
   Chunks are dispensed dynamically; once enough acceptances exist in
   the completed prefix the pool stops dispensing, and a final ordered
   scan truncates at the exact attempt of the [trials]-th acceptance,
   replaying the boundary chunk attempt by attempt. *)

let chunk_size = 4

type chunk = { attempts : attempt array; acc : acc }

let run_engine ?jobs stream ~trials ?max_attempts spec =
  if trials <= 0 then invalid_arg "Trial.run: trials must be positive";
  let max_attempts = Option.value max_attempts ~default:(100 * trials) in
  let n_chunks = (max_attempts + chunk_size - 1) / chunk_size in
  let accepted_so_far = Atomic.make 0 in
  let work c =
    let lo = (c * chunk_size) + 1 in
    let hi = Stdlib.min max_attempts ((c + 1) * chunk_size) in
    let attempts = Array.init (hi - lo + 1) (fun k -> run_attempt spec stream (lo + k)) in
    { attempts; acc = Array.fold_left acc_add acc_empty attempts }
  in
  let until chunk =
    Atomic.fetch_and_add accepted_so_far chunk.acc.accepted + chunk.acc.accepted
    >= trials
  in
  let chunks = Engine_par.Pool.collect_prefix ?jobs ~limit:n_chunks ~until work in
  (* Ordered truncation: merge whole chunks while they cannot contain
     the [trials]-th acceptance, then replay the boundary chunk. *)
  let final = ref acc_empty in
  let attempts_used = ref 0 in
  (try
     Array.iter
       (fun chunk ->
         if !final.accepted + chunk.acc.accepted < trials then begin
           final := acc_merge !final chunk.acc;
           attempts_used := !attempts_used + Array.length chunk.attempts
         end
         else
           Array.iter
             (fun attempt ->
               final := acc_add !final attempt;
               incr attempts_used;
               if !final.accepted >= trials then raise Exit)
             chunk.attempts)
       chunks
   with Exit -> ());
  let final = !final in
  {
    observations = final.observations;
    connection =
      Stats.Proportion.make ~successes:final.accepted ~trials:!attempts_used;
    path_lengths = final.path_lengths;
    chemical_distances = final.chemical;
    failures = final.failures;
    requested = trials;
  }

let run_par ?jobs stream ~trials ?max_attempts spec =
  run_engine ?jobs stream ~trials ?max_attempts spec

let run stream ~trials ?max_attempts spec =
  run_engine stream ~trials ?max_attempts spec

let median_observation (result : result) = Stats.Censored.median result.observations

let mean_probes_lower_bound (result : result) =
  Stats.Censored.mean_lower_bound result.observations
