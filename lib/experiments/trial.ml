type spec = {
  graph : Topology.Graph.t;
  p : float;
  source : int;
  target : int;
  router : Prng.Stream.t -> source:int -> target:int -> Routing.Router.t;
  budget : int option;
  reveal_limit : int option;
  worlds : Worldpool.provider;
}

let spec ?budget ?reveal_limit ?worlds ~graph ~p ~source ~target router =
  let worlds =
    match worlds with Some w -> w | None -> Worldpool.detached graph ~p
  in
  { graph; p; source; target; router; budget; reveal_limit; worlds }

type result = {
  observations : Stats.Censored.t;
  connection : Stats.Proportion.t;
  path_lengths : Stats.Summary.t;
  chemical_distances : Stats.Summary.t;
  failures : int;
  requested : int;
  metrics : Obs.Metrics.snapshot;
}

let shortfall result = result.requested - Stats.Censored.count result.observations

let shortfall_note ~label result =
  let missing = shortfall result in
  if missing = 0 then None
  else
    Some
      (Printf.sprintf
         "%s: %s — only %d of %d requested conditioned trials \
          measured (shortfall %d); treat the statistics as under-sampled."
         label Report.shortfall_marker
         (Stats.Censored.count result.observations)
         result.requested missing)

(* ------------------------------------------------------------------ *)
(* One attempt.

   Everything random about attempt [i] — the percolation world, and any
   random choices the router makes — derives from [Stream.split root i],
   a pure function of the root seed. Attempts are therefore computable
   in any order on any domain with identical results; the seed equals
   [Coin.derive root i], the same world the historical sequential
   runner drew.

   Observability is strictly out-of-band: trace events and metric ticks
   land in ambient per-attempt buffers installed around this function
   (see [observed_attempt]); nothing here reads them back, so enabling
   instrumentation cannot change any computed value. *)

type attempt =
  | Rejected  (** World not connected (or reveal limit hit): resampled. *)
  | Accepted of { distance : int; outcome : Routing.Outcome.t }

let run_attempt spec root_stream index =
  let attempt_stream = Prng.Stream.split root_stream index in
  let seed = Prng.Stream.seed attempt_stream in
  let world = spec.worlds ~seed in
  let traced = Obs.Trace.on () in
  let metered = Obs.Metrics.on () in
  if traced then Obs.Trace.emit (Obs.Trace.Attempt_start { index });
  if metered then Obs.Metrics.tick "trial.attempts";
  let reveal () =
    Percolation.Reveal.connected ?limit:spec.reveal_limit world spec.source
      spec.target
  in
  let verdict =
    if Obs.Timing.on () then Obs.Timing.span "trial.reveal" reveal else reveal ()
  in
  match verdict with
  | Percolation.Reveal.Disconnected ->
      if traced then
        Obs.Trace.emit (Obs.Trace.Reject { reason = Obs.Trace.Disconnected });
      if metered then Obs.Metrics.tick "trial.rejects.disconnected";
      Rejected
  | Percolation.Reveal.Unknown ->
      if traced then
        Obs.Trace.emit (Obs.Trace.Reject { reason = Obs.Trace.Reveal_limit });
      if metered then Obs.Metrics.tick "trial.rejects.reveal_limit";
      Rejected
  | Percolation.Reveal.Connected distance ->
      let router =
        spec.router attempt_stream ~source:spec.source ~target:spec.target
      in
      let outcome =
        Routing.Router.run ?budget:spec.budget router world ~source:spec.source
          ~target:spec.target
      in
      if traced then
        Obs.Trace.emit
          (Obs.Trace.Accept { distance; probes = Routing.Outcome.probes outcome });
      if metered then begin
        Obs.Metrics.tick "trial.accepts";
        Obs.Metrics.record "trial.probes" (Routing.Outcome.probes outcome);
        Obs.Metrics.record "trial.chemical_distance" distance;
        Obs.Metrics.tick
          (match outcome with
          | Routing.Outcome.Found _ -> "trial.outcome.found"
          | Routing.Outcome.No_path _ -> "trial.outcome.no_path"
          | Routing.Outcome.Budget_exceeded _ -> "trial.outcome.budget_exceeded")
      end;
      Accepted { distance; outcome }

(* A cell is an attempt plus whatever it emitted. When instrumentation
   is off both extras are the shared constants [None] / [Metrics.empty]
   and the wrapper costs two atomic reads per attempt. *)
type cell = {
  attempt : attempt;
  trace : Obs.Trace.record option;
  metrics : Obs.Metrics.snapshot;
}

let observed_attempt spec root_stream index =
  let traced = Obs.Trace.on () in
  let metered = Obs.Metrics.on () in
  if not (traced || metered) then
    { attempt = run_attempt spec root_stream index; trace = None; metrics = Obs.Metrics.empty }
  else begin
    let with_metrics () =
      if metered then begin
        let registry = Obs.Metrics.create () in
        let attempt =
          Obs.Metrics.with_ambient registry (fun () -> run_attempt spec root_stream index)
        in
        (attempt, Obs.Metrics.snapshot registry)
      end
      else (run_attempt spec root_stream index, Obs.Metrics.empty)
    in
    if traced then begin
      let (attempt, metrics), record = Obs.Trace.capture ~index with_metrics in
      { attempt; trace = Some record; metrics }
    end
    else begin
      let attempt, metrics = with_metrics () in
      { attempt; trace = None; metrics }
    end
  end

(* ------------------------------------------------------------------ *)
(* Per-domain accumulators.

   Each worker folds the attempts of its chunk into a local [acc];
   the caller merges chunk accumulators in chunk-index order, so the
   merged value never depends on which domain computed what. Metric
   snapshots ride the same fold: integer-only merges are commutative
   anyway, but keeping them on the accumulator path means the merged
   snapshot follows the exact chunk discipline of the statistics. *)

type acc = {
  observations : Stats.Censored.t;
  path_lengths : Stats.Summary.t;
  chemical : Stats.Summary.t;
  accepted : int;
  failures : int;
  metrics : Obs.Metrics.snapshot;
}

let acc_empty =
  {
    observations = Stats.Censored.empty;
    path_lengths = Stats.Summary.empty;
    chemical = Stats.Summary.empty;
    accepted = 0;
    failures = 0;
    metrics = Obs.Metrics.empty;
  }

let acc_add acc (cell : cell) =
  let acc = { acc with metrics = Obs.Metrics.merge acc.metrics cell.metrics } in
  match cell.attempt with
  | Rejected -> acc
  | Accepted { distance; outcome } ->
      let observations =
        Stats.Censored.add acc.observations (Routing.Outcome.to_observation outcome)
      in
      let chemical = Stats.Summary.add acc.chemical (float_of_int distance) in
      let path_lengths, failures =
        match outcome with
        | Routing.Outcome.Found { path; _ } ->
            ( Stats.Summary.add acc.path_lengths
                (float_of_int (List.length path - 1)),
              acc.failures )
        | Routing.Outcome.No_path _ -> (acc.path_lengths, acc.failures + 1)
        | Routing.Outcome.Budget_exceeded _ -> (acc.path_lengths, acc.failures)
      in
      { acc with observations; path_lengths; chemical; accepted = acc.accepted + 1; failures }

let acc_merge a b =
  {
    observations = Stats.Censored.merge a.observations b.observations;
    path_lengths = Stats.Summary.merge a.path_lengths b.path_lengths;
    chemical = Stats.Summary.merge a.chemical b.chemical;
    accepted = a.accepted + b.accepted;
    failures = a.failures + b.failures;
    metrics = Obs.Metrics.merge a.metrics b.metrics;
  }

(* ------------------------------------------------------------------ *)
(* The engine.

   The attempt index space 1..max_attempts is cut into fixed chunks of
   [chunk_size] — a constant, never a function of the job count, so
   the accumulator-merge tree is identical however many domains run.
   Chunks are dispensed dynamically; once enough acceptances exist in
   the completed prefix the pool stops dispensing, and a final ordered
   scan truncates at the exact attempt of the [trials]-th acceptance,
   replaying the boundary chunk attempt by attempt.

   Tracing rides the same machinery: each attempt's events are captured
   into its cell on whatever domain computed it, and the final ordered
   scan — plain sequential code on the caller's domain — concatenates
   exactly the used attempts' records into one [trace/v1] run, written
   to the sink in a single call. The trace bytes therefore cannot
   depend on the job count, and runs from concurrent Trial calls cannot
   interleave. *)

let chunk_size = 4

type chunk = { cells : cell array; acc : acc }

let policy_string = function
  | Percolation.Oracle.Local -> "local"
  | Percolation.Oracle.Unrestricted -> "unrestricted"

let trace_header spec stream ~trials ~max_attempts =
  (* Split 0 is reserved: attempts use 1..max_attempts, so building a
     throwaway router here cannot correlate with any attempt's coins. *)
  let router =
    spec.router (Prng.Stream.split stream 0) ~source:spec.source ~target:spec.target
  in
  Obs.Trace.header_line
    [
      ("graph", Obs.Json.String spec.graph.Topology.Graph.name);
      ("p", Obs.Json.Float spec.p);
      ("source", Obs.Json.Int spec.source);
      ("target", Obs.Json.Int spec.target);
      ("router", Obs.Json.String router.Routing.Router.name);
      ("policy", Obs.Json.String (policy_string router.Routing.Router.policy));
      ( "budget",
        match spec.budget with Some b -> Obs.Json.Int b | None -> Obs.Json.Null );
      ( "reveal_limit",
        match spec.reveal_limit with
        | Some l -> Obs.Json.Int l
        | None -> Obs.Json.Null );
      ("trials", Obs.Json.Int trials);
      ("max_attempts", Obs.Json.Int max_attempts);
    ]

(* ------------------------------------------------------------------ *)
(* Supervision and checkpointing.

   Both are ambient process state installed by the CLI: a run takes the
   plain [Pool] path — and its exact cost profile — unless a supervisor
   policy is armed, a fault plan is installed, or a checkpoint is
   configured. The supervised path wraps every chunk in the retry loop
   of [Engine_par.Supervisor]; because [work] is a pure function of
   [(spec, root seed, chunk)], a retried chunk recomputes the identical
   value and the merged report stays byte-identical to a fault-free run
   whenever every chunk eventually succeeds. A quarantined chunk is
   dropped from the ordered merge: its attempts never happened as far
   as the statistics are concerned, and the CLI surfaces the loss via
   the faults summary and exit code. *)

let checkpoint_key spec stream ~trials ~max_attempts =
  (* Everything a chunk's cells depend on — and nothing they don't (the
     job count shapes scheduling, never results, so resuming under a
     different [--jobs] must hit). The probe router from reserved
     split 0 names the router family, as in the trace header. *)
  let router =
    spec.router (Prng.Stream.split stream 0) ~source:spec.source
      ~target:spec.target
  in
  let opt = function Some v -> string_of_int v | None -> "none" in
  Checkpoint.digest_key
    (Printf.sprintf
       "graph=%s;p=%.17g;source=%d;target=%d;router=%s;policy=%s;budget=%s;reveal_limit=%s;seed=%Ld;trials=%d;max_attempts=%d;chunk=%d"
       spec.graph.Topology.Graph.name spec.p spec.source spec.target
       router.Routing.Router.name
       (policy_string router.Routing.Router.policy)
       (opt spec.budget) (opt spec.reveal_limit)
       (Prng.Stream.seed stream) trials max_attempts chunk_size)

let cell_to_checkpoint (cell : cell) =
  match cell.attempt with
  | Rejected -> Checkpoint.Rejected
  | Accepted { distance; outcome } -> Checkpoint.Accepted { distance; outcome }

let cell_of_checkpoint = function
  | Checkpoint.Rejected ->
      { attempt = Rejected; trace = None; metrics = Obs.Metrics.empty }
  | Checkpoint.Accepted { distance; outcome } ->
      {
        attempt = Accepted { distance; outcome };
        trace = None;
        metrics = Obs.Metrics.empty;
      }

let run_engine ?jobs stream ~trials ?max_attempts spec =
  if trials <= 0 then invalid_arg "Trial.run: trials must be positive";
  let max_attempts = Option.value max_attempts ~default:(100 * trials) in
  let n_chunks = (max_attempts + chunk_size - 1) / chunk_size in
  let accepted_so_far = Atomic.make 0 in
  let work c =
    let lo = (c * chunk_size) + 1 in
    let hi = Stdlib.min max_attempts ((c + 1) * chunk_size) in
    let cells =
      Array.init (hi - lo + 1) (fun k ->
          if Engine_par.Supervisor.watchdog_armed () then
            Engine_par.Supervisor.poll ();
          observed_attempt spec stream (lo + k))
    in
    { cells; acc = Array.fold_left acc_add acc_empty cells }
  in
  let until chunk =
    Atomic.fetch_and_add accepted_so_far chunk.acc.accepted + chunk.acc.accepted
    >= trials
  in
  let plan = Faultsim.Plan.ambient () in
  let supervised =
    Engine_par.Supervisor.armed () || plan <> None || Checkpoint.active ()
  in
  let chunks, fault_summary =
    if not supervised then
      (Engine_par.Pool.collect_prefix ?jobs ~limit:n_chunks ~until work, None)
    else begin
      let work =
        if not (Checkpoint.active ()) then work
        else begin
          let key = checkpoint_key spec stream ~trials ~max_attempts in
          fun c ->
            match Checkpoint.lookup ~key ~chunk:c with
            | Some stored ->
                let cells = Array.map cell_of_checkpoint stored in
                { cells; acc = Array.fold_left acc_add acc_empty cells }
            | None ->
                let chunk = work c in
                Checkpoint.store ~key ~chunk:c
                  (Array.map cell_to_checkpoint chunk.cells);
                chunk
        end
      in
      let policy =
        Option.value
          (Engine_par.Supervisor.current_policy ())
          ~default:Engine_par.Supervisor.default_policy
      in
      let inject =
        match plan with
        | Some plan ->
            fun ~chunk ~attempt -> Faultsim.Plan.injector plan ~chunk ~attempt
        | None -> fun ~chunk:_ ~attempt:_ -> Engine_par.Supervisor.Pass
      in
      let outcomes, summary =
        Engine_par.Supervisor.collect_prefix ?jobs ~policy ~inject
          ~limit:n_chunks ~until work
      in
      let completed =
        Array.to_list outcomes
        |> List.filter_map (function
             | Engine_par.Supervisor.Completed chunk -> Some chunk
             | Engine_par.Supervisor.Quarantined _ -> None)
        |> Array.of_list
      in
      (completed, Some summary)
    end
  in
  (* Ordered truncation: merge whole chunks while they cannot contain
     the [trials]-th acceptance, then replay the boundary chunk. *)
  let tracing = Obs.Trace.on () in
  let traces = ref [] in
  let push_trace cell =
    match cell.trace with Some r -> traces := r :: !traces | None -> ()
  in
  let final = ref acc_empty in
  let attempts_used = ref 0 in
  (try
     Array.iter
       (fun chunk ->
         if !final.accepted + chunk.acc.accepted < trials then begin
           final := acc_merge !final chunk.acc;
           attempts_used := !attempts_used + Array.length chunk.cells;
           if tracing then Array.iter push_trace chunk.cells
         end
         else
           Array.iter
             (fun cell ->
               final := acc_add !final cell;
               incr attempts_used;
               if tracing then push_trace cell;
               if !final.accepted >= trials then raise Exit)
             chunk.cells)
       chunks
   with Exit -> ());
  let final = !final in
  if tracing then begin
    let buffer = Buffer.create 4096 in
    Buffer.add_string buffer (trace_header spec stream ~trials ~max_attempts);
    List.iter
      (fun record ->
        List.iter (Buffer.add_string buffer) (Obs.Trace.record_lines record))
      (List.rev !traces);
    (* Supervision events ride the trace as run-level lines: sorted by
       (chunk, attempt), so their bytes are schedule-independent too. *)
    (match fault_summary with
    | Some (s : Engine_par.Supervisor.summary) ->
        List.iter
          (fun (f : Engine_par.Supervisor.failure) ->
            Buffer.add_string buffer
              (Obs.Trace.fault_line ~chunk:f.chunk ~attempt:f.attempt
                 ~kind:(Engine_par.Supervisor.kind_string f.kind)))
          s.failures
    | None -> ());
    Buffer.add_string buffer
      (Obs.Trace.end_line ~attempts:!attempts_used ~accepted:final.accepted);
    Obs.Trace.write_line (Buffer.contents buffer)
  end;
  if Obs.Metrics.on () then Obs.Metrics.absorb final.metrics;
  {
    observations = final.observations;
    connection =
      Stats.Proportion.make ~successes:final.accepted ~trials:!attempts_used;
    path_lengths = final.path_lengths;
    chemical_distances = final.chemical;
    failures = final.failures;
    requested = trials;
    metrics = final.metrics;
  }

let run_par ?jobs stream ~trials ?max_attempts spec =
  run_engine ?jobs stream ~trials ?max_attempts spec

let run stream ~trials ?max_attempts spec =
  run_engine stream ~trials ?max_attempts spec

let median_observation (result : result) = Stats.Censored.median result.observations

let mean_probes_lower_bound (result : result) =
  Stats.Censored.mean_lower_bound result.observations
