(* E6 — Lemma 6: root-to-root connectivity of the double tree TT_n has
   threshold p = 1/sqrt(2). The event {x ~ y} equals survival to depth n
   of a binary branching process with per-edge probability p^2, so the
   exact probability obeys the recursion
       q_0 = 1,   q_k = 1 - (1 - p^2 q_{k-1})^2,
   and Pr[x ~ y] = q_n. We measure it by Monte-Carlo reveal and print
   the exact value alongside — the measurement must track the recursion,
   and both must collapse for p below 1/sqrt(2) as n grows. *)

let id = "E6"
let title = "Double-tree connectivity threshold (Lemma 6)"

let claim =
  "Pr[x ~ y] in TT_{n,p} is bounded away from 0 iff p > 1/sqrt(2) ~= 0.7071; below \
   the threshold it vanishes with n."

let exact_connection ~n ~p =
  let rec iterate k q =
    if k = 0 then q
    else begin
      let open_child = p *. p *. q in
      iterate (k - 1) (1.0 -. ((1.0 -. open_child) ** 2.0))
    end
  in
  iterate n 1.0

let run ?(quick = false) stream =
  let ps =
    if quick then [ 0.65; 0.75 ]
    else [ 0.60; 0.64; 0.68; 0.70; 0.7071; 0.73; 0.76; 0.80 ]
  in
  let depths = if quick then [ 6 ] else [ 8; 12; 16 ] in
  let trials = if quick then 40 else 150 in
  let table =
    ref
      (Stats.Table.create
         ~headers:[ "n"; "p"; "measured P[x~y]"; "exact (GW recursion)" ])
  in
  let max_deviation = ref 0.0 in
  let sub_threshold_rates = ref [] in
  List.iteri
    (fun n_index n ->
      let graph = Topology.Double_tree.graph n in
      let x = Topology.Double_tree.root1 and y = Topology.Double_tree.root2 ~n in
      (* One [Threshold.sweep] per depth: the same trial seeds are cut
         at every p, so each depth's measured curve is non-decreasing in
         p deterministically (root-to-root connectivity is monotone) —
         only the depth axis draws fresh substreams. *)
      let substream = Prng.Stream.split stream n_index in
      let rates =
        Percolation.Threshold.sweep substream ~trials ~ps
          ~event:(fun ~p ~seed ->
            let world = Worldpool.build graph ~p ~seed in
            match Percolation.Reveal.connected world x y with
            | Percolation.Reveal.Connected _ -> true
            | Percolation.Reveal.Disconnected | Percolation.Reveal.Unknown -> false)
      in
      List.iteri
        (fun p_index (p, rate) ->
          let exact = exact_connection ~n ~p in
          max_deviation := Float.max !max_deviation (Float.abs (rate -. exact));
          (* The first p of the sweep sits below 1/sqrt(2) in both modes. *)
          if p_index = 0 then sub_threshold_rates := rate :: !sub_threshold_rates;
          table :=
            Stats.Table.add_row !table
              [
                string_of_int n;
                Printf.sprintf "%.4f" p;
                Printf.sprintf "%.3f" rate;
                Printf.sprintf "%.3f" exact;
              ])
        rates)
    depths;
  let notes =
    [
      Printf.sprintf "%d Monte-Carlo worlds per cell; threshold 1/sqrt(2) = %.4f."
        trials (1.0 /. sqrt 2.0);
      "Measured rates should match the exact recursion within sampling error, and \
       the sub-threshold columns should fall towards 0 as n grows while the \
       super-threshold ones stabilise.";
    ]
  in
  let claims =
    Claim.ceiling ~id:"E6/recursion-agreement"
      ~description:
        "max |measured - exact GW recursion| over all cells (sampling error)"
      ~max:0.15 !max_deviation
    ::
    (if List.length depths >= 2 then
       [
         Claim.decreasing ~id:"E6/subcritical-decay"
           ~description:
             (Printf.sprintf
                "measured P[x~y] at p=%.2f falls as the depth grows (below \
                 1/sqrt(2))"
                (List.hd ps))
           (List.rev !sub_threshold_rates);
       ]
     else [])
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes ~claims
    [ ("root-to-root connectivity of TT_n", !table) ]
