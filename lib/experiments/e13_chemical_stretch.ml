(* E13 — Lemma 8 (Antal–Pisztora): for p > p_c the chemical distance
   D(x,y) in the supercritical mesh is at most rho(p) * d(x,y) up to
   exponentially rare exceptions. Theorem 4's O(n) routing rests on
   this. We measure the stretch D/d for pairs at growing distance: it
   must stay bounded in n for each fixed p and grow as p decreases
   towards p_c. *)

let id = "E13"
let title = "Chemical-distance stretch in the supercritical mesh (Lemma 8)"

let claim =
  "For p > p_c there are rho, c2 with Pr[D(x,y) > rho d(x,y), x ~ y] < exp(-c2 a): \
   the percolation metric is a bounded distortion of L1."

let run ?(quick = false) stream =
  let ps = if quick then [ 0.70 ] else [ 0.55; 0.60; 0.70; 0.80; 0.90 ] in
  let distances = if quick then [ 10; 20 ] else [ 10; 20; 40 ] in
  let worlds = if quick then 10 else 40 in
  let d = 2 in
  let table =
    ref
      (Stats.Table.create
         ~headers:[ "p"; "n"; "mean stretch"; "max stretch"; "connected" ])
  in
  let claims = ref [] in
  let per_p_last_stretch = ref [] in
  List.iteri
    (fun p_index p ->
      let stretch_by_n = ref [] in
      List.iteri
        (fun n_index n ->
          let margin = 10 in
          let m = n + (2 * margin) in
          let graph = Topology.Mesh.graph ~d ~m in
          let row = m / 2 in
          let source = Topology.Mesh.index ~m [| margin; row |] in
          let target = Topology.Mesh.index ~m [| margin + n; row |] in
          let substream = Prng.Stream.split stream ((p_index * 100) + n_index) in
          let stretches = ref Stats.Summary.empty in
          let connected = ref 0 in
          for w = 1 to worlds do
            let seed = Prng.Coin.derive (Prng.Stream.seed substream) w in
            let world = Worldpool.build graph ~p ~seed in
            match Percolation.Chemical.stretch world source target with
            | Some s ->
                incr connected;
                stretches := Stats.Summary.add !stretches s
            | None -> ()
          done;
          if !connected > 0 then
            stretch_by_n := Stats.Summary.mean !stretches :: !stretch_by_n;
          table :=
            Stats.Table.add_row !table
              [
                Printf.sprintf "%.2f" p;
                string_of_int n;
                (if !connected = 0 then "-"
                 else Printf.sprintf "%.2f" (Stats.Summary.mean !stretches));
                (if !connected = 0 then "-"
                 else Printf.sprintf "%.2f" (Stats.Summary.max !stretches));
                Printf.sprintf "%d/%d" !connected worlds;
              ])
        distances;
      match List.rev !stretch_by_n with
      | s_first :: _ as by_n ->
          let s_last = List.nth by_n (List.length by_n - 1) in
          per_p_last_stretch := s_last :: !per_p_last_stretch;
          claims :=
            Claim.ceiling
              ~id:(Printf.sprintf "E13/bounded-in-n[%.2f]" p)
              ~description:
                (Printf.sprintf
                   "mean stretch at the largest distance does not inflate \
                    over the smallest at p=%.2f"
                   p)
              ~max:1.3 (s_last /. s_first)
            :: Claim.ceiling
                 ~id:(Printf.sprintf "E13/stretch-ceiling[%.2f]" p)
                 ~description:
                   (Printf.sprintf
                      "mean stretch at the largest distance, p=%.2f (Lemma \
                       8's rho(p))"
                      p)
                 ~max:3.0 s_last
            :: !claims
      | [] -> ())
    ps;
  (match List.rev !per_p_last_stretch with
  | s_first :: _ :: _ as by_p ->
      let s_last = List.nth by_p (List.length by_p - 1) in
      claims :=
        Claim.decreasing ~id:"E13/rho-falls-with-p"
          ~description:
            "mean stretch at the largest distance falls from the smallest to \
             the largest p (rho(p) -> 1)"
          [ s_first; s_last ]
        :: !claims
  | _ -> ());
  let notes =
    [
      "Stretch = D(x,y)/d(x,y) over connected worlds, d = 2, horizontal pairs. \
       Expect rows with equal p to agree across n (boundedness) and the constant \
       to fall towards 1 as p -> 1.";
    ]
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes
    ~claims:(List.rev !claims)
    [ ("chemical stretch of the 2-d supercritical mesh", !table) ]
