(** The experiment registry: every theorem-reproduction in one place. *)

type experiment = {
  id : string;  (** "E1" … "E13" *)
  title : string;
  run : ?quick:bool -> Prng.Stream.t -> Report.t;
      (** [quick] shrinks sizes/trials for smoke tests and benches. *)
}

val all : experiment list
(** In id order. *)

val find : string -> experiment option
(** Case-insensitive lookup by id. *)

val run_all : ?quick:bool -> ?jobs:int -> seed:int64 -> unit -> Report.t list
(** Runs every experiment, each on a stream split from [seed].
    [jobs] (default {!Engine_par.Pool.default_jobs}) schedules the
    experiments across a shared domain pool; the reports are identical
    for any job count. *)
