(** Generic deterministic chunked runner for non-trial workloads.

    [Trial.run_engine] owns routing-trial campaigns; experiments whose
    unit of work is something else — one churned netsim run, one
    scenario world census — use this runner to get the same
    machinery: the deterministic pool (index-ordered results,
    byte-identical at any [--jobs]), supervised retries and fault
    injection from the ambient [faultplan/v1], and checkpoint/resume
    through {!Checkpoint}'s value cells (bit-exact float round-trips).

    The contract mirrors [Trial]: [compute] must be a {e pure} function
    of its index — derive every random decision from a per-index
    stream split, never from shared mutable state — and [key] must be
    a canonical string naming everything the results depend on except
    the job count. Then chunk results are pure in [(key, chunk)], so a
    resume with any parameter changed misses and recomputes, and a
    resume of the same configuration restores bit-identical cells. *)

val chunk_size : int
(** Indices per supervised/checkpointed chunk (4, same as [Trial]). *)

val run :
  ?jobs:int -> key:string -> count:int -> (int -> float array) -> float array array
(** [run ~key ~count compute] evaluates [compute i] for every
    [i < count] and returns the cells in index order. [jobs] defaults
    to the ambient pool default. Under supervision, a quarantined
    chunk's cells come back as empty arrays (callers skip them; the
    loss is visible in the supervisor's global summary and faults/v1).
    @raise Invalid_argument on negative [count]. *)
