(* E14 — Section 6's last open problem, exploratory: "Prove that for
   1/n < p < 1/sqrt(n) the oracle routing complexity of the hypercube is
   exponential in n." The paper conjectures (via the distortion results
   of Angel–Benjamini) that unrestricted probing does not rescue routing
   in the hard regime. We supply data: the bidirectional oracle router
   vs local BFS at alpha = 0.7, growing n. If the conjecture holds, both
   curves grow super-polynomially and their ratio stays sub-polynomial —
   nothing like the sqrt(n) separation of G(n,p). *)

let id = "E14"
let title = "Open problem: does oracle routing help on the hard hypercube?"

let claim =
  "Conjectured (Section 6): for 1/n < p < n^{-1/2} even oracle routing on H_{n,p} \
   is exponential in n; oracle access should buy far less than the sqrt(n) factor \
   it buys on G(n,p)."

let run ?(quick = false) stream =
  let alpha = 0.70 in
  let sizes = if quick then [ 8; 10 ] else [ 8; 10; 12; 14 ] in
  let trials = if quick then 5 else 15 in
  let table =
    ref
      (Stats.Table.create
         ~headers:[ "n"; "p"; "local mean"; "oracle mean"; "local/oracle"; "P[u~v]" ])
  in
  let local_points = ref [] and oracle_points = ref [] in
  List.iteri
    (fun index n ->
      let p = float_of_int n ** -.alpha in
      let graph = Topology.Hypercube.graph n in
      let source = 0 in
      let target = Topology.Hypercube.antipode ~n source in
      let substream = Prng.Stream.split stream index in
      let measure label router =
        Trial.run (Prng.Stream.split substream label) ~trials
          (Trial.spec ~graph ~p ~source ~target router)
      in
      let local = measure 1 (fun _rand ~source:_ ~target:_ -> Routing.Local_bfs.router) in
      let oracle =
        measure 2 (fun _rand ~source:_ ~target:_ -> Routing.Bidirectional.router)
      in
      let local_mean = Trial.mean_probes_lower_bound local in
      let oracle_mean = Trial.mean_probes_lower_bound oracle in
      local_points := (float_of_int n, local_mean) :: !local_points;
      oracle_points := (float_of_int n, oracle_mean) :: !oracle_points;
      table :=
        Stats.Table.add_row !table
          [
            string_of_int n;
            Printf.sprintf "%.4f" p;
            Printf.sprintf "%.0f" local_mean;
            Printf.sprintf "%.0f" oracle_mean;
            Printf.sprintf "%.1f" (local_mean /. oracle_mean);
            Printf.sprintf "%.2f" (Stats.Proportion.estimate local.Trial.connection);
          ])
    sizes;
  let notes =
    let base =
      [
        Printf.sprintf
          "alpha = %.2f (inside the hard regime 1/2 < alpha < 1); antipodal pairs; \
           the oracle router is bidirectional BFS-style growth with cross-edge \
           priority."
          alpha;
        "This is exploratory data for an open problem — no pass/fail assertion.";
      ]
    in
    if List.length !local_points >= 3 then begin
      let local_fit = Stats.Regression.exponential (List.rev !local_points) in
      let oracle_fit = Stats.Regression.exponential (List.rev !oracle_points) in
      Printf.sprintf
        "Exponential fits: local rate %.3f/step (R^2 = %.3f), oracle rate %.3f/step \
         (R^2 = %.3f). The oracle rate is roughly half the local rate — the classic \
         meet-in-the-middle square-root saving of bidirectional search — but it is \
         still decidedly positive: growth remains exponential, consistent with the \
         Section 6 conjecture."
        local_fit.Stats.Regression.slope local_fit.Stats.Regression.r_squared
        oracle_fit.Stats.Regression.slope oracle_fit.Stats.Regression.r_squared
      :: base
    end
    else base
  in
  let claims =
    match (List.rev !local_points, List.rev !oracle_points) with
    | ( ((n0, l0) :: _ :: _ as locals),
        ((_, o0) :: _ :: _ as oracles) ) ->
        let n1, l1 = List.nth locals (List.length locals - 1) in
        let _, o1 = List.nth oracles (List.length oracles - 1) in
        let local_rate = log (l1 /. l0) /. (n1 -. n0) in
        let oracle_rate = log (o1 /. o0) /. (n1 -. n0) in
        [
          Claim.floor ~id:"E14/local-growth"
            ~description:
              "endpoint log growth rate of local probes per n step (hard \
               regime)"
            ~min:0.2 local_rate;
          Claim.floor ~id:"E14/oracle-growth-positive"
            ~description:
              "endpoint log growth rate of oracle probes stays positive — \
               oracle routing is still exponential"
            ~min:0.1 oracle_rate;
          Claim.ceiling ~id:"E14/no-sqrt-rescue"
            ~description:
              "oracle/local log-rate ratio — the saving is at most \
               meet-in-the-middle, nothing like G(n,p)'s sqrt(n)"
            ~max:0.95
            (oracle_rate /. local_rate);
        ]
    | _ -> []
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes ~claims
    [ ("local vs oracle routing on hard H_{n,p}", !table) ]
