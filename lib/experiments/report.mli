(** Structured experiment reports.

    Each experiment produces one report: the paper's claim, the measured
    table(s) (the reproduction's "figure"), derived fits and a verdict
    note. Reports render to plain text for the CLI and bench harness and
    to CSV for downstream plotting. *)

type t = {
  id : string;  (** "E1" … *)
  title : string;
  claim : string;  (** The theorem/lemma being reproduced. *)
  tables : (string * Stats.Table.t) list;  (** Caption, table. *)
  notes : string list;  (** Fits, verdicts, caveats. *)
  claims : Claim.t list;
      (** Machine-checkable assertions ([claim/v1]) backing the verdict
          column — evaluated by [faultroute check]. *)
  seed : int64;  (** Root seed — reruns reproduce exactly. *)
}

val make :
  id:string ->
  title:string ->
  claim:string ->
  seed:int64 ->
  ?notes:string list ->
  ?claims:Claim.t list ->
  (string * Stats.Table.t) list ->
  t

val shortfall_marker : string
(** Substring every {!Trial.shortfall_note} carries. *)

val has_shortfall : t -> bool
(** Whether any note flags an attempt-cap shortfall (carries
    {!shortfall_marker}) — the statistics in this report are
    under-sampled. The CLI's [--strict-shortfall] turns this into a
    nonzero exit. *)

val render : t -> string
(** Multi-line human-readable rendering. *)

val render_csv : t -> (string * string) list
(** One (caption, csv) pair per table. *)

val print : t -> unit
(** [render] to stdout. *)
