type cell =
  | Rejected
  | Accepted of { distance : int; outcome : Routing.Outcome.t }

let schema = "checkpoint/v1"
let file ~dir = Filename.concat dir "checkpoint.jsonl"
let digest_key canonical = Digest.to_hex (Digest.string canonical)

(* ------------------------------------------------------------------ *)
(* Cell wire format. Compact single-letter tags — a journal line per
   chunk at every chunk of a long campaign adds up. A Found path is
   stored as its hop count only and reconstructed as a synthetic
   0..hops vertex list: the accumulator fold consumes nothing but the
   length, and pretending otherwise would bloat every line with a full
   path. *)

let cell_to_json = function
  | Rejected -> Obs.Json.Obj [ ("t", Obs.Json.String "r") ]
  | Accepted { distance; outcome } -> (
      match outcome with
      | Routing.Outcome.Found { path; probes; raw_probes } ->
          Obs.Json.Obj
            [
              ("t", Obs.Json.String "f");
              ("d", Obs.Json.Int distance);
              ("p", Obs.Json.Int probes);
              ("rp", Obs.Json.Int raw_probes);
              ("h", Obs.Json.Int (List.length path - 1));
            ]
      | Routing.Outcome.No_path { probes } ->
          Obs.Json.Obj
            [
              ("t", Obs.Json.String "n");
              ("d", Obs.Json.Int distance);
              ("p", Obs.Json.Int probes);
            ]
      | Routing.Outcome.Budget_exceeded { probes } ->
          Obs.Json.Obj
            [
              ("t", Obs.Json.String "b");
              ("d", Obs.Json.Int distance);
              ("p", Obs.Json.Int probes);
            ])

let cell_of_json json =
  let int_field name = Option.bind (Obs.Json.member name json) Obs.Json.to_int in
  match Option.bind (Obs.Json.member "t" json) Obs.Json.to_str with
  | Some "r" -> Some Rejected
  | Some "f" -> (
      match (int_field "d", int_field "p", int_field "rp", int_field "h") with
      | Some d, Some p, Some rp, Some h when h >= 0 ->
          let path = List.init (h + 1) Fun.id in
          Some
            (Accepted
               {
                 distance = d;
                 outcome = Routing.Outcome.Found { path; probes = p; raw_probes = rp };
               })
      | _ -> None)
  | Some "n" -> (
      match (int_field "d", int_field "p") with
      | Some d, Some p ->
          Some (Accepted { distance = d; outcome = Routing.Outcome.No_path { probes = p } })
      | _ -> None)
  | Some "b" -> (
      match (int_field "d", int_field "p") with
      | Some d, Some p ->
          Some
            (Accepted
               { distance = d; outcome = Routing.Outcome.Budget_exceeded { probes = p } })
      | _ -> None)
  | _ -> None

(* Value cells (the generic simulation runner's currency): one float
   array per work item, serialized as IEEE-754 bit patterns in hex —
   decimal printing would round through the parser and break the
   byte-identical resume guarantee. *)

let value_to_json v =
  Obs.Json.String (Printf.sprintf "%Lx" (Int64.bits_of_float v))

let value_of_json = function
  | Obs.Json.String s -> (
      match Int64.of_string_opt ("0x" ^ s) with
      | Some bits -> Some (Int64.float_of_bits bits)
      | None -> None)
  | _ -> None

let values_to_json vs =
  Obs.Json.List (Array.to_list (Array.map value_to_json vs))

let values_of_json json =
  match Obs.Json.to_list json with
  | None -> None
  | Some items ->
      let parsed = List.map value_of_json items in
      if List.for_all Option.is_some parsed then
        Some (Array.of_list (List.filter_map Fun.id parsed))
      else None

let chunk_line ~key ~chunk cells =
  Obs.Json.to_string
    (Obs.Json.Obj
       [
         ("schema", Obs.Json.String schema);
         ("ev", Obs.Json.String "chunk");
         ("key", Obs.Json.String key);
         ("chunk", Obs.Json.Int chunk);
         ("cells", Obs.Json.List (Array.to_list (Array.map cell_to_json cells)));
       ])
  ^ "\n"

let vchunk_line ~key ~chunk cells =
  Obs.Json.to_string
    (Obs.Json.Obj
       [
         ("schema", Obs.Json.String schema);
         ("ev", Obs.Json.String "vchunk");
         ("key", Obs.Json.String key);
         ("chunk", Obs.Json.Int chunk);
         ("cells", Obs.Json.List (Array.to_list (Array.map values_to_json cells)));
       ])
  ^ "\n"

let meta_line () =
  Obs.Json.to_string
    (Obs.Json.Obj
       [ ("schema", Obs.Json.String schema); ("ev", Obs.Json.String "meta") ])
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* Journal state. One table keyed by (config digest, chunk index); the
   channel stays open with a per-line flush, so a kill can tear at most
   the line in flight — which the loader below shrugs off.             *)

type journal = {
  table : (string * int, cell array) Hashtbl.t;
  vtable : (string * int, float array array) Hashtbl.t;
  channel : out_channel;
}

let lock = Mutex.create ()
let state : journal option ref = ref None
let is_active = Atomic.make false
let restored_count = Atomic.make 0
let appended_count = Atomic.make 0
let kill_after : int option Atomic.t = Atomic.make None

let set_kill_after n = Atomic.set kill_after n
let restored () = Atomic.get restored_count
let appended () = Atomic.get appended_count

let active () = Atomic.get is_active

(* Tolerant load: a torn final line (the kill case) or any other
   unparseable line is skipped, never fatal — losing one chunk to a
   crash costs recomputing it, not the resume. *)
let load_journal path table vtable =
  In_channel.with_open_text path (fun ic ->
      let rec loop () =
        match In_channel.input_line ic with
        | None -> ()
        | Some line ->
            (match Obs.Json.of_string line with
            | Error _ -> ()
            | Ok json -> (
                match
                  ( Option.bind (Obs.Json.member "ev" json) Obs.Json.to_str,
                    Option.bind (Obs.Json.member "key" json) Obs.Json.to_str,
                    Option.bind (Obs.Json.member "chunk" json) Obs.Json.to_int,
                    Option.bind (Obs.Json.member "cells" json) Obs.Json.to_list )
                with
                | Some "chunk", Some key, Some chunk, Some cells_json -> (
                    let cells = List.map cell_of_json cells_json in
                    if List.for_all Option.is_some cells then
                      Hashtbl.replace table (key, chunk)
                        (Array.of_list (List.filter_map Fun.id cells)))
                | Some "vchunk", Some key, Some chunk, Some cells_json -> (
                    let cells = List.map values_of_json cells_json in
                    if List.for_all Option.is_some cells then
                      Hashtbl.replace vtable (key, chunk)
                        (Array.of_list (List.filter_map Fun.id cells)))
                | _ -> ()));
            loop ()
      in
      loop ())

let close_locked () =
  (match !state with
  | Some j -> ( try close_out j.channel with Sys_error _ -> ())
  | None -> ());
  state := None;
  Atomic.set is_active false

let deconfigure () =
  Mutex.lock lock;
  close_locked ();
  Mutex.unlock lock;
  Atomic.set kill_after None

let configure ~dir ~resume =
  Mutex.lock lock;
  let result =
    try
      close_locked ();
      Obs.Atomic_file.mkdir_p dir;
      let path = file ~dir in
      let table = Hashtbl.create 256 in
      let vtable = Hashtbl.create 256 in
      let fresh = (not resume) || not (Sys.file_exists path) in
      if not fresh then load_journal path table vtable;
      let channel =
        open_out_gen
          (Open_wronly :: Open_creat
          :: (if fresh then [ Open_trunc ] else [ Open_append ]))
          0o644 path
      in
      if fresh then begin
        output_string channel (meta_line ());
        flush channel
      end;
      state := Some { table; vtable; channel };
      Atomic.set is_active true;
      Atomic.set restored_count 0;
      Atomic.set appended_count 0;
      Ok ()
    with
    | Sys_error message -> Error message
    | Unix.Unix_error (code, fn, arg) ->
        Error (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message code))
  in
  Mutex.unlock lock;
  result

let lookup ~key ~chunk =
  Mutex.lock lock;
  let hit =
    match !state with
    | None -> None
    | Some j -> Hashtbl.find_opt j.table (key, chunk)
  in
  Mutex.unlock lock;
  if hit <> None then Atomic.incr restored_count;
  hit

(* Shared append path for both cell kinds: replace in the journal's
   table, write one line, then count it against the kill budget. *)
let append_chunk record line =
  let stored =
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        match !state with
        | None -> false
        | Some j ->
            record j;
            output_string j.channel line;
            flush j.channel;
            true)
  in
  if stored then begin
    let n = 1 + Atomic.fetch_and_add appended_count 1 in
    (* The simulated kill -9: exit without flushing anything else or
       running at_exit, exactly as a signal would take the process
       down. The journal line above is already on disk. *)
    match Atomic.get kill_after with
    | Some threshold when n >= threshold -> Unix._exit 137
    | _ -> ()
  end

let store ~key ~chunk cells =
  append_chunk
    (fun j -> Hashtbl.replace j.table (key, chunk) cells)
    (chunk_line ~key ~chunk cells)

let lookup_values ~key ~chunk =
  Mutex.lock lock;
  let hit =
    match !state with
    | None -> None
    | Some j -> Hashtbl.find_opt j.vtable (key, chunk)
  in
  Mutex.unlock lock;
  if hit <> None then Atomic.incr restored_count;
  hit

let store_values ~key ~chunk cells =
  append_chunk
    (fun j -> Hashtbl.replace j.vtable (key, chunk) cells)
    (vchunk_line ~key ~chunk cells)

let metrics_snapshot () =
  let registry = Obs.Metrics.create () in
  Obs.Metrics.add registry "checkpoint.chunks.restored" (restored ());
  Obs.Metrics.add registry "checkpoint.chunks.appended" (appended ());
  Obs.Metrics.snapshot registry
