(* E15 — Ablations on the measurement machinery itself (DESIGN.md's
   "design choices" section):

   (a) probe order: local BFS probing neighbours in topology order vs a
       randomised order — medians must agree within noise, i.e. the
       reported complexities are properties of the regime, not of our
       enumeration order;
   (b) backbone orientation: the Theorem 3(ii) segment router with the
       ascending vs descending bit-fixing shortest path — the arbitrary
       backbone choice must not matter.

   The design is paired: all variants run against the same sequence of
   percolation worlds (same trial stream), so differences are purely
   algorithmic. The pair sits at distance n/2 rather than antipodal so
   BFS finds the target mid-exploration and probe order can matter. *)

let id = "E15"
let title = "Ablations: probe order and backbone choice"

let claim =
  "Reported complexities are regime properties: neither the neighbour \
   enumeration order of local BFS nor the orientation of the segment router's \
   backbone should move the medians beyond sampling noise."

let run ?(quick = false) stream =
  let n = if quick then 10 else 12 in
  let trials = if quick then 8 else 25 in
  let alphas = if quick then [ 0.35 ] else [ 0.25; 0.35; 0.45 ] in
  let graph = Topology.Hypercube.graph n in
  let source = 0 in
  let target = (1 lsl (n / 2)) - 1 in
  (* distance n/2 *)
  let table =
    ref
      (Stats.Table.create
         ~headers:
           [ "alpha"; "variant"; "median probes"; "mean probes"; "mean path len" ])
  in
  let claims = ref [] in
  List.iteri
    (fun alpha_index alpha ->
      let p = float_of_int n ** -.alpha in
      let variants =
        [
          ("bfs/topology-order", fun _rand ~source:_ ~target:_ -> Routing.Local_bfs.router);
          ( "bfs/random-order",
            fun rand ~source:_ ~target:_ ->
              (* Shuffle order comes from the trial's private stream, so
                 the variant stays deterministic under parallel runs. *)
              Routing.Local_bfs.router_randomized rand );
          ( "segment/ascending",
            fun _rand ~source ~target -> Routing.Path_follow.hypercube ~n ~source ~target );
          ( "segment/descending",
            fun _rand ~source ~target ->
              let backbone =
                Array.of_list (Topology.Hypercube.fixed_path_desc ~n source target)
              in
              {
                (Routing.Path_follow.router ~backbone) with
                Routing.Router.name = "segment-desc";
              } );
        ]
      in
      (* Paired worlds: every variant consumes the same trial stream, so
         the k-th conditioned trial of each variant sees the same world. *)
      let world_stream = Prng.Stream.split stream alpha_index in
      let means = ref [] in
      List.iter
        (fun (name, router) ->
          let result =
            Trial.run world_stream ~trials (Trial.spec ~graph ~p ~source ~target router)
          in
          means := (name, Trial.mean_probes_lower_bound result) :: !means;
          let median =
            match Trial.median_observation result with
            | Some (Stats.Censored.Exact v) -> Printf.sprintf "%.0f" v
            | Some (Stats.Censored.At_least v) -> Printf.sprintf ">=%.0f" v
            | None -> "-"
          in
          table :=
            Stats.Table.add_row !table
              [
                Printf.sprintf "%.2f" alpha;
                name;
                median;
                Printf.sprintf "%.0f" (Trial.mean_probes_lower_bound result);
                Printf.sprintf "%.1f" (Stats.Summary.mean result.Trial.path_lengths);
              ])
        variants;
      let mean_of name = List.assoc_opt name !means in
      (match (mean_of "bfs/random-order", mean_of "bfs/topology-order") with
      | Some rand_mean, Some topo_mean when topo_mean > 0.0 ->
          claims :=
            Claim.band
              ~id:(Printf.sprintf "E15/probe-order[%.2f]" alpha)
              ~description:
                (Printf.sprintf
                   "random-order/topology-order BFS mean-probe ratio at \
                    alpha=%.2f (no enumeration artefact)"
                   alpha)
              ~lo:0.3 ~hi:3.0 (rand_mean /. topo_mean)
            :: !claims
      | _ -> ());
      match (mean_of "segment/ascending", mean_of "segment/descending") with
      | Some asc_mean, Some desc_mean when desc_mean > 0.0 ->
          claims :=
            Claim.band
              ~id:(Printf.sprintf "E15/backbone[%.2f]" alpha)
              ~description:
                (Printf.sprintf
                   "ascending/descending segment-backbone mean-probe ratio \
                    at alpha=%.2f (orientation-free, wide tolerance at small \
                    samples)"
                   alpha)
              ~lo:0.1 ~hi:10.0 (asc_mean /. desc_mean)
            :: !claims
      | _ -> ())
    alphas;
  let notes =
    [
      Printf.sprintf
        "n = %d, pair at Hamming distance %d, %d conditioned trials per row; all \
         variants within an alpha block are measured on identical worlds (paired \
         design)."
        n (n / 2) trials;
      "Within each alpha block, the two BFS rows and the two segment rows should \
       agree closely; systematic gaps would indicate an enumeration-order artefact \
       in the harness.";
    ]
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes
    ~claims:(List.rev !claims)
    [ ("probe-order and backbone ablations on H_n", !table) ]
