(* E7 — Theorem 7 vs Theorem 9: on TT_n with fixed p in (1/sqrt 2, 1),
   every local router pays exponentially many probes (>= a p^-n) while
   the paired-DFS oracle router pays O(n). Sweep the depth and fit both
   growth laws; this is the paper's headline local/oracle separation. *)

let id = "E7"
let title = "Double tree: exponential local vs linear oracle routing (Thms 7 & 9)"

let claim =
  "Any local router between the roots of TT_n makes >= a * p^-n queries w.h.p. \
   (Theorem 7); the paired-edge oracle router has average complexity c(p) * n \
   (Theorem 9) — an exponential separation."

let run ?(quick = false) stream =
  let p = 0.80 in
  let depths = if quick then [ 4; 6 ] else [ 4; 6; 8; 10; 12; 14 ] in
  let trials = if quick then 8 else 25 in
  let table =
    ref
      (Stats.Table.create
         ~headers:
           [ "n"; "local mean"; "local median"; "oracle mean"; "oracle median"; "P[x~y]" ])
  in
  let local_points = ref [] and oracle_points = ref [] in
  List.iteri
    (fun n_index n ->
      let graph = Topology.Double_tree.graph n in
      let source = Topology.Double_tree.root1 in
      let target = Topology.Double_tree.root2 ~n in
      let substream = Prng.Stream.split stream n_index in
      let run_router label router =
        Trial.run (Prng.Stream.split substream label) ~trials
          (Trial.spec ~graph ~p ~source ~target router)
      in
      let local = run_router 1 (fun _rand ~source:_ ~target:_ -> Routing.Local_bfs.router) in
      let oracle =
        run_router 2 (fun _rand ~source:_ ~target:_ -> Routing.Tree_pair_dfs.router ~n)
      in
      let median result =
        match Trial.median_observation result with
        | Some (Stats.Censored.Exact m) | Some (Stats.Censored.At_least m) -> m
        | None -> nan
      in
      let local_mean = Trial.mean_probes_lower_bound local in
      let oracle_mean = Trial.mean_probes_lower_bound oracle in
      local_points := (float_of_int n, local_mean) :: !local_points;
      oracle_points := (float_of_int n, oracle_mean) :: !oracle_points;
      table :=
        Stats.Table.add_row !table
          [
            string_of_int n;
            Printf.sprintf "%.0f" local_mean;
            Printf.sprintf "%.0f" (median local);
            Printf.sprintf "%.0f" oracle_mean;
            Printf.sprintf "%.0f" (median oracle);
            Printf.sprintf "%.2f" (Stats.Proportion.estimate local.Trial.connection);
          ])
    depths;
  let claims = ref [] in
  let notes =
    let base = [ Printf.sprintf "p = %.2f fixed; Theorem 7 predicts local growth rate at least 1/p = %.3f per depth step." p (1.0 /. p) ] in
    let fit_notes =
      if List.length !local_points >= 3 then begin
        let local_fit = Stats.Regression.exponential (List.rev !local_points) in
        let oracle_fit = Stats.Regression.linear (List.rev !oracle_points) in
        (* Fresh split index 9000: not used by the per-depth trial streams. *)
        let local_ci =
          Stats.Regression.exponential_ci
            (Prng.Stream.split stream 9000)
            (List.rev !local_points)
        in
        claims :=
          [
            Claim.floor ~id:"E7/local-rate-certified"
              ~description:
                (Printf.sprintf
                   "fitted local growth per depth step vs Theorem 7's 1/p = \
                    %.3f"
                   (1.0 /. p))
              ~min:(1.0 /. p)
              (exp local_fit.Stats.Regression.slope);
            Claim.floor ~id:"E7/local-exp-fit-r2"
              ~description:"exponential fit quality of the local column"
              ~min:0.9 local_fit.Stats.Regression.r_squared;
            Claim.floor ~id:"E7/oracle-linear-fit-r2"
              ~description:"linear fit quality of the oracle column (Thm 9)"
              ~min:0.8 oracle_fit.Stats.Regression.r_squared;
          ];
        [
          Printf.sprintf
            "Local BFS: probes ~ exp(%.3f n) i.e. growth %.3f per step (R^2 = %.3f) — \
             compare 1/p = %.3f; bootstrap 95%% CI for the log-rate: [%.3f, %.3f]."
            local_fit.Stats.Regression.slope
            (exp local_fit.Stats.Regression.slope)
            local_fit.Stats.Regression.r_squared (1.0 /. p)
            local_ci.Stats.Regression.lo local_ci.Stats.Regression.hi;
          Printf.sprintf
            "Oracle paired-DFS: probes ~ %.1f n + %.1f (R^2 = %.3f) — linear, as \
             Theorem 9 predicts."
            oracle_fit.Stats.Regression.slope oracle_fit.Stats.Regression.intercept
            oracle_fit.Stats.Regression.r_squared;
        ]
      end
      else []
    in
    base @ fit_notes
  in
  let endpoint_claims =
    match (List.rev !local_points, List.rev !oracle_points) with
    | ( ((n0, l0) :: _ :: _ as locals),
        ((_, o0) :: _ :: _ as oracles) ) ->
        let n1, l1 = List.nth locals (List.length locals - 1) in
        let _, o1 = List.nth oracles (List.length oracles - 1) in
        [
          Claim.floor ~id:"E7/local-rate"
            ~description:
              "endpoint local growth factor per depth step (exponential \
               regime)"
            ~min:1.1
            ((l1 /. l0) ** (1.0 /. (n1 -. n0)));
          Claim.band ~id:"E7/oracle-slope"
            ~description:
              "endpoint oracle probes per depth step (linear regime)" ~lo:0.5
            ~hi:20.0
            ((o1 -. o0) /. (n1 -. n0));
          Claim.increasing ~id:"E7/separation-growing"
            ~description:
              "local/oracle mean-probe ratio grows with the depth"
            [ l0 /. o0; l1 /. o1 ];
        ]
    | _ -> []
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes
    ~claims:(endpoint_claims @ !claims)
    [ ("TT_n root-to-root: local BFS vs paired-DFS oracle", !table) ]
