(* E25 — fault geometry at equal budget (ROADMAP O3, after Bagchi et
   al., "The Effect of Faults on Network Expansion").

   The paper's fault model is i.i.d. edge percolation; real failures
   cluster (a cut cable, a flooded rack row). On the 2-d mesh we fix
   an exact edge budget k and compare how differently arranged fault
   sets of the same size degrade the network: uniform random, BFS
   balls around random centers, an Eden-growth infection blob, a
   decaying blast around one epicenter, and the pair-targeted min-cut
   adversary — the last padded to the same budget through the shared
   Scenario API, so every curve sits on one axis. Degradation is the
   surviving giant-component fraction, corner-to-corner survival, and
   conditioned greedy routing cost. *)

let id = "E25"
let title = "Clustered vs random faults: degradation at equal budget"

let claim =
  "At equal edge budget, spatially clustered faults destroy strictly more of \
   the network than the paper's i.i.d. faults: every clustered geometry leaves \
   a smaller giant component than uniform removal of the same k edges, while \
   random removal at a 20% budget barely dents the mesh (p = 0.8 is deep in \
   the supercritical phase); the pair-targeted min-cut adversary disconnects \
   the corner pair with any budget >= its edge connectivity."

let run ?(quick = false) stream =
  let side = if quick then 10 else 24 in
  let trials = if quick then 5 else 20 in
  let graph = Topology.Mesh.graph ~d:2 ~m:side in
  let total_edges = Topology.Graph.edge_count graph in
  let source = 0 in
  let target = graph.Topology.Graph.vertex_count - 1 in
  let budgets =
    [ total_edges * 5 / 100; total_edges * 10 / 100; total_edges * 20 / 100 ]
  in
  let min_cut_model substream trial =
    (* The adversary stops once the pair disconnects; pad to the exact
       budget so its curve is budget-comparable with the others. *)
    fun ~budget ->
      let s = Prng.Stream.split substream trial in
      let edges =
        Percolation.Adversary.pick_edges s graph Percolation.Adversary.Min_cut
          ~source ~target ~budget
      in
      Percolation.Scenario.pad_to_budget s graph ~budget edges
  in
  let models =
    [
      ("random", `Scenario Percolation.Scenario.Random);
      ("ball:3", `Scenario (Percolation.Scenario.Ball { centers = 3 }));
      ("infection", `Scenario Percolation.Scenario.Infection);
      ("blast:0.5", `Scenario (Percolation.Scenario.Blast { decay = 0.5 }));
      ("min-cut", `Min_cut);
    ]
  in
  let table =
    ref
      (Stats.Table.create
         ~headers:
           [ "deleted k"; "model"; "giant frac"; "P[corner~corner]"; "mean greedy probes" ])
  in
  let results = ref [] in
  List.iteri
    (fun budget_index budget ->
      List.iteri
        (fun model_index (name, model) ->
          let substream =
            Prng.Stream.split stream ((budget_index * 10) + model_index)
          in
          let giant = ref Stats.Summary.empty in
          let survived = ref 0 in
          let probes = ref Stats.Summary.empty in
          for trial = 1 to trials do
            (* Base world fault-free: isolate the geometry's effect. *)
            let base =
              Worldpool.build graph ~p:1.0
                ~seed:(Prng.Coin.derive (Prng.Stream.seed substream) trial)
            in
            let edges =
              match model with
              | `Scenario m ->
                  Percolation.Scenario.sample
                    (Prng.Stream.split substream trial)
                    graph m ~budget
              | `Min_cut -> min_cut_model substream trial ~budget
            in
            let faulted = Percolation.Scenario.apply base edges in
            giant :=
              Stats.Summary.add !giant
                (Percolation.Clusters.giant_fraction
                   (Percolation.Clusters.census faulted));
            match Percolation.Reveal.connected faulted source target with
            | Percolation.Reveal.Connected _ -> (
                incr survived;
                match
                  Routing.Router.run Routing.Greedy.router faulted ~source ~target
                with
                | Routing.Outcome.Found { probes = cost; _ } ->
                    probes := Stats.Summary.add !probes (float_of_int cost)
                | Routing.Outcome.No_path _ | Routing.Outcome.Budget_exceeded _ -> ())
            | Percolation.Reveal.Disconnected | Percolation.Reveal.Unknown -> ()
          done;
          results :=
            ( (budget_index, name),
              ( Stats.Summary.mean !giant,
                float_of_int !survived /. float_of_int trials ) )
            :: !results;
          table :=
            Stats.Table.add_row !table
              [
                string_of_int budget;
                name;
                Printf.sprintf "%.3f" (Stats.Summary.mean !giant);
                Printf.sprintf "%d/%d" !survived trials;
                (if Stats.Summary.count !probes = 0 then "-"
                 else Printf.sprintf "%.0f" (Stats.Summary.mean !probes));
              ])
        models)
    budgets;
  let n_budgets = List.length budgets in
  let giant_of key = Option.map fst (List.assoc_opt key !results) in
  let survival_of key = Option.map snd (List.assoc_opt key !results) in
  let notes =
    [
      Printf.sprintf
        "mesh d=2 side %d (%d vertices, %d edges), corner pair; budgets k = 5%%, \
         10%%, 20%% of all edges; every model removes exactly k distinct edges \
         (min-cut padded with random edges once the pair is cut)."
        side graph.Topology.Graph.vertex_count total_edges;
      "Clustered removal concentrates its budget: a ball or blob of k edges \
       isolates the vertices inside it, while the same k spread uniformly \
       leaves the supercritical giant intact — the Bagchi et al. expansion \
       argument made visible in the giant-fraction column.";
    ]
  in
  let max_b = n_budgets - 1 in
  let dominance clustered =
    match (giant_of (max_b, clustered), giant_of (max_b, "random")) with
    | Some c, Some r ->
        [
          Claim.ceiling
            ~id:(Printf.sprintf "E25/%s-dominated" clustered)
            ~description:
              (Printf.sprintf
                 "giant-fraction excess of %s over random at the 20%% budget \
                  (clustered geometry must degrade at least as much)"
                 clustered)
            ~max:0.02 (c -. r);
        ]
    | _ -> []
  in
  let claims =
    List.concat
      [
        (match giant_of (max_b, "random") with
        | Some g ->
            [
              Claim.floor ~id:"E25/random-giant-floor"
                ~description:
                  "random-fault giant fraction at the 20% budget — i.i.d. \
                   removal at p = 0.8 stays deep in the supercritical phase"
                ~min:0.8 g;
            ]
        | None -> []);
        dominance "ball:3";
        dominance "infection";
        dominance "blast:0.5";
        (match survival_of (0, "min-cut") with
        | Some s ->
            [
              Claim.ceiling ~id:"E25/min-cut-kills-pair"
                ~description:
                  "corner-pair survival under the budget-matched min-cut \
                   adversary at the smallest budget (corner connectivity is 2)"
                ~max:0.01 s;
            ]
        | None -> []);
        (let infection_curve =
           List.filter_map
             (fun b -> giant_of (b, "infection"))
             (List.init n_budgets Fun.id)
         in
         if List.length infection_curve = n_budgets then
           [
             Claim.decreasing ~id:"E25/infection-degrades-monotone"
               ~description:
                 "infection-blob giant fraction is non-increasing in the \
                  budget — degradation curves never recover"
               infection_curve;
           ]
         else []);
      ]
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes ~claims
    [ ("degradation by fault geometry at equal budget", !table) ]
