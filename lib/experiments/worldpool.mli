(** Keyed, size-gated construction and lookup of percolation worlds —
    the seam between "what world" and "who builds it".

    Historically every consumer built its own worlds inline
    ([Percolation.World.create] calls scattered through [Trial] and the
    experiment files), so a world lived exactly as long as one trial
    attempt and could never be reused. This module makes worlds
    first-class resources:

    - {!build} / {!detached} are the {e one-shot} constructors: the
      blessed replacement for direct [World.create] calls in experiment
      code (those are deprecated — see DESIGN.md §7's migration note).
      No locking, no retention; exactly the old cost profile.
    - {!create} / {!get} / {!provider} are the {e resident pool}: each
      distinct [(graph, p, seed, site_p)] key is constructed at most
      once, {!Percolation.World.prefill}ed so the world is genuinely
      immutable, and then shared — including across domains, which the
      prefill makes safe. [faultroute serve] keeps its session worlds
      here and answers every query against the same resident objects.

    {2 Size gate}

    Pooling pays when the world carries a materialised cache. Graphs
    too large for {!Percolation.World.cache_gate} get lazy worlds —
    O(1) memory, pure-function queries, nothing to share — so {!get}
    builds those per call and never retains them (they are {e already}
    safe to share; there is just nothing to save by doing so).

    {2 Eviction and accounting}

    The pool holds at most [capacity] worlds (default
    {!default_capacity}); inserting past that evicts the oldest key
    (FIFO — deterministic, no clock). Evicted worlds stay valid for
    whoever holds them; only the pool's reference is dropped.
    {!stats} / {!metrics_snapshot} expose constructions, hits and
    evictions — [worldpool.constructed] is how [make serve-smoke]
    proves each manifest world was built exactly once. *)

type t
(** A resident pool. Thread-safe: one mutex guards the table, and
    every retained world is prefilled before it becomes visible. *)

type provider = seed:int64 -> Percolation.World.t
(** How {!Trial} (and anything else that samples worlds) obtains one:
    a function of the seed alone, everything else fixed up front. A
    provider must be observationally equal to
    [World.create graph ~p ~seed] for its [(graph, p)] — pool-backed
    and detached providers both are — because checkpoint keys and
    report bytes assume world states are a pure function of
    [(graph, p, seed)]. *)

val default_capacity : int
(** 64 resident worlds. *)

val create : ?capacity:int -> unit -> t
(** An empty pool.
    @raise Invalid_argument if [capacity <= 0]. *)

val build :
  ?site_p:float -> Topology.Graph.t -> p:float -> seed:int64 -> Percolation.World.t
(** One-shot construction — [Percolation.World.create], centralised.
    Use this (or {!detached}) instead of calling [World.create]
    directly from experiment code. *)

val detached : ?site_p:float -> Topology.Graph.t -> p:float -> provider
(** [detached graph ~p] is the unpooled provider: every call
    constructs a fresh single-use world. {!Trial.spec}'s default. *)

val coupled : ?site:bool -> Topology.Graph.t -> seed:int64 -> Percolation.Coupled.t
(** [coupled graph ~seed] samples a monotone-coupled sweep family —
    [Percolation.Coupled.create], centralised so experiment code keeps
    constructing worlds through this module. Use one family per trial
    seed and {!cut} it at every [p] of a sweep.
    @raise Invalid_argument if the graph exceeds the cache gate. *)

val cut : ?site_p:float -> Percolation.Coupled.t -> p:float -> Percolation.World.t
(** [cut family ~p] is the family's world at [p] —
    [Percolation.Coupled.world_at]. Observationally identical to
    [build graph ~p ~seed] for the family's graph and seed. *)

val get :
  ?site_p:float ->
  t ->
  Topology.Graph.t ->
  p:float ->
  seed:int64 ->
  Percolation.World.t
(** The resident world for [(graph, p, seed, site_p)], constructing
    (and prefilling) it on first request. Worlds above the cache gate
    are built per call and not retained. *)

val provider : ?site_p:float -> t -> Topology.Graph.t -> p:float -> provider
(** [provider pool graph ~p] is [fun ~seed -> get pool graph ~p ~seed]. *)

type stats = {
  resident : int;  (** Worlds currently retained. *)
  constructed : int;  (** Constructions performed (pooled or gated-out). *)
  hits : int;  (** Requests served from the table. *)
  evicted : int;  (** Worlds dropped by the capacity bound. *)
}

val stats : t -> stats

val metrics_snapshot : t -> Obs.Metrics.snapshot
(** [worldpool.constructed] / [.hits] / [.evicted] / [.resident]
    counters for a [metrics/v1] document. *)
