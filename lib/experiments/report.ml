type t = {
  id : string;
  title : string;
  claim : string;
  tables : (string * Stats.Table.t) list;
  notes : string list;
  claims : Claim.t list;
  seed : int64;
}

let make ~id ~title ~claim ~seed ?(notes = []) ?(claims = []) tables =
  { id; title; claim; tables; notes; claims; seed }

(* The marker [Trial.shortfall_note] embeds in the notes it produces;
   [has_shortfall] keys on it so the CLI's [--strict-shortfall] and the
   note writer cannot drift apart. *)
let shortfall_marker = "attempt cap exhausted"

let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  nl = 0 || at 0

let has_shortfall t =
  List.exists (fun note -> contains_substring note shortfall_marker) t.notes

let render t =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer (Printf.sprintf "=== %s: %s ===\n" t.id t.title);
  Buffer.add_string buffer (Printf.sprintf "Claim: %s\n" t.claim);
  Buffer.add_string buffer (Printf.sprintf "Seed: %Ld\n" t.seed);
  List.iter
    (fun (caption, table) ->
      Buffer.add_string buffer (Printf.sprintf "\n-- %s --\n" caption);
      Buffer.add_string buffer (Stats.Table.render table))
    t.tables;
  if t.notes <> [] then begin
    Buffer.add_string buffer "\nNotes:\n";
    List.iter (fun note -> Buffer.add_string buffer (Printf.sprintf "  * %s\n" note)) t.notes
  end;
  if t.claims <> [] then begin
    Buffer.add_string buffer "\nClaims:\n";
    List.iter
      (fun c ->
        Buffer.add_string buffer
          (Printf.sprintf "  [%s] %s: %s — %s %s\n"
             (if Claim.holds c then "ok" else "FAIL")
             c.Claim.id c.Claim.description (Claim.describe_observed c)
             (Claim.describe_expected c)))
      t.claims
  end;
  Buffer.contents buffer

let render_csv t = List.map (fun (caption, table) -> (caption, Stats.Table.to_csv table)) t.tables
let print t = print_string (render t)
