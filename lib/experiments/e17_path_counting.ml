(* E17 — machine-checking the combinatorial heart of Theorem 3(i).

   The lower-bound proof hinges on |A_k| <= n^k l^{2k} l!, where A_k is
   the set of length-(l+2k) coordinate paths from the ball centre to a
   boundary vertex that stay inside the radius-l Hamming ball. We
   compute |A_k| exactly by dynamic programming and verify the bound
   term by term; we then compare, at parameters where the proof's
   geometric series converges (n l^2 p^2 < 1), three values of the
   Lemma 5 quantity Pr[(v ~ x) in S]:

     Monte-Carlo estimate <= exact-count series + analytic tail
                          <= closed form (lp)^l / (1 - n l^2 p^2).

   The chain validates both the proof's counting step and its analytic
   simplification on concrete instances. *)

let id = "E17"
let title = "Theorem 3(i)'s path-counting lemma, checked exactly"

let claim =
  "|A_k| <= n^k l^{2k} l!, and hence Pr[(v ~ x) in S] <= (lp)^l / (1 - n l^2 p^2); \
   exact walk counts and a Monte-Carlo estimate must respect the chain."

let run ?(quick = false) stream =
  let n = if quick then 8 else 10 in
  let count_radius = 3 in
  (* |A_k| table: the bound holds for any l, so use a roomier ball. *)
  let chain_radius = 2 in
  (* probability chain: needs n l^2 p^2 < 1 *)
  let alpha = 0.9 in
  let p = float_of_int n ** -.alpha in
  let terms = if quick then 4 else 6 in
  let mc_trials = if quick then 500 else 3000 in
  let center = 0 in
  (* Table 1: exact |A_k| vs the proof's bound, radius 3. *)
  let target3 = Routing.Ball_walks.boundary_vertex ~l:count_radius in
  let count_table =
    ref
      (Stats.Table.create
         ~headers:[ "k"; "length"; "exact |A_k|"; "bound n^k l^2k l!"; "ratio" ])
  in
  let max_count_ratio = ref 0.0 in
  for k = 0 to terms - 1 do
    let length = count_radius + (2 * k) in
    let exact =
      Routing.Ball_walks.count_walks ~n ~center ~radius:count_radius ~target:target3
        ~length
    in
    let bound = Routing.Ball_walks.bound_ak ~n ~l:count_radius ~k in
    max_count_ratio := Float.max !max_count_ratio (exact /. bound);
    count_table :=
      Stats.Table.add_row !count_table
        [
          string_of_int k;
          string_of_int length;
          Printf.sprintf "%.0f" exact;
          Printf.sprintf "%.0f" bound;
          Printf.sprintf "%.4f" (exact /. bound);
        ]
  done;
  (* Table 2: the probability chain at radius 2. *)
  let l = chain_radius in
  let target = Routing.Ball_walks.boundary_vertex ~l in
  let series = Routing.Ball_walks.connection_probability_series ~n ~p ~l ~terms in
  let ratio = float_of_int n *. float_of_int (l * l) *. p *. p in
  let tail =
    (* sum_{k >= terms} p^{l+2k} |A_k|  <=  (lp)^l * ratio^terms / (1 - ratio) *)
    ((float_of_int l *. p) ** float_of_int l)
    *. (ratio ** float_of_int terms)
    /. (1.0 -. ratio)
  in
  let closed = Routing.Ball_walks.eta_closed_form ~n ~p ~l in
  let graph = Topology.Hypercube.graph n in
  let member v = Topology.Hypercube.hamming center v <= l in
  let mc =
    Routing.Lower_bound.estimate_eta stream ~trials:mc_trials ~graph ~p ~member
      ~target:center
      ~cut_edge:(target, Topology.Hypercube.flip target (l + 1))
  in
  let mc_lo, mc_hi = Stats.Proportion.wilson_ci mc in
  let chain_table =
    Stats.Table.create ~headers:[ "quantity"; "value" ]
    |> (fun t ->
         Stats.Table.add_row t
           [
             "Monte-Carlo Pr[(v~x) in S] (Wilson 95%)";
             Printf.sprintf "%.5f [%.5f, %.5f]" (Stats.Proportion.estimate mc) mc_lo
               mc_hi;
           ])
    |> (fun t ->
         Stats.Table.add_row t
           [
             Printf.sprintf "exact-count series (%d terms) + analytic tail" terms;
             Printf.sprintf "%.5f" (series +. tail);
           ])
    |> fun t ->
    Stats.Table.add_row t
      [ "closed form (lp)^l / (1 - n l^2 p^2)"; Printf.sprintf "%.5f" closed ]
  in
  let chain_holds = mc_lo <= series +. tail +. 1e-12 && series +. tail <= closed +. 1e-12 in
  let notes =
    [
      Printf.sprintf
        "n = %d; |A_k| table at radius l = %d; probability chain at l = %d with \
         alpha = %.2f (p = %.4f, n l^2 p^2 = %.3f < 1)."
        n count_radius l alpha p ratio;
      Printf.sprintf "Chain MC <= exact series + tail <= closed form: %s."
        (if chain_holds then "HOLDS" else "VIOLATED");
      "The ratio column of the first table shows how loose the proof's counting \
       bound is (it admits non-simple and repeated paths); the proof only needs \
       it finite and summable.";
    ]
  in
  let claims =
    [
      Claim.ceiling ~id:"E17/counting-bound"
        ~description:
          "max exact/bound ratio over k — |A_k| never exceeds n^k l^2k l!"
        ~max:(1.0 +. 1e-9) !max_count_ratio;
      Claim.ceiling ~id:"E17/chain-mc-vs-series"
        ~description:
          "Monte-Carlo lower CI minus (exact series + tail) — the MC estimate \
           respects the counting series"
        ~max:1e-12
        (mc_lo -. (series +. tail));
      Claim.ceiling ~id:"E17/chain-series-vs-closed"
        ~description:
          "(exact series + tail) / closed form — the analytic simplification \
           only loosens the bound"
        ~max:(1.0 +. 1e-9)
        ((series +. tail) /. closed);
    ]
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes ~claims
    [
      ("exact |A_k| vs the proof's bound", !count_table);
      ("the Lemma 5 probability chain", chain_table);
    ]
