(* E18 — Section 1.3, acted out distributedly: on a hypercubic P2P
   overlay with failing links, compare the full protocol stack in the
   synchronous message-passing model:

     - flooding     : latency = percolation distance (optimal), message
                      cost ~ all open edges of the informed region;
     - push gossip  : latency ~ log |V| + spread slowdown, one message
                      per informed node per round;
     - greedy token : one probe-per-hop DHT lookup; succeeds while
                      failures are light, gets trapped as q grows.

   The paper's Section 1.3 conclusion — under heavy faults flooding and
   gossip remain latency-efficient for locating data while routing-based
   exact search fails — becomes three measured columns. *)

let id = "E18"
let title = "Distributed lookup on a faulty overlay: flood vs gossip vs greedy"

let claim =
  "Flooding/gossip stay latency-efficient at any failure rate that keeps the \
   network connected, while the routing-based exact lookup's success probability \
   collapses (Section 1.3)."

let run ?(quick = false) stream =
  let n = if quick then 8 else 11 in
  let trials = if quick then 5 else 20 in
  let qs = if quick then [ 0.2; 0.6 ] else [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7 ] in
  let graph = Topology.Hypercube.graph n in
  let source = 0 in
  let target = Topology.Hypercube.antipode ~n source in
  let table =
    ref
      (Stats.Table.create
         ~headers:
           [
             "q(fail)";
             "flood latency";
             "flood msgs";
             "gossip rounds";
             "greedy success";
             "greedy hops";
           ])
  in
  let per_q = ref [] in
  List.iteri
    (fun index q ->
      let p = 1.0 -. q in
      let substream = Prng.Stream.split stream index in
      let flood_latency = ref Stats.Summary.empty in
      let flood_messages = ref Stats.Summary.empty in
      let gossip_rounds = ref Stats.Summary.empty in
      let greedy_hops = ref Stats.Summary.empty in
      let greedy_successes = ref 0 in
      let completed = ref 0 in
      let attempt = ref 0 in
      while !completed < trials && !attempt < trials * 50 do
        incr attempt;
        let seed = Prng.Coin.derive (Prng.Stream.seed substream) !attempt in
        let world = Worldpool.build graph ~p ~seed in
        match Percolation.Reveal.connected world source target with
        | Percolation.Reveal.Disconnected | Percolation.Reveal.Unknown -> ()
        | Percolation.Reveal.Connected _ ->
            incr completed;
            (* Flood. *)
            let flood = Netsim.Engine.create ~seed world Netsim.Flood.protocol in
            Netsim.Flood.start flood ~source;
            (match
               Netsim.Engine.run flood ~until:(fun e ->
                   Netsim.Flood.informed_at e target <> None)
             with
            | `Stopped _ -> (
                match Netsim.Flood.latency flood ~source ~target with
                | Some latency ->
                    flood_latency :=
                      Stats.Summary.add !flood_latency (float_of_int latency)
                | None -> ())
            | `Quiescent _ | `Out_of_rounds -> ());
            flood_messages :=
              Stats.Summary.add !flood_messages
                (float_of_int
                   (Netsim.Metrics.messages_sent (Netsim.Engine.metrics flood)));
            (* Gossip. *)
            let gossip = Netsim.Engine.create ~seed world Netsim.Gossip.protocol in
            Netsim.Gossip.start gossip ~source;
            (match
               Netsim.Engine.run ~max_rounds:2000 gossip ~until:(fun e ->
                   Netsim.Gossip.informed_at e target <> None)
             with
            | `Stopped rounds ->
                gossip_rounds := Stats.Summary.add !gossip_rounds (float_of_int rounds)
            | `Quiescent _ | `Out_of_rounds -> ());
            (* Greedy token. *)
            let greedy =
              Netsim.Engine.create ~seed world
                (Netsim.Greedy_forward.protocol ~target
                   ~metric:Topology.Hypercube.hamming)
            in
            Netsim.Greedy_forward.start greedy ~source;
            (match
               Netsim.Engine.run greedy ~until:(fun e ->
                   Netsim.Greedy_forward.arrived e ~target <> None)
             with
            | `Stopped _ -> (
                incr greedy_successes;
                match Netsim.Greedy_forward.hops greedy ~target with
                | Some hops -> greedy_hops := Stats.Summary.add !greedy_hops (float_of_int hops)
                | None -> ())
            | `Quiescent _ | `Out_of_rounds -> ())
      done;
      per_q :=
        ( (if !completed = 0 then nan
           else float_of_int !greedy_successes /. float_of_int !completed),
          (if Stats.Summary.count !flood_latency = 0 then nan
           else Stats.Summary.mean !flood_latency),
          (if Stats.Summary.count !gossip_rounds = 0 then nan
           else Stats.Summary.mean !gossip_rounds) )
        :: !per_q;
      let mean_or_dash s =
        if Stats.Summary.count s = 0 then "-"
        else Printf.sprintf "%.1f" (Stats.Summary.mean s)
      in
      table :=
        Stats.Table.add_row !table
          [
            Printf.sprintf "%.2f" q;
            mean_or_dash !flood_latency;
            mean_or_dash !flood_messages;
            mean_or_dash !gossip_rounds;
            Printf.sprintf "%d/%d" !greedy_successes !completed;
            mean_or_dash !greedy_hops;
          ])
    qs;
  let notes =
    [
      Printf.sprintf
        "Hypercubic overlay H_%d (%d nodes), antipodal lookups, conditioned on \
         connectivity, %d trials per failure rate; synchronous message-passing \
         simulation (lib/netsim)."
        n graph.Topology.Graph.vertex_count trials;
      "Flood latency tracks the percolation distance (grows mildly with q); its \
       message column is the price. Gossip pays a log-factor latency with linear \
       per-round traffic. The greedy token is probe-optimal when it succeeds, but \
       its success column collapses as q grows — the paper's Section 1.3 story.";
    ]
  in
  let claims =
    match List.rev !per_q with
    | [] -> []
    | (greedy_first, _, gossip_first) :: _ as rows ->
        let greedy_last, flood_last, gossip_last =
          List.nth rows (List.length rows - 1)
        in
        [
          Claim.decreasing ~id:"E18/greedy-collapse"
            ~description:
              "greedy-token success rate does not recover as q grows"
            [ greedy_first; greedy_last ];
          Claim.band ~id:"E18/flood-latency"
            ~description:
              "flood latency at the largest q stays within 2x the diameter \
               (latency = percolation distance)"
            ~lo:(float_of_int n)
            ~hi:(2.0 *. float_of_int n)
            flood_last;
          Claim.increasing ~id:"E18/gossip-slowdown"
            ~description:"gossip rounds grow (gently) with the failure rate"
            [ gossip_first; gossip_last ];
        ]
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes ~claims
    [ ("distributed lookup under growing failure rates", !table) ]
