(* E20 — the two pillars Theorem 3(ii)'s proof borrows from
   Angel–Benjamini [3], measured with the operational good-vertex
   definition of Routing.Good_vertex:

   (1) a vertex is good with probability 1 - exp(-c n^{1-alpha}):
       the good fraction should rise towards 1 as n grows, faster for
       smaller alpha;
   (2) good vertices at fault-free distance <= 3 have percolation
       distance at most l(alpha) = O((1 - 2 alpha)^{-1}), uniformly in
       n: the observed maximum over sampled good pairs should stay flat
       in n and grow as alpha approaches 1/2. *)

let id = "E20"
let title = "Good vertices: the scaffolding of Theorem 3(ii)"

let claim =
  "(1) Pr[vertex good] = 1 - exp(-c n^{1-alpha}); (2) w.h.p. all good pairs at \
   distance <= 3 have percolation distance <= l(alpha), uniformly in n."

let run ?(quick = false) stream =
  let alphas = if quick then [ 0.30 ] else [ 0.30; 0.40; 0.45 ] in
  let sizes = if quick then [ 10 ] else [ 10; 12; 14 ] in
  let vertex_samples = if quick then 100 else 400 in
  let pair_samples = if quick then 30 else 100 in
  let worlds = if quick then 2 else 4 in
  let table =
    ref
      (Stats.Table.create
         ~headers:
           [
             "alpha";
             "n";
             "p";
             "good fraction";
             "mean D(good pair)";
             "max D(good pair)";
           ])
  in
  let min_good = ref infinity in
  let max_pair_distance = ref 0.0 in
  List.iteri
    (fun alpha_index alpha ->
      List.iteri
        (fun size_index n ->
          let p = float_of_int n ** -.alpha in
          let graph = Topology.Hypercube.graph n in
          let substream =
            Prng.Stream.split stream ((alpha_index * 100) + size_index)
          in
          let good = ref 0 and sampled = ref 0 in
          let distances = ref Stats.Summary.empty in
          for w = 1 to worlds do
            let seed = Prng.Coin.derive (Prng.Stream.seed substream) w in
            let world = Worldpool.build graph ~p ~seed in
            let fraction =
              Routing.Good_vertex.fraction_good
                (Prng.Stream.split substream (10 + w))
                world ~samples:vertex_samples
            in
            good := !good + fraction.Stats.Proportion.successes;
            sampled := !sampled + fraction.Stats.Proportion.trials;
            (* Sample pairs at fault-free distance exactly 3. *)
            let pair_stream = Prng.Stream.split substream (20 + w) in
            for _ = 1 to pair_samples do
              let u = Prng.Stream.int_in pair_stream graph.Topology.Graph.vertex_count in
              let v =
                (* flip three distinct random bits *)
                let bits = Prng.Sample.subset_indices pair_stream ~n ~k:3 in
                Array.fold_left Topology.Hypercube.flip u bits
              in
              match Routing.Good_vertex.good_pair_distance world u v with
              | `Distance d -> distances := Stats.Summary.add !distances (float_of_int d)
              | `Not_good | `Disconnected -> ()
            done
          done;
          min_good :=
            Float.min !min_good (float_of_int !good /. float_of_int !sampled);
          if Stats.Summary.count !distances > 0 then
            max_pair_distance :=
              Float.max !max_pair_distance (Stats.Summary.max !distances);
          table :=
            Stats.Table.add_row !table
              [
                Printf.sprintf "%.2f" alpha;
                string_of_int n;
                Printf.sprintf "%.4f" p;
                Printf.sprintf "%.3f" (float_of_int !good /. float_of_int !sampled);
                (if Stats.Summary.count !distances = 0 then "-"
                 else Printf.sprintf "%.1f" (Stats.Summary.mean !distances));
                (if Stats.Summary.count !distances = 0 then "-"
                 else Printf.sprintf "%.0f" (Stats.Summary.max !distances));
              ])
        sizes)
    alphas;
  let notes =
    [
      Printf.sprintf
        "%d worlds per cell, %d vertex samples and %d distance-3 pairs per world; \
         good = open degree >= np/2 and radius-2 open ball >= (np)^2/4 (operational \
         variant of [3]'s condition, documented in Routing.Good_vertex)."
        worlds vertex_samples pair_samples;
      "Expect the good fraction to increase with n at fixed alpha (claim 1) and \
       the max good-pair distance to stay a small constant across n while growing \
       with alpha (claim 2) — the two inputs the segment router's n^{l+1} bound \
       needs.";
    ]
  in
  let claims =
    [
      Claim.floor ~id:"E20/good-density"
        ~description:
          "minimum good-vertex fraction over all (alpha, n) cells — good \
           vertices dominate below alpha = 1/2"
        ~min:0.5 !min_good;
      Claim.ceiling ~id:"E20/good-pair-distance"
        ~description:
          "maximum percolation distance over sampled good pairs at fault-free \
           distance 3 — bounded uniformly in n, as Theorem 3(ii) needs"
        ~max:12.0 !max_pair_distance;
    ]
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes ~claims
    [ ("good-vertex density and good-pair distances on H_{n,p}", !table) ]
