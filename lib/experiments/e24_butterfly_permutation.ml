(* E24 — permutation routing on the faulty butterfly, the setting of
   Cole–Maggs–Sitaraman (related work [10]): "a faulty butterfly network
   can perform efficient permutation routing even if each node or edge
   fails with some constant probability."

   Our protocol is deliberately simple (bit-fixing with a one-link
   detour and a pass budget, store-and-forward links of capacity 1), so
   it degrades where CMS's redundant-path routing would not — the
   interesting measurements are how throughput and latency bend as the
   edge failure rate q grows, and what congestion (capacity 1 vs
   unbounded) costs on top. *)

let id = "E24"
let title = "Faulty butterfly: permutation routing under congestion (CMS setting)"

let claim =
  "Random permutation routing on BF(n) stays near-complete with O(n) latency at \
   small constant fault rates; naive bit-fixing (unlike CMS's algorithm) loses \
   packets as q grows, and link congestion adds only an additive latency term."

let run ?(quick = false) stream =
  let n = if quick then 5 else 7 in
  let passes = 4 in
  let trials = if quick then 3 else 6 in
  let qs = if quick then [ 0.0; 0.10 ] else [ 0.0; 0.02; 0.05; 0.10; 0.20 ] in
  let capacities = [ (None, "unbounded"); (Some 1, "1/link/round") ] in
  let rows = 1 lsl n in
  let graph = Topology.Butterfly.graph n in
  let table =
    ref
      (Stats.Table.create
         ~headers:
           [ "q(fail)"; "capacity"; "delivered"; "mean latency"; "max latency"; "dropped" ])
  in
  let cells = ref [] in
  List.iteri
    (fun q_index q ->
      List.iteri
        (fun c_index (capacity, capacity_label) ->
          let substream = Prng.Stream.split stream ((q_index * 10) + c_index) in
          let delivered = ref 0 and total = ref 0 and dropped = ref 0 in
          let latency = ref Stats.Summary.empty in
          for trial = 1 to trials do
            let seed = Prng.Coin.derive (Prng.Stream.seed substream) trial in
            let world = Worldpool.build graph ~p:(1.0 -. q) ~seed in
            let engine =
              Netsim.Engine.create ?link_capacity:capacity world
                (Netsim.Butterfly_route.protocol ~n)
            in
            Netsim.Butterfly_route.inject_permutation
              (Prng.Stream.split substream (100 + trial))
              engine ~n ~passes;
            (match Netsim.Engine.run ~max_rounds:2000 engine ~until:(fun _ -> false) with
            | `Quiescent _ -> ()
            | `Stopped _ | `Out_of_rounds -> ());
            total := !total + rows;
            delivered := !delivered + Netsim.Butterfly_route.delivered engine;
            dropped := !dropped + Netsim.Butterfly_route.dropped engine;
            List.iter
              (fun r -> latency := Stats.Summary.add !latency (float_of_int r))
              (Netsim.Butterfly_route.latencies engine)
          done;
          cells :=
            ( (q_index, c_index),
              ( float_of_int !delivered /. float_of_int !total,
                if Stats.Summary.count !latency = 0 then nan
                else Stats.Summary.mean !latency ) )
            :: !cells;
          table :=
            Stats.Table.add_row !table
              [
                Printf.sprintf "%.2f" q;
                capacity_label;
                Printf.sprintf "%d/%d" !delivered !total;
                (if Stats.Summary.count !latency = 0 then "-"
                 else Printf.sprintf "%.1f" (Stats.Summary.mean !latency));
                (if Stats.Summary.count !latency = 0 then "-"
                 else Printf.sprintf "%.0f" (Stats.Summary.max !latency));
                string_of_int !dropped;
              ])
        capacities)
    qs;
  let notes =
    [
      Printf.sprintf
        "BF(%d): %d rows, %d nodes; one packet per row to a uniform permutation \
         target; bit-fixing with one-link detours and a %d-pass budget; %d \
         world+permutation trials per cell."
        n rows graph.Topology.Graph.vertex_count passes trials;
      "Read q = 0 rows first: capacity 1 vs unbounded isolates pure congestion — \
       at one packet per row the load is light, so congestion only stretches the \
       latency tail (max grows while delivery stays 100%). Down the columns, \
       faults eat throughput: every lost packet met a node whose both up-links \
       were dead or ran out of passes — CMS's theorem says smarter routing \
       (redundant paths, not our one detour) removes almost all of that loss at \
       constant q.";
    ]
  in
  let claims =
    (* Capacity index 0 is the unbounded column; q index 0 is q = 0. *)
    match
      ( List.assoc_opt (0, 0) !cells,
        List.assoc_opt (List.length qs - 1, 0) !cells )
    with
    | Some (frac0, lat0), Some (frac_last, _) ->
        [
          Claim.band ~id:"E24/fault-free-delivery"
            ~description:
              "delivered fraction at q = 0 (unbounded links) — the fault-free \
               butterfly routes every packet"
            ~lo:0.999 ~hi:1.0001 frac0;
          Claim.band ~id:"E24/fault-free-latency"
            ~description:
              (Printf.sprintf
                 "mean latency at q = 0 (unbounded links) sits at the \
                  bit-fixing pipeline depth ~ n+1 on BF(%d)"
                 n)
            ~lo:(float_of_int n)
            ~hi:(float_of_int n +. 3.0)
            lat0;
          Claim.decreasing ~id:"E24/delivery-degrades"
            ~description:
              "delivered fraction (unbounded links) does not recover from \
               q = 0 to the largest q — naive bit-fixing loses packets"
            [ frac0; frac_last ];
        ]
    | _ -> []
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes ~claims
    [ ("permutation routing on BF(n) under faults and congestion", !table) ]
