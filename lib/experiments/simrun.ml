(* The generic deterministic runner: a chunked map over an index
   space whose cells are plain float vectors. Experiments that are not
   routing-trial shaped (netsim sweeps, churned simulations) route
   their per-trial work through here to inherit the whole PR 5
   machinery — parallel dispatch with index-ordered results,
   supervised retries, fault injection, and checkpoint/resume — with
   the same byte-reproducibility argument as [Trial.run_engine]:
   [compute] must be a pure function of its index (derive all
   randomness from per-index stream splits), so chunk results are pure
   in [(key, chunk)] and neither scheduling, retries, nor restores can
   show in the output. *)

let chunk_size = 4

let digest ~key ~count =
  Checkpoint.digest_key
    (Printf.sprintf "simrun;%s;count=%d;chunk=%d" key count chunk_size)

let run ?jobs ~key ~count compute =
  if count < 0 then invalid_arg "Simrun.run: negative count";
  let n_chunks = (count + chunk_size - 1) / chunk_size in
  let chunk_len c = Stdlib.min count ((c + 1) * chunk_size) - (c * chunk_size) in
  let work c =
    Array.init (chunk_len c) (fun k ->
        if Engine_par.Supervisor.watchdog_armed () then
          Engine_par.Supervisor.poll ();
        (compute ((c * chunk_size) + k) : float array))
  in
  let until _ = false in
  let plan = Faultsim.Plan.ambient () in
  let supervised =
    Engine_par.Supervisor.armed () || plan <> None || Checkpoint.active ()
  in
  let chunks =
    if not supervised then
      Engine_par.Pool.collect_prefix ?jobs ~limit:n_chunks ~until work
    else begin
      let work =
        if not (Checkpoint.active ()) then work
        else begin
          let key = digest ~key ~count in
          fun c ->
            match Checkpoint.lookup_values ~key ~chunk:c with
            | Some stored -> stored
            | None ->
                let cells = work c in
                Checkpoint.store_values ~key ~chunk:c cells;
                cells
        end
      in
      let policy =
        Option.value
          (Engine_par.Supervisor.current_policy ())
          ~default:Engine_par.Supervisor.default_policy
      in
      let inject =
        match plan with
        | Some plan ->
            fun ~chunk ~attempt -> Faultsim.Plan.injector plan ~chunk ~attempt
        | None -> fun ~chunk:_ ~attempt:_ -> Engine_par.Supervisor.Pass
      in
      let outcomes, _summary =
        Engine_par.Supervisor.collect_prefix ?jobs ~policy ~inject
          ~limit:n_chunks ~until work
      in
      (* A quarantined chunk keeps its slot (positional alignment with
         the index space) but its cells are empty vectors; callers skip
         them, and the CLI surfaces the loss via faults/v1 + exit 5
         from the supervisor's global summary. *)
      Array.mapi
        (fun c outcome ->
          match outcome with
          | Engine_par.Supervisor.Completed cells -> cells
          | Engine_par.Supervisor.Quarantined _ ->
              Array.make (chunk_len c) [||])
        outcomes
    end
  in
  Array.concat (Array.to_list chunks)
