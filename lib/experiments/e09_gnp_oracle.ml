(* E9 — Theorem 11: oracle routing on G_{n,p} costs Theta(n^{3/2}) — a
   sqrt(n) improvement over the local bound of Theorem 10. Same sweep as
   E8 with the bidirectional oracle router; the report contrasts the two
   fitted exponents. *)

let id = "E9"
let title = "G(n,p) oracle routing is Theta(n^1.5) (Theorem 11)"

let claim =
  "The bidirectional oracle router on G_{n,c/n} has average complexity O(n^{3/2}), \
   and no algorithm beats a*n^{3/2} except with probability O(a^{2/3}); oracle \
   routing beats local routing by exactly sqrt(n)."

let run ?(quick = false) stream =
  let trials = if quick then 4 else 12 in
  let table =
    ref
      (Stats.Table.create
         ~headers:
           [ "n"; "p=c/n"; "oracle mean"; "probes/n^1.5"; "local/oracle ratio"; "P[u~v]" ])
  in
  let oracle_points = ref [] in
  let ratios = ref [] in
  List.iteri
    (fun index n ->
      let p = E08_gnp_local.c /. float_of_int n in
      let graph = Topology.Complete.graph n in
      let substream = Prng.Stream.split stream index in
      let oracle_result =
        Trial.run
          (Prng.Stream.split substream 1)
          ~trials
          (Trial.spec ~graph ~p ~source:0 ~target:(n - 1)
             (fun _rand ~source:_ ~target:_ -> Routing.Bidirectional.router))
      in
      let local_result =
        Trial.run
          (Prng.Stream.split substream 2)
          ~trials
          (Trial.spec ~graph ~p ~source:0 ~target:(n - 1)
             (fun _rand ~source:_ ~target:_ -> Routing.Local_bfs.router))
      in
      let oracle_mean = Trial.mean_probes_lower_bound oracle_result in
      let local_mean = Trial.mean_probes_lower_bound local_result in
      let n15 = float_of_int n ** 1.5 in
      oracle_points := (float_of_int n, oracle_mean) :: !oracle_points;
      ratios := (float_of_int n, local_mean /. oracle_mean) :: !ratios;
      table :=
        Stats.Table.add_row !table
          [
            string_of_int n;
            Printf.sprintf "%.4f" p;
            Printf.sprintf "%.0f" oracle_mean;
            Printf.sprintf "%.3f" (oracle_mean /. n15);
            Printf.sprintf "%.1f" (local_mean /. oracle_mean);
            Printf.sprintf "%.2f"
              (Stats.Proportion.estimate oracle_result.Trial.connection);
          ])
    (E08_gnp_local.sizes ~quick);
  let claims = ref [] in
  (match List.rev !ratios with
  | _ :: _ as ratio_list ->
      let _, last_ratio = List.nth ratio_list (List.length ratio_list - 1) in
      claims :=
        [
          Claim.floor ~id:"E9/oracle-beats-local"
            ~description:
              "local/oracle mean-probe ratio at the largest n (oracle is \
               cheaper)"
            ~min:1.0 last_ratio;
        ]
  | [] -> ());
  let notes =
    let base =
      [
        Printf.sprintf "c = %.1f; same pairs and sizes as E8 for the ratio column."
          E08_gnp_local.c;
      ]
    in
    if List.length !oracle_points >= 3 then begin
      let oracle_fit = Stats.Regression.power_law (List.rev !oracle_points) in
      let ratio_fit = Stats.Regression.power_law (List.rev !ratios) in
      (* Fresh split index 9000 — the trial loop uses 0..|sizes|-1. *)
      let ci =
        Stats.Regression.power_law_ci
          (Prng.Stream.split stream 9000)
          (List.rev !oracle_points)
      in
      claims :=
        !claims
        @ [
            Claim.band ~id:"E9/oracle-exponent"
              ~description:
                "fitted oracle exponent (Theorem 11 predicts 1.5)" ~lo:1.2
              ~hi:1.8 oracle_fit.Stats.Regression.slope;
            Claim.floor ~id:"E9/oracle-fit-r2"
              ~description:"power-law fit quality of the oracle column"
              ~min:0.9 oracle_fit.Stats.Regression.r_squared;
            Claim.contains ~id:"E9/oracle-exponent-ci"
              ~description:
                "bootstrap 95% CI of the oracle exponent contains 1.5"
              ~lo:ci.Stats.Regression.lo ~hi:ci.Stats.Regression.hi 1.5;
            Claim.floor ~id:"E9/ratio-exponent"
              ~description:
                "local/oracle ratio grows with n (Thms 10+11 predict \
                 exponent 0.5)"
              ~min:0.2 ratio_fit.Stats.Regression.slope;
          ];
      [
        Printf.sprintf
          "Oracle exponent %.2f (R^2 = %.3f), bootstrap 95%% CI [%.2f, %.2f] — \
           Theorem 11 predicts 1.5."
          oracle_fit.Stats.Regression.slope oracle_fit.Stats.Regression.r_squared
          ci.Stats.Regression.lo ci.Stats.Regression.hi;
        Printf.sprintf
          "local/oracle ratio grows as n^%.2f — Theorems 10+11 predict sqrt(n), \
           exponent 0.5."
          ratio_fit.Stats.Regression.slope;
      ]
      @ base
    end
    else begin
      (match List.rev !oracle_points with
      | (n0, m0) :: _ :: _ as pts ->
          let n1, m1 = List.nth pts (List.length pts - 1) in
          claims :=
            !claims
            @ [
                (* Two noisy sizes in quick mode: the endpoint estimate is
                   only loosely pinned. *)
                Claim.band ~id:"E9/oracle-exponent"
                  ~description:
                    "endpoint oracle exponent (Theorem 11 predicts 1.5; \
                     2-point quick estimate)"
                  ~lo:0.8 ~hi:3.0
                  (log (m1 /. m0) /. log (n1 /. n0));
              ]
      | _ -> ());
      base
    end
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes
    ~claims:!claims
    [ ("bidirectional oracle router on G(n, c/n)", !table) ]
