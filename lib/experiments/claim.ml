type check =
  | Band of { value : float; lo : float; hi : float }
  | Floor of { value : float; min_value : float }
  | Ceiling of { value : float; max_value : float }
  | Increasing of float list
  | Decreasing of float list
  | Contains of { lo : float; hi : float; target : float }

type t = { id : string; experiment : string; description : string; check : check }

let experiment_of_id id =
  match String.index_opt id '/' with
  | Some i -> String.sub id 0 i
  | None -> id

let make ~id ~description check =
  { id; experiment = experiment_of_id id; description; check }

let band ~id ~description ~lo ~hi value =
  make ~id ~description (Band { value; lo; hi })

let floor ~id ~description ~min value =
  make ~id ~description (Floor { value; min_value = min })

let ceiling ~id ~description ~max value =
  make ~id ~description (Ceiling { value; max_value = max })

let increasing ~id ~description values = make ~id ~description (Increasing values)
let decreasing ~id ~description values = make ~id ~description (Decreasing values)

let contains ~id ~description ~lo ~hi target =
  make ~id ~description (Contains { lo; hi; target })

let finite = Float.is_finite

let rec nondecreasing = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> a <= b && nondecreasing rest

let holds t =
  match t.check with
  | Band { value; lo; hi } -> finite value && lo <= value && value <= hi
  | Floor { value; min_value } -> finite value && value >= min_value
  | Ceiling { value; max_value } -> finite value && value <= max_value
  | Increasing values ->
      values <> [] && List.for_all finite values && nondecreasing values
  | Decreasing values ->
      values <> []
      && List.for_all finite values
      && nondecreasing (List.rev values)
  | Contains { lo; hi; target } ->
      finite lo && finite hi && lo <= target && target <= hi

(* The observed numbers a baseline records; everything [holds] depends on
   except the (static, code-declared) bounds. *)
let values t =
  match t.check with
  | Band { value; _ } | Floor { value; _ } | Ceiling { value; _ } -> [ value ]
  | Increasing values | Decreasing values -> values
  | Contains { lo; hi; _ } -> [ lo; hi ]

let kind_name t =
  match t.check with
  | Band _ -> "band"
  | Floor _ -> "floor"
  | Ceiling _ -> "ceiling"
  | Increasing _ -> "increasing"
  | Decreasing _ -> "decreasing"
  | Contains _ -> "contains"

let fmt = Printf.sprintf "%.6g"
let fmt_list values = String.concat " " (List.map fmt values)

let describe_observed t = fmt_list (values t)

let describe_expected t =
  match t.check with
  | Band { lo; hi; _ } -> Printf.sprintf "in [%s, %s]" (fmt lo) (fmt hi)
  | Floor { min_value; _ } -> Printf.sprintf ">= %s" (fmt min_value)
  | Ceiling { max_value; _ } -> Printf.sprintf "<= %s" (fmt max_value)
  | Increasing _ -> "nondecreasing"
  | Decreasing _ -> "nonincreasing"
  | Contains { target; _ } -> Printf.sprintf "contains %s" (fmt target)

let to_json t =
  let open Obs.Json in
  let bounds =
    match t.check with
    | Band { lo; hi; _ } -> [ ("lo", Float lo); ("hi", Float hi) ]
    | Floor { min_value; _ } -> [ ("min", Float min_value) ]
    | Ceiling { max_value; _ } -> [ ("max", Float max_value) ]
    | Increasing _ | Decreasing _ -> []
    | Contains { target; _ } -> [ ("target", Float target) ]
  in
  Obj
    ([
       ("schema", String "claim/v1");
       ("id", String t.id);
       ("experiment", String t.experiment);
       ("description", String t.description);
       ("kind", String (kind_name t));
       ("values", List (List.map (fun v -> Float v) (values t)));
     ]
    @ bounds
    @ [ ("holds", Bool (holds t)) ])
