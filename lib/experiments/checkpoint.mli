(** Checkpoint/resume for trial campaigns — the [checkpoint/v1] journal.

    A campaign killed at chunk 900 of 1000 should not recompute the
    first 900. The trial engine streams every completed chunk's cells
    to an append-only JSONL journal as it finishes; a resumed run looks
    each chunk up before computing it and replays the stored cells
    through the same accumulator fold, so the final report is
    byte-identical to an uninterrupted run.

    Correctness rests on two facts:

    - chunk results are pure functions of [(spec, root seed, chunk)],
      so a restored chunk equals the chunk a fresh run would compute;
    - journal entries are keyed by a digest of everything those
      functions depend on ({!Trial} builds the canonical string:
      topology, p, endpoints, router, budget, reveal limit, root seed,
      trials, attempt cap, chunk size — everything {e except} the job
      count, which chunk results do not depend on). A resume with any
      parameter changed simply misses and recomputes.

    The journal is append-only with a per-line flush, so a [kill -9]
    can lose at most the line being written; the loader tolerates a
    torn final line (and skips anything unparseable) rather than
    failing the resume. Restored cells carry no trace records and empty
    metric snapshots — report bytes are unaffected, but a traced or
    metered resumed run only covers the chunks it actually recomputed.

    Like the fault plan and the supervisor policy, the checkpoint is
    ambient process state installed by the CLI ({!configure}) and
    picked up by {!Trial} — no parameter threading through experiment
    signatures. *)

type cell =
  | Rejected
  | Accepted of { distance : int; outcome : Routing.Outcome.t }
      (** Mirrors [Trial]'s attempt verdict. A restored [Found] path is
          synthetic — only its length survives serialization, which is
          all the statistics consume. *)

val file : dir:string -> string
(** [dir/checkpoint.jsonl]. *)

val configure : dir:string -> resume:bool -> (unit, string) result
(** Activate checkpointing into [dir] (created as needed). With
    [resume] the existing journal is loaded (tolerantly) and appended
    to; without it the journal is truncated. Fault and restore counters
    reset. *)

val deconfigure : unit -> unit
(** Close the journal and deactivate. Safe when inactive. *)

val active : unit -> bool

val digest_key : string -> string
(** Hex digest of a canonical config string — the journal key. *)

val lookup : key:string -> chunk:int -> cell array option
(** The stored cells for [(key, chunk)], if the journal has them.
    Counts a restore on hit. *)

val store : key:string -> chunk:int -> cell array -> unit
(** Append one chunk line and flush it. No-op when inactive. When a
    kill threshold is set and this append reaches it, the process
    exits immediately with code 137 — [Unix._exit], no cleanup — the
    deterministic stand-in for [kill -9] in resume tests. *)

val lookup_values : key:string -> chunk:int -> float array array option
(** Like {!lookup} for {e value chunks} — the generic simulation
    runner's cells, one float array per work item (see {!Simrun}).
    The two cell kinds share the journal file and counters but not
    keyspaces: a [lookup_values] never answers from a {!store}d
    chunk. *)

val store_values : key:string -> chunk:int -> float array array -> unit
(** Like {!store} for value chunks. Values are journaled as IEEE-754
    bit patterns, so a restored cell is bit-identical to the computed
    one — decimal formatting would break byte-reproducible resumes.
    Counts against the same kill threshold as {!store}. *)

val set_kill_after : int option -> unit
(** Install the [Die_after_chunks] threshold from a fault plan:
    hard-kill the process after that many {!store} appends. *)

val restored : unit -> int
(** Chunks served from the journal since {!configure}. *)

val appended : unit -> int
(** Chunks appended since {!configure}. *)

val metrics_snapshot : unit -> Obs.Metrics.snapshot
(** [checkpoint.chunks.restored] / [checkpoint.chunks.appended], for
    [--metrics-out]. Operational counters: they describe this process's
    work split, not the (schedule-independent) results. *)
