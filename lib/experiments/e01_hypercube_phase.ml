(* E1 — Theorem 3: the routing-complexity phase transition of the
   hypercube at p = n^(-1/2).

   Fix n, sweep alpha, route between antipodal vertices of H_{n,p} with
   p = n^(-alpha), conditioned on connectivity. For alpha < 1/2 the
   segment router stays polynomial; for alpha > 1/2 every local router
   blows up (the probe budget acts as the detector: censored trials mean
   "exponential regime"). *)

let id = "E1"
let title = "Hypercube routing phase transition (Theorem 3)"

let claim =
  "Local routing on H_{n,p}, p = n^-alpha: poly(n) probes for alpha < 1/2, \
   exp(Omega(n^beta)) probes for alpha > 1/2 — the transition sits at alpha = 1/2, \
   not at the connectivity threshold."

let alphas ~quick =
  if quick then [ 0.30; 0.70 ]
  else [ 0.15; 0.25; 0.35; 0.45; 0.55; 0.65; 0.75; 0.90 ]

let run ?(quick = false) stream =
  let n = if quick then 10 else 14 in
  let trials = if quick then 5 else 25 in
  let budget = if quick then 4_000 else 40_000 in
  let graph = Topology.Hypercube.graph n in
  let source = 0 in
  let target = Topology.Hypercube.antipode ~n source in
  let segment_router _rand ~source ~target =
    Routing.Path_follow.hypercube ~n ~source ~target
  in
  let greedy_router _rand ~source:_ ~target:_ = Routing.Greedy.router in
  (* (alpha, segment censored fraction, P[u~v]) per row, for the claims. *)
  let cells = ref [] in
  (* One attempt stream for the whole sweep: every alpha reruns the same
     attempt seeds at its own p = n^-alpha, so the rows are
     monotone-coupled along the alpha axis (higher alpha = lower p =
     subset of the same open edges, per attempt) — trend claims across
     alpha compare the same samples, not fresh draws. Both routers
     already share the stream, so they keep seeing identical worlds. *)
  let routing_stream = Prng.Stream.split stream 1 in
  let table, shortfalls =
    List.fold_left
      (fun (table, shortfalls) alpha ->
        let p = float_of_int n ** -.alpha in
        let run_router router =
          Trial.run routing_stream ~trials
            (Trial.spec ~budget ~graph ~p ~source ~target router)
        in
        let segment = run_router segment_router in
        let greedy = run_router greedy_router in
        let cell result =
          match Trial.median_observation result with
          | None -> "-"
          | Some (Stats.Censored.Exact v) -> Printf.sprintf "%.0f" v
          | Some (Stats.Censored.At_least v) -> Printf.sprintf ">=%.0f" v
        in
        let censored result =
          Printf.sprintf "%d/%d"
            (Stats.Censored.censored_count result.Trial.observations)
            (Stats.Censored.count result.Trial.observations)
        in
        let censored_fraction result =
          let total = Stats.Censored.count result.Trial.observations in
          if total = 0 then nan
          else
            float_of_int (Stats.Censored.censored_count result.Trial.observations)
            /. float_of_int total
        in
        cells :=
          ( alpha,
            censored_fraction segment,
            Stats.Proportion.estimate segment.Trial.connection )
          :: !cells;
        let row =
          [
            Printf.sprintf "%.2f" alpha;
            Printf.sprintf "%.4f" p;
            cell segment;
            censored segment;
            cell greedy;
            censored greedy;
            Printf.sprintf "%.2f" (Stats.Proportion.estimate segment.Trial.connection);
            Printf.sprintf "%.0f" (Stats.Summary.mean segment.Trial.chemical_distances);
          ]
        in
        let shortfalls =
          List.filter_map Fun.id
            [
              Trial.shortfall_note ~label:(Printf.sprintf "segment alpha=%.2f" alpha)
                segment;
              Trial.shortfall_note ~label:(Printf.sprintf "greedy alpha=%.2f" alpha)
                greedy;
            ]
          @ shortfalls
        in
        (Stats.Table.add_row table row, shortfalls))
      ( Stats.Table.create
          ~headers:
            [
              "alpha";
              "p";
              "segment med";
              "seg cens";
              "greedy med";
              "grd cens";
              "P[u~v]";
              "D(u,v)";
            ],
        [] )
      (alphas ~quick)
    |> fun (table, shortfalls) -> (table, List.rev shortfalls)
  in
  let notes =
    [
      Printf.sprintf
        "n = %d, antipodal pair, budget = %d distinct probes, %d conditioned trials \
         per alpha."
        n budget trials;
      "Expected shape: medians stay polynomial (and uncensored) for alpha < 1/2; \
       censored counts jump to ~100% once alpha > 1/2, while P[u~v] stays positive — \
       short paths exist but cannot be found locally.";
    ]
    @ shortfalls
  in
  let claims =
    match List.rev !cells with
    | [] -> []
    | ((_, cens_first, conn_first) :: _ as cells) ->
        let _, cens_last, conn_last = List.nth cells (List.length cells - 1) in
        [
          Claim.ceiling ~id:"E1/subcritical-censoring"
            ~description:
              (Printf.sprintf
                 "segment censored fraction at alpha=%.2f (< 1/2: polynomial \
                  regime)"
                 (let a, _, _ = List.hd cells in
                  a))
            ~max:0.3 cens_first;
          Claim.increasing ~id:"E1/censoring-onset"
            ~description:
              "segment censoring does not decrease from the smallest to the \
               largest alpha"
            [ cens_first; cens_last ];
          Claim.floor ~id:"E1/subcritical-connectivity"
            ~description:"P[u~v] at the smallest alpha (well-connected regime)"
            ~min:0.5 conn_first;
          Claim.floor ~id:"E1/supercritical-connectivity"
            ~description:
              "P[u~v] stays positive at the largest alpha — the transition is \
               not a connectivity artifact (deep in the hard regime the pair \
               is rarely, but not never, connected)"
            ~min:0.05 conn_last;
        ]
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes ~claims
    [ (Printf.sprintf "H_%d antipodal routing vs alpha" n, table) ]
