(** Machine-checkable experiment claims ([claim/v1]).

    EXPERIMENTS.md's verdict column, as data: each experiment declares the
    paper-facing assertions its report supports — a fitted exponent inside
    a band, an R² floor, a monotone trend, a bootstrap CI containing the
    predicted exponent — as [t] values computed from the same numbers the
    report tables print. The verdict engine ([lib/verdict]) evaluates them
    ([holds] = the paper's claim survives) and compares [values] against a
    committed baseline to detect drift: a refactor that bends a measured
    number without breaking the band.

    Bounds are declared in code per experiment (calibrated against the
    hand-recorded EXPERIMENTS.md full-run values and the quick-mode
    output); observed values come from the run, so claims are
    byte-deterministic in (seed, mode) like the reports themselves. *)

type check =
  | Band of { value : float; lo : float; hi : float }
      (** [lo <= value <= hi] — exponents, rates, ratios. *)
  | Floor of { value : float; min_value : float }
      (** [value >= min_value] — R² floors, success rates. *)
  | Ceiling of { value : float; max_value : float }
      (** [value <= max_value] — error bounds, censoring rates. *)
  | Increasing of float list  (** Nondecreasing sequence. *)
  | Decreasing of float list  (** Nonincreasing sequence. *)
  | Contains of { lo : float; hi : float; target : float }
      (** A computed interval (bootstrap CI) containing a predicted
          [target]. *)

type t = {
  id : string;  (** ["E8/exponent"] — experiment id, ['/'], claim slug. *)
  experiment : string;  (** Prefix of [id] before ['/']. *)
  description : string;
  check : check;
}

val make : id:string -> description:string -> check -> t
(** [experiment] is derived from [id]'s prefix before the first ['/']. *)

val band : id:string -> description:string -> lo:float -> hi:float -> float -> t
val floor : id:string -> description:string -> min:float -> float -> t
val ceiling : id:string -> description:string -> max:float -> float -> t
val increasing : id:string -> description:string -> float list -> t
val decreasing : id:string -> description:string -> float list -> t

val contains :
  id:string -> description:string -> lo:float -> hi:float -> float -> t
(** [contains ~lo ~hi target]: the computed interval [lo, hi] must contain
    [target]. *)

val holds : t -> bool
(** Whether the paper-facing assertion is true of the observed values.
    Non-finite observations never hold; monotone checks are non-strict and
    false on the empty list. *)

val values : t -> float list
(** The observed (run-dependent) numbers, for baseline recording and drift
    comparison. Bounds and targets are static code, not values. *)

val kind_name : t -> string
(** ["band"], ["floor"], ["ceiling"], ["increasing"], ["decreasing"],
    ["contains"]. *)

val describe_observed : t -> string
(** Observed values, space-separated, [%.6g]. *)

val describe_expected : t -> string
(** Human rendering of the bound: ["in [1.2, 2.6]"], [">= 0.8"], …. *)

val to_json : t -> Obs.Json.t
(** [claim/v1] object: schema, id, experiment, description, kind, observed
    values, declared bounds, and the evaluated [holds] bit. *)
