(* E23 — node failures (site percolation), the fault model of
   Hastad–Leighton–Newman cited in the related work.

   Two validations:
   (1) the 2-d mesh site threshold sits near the literature value
       p_c^site ~= 0.5927 — strictly above the bond value 1/2, because a
       dead vertex kills four edges at once in a correlated way;
   (2) above both thresholds, Theorem 4-style path-following routing
       keeps working under node faults exactly as it does under edge
       faults (the router only ever sees closed incident links). *)

let id = "E23"
let title = "Node failures: site percolation and routing through dead nodes"

let claim =
  "Site percolation on the 2-d mesh has p_c ~= 0.5927 (literature); above it the \
   path-following router routes in O(n) probes just as under edge faults — the \
   probe model does not care why a link is down."

let run ?(quick = false) stream =
  let d = 2 in
  (* Part 1: threshold by finite-size scaling, in the site parameter. *)
  let sizes = if quick then [ 12; 24 ] else [ 12; 24; 48 ] in
  let trials = if quick then 8 else 30 in
  let ps =
    if quick then [ 0.50; 0.56; 0.60; 0.64; 0.70 ]
    else [ 0.50; 0.54; 0.57; 0.59; 0.61; 0.64; 0.70 ]
  in
  let curves =
    List.map
      (fun m ->
        let substream = Prng.Stream.split stream m in
        let seeds =
          Array.init trials (fun t -> Prng.Coin.derive (Prng.Stream.seed substream) t)
        in
        let graph = Topology.Mesh.graph ~d ~m in
        let points =
          List.map
            (fun site_p ->
              let total = ref 0.0 in
              Array.iter
                (fun seed ->
                  let world = Worldpool.build ~site_p graph ~p:1.0 ~seed in
                  total :=
                    !total
                    +. Percolation.Clusters.giant_fraction
                         (Percolation.Clusters.census world))
                seeds;
              (site_p, !total /. float_of_int trials))
            ps
        in
        { Percolation.Scaling.size = m; points })
      sizes
  in
  let site_estimate = Percolation.Scaling.estimate_threshold curves in
  let threshold_table =
    Stats.Table.create ~headers:[ "sizes"; "crossings"; "p_c^site estimate"; "literature" ]
    |> fun t ->
    Stats.Table.add_row t
      [
        String.concat "," (List.map string_of_int sizes);
        String.concat ", "
          (List.map (Printf.sprintf "%.3f") (Percolation.Scaling.crossings curves));
        (match site_estimate with
        | Some e -> Printf.sprintf "%.3f" e
        | None -> "-");
        "0.5927";
      ]
  in
  (* Part 2: routing above the site threshold. *)
  let route_trials = if quick then 5 else 20 in
  let distances = if quick then [ 10 ] else [ 10; 20; 40 ] in
  let site_ps = if quick then [ 0.75 ] else [ 0.65; 0.75; 0.90 ] in
  let routing_table =
    ref
      (Stats.Table.create
         ~headers:[ "site p"; "n (distance)"; "mean probes"; "probes/n"; "P[u~v]" ])
  in
  let max_probes_per_n = ref 0.0 in
  List.iteri
    (fun p_index site_p ->
      List.iteri
        (fun n_index n ->
          let margin = 10 in
          let m = n + (2 * margin) in
          let graph = Topology.Mesh.graph ~d ~m in
          let row = m / 2 in
          let source = Topology.Mesh.index ~m [| margin; row |] in
          let target = Topology.Mesh.index ~m [| margin + n; row |] in
          let substream =
            Prng.Stream.split stream (1000 + (p_index * 100) + n_index)
          in
          (* A hand-rolled conditioned loop (Trial.spec builds bond-only
             worlds, so we roll our own with site faults). *)
          let probes = ref Stats.Summary.empty in
          let connected = ref 0 in
          let attempts = ref 0 in
          while Stats.Summary.count !probes < route_trials && !attempts < route_trials * 200
          do
            incr attempts;
            let seed = Prng.Coin.derive (Prng.Stream.seed substream) !attempts in
            let world = Worldpool.build ~site_p graph ~p:1.0 ~seed in
            match Percolation.Reveal.connected world source target with
            | Percolation.Reveal.Connected _ ->
                incr connected;
                let router = Routing.Path_follow.mesh ~d ~m ~source ~target in
                (match Routing.Router.run router world ~source ~target with
                | Routing.Outcome.Found { probes = cost; _ } ->
                    probes := Stats.Summary.add !probes (float_of_int cost)
                | Routing.Outcome.No_path _ | Routing.Outcome.Budget_exceeded _ -> ())
            | Percolation.Reveal.Disconnected | Percolation.Reveal.Unknown -> ()
          done;
          let mean = Stats.Summary.mean !probes in
          if Stats.Summary.count !probes > 0 then
            max_probes_per_n :=
              Float.max !max_probes_per_n (mean /. float_of_int n);
          routing_table :=
            Stats.Table.add_row !routing_table
              [
                Printf.sprintf "%.2f" site_p;
                string_of_int n;
                (if Stats.Summary.count !probes = 0 then "-"
                 else Printf.sprintf "%.0f" mean);
                (if Stats.Summary.count !probes = 0 then "-"
                 else Printf.sprintf "%.1f" (mean /. float_of_int n));
                Printf.sprintf "%.2f"
                  (float_of_int !connected /. float_of_int !attempts);
              ])
        distances)
    site_ps;
  let notes =
    [
      Printf.sprintf
        "Part 1: coupled giant-fraction curves, %d worlds per (size, p); pure site \
         model (p_edge = 1). Part 2: path-following router on the mesh with node \
         faults only, %d conditioned trials per cell."
        trials route_trials;
      "Expect the site threshold estimate near 0.593 — clearly above the bond 0.5 \
       — and probes/n flat in n for each site p above it, with the constant \
       growing as site p approaches the threshold (the Theorem 4 shape, fault \
       type notwithstanding).";
    ]
  in
  let claims =
    let estimate_claims =
      match site_estimate with
      | Some e ->
          [
            Claim.band ~id:"E23/site-threshold"
              ~description:
                "finite-size-scaling estimate of the 2-d site threshold \
                 (literature 0.5927, strictly above the bond 0.5)"
              ~lo:0.55 ~hi:0.70 e;
          ]
      | None -> []
    in
    let curve_claims =
      match
        List.find_opt
          (fun c ->
            c.Percolation.Scaling.size = List.fold_left max 0 sizes)
          curves
      with
      | Some curve when List.length curve.Percolation.Scaling.points >= 2 ->
          let points = curve.Percolation.Scaling.points in
          let _, frac_first = List.hd points in
          let _, frac_last = List.nth points (List.length points - 1) in
          [
            Claim.increasing ~id:"E23/giant-grows-with-site-p"
              ~description:
                "giant fraction on the largest mesh grows from the smallest \
                 to the largest site p"
              [ frac_first; frac_last ];
          ]
      | _ -> []
    in
    let routing_claims =
      if !max_probes_per_n > 0.0 then
        [
          Claim.ceiling ~id:"E23/routing-cost"
            ~description:
              "max probes/n over all (site p, n) routing cells — linear cost \
               survives node faults above the site threshold"
            ~max:80.0 !max_probes_per_n;
        ]
      else []
    in
    estimate_claims @ curve_claims @ routing_claims
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes ~claims
    [
      ("site-percolation threshold by finite-size scaling", threshold_table);
      ("path-follow routing under node faults", !routing_table);
    ]
