type experiment = {
  id : string;
  title : string;
  run : ?quick:bool -> Prng.Stream.t -> Report.t;
}

let all =
  [
    { id = E01_hypercube_phase.id; title = E01_hypercube_phase.title; run = E01_hypercube_phase.run };
    { id = E02_hypercube_poly.id; title = E02_hypercube_poly.title; run = E02_hypercube_poly.run };
    { id = E03_hypercube_exp.id; title = E03_hypercube_exp.title; run = E03_hypercube_exp.run };
    { id = E04_mesh_linear.id; title = E04_mesh_linear.title; run = E04_mesh_linear.run };
    { id = E05_mesh_threshold.id; title = E05_mesh_threshold.title; run = E05_mesh_threshold.run };
    { id = E06_double_tree_threshold.id; title = E06_double_tree_threshold.title; run = E06_double_tree_threshold.run };
    { id = E07_tree_local_vs_oracle.id; title = E07_tree_local_vs_oracle.title; run = E07_tree_local_vs_oracle.run };
    { id = E08_gnp_local.id; title = E08_gnp_local.title; run = E08_gnp_local.run };
    { id = E09_gnp_oracle.id; title = E09_gnp_oracle.title; run = E09_gnp_oracle.run };
    { id = E10_theta_lower_bound.id; title = E10_theta_lower_bound.title; run = E10_theta_lower_bound.run };
    { id = E11_hypercube_giant.id; title = E11_hypercube_giant.title; run = E11_hypercube_giant.run };
    { id = E12_expanders.id; title = E12_expanders.title; run = E12_expanders.run };
    { id = E13_chemical_stretch.id; title = E13_chemical_stretch.title; run = E13_chemical_stretch.run };
    { id = E14_hypercube_oracle.id; title = E14_hypercube_oracle.title; run = E14_hypercube_oracle.run };
    { id = E15_ablations.id; title = E15_ablations.title; run = E15_ablations.run };
    { id = E16_torus_boundary.id; title = E16_torus_boundary.title; run = E16_torus_boundary.run };
    { id = E17_path_counting.id; title = E17_path_counting.title; run = E17_path_counting.run };
    { id = E18_distributed_lookup.id; title = E18_distributed_lookup.title; run = E18_distributed_lookup.run };
    { id = E19_finite_size_scaling.id; title = E19_finite_size_scaling.title; run = E19_finite_size_scaling.run };
    { id = E20_good_vertices.id; title = E20_good_vertices.title; run = E20_good_vertices.run };
    { id = E21_small_world.id; title = E21_small_world.title; run = E21_small_world.run };
    { id = E22_adversarial.id; title = E22_adversarial.title; run = E22_adversarial.run };
    { id = E23_site_percolation.id; title = E23_site_percolation.title; run = E23_site_percolation.run };
    { id = E24_butterfly_permutation.id; title = E24_butterfly_permutation.title; run = E24_butterfly_permutation.run };
    { id = E25_clustered_faults.id; title = E25_clustered_faults.title; run = E25_clustered_faults.run };
    { id = E26_churn_degradation.id; title = E26_churn_degradation.title; run = E26_churn_degradation.run };
  ]

let find id =
  let wanted = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.id = wanted) all

(* Under supervision a broken experiment must not take the campaign
   down: retry once (pure streams make the retry exact), then ship a
   stub report and register the loss in the supervisor's global
   summary, which the CLI turns into a faults/v1 section and exit
   code 5. Unsupervised runs keep the historical crash barrier — an
   exception aborts the campaign, which is the right default for
   development. *)
let run_resilient e quick experiment_stream =
  match e.run ?quick experiment_stream with
  | report -> report
  | exception first ->
      Engine_par.Supervisor.record_unit_retry ();
      (match e.run ?quick experiment_stream with
      | report -> report
      | exception _ ->
          let message = Printexc.to_string first in
          Engine_par.Supervisor.record_unit_failure ~unit:e.id ~message;
          Report.make ~id:e.id ~title:e.title
            ~claim:"(not evaluated: experiment failed unrecoverably)"
            ~seed:(Prng.Stream.seed experiment_stream)
            ~notes:
              [ Printf.sprintf "experiment failed unrecoverably: %s" message ]
            [])

let run_all ?quick ?jobs ~seed () =
  let stream = Prng.Stream.create seed in
  (* One task per experiment on the shared pool; each experiment's
     stream depends only on its index, and a task that itself fans out
     trials runs them inline on its worker, so reports are identical
     for any job count.

     Tracing: experiments running concurrently would race for the trace
     sink, and pool scheduling would dictate the order of their runs in
     the file. So each task redirects its domain's trace output into a
     private buffer (Obs.Trace.with_sink) and the buffers are flushed
     to the real sink afterwards, in catalog order — the trace file is
     byte-identical for every job count. *)
  let tracing = Obs.Trace.on () in
  let supervised =
    Engine_par.Supervisor.armed () || Faultsim.Plan.ambient () <> None
  in
  let run_one e experiment_stream =
    if supervised then run_resilient e quick experiment_stream
    else e.run ?quick experiment_stream
  in
  let indexed = Array.of_list (List.mapi (fun index e -> (index, e)) all) in
  let outcomes =
    Engine_par.Pool.map ?jobs
      (fun (index, e) ->
        let experiment_stream = Prng.Stream.split stream index in
        if tracing then begin
          let buffer = Buffer.create 4096 in
          let report =
            Obs.Trace.with_sink (Buffer.add_string buffer) (fun () ->
                run_one e experiment_stream)
          in
          (report, Buffer.contents buffer)
        end
        else (run_one e experiment_stream, ""))
      indexed
  in
  if tracing then
    Array.iter
      (fun (_, trace) -> if trace <> "" then Obs.Trace.write_line trace)
      outcomes;
  Array.to_list (Array.map fst outcomes)
