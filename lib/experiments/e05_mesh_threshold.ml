(* E5 — The flip side of Theorem 4: below p_c the routing question
   dissolves because P[u ~ v] -> 0, and just above p_c routing still
   works but its constant blows up. Sweep p across p_c = 1/2 (d = 2) at
   fixed distance. *)

let id = "E5"
let title = "Mesh connectivity collapse at p_c (Theorem 4's hypothesis)"

let claim =
  "For p <= p_c, Pr[u ~ v] = o(1) (no giant component), so the conditioning of \
   Definition 2 is vacuous; for p > p_c routing costs O(n) with a constant that \
   diverges as p -> p_c."

let run ?(quick = false) stream =
  let ps =
    if quick then [ 0.45; 0.60 ]
    else [ 0.40; 0.45; 0.48; 0.50; 0.52; 0.55; 0.60; 0.70 ]
  in
  let n = if quick then 12 else 20 in
  let trials = if quick then 5 else 20 in
  let d = 2 in
  let margin = 10 in
  let m = n + (2 * margin) in
  let graph = Topology.Mesh.graph ~d ~m in
  let row = m / 2 in
  let source = Topology.Mesh.index ~m [| margin; row |] in
  let target = Topology.Mesh.index ~m [| margin + n; row |] in
  let table =
    ref
      (Stats.Table.create
         ~headers:[ "p"; "P[u~v] (Wilson 95%)"; "trials"; "mean probes"; "probes/n" ])
  in
  let shortfalls = ref [] in
  let connectivity = ref [] in
  let last_probes_per_n = ref nan in
  (* One attempt stream shared by every p of the sweep: attempt i's
     world at p' >= p contains its world at p (monotone coupling), so
     per-attempt connectivity — and hence the accepted/attempted
     estimate of P[u~v] — is non-decreasing in p deterministically.
     The E5/connectivity-monotone claim holds per sample, not just in
     expectation. *)
  let sweep_stream = Prng.Stream.split stream 0 in
  List.iter
    (fun p ->
      let result =
        Trial.run sweep_stream ~trials ~max_attempts:(trials * 50)
          (Trial.spec ~graph ~p ~source ~target (fun _rand ~source ~target ->
               Routing.Path_follow.mesh ~d ~m ~source ~target))
      in
      (match Trial.shortfall_note ~label:(Printf.sprintf "p=%.2f" p) result with
      | Some note -> shortfalls := note :: !shortfalls
      | None -> ());
      let sample_size = Stats.Censored.count result.Trial.observations in
      let mean = Trial.mean_probes_lower_bound result in
      connectivity := Stats.Proportion.estimate result.Trial.connection :: !connectivity;
      if sample_size > 0 then last_probes_per_n := mean /. float_of_int n;
      table :=
        Stats.Table.add_row !table
          [
            Printf.sprintf "%.2f" p;
            Format.asprintf "%a" Stats.Proportion.pp result.Trial.connection;
            string_of_int sample_size;
            (if sample_size = 0 then "-" else Printf.sprintf "%.0f" mean);
            (if sample_size = 0 then "-"
             else Printf.sprintf "%.1f" (mean /. float_of_int n));
          ])
    ps;
  let notes =
    [
      Printf.sprintf
        "d = 2, distance n = %d in an m = %d cube; p_c = 1/2 exactly (Kesten). \
         Expect P[u~v] to collapse below 0.5 and probes/n to fall towards a small \
         constant as p grows past it."
        n m;
    ]
    @ List.rev !shortfalls
  in
  let claims =
    match List.rev !connectivity with
    | [] -> []
    | conn_first :: _ as conn ->
        let conn_last = List.nth conn (List.length conn - 1) in
        [
          Claim.ceiling ~id:"E5/subcritical-connectivity"
            ~description:
              (Printf.sprintf "P[u~v] at p=%.2f, below p_c = 1/2" (List.hd ps))
            ~max:0.3 conn_first;
          Claim.floor ~id:"E5/supercritical-connectivity"
            ~description:
              (Printf.sprintf "P[u~v] at p=%.2f, above p_c"
                 (List.nth ps (List.length ps - 1)))
            ~min:0.4 conn_last;
          Claim.increasing ~id:"E5/connectivity-monotone"
            ~description:"P[u~v] does not decrease across the p sweep"
            [ conn_first; conn_last ];
          Claim.ceiling ~id:"E5/supercritical-cost"
            ~description:"probes/n at the largest p (O(n) regime)" ~max:60.0
            !last_probes_per_n;
        ]
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes ~claims
    [ ("connectivity and conditioned complexity across p_c", !table) ]
