(* E19 — pinning p_c by finite-size scaling.

   E5 reads the 2-d mesh threshold off a single connectivity curve; the
   sharper instrument is the Binder-style crossing: giant-fraction
   curves for growing sides steepen around p_c and cross near it.
   Kesten's theorem says p_c = 1/2 exactly for d = 2; for d = 3 the
   literature value is ~ 0.2488 (bond percolation on Z^3). Both are
   facts the paper leans on through Theorem 4's "for any p > p_c". *)

let id = "E19"
let title = "Finite-size scaling estimate of the mesh p_c"

let claim =
  "p_c = 1/2 exactly for the 2-d mesh (Kesten); ~0.2488 for the 3-d mesh. \
   Crossings of successive-size giant-fraction curves estimate both."

let run ?(quick = false) stream =
  let trials = if quick then 8 else 30 in
  let cases =
    if quick then
      [ ("mesh d=2", 2, [ 12; 24 ], [ 0.40; 0.45; 0.50; 0.55; 0.60 ], 0.5) ]
    else
      [
        ( "mesh d=2",
          2,
          [ 12; 24; 48 ],
          [ 0.40; 0.44; 0.47; 0.50; 0.53; 0.56; 0.60 ],
          0.5 );
        ( "mesh d=3",
          3,
          [ 6; 10; 14 ],
          [ 0.18; 0.21; 0.23; 0.25; 0.27; 0.30; 0.34 ],
          0.2488 );
      ]
  in
  let table =
    ref
      (Stats.Table.create
         ~headers:[ "family"; "sizes"; "crossings"; "p_c estimate"; "literature" ])
  in
  let curve_table =
    ref (Stats.Table.create ~headers:[ "family"; "m"; "p"; "giant fraction" ])
  in
  let claims = ref [] in
  List.iteri
    (fun case_index (name, d, sizes, ps, literature) ->
      let substream = Prng.Stream.split stream case_index in
      let curves =
        List.map
          (fun m ->
            Percolation.Scaling.measure_giant_curve substream
              ~graph_of_size:(fun m -> Topology.Mesh.graph ~d ~m)
              ~size:m ~ps ~trials)
          sizes
      in
      List.iter
        (fun curve ->
          List.iter
            (fun (p, fraction) ->
              curve_table :=
                Stats.Table.add_row !curve_table
                  [
                    name;
                    string_of_int curve.Percolation.Scaling.size;
                    Printf.sprintf "%.2f" p;
                    Printf.sprintf "%.3f" fraction;
                  ])
            curve.Percolation.Scaling.points)
        curves;
      let crossings = Percolation.Scaling.crossings curves in
      let estimate = Percolation.Scaling.estimate_threshold curves in
      (match estimate with
      | Some e ->
          claims :=
            Claim.band
              ~id:(Printf.sprintf "E19/p-c-d%d" d)
              ~description:
                (Printf.sprintf
                   "finite-size-scaling p_c estimate for %s lands near the \
                    literature value %.4f"
                   name literature)
              ~lo:(0.85 *. literature) ~hi:(1.2 *. literature) e
            :: !claims
      | None -> ());
      table :=
        Stats.Table.add_row !table
          [
            name;
            String.concat "," (List.map string_of_int sizes);
            String.concat ", " (List.map (Printf.sprintf "%.3f") crossings);
            (match estimate with Some e -> Printf.sprintf "%.3f" e | None -> "-");
            Printf.sprintf "%.4f" literature;
          ])
    cases;
  let notes =
    [
      Printf.sprintf "%d worlds per (size, p) cell; crossings located by bisection \
                      on piecewise-linear interpolants." trials;
      "Giant fraction is size-biased below p_c (small clusters still hold a few \
       percent of a small grid), which pushes raw curve midpoints up; crossings \
       cancel most of that bias — expect estimates within a few percent of the \
       literature values.";
    ]
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes
    ~claims:(List.rev !claims)
    [
      ("finite-size-scaling estimates", !table);
      ("underlying giant-fraction curves", !curve_table);
    ]
