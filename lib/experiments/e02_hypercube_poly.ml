(* E2 — Theorem 3(ii): for fixed alpha < 1/2 the segment router's
   complexity is polynomial in n. Sweep n, fit a power law to the median
   probe count; the exponent should be modest and grow as alpha
   approaches 1/2. *)

let id = "E2"
let title = "Hypercube sub-threshold scaling (Theorem 3(ii))"

let claim =
  "For alpha < 1/2 there is k = k(alpha) with comp(A) < n^k w.h.p.; the measured \
   growth of the segment router should fit a power law in n with a small exponent."

let run ?(quick = false) stream =
  let alphas = if quick then [ 0.30 ] else [ 0.30; 0.40 ] in
  let sizes = if quick then [ 8; 10 ] else [ 8; 10; 12; 14; 16 ] in
  let trials = if quick then 5 else 20 in
  let table = ref (Stats.Table.create ~headers:[ "alpha"; "n"; "p"; "median probes"; "mean probes"; "P[u~v]" ]) in
  let notes = ref [] in
  let claims = ref [] in
  (* Bands calibrated against the recorded full run (k = 3.83 / 5.25) and
     the 2-point quick fit (k = 2.35); see EXPERIMENTS.md. *)
  let exponent_band alpha =
    if alpha < 0.35 then (1.0, 6.0) else (1.5, 8.0)
  in
  List.iteri
    (fun alpha_index alpha ->
      let points = ref [] in
      List.iteri
        (fun size_index n ->
          let p = float_of_int n ** -.alpha in
          let graph = Topology.Hypercube.graph n in
          let source = 0 in
          let target = Topology.Hypercube.antipode ~n source in
          let substream = Prng.Stream.split stream ((alpha_index * 100) + size_index) in
          let result =
            Trial.run substream ~trials
              (Trial.spec ~graph ~p ~source ~target (fun _rand ~source ~target ->
                   Routing.Path_follow.hypercube ~n ~source ~target))
          in
          let median =
            match Trial.median_observation result with
            | Some (Stats.Censored.Exact m) | Some (Stats.Censored.At_least m) -> m
            | None -> nan
          in
          let mean = Trial.mean_probes_lower_bound result in
          if median > 0.0 then points := (float_of_int n, median) :: !points;
          table :=
            Stats.Table.add_row !table
              [
                Printf.sprintf "%.2f" alpha;
                string_of_int n;
                Printf.sprintf "%.4f" p;
                Printf.sprintf "%.0f" median;
                Printf.sprintf "%.0f" mean;
                Printf.sprintf "%.2f" (Stats.Proportion.estimate result.Trial.connection);
              ])
        sizes;
      if List.length !points >= 2 then begin
        let points = List.rev !points in
        let fit = Stats.Regression.power_law points in
        (* Fresh split indices (9000+) — never used by the trial loop above,
           so the trial streams (and the recorded full-run numbers) are
           untouched. *)
        let ci =
          Stats.Regression.power_law_ci
            (Prng.Stream.split stream (9000 + alpha_index))
            points
        in
        notes :=
          Printf.sprintf
            "alpha = %.2f: fitted exponent k = %.2f (R^2 = %.3f) — probes ~ n^%.2f; \
             bootstrap 95%% CI for k: [%.2f, %.2f] (B=%d)."
            alpha fit.Stats.Regression.slope fit.Stats.Regression.r_squared
            fit.Stats.Regression.slope ci.Stats.Regression.lo
            ci.Stats.Regression.hi ci.Stats.Regression.replicates
          :: !notes;
        let lo, hi = exponent_band alpha in
        claims :=
          Claim.floor
            ~id:(Printf.sprintf "E2/fit-r2[%.2f]" alpha)
            ~description:
              (Printf.sprintf "power-law fit quality at alpha=%.2f" alpha)
            ~min:0.8 fit.Stats.Regression.r_squared
          :: Claim.band
               ~id:(Printf.sprintf "E2/exponent[%.2f]" alpha)
               ~description:
                 (Printf.sprintf
                    "fitted polynomial exponent k(%.2f) stays modest (Thm \
                     3(ii))"
                    alpha)
               ~lo ~hi fit.Stats.Regression.slope
          :: !claims
      end)
    alphas;
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream)
    ~notes:(List.rev !notes) ~claims:(List.rev !claims)
    [ ("segment-router complexity vs n (no budget: exact counts)", !table) ]
