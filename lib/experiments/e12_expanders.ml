(* E12 — Section 6's open problem, exploratory: for constant-degree
   logarithmic-diameter families (De Bruijn, shuffle-exchange, wrapped
   butterfly, cycle+matching), where do the percolation and routing
   thresholds sit? We sweep p, measuring connectivity of a fixed
   far-apart pair and the conditioned cost of local BFS. No assertion is
   made — the paper leaves the question open; the data is reported. *)

let id = "E12"
let title = "Open problem: routing vs percolation on constant-degree expanders"

let claim =
  "Open (Section 6): is there a constant-degree, log-diameter family whose \
   percolation and routing thresholds coincide away from 1? Exploratory sweep."

let families ~quick stream =
  let db_n = if quick then 8 else 12 in
  let se_n = if quick then 8 else 12 in
  let bf_n = if quick then 5 else 8 in
  let cm_n = if quick then 256 else 4096 in
  [
    ("de_bruijn", Topology.De_bruijn.graph db_n);
    ("shuffle_exchange", Topology.Shuffle_exchange.graph se_n);
    ("butterfly", Topology.Butterfly.graph bf_n);
    ("cycle+matching", Topology.Cycle_matching.graph (Prng.Stream.split stream 999) cm_n);
  ]

let run ?(quick = false) stream =
  let ps = if quick then [ 0.5; 0.8 ] else [ 0.30; 0.40; 0.50; 0.60; 0.70; 0.80; 0.90 ] in
  let trials = if quick then 5 else 15 in
  let budget = if quick then 20_000 else 100_000 in
  let table =
    ref
      (Stats.Table.create
         ~headers:
           [ "family"; "p"; "P[u~v]"; "median probes"; "censored"; "path len" ])
  in
  let shortfalls = ref [] in
  let claims = ref [] in
  (* Quick mode sweeps only p = 0.5, where shuffle-exchange connectivity is
     ~1%: the full-mode cap of 40 attempts/trial starves that cell, so quick
     runs get a deeper cap (the full-mode stream consumption is unchanged). *)
  let max_attempts = trials * if quick then 400 else 40 in
  List.iteri
    (fun family_index (name, graph) ->
      let size = graph.Topology.Graph.vertex_count in
      (* An arbitrary far-ish pair; (0, |V|/2) is adjacent in De Bruijn. *)
      let source = 1 and target = size - 2 in
      let connectivity = ref [] in
      List.iteri
        (fun p_index p ->
          let substream = Prng.Stream.split stream ((family_index * 100) + p_index) in
          let result =
            Trial.run substream ~trials ~max_attempts
              (Trial.spec ~budget ~graph ~p ~source ~target
                 (fun _rand ~source:_ ~target:_ -> Routing.Local_bfs.router))
          in
          connectivity :=
            Stats.Proportion.estimate result.Trial.connection :: !connectivity;
          (match
             Trial.shortfall_note
               ~label:(Printf.sprintf "%s p=%.2f" name p)
               result
           with
          | Some note -> shortfalls := note :: !shortfalls
          | None -> ());
          let sample_size = Stats.Censored.count result.Trial.observations in
          let median =
            match Trial.median_observation result with
            | None -> "-"
            | Some obs -> Format.asprintf "%a" Stats.Censored.pp_observation obs
          in
          table :=
            Stats.Table.add_row !table
              [
                name;
                Printf.sprintf "%.2f" p;
                Printf.sprintf "%.2f" (Stats.Proportion.estimate result.Trial.connection);
                (if sample_size = 0 then "-" else median);
                Printf.sprintf "%d/%d"
                  (Stats.Censored.censored_count result.Trial.observations)
                  sample_size;
                (if Stats.Summary.count result.Trial.path_lengths = 0 then "-"
                 else Printf.sprintf "%.0f" (Stats.Summary.mean result.Trial.path_lengths));
              ])
        ps;
      match List.rev !connectivity with
      | conn_first :: _ as conn ->
          let conn_last = List.nth conn (List.length conn - 1) in
          claims :=
            Claim.increasing
              ~id:(Printf.sprintf "E12/connectivity-monotone[%s]" name)
              ~description:
                (Printf.sprintf
                   "P[u~v] for %s does not decrease from the smallest to the \
                    largest p"
                   name)
              [ conn_first; conn_last ]
            :: !claims
      | [] -> ())
    (families ~quick stream);
  let notes =
    [
      "Fixed pair (1, |V|-2) per family; local BFS with a probe budget. The \
       connectivity column locates the percolation threshold; the probe column \
       shows whether finding paths stays cheap once connectivity holds.";
      "These families are the objects of the paper's open problem; no theorem is \
       asserted here.";
    ]
    @ List.rev !shortfalls
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes
    ~claims:(List.rev !claims)
    [ ("connectivity and local-BFS cost across p", !table) ]
