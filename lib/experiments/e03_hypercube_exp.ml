(* E3 — Theorem 3(i): for alpha > 1/2 any local router needs
   exp(Omega(n^beta)) probes. Sweep n at fixed alpha, measure local BFS
   (no budget: it terminates by exhausting the component, so the counts
   are exact) and check that the growth is super-polynomial: an
   exponential fit in n should beat a power-law fit, and the per-step
   growth ratio should exceed 1. *)

let id = "E3"
let title = "Hypercube super-threshold blow-up (Theorem 3(i))"

let claim =
  "For p = n^-alpha with alpha > 1/2 any local routing algorithm makes at least \
   exp(Omega(n^beta)) queries w.h.p. (beta < alpha - 1/2)."

let run ?(quick = false) stream =
  let alphas = if quick then [ 0.70 ] else [ 0.70; 0.80 ] in
  let sizes = if quick then [ 8; 10 ] else [ 8; 10; 12; 14 ] in
  let trials = if quick then 5 else 15 in
  let table =
    ref
      (Stats.Table.create
         ~headers:[ "alpha"; "n"; "p"; "mean probes"; "median probes"; "P[u~v]" ])
  in
  let notes = ref [] in
  let claims = ref [] in
  List.iteri
    (fun alpha_index alpha ->
      let points = ref [] in
      List.iteri
        (fun size_index n ->
          let p = float_of_int n ** -.alpha in
          let graph = Topology.Hypercube.graph n in
          let source = 0 in
          let target = Topology.Hypercube.antipode ~n source in
          let substream = Prng.Stream.split stream ((alpha_index * 100) + size_index) in
          let result =
            Trial.run substream ~trials
              (Trial.spec ~graph ~p ~source ~target (fun _rand ~source:_ ~target:_ ->
                   Routing.Local_bfs.router))
          in
          let mean = Trial.mean_probes_lower_bound result in
          let median =
            match Trial.median_observation result with
            | Some (Stats.Censored.Exact m) | Some (Stats.Censored.At_least m) -> m
            | None -> nan
          in
          (match
             Trial.shortfall_note
               ~label:(Printf.sprintf "alpha=%.2f n=%d" alpha n)
               result
           with
          | Some note -> notes := note :: !notes
          | None -> ());
          if mean > 0.0 then points := (float_of_int n, mean) :: !points;
          table :=
            Stats.Table.add_row !table
              [
                Printf.sprintf "%.2f" alpha;
                string_of_int n;
                Printf.sprintf "%.4f" p;
                Printf.sprintf "%.0f" mean;
                Printf.sprintf "%.0f" median;
                Printf.sprintf "%.2f" (Stats.Proportion.estimate result.Trial.connection);
              ])
        sizes;
      (* Endpoint growth rate per unit n: defined from two sizes up, so the
         blow-up claim is checkable in quick mode too. *)
      (match List.rev !points with
      | (n0, m0) :: _ :: _ as points ->
          let n1, m1 = List.nth points (List.length points - 1) in
          let rate = (m1 /. m0) ** (1.0 /. (n1 -. n0)) in
          claims :=
            Claim.band
              ~id:(Printf.sprintf "E3/rate[%.2f]" alpha)
              ~description:
                (Printf.sprintf
                   "mean-probe growth factor per n step at alpha=%.2f \
                    (endpoint estimate)"
                   alpha)
              ~lo:1.3 ~hi:4.0 rate
            :: !claims
      | _ -> ());
      if List.length !points >= 3 then begin
        let points = List.rev !points in
        let expo = Stats.Regression.exponential points in
        let power = Stats.Regression.power_law points in
        notes :=
          Printf.sprintf
            "alpha = %.2f: exponential fit rate %.3f/step (R^2 = %.3f) vs power-law \
             exponent %.2f (R^2 = %.3f) — super-polynomial growth shows as a high, \
             size-inflating power-law exponent."
            alpha expo.Stats.Regression.slope expo.Stats.Regression.r_squared
            power.Stats.Regression.slope power.Stats.Regression.r_squared
          :: !notes;
        claims :=
          Claim.floor
            ~id:(Printf.sprintf "E3/exp-fit-r2[%.2f]" alpha)
            ~description:
              (Printf.sprintf "exponential fit quality at alpha=%.2f" alpha)
            ~min:0.9 expo.Stats.Regression.r_squared
          :: Claim.floor
               ~id:(Printf.sprintf "E3/power-exponent-inflated[%.2f]" alpha)
               ~description:
                 (Printf.sprintf
                    "a power-law fit at alpha=%.2f needs an implausibly large \
                     exponent — growth is super-polynomial"
                    alpha)
               ~min:3.0 power.Stats.Regression.slope
          :: !claims
      end)
    alphas;
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream)
    ~notes:(List.rev !notes) ~claims:(List.rev !claims)
    [ ("local-BFS complexity vs n in the hard regime", !table) ]
