(* E11 — the background fact of Ajtai–Komlós–Szemerédi used throughout
   Section 3: H_{n,p} has a giant component iff p*n > 1. Sweep the ratio
   x = p*n across 1 and census the components. *)

let id = "E11"
let title = "Hypercube giant-component threshold at p = 1/n (AKS background)"

let claim =
  "If p >= (1+eps)/n then H_{n,p} has a component of size Theta(2^n) w.h.p.; if \
   p <= (1-eps)/n the largest component is o(2^n)."

let run ?(quick = false) stream =
  let n = if quick then 10 else 14 in
  let ratios = if quick then [ 0.5; 1.5 ] else [ 0.50; 0.75; 1.00; 1.25; 1.50; 2.00 ] in
  let worlds = if quick then 4 else 10 in
  let graph = Topology.Hypercube.graph n in
  let table =
    ref
      (Stats.Table.create
         ~headers:
           [ "p*n"; "p"; "mean giant frac"; "mean 2nd frac"; "giant present" ])
  in
  let row_stats = ref [] in
  (* One coupled family per world, sampled once and cut at every ratio:
     world w's component structure at increasing p*n is a refinement of
     the same draws, so its giant fraction is non-decreasing across the
     sweep deterministically — and the whole experiment pays [worlds]
     sampling sweeps instead of [worlds * ratios]. *)
  let substream = Prng.Stream.split stream 0 in
  let families =
    Array.init worlds (fun i ->
        Worldpool.coupled graph
          ~seed:(Prng.Coin.derive (Prng.Stream.seed substream) (i + 1)))
  in
  List.iter
    (fun ratio ->
      let p = ratio /. float_of_int n in
      let giant_fracs = ref Stats.Summary.empty in
      let second_fracs = ref Stats.Summary.empty in
      let giants = ref 0 in
      for w = 1 to worlds do
        let world = Worldpool.cut families.(w - 1) ~p in
        let census = Percolation.Clusters.census world in
        giant_fracs :=
          Stats.Summary.add !giant_fracs (Percolation.Clusters.giant_fraction census);
        second_fracs :=
          Stats.Summary.add !second_fracs
            (float_of_int census.Percolation.Clusters.second_largest
            /. float_of_int census.Percolation.Clusters.vertex_count);
        if Percolation.Clusters.has_giant ~threshold:0.05 census then incr giants
      done;
      row_stats :=
        ( Stats.Summary.mean !giant_fracs,
          Stats.Summary.mean !second_fracs,
          float_of_int !giants /. float_of_int worlds )
        :: !row_stats;
      table :=
        Stats.Table.add_row !table
          [
            Printf.sprintf "%.2f" ratio;
            Printf.sprintf "%.4f" p;
            Printf.sprintf "%.3f" (Stats.Summary.mean !giant_fracs);
            Printf.sprintf "%.4f" (Stats.Summary.mean !second_fracs);
            Printf.sprintf "%d/%d" !giants worlds;
          ])
    ratios;
  let notes =
    [
      Printf.sprintf "n = %d, %d worlds per ratio; 'giant present' uses a 5%% + \
                      2x-second-component test." n worlds;
      "Expect the giant fraction to lift off between p*n = 1.0 and 1.25 and the \
       second component to stay negligible above threshold (uniqueness).";
    ]
  in
  let claims =
    match List.rev !row_stats with
    | [] -> []
    | (first_giant, _, _) :: _ as rows ->
        let last_giant, _, last_detect = List.nth rows (List.length rows - 1) in
        let max_second =
          List.fold_left (fun acc (_, s, _) -> Float.max acc s) 0.0 rows
        in
        [
          Claim.ceiling ~id:"E11/subcritical-giant"
            ~description:
              (Printf.sprintf "mean giant fraction at p*n = %.2f (below 1)"
                 (List.hd ratios))
            ~max:0.1 first_giant;
          Claim.floor ~id:"E11/supercritical-giant"
            ~description:
              (Printf.sprintf "mean giant fraction at p*n = %.2f (above 1)"
                 (List.nth ratios (List.length ratios - 1)))
            ~min:0.15 last_giant;
          Claim.floor ~id:"E11/giant-detector"
            ~description:
              "fraction of worlds passing the giant test at the largest ratio"
            ~min:0.9 last_detect;
          Claim.ceiling ~id:"E11/second-component"
            ~description:
              "max mean second-component fraction over the sweep (uniqueness)"
            ~max:0.1 max_second;
        ]
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes ~claims
    [ (Printf.sprintf "component census of H_%d across the AKS threshold" n, !table) ]
