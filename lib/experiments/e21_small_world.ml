(* E21 — the introduction's motivating phenomenon (Kleinberg, STOC
   2000): in a small-world lattice short paths always exist for r <= 2,
   but a decentralised greedy router finds short routes only at the
   inverse-square exponent r = 2. Existence and findability part ways —
   exactly the distinction the paper studies under percolation. The
   routers and probe accounting are ours; the topology carries the
   structural randomness. *)

let id = "E21"
let title = "Small-world lattices: existence vs findability (Kleinberg)"

let claim =
  "On the m x m grid with one d^-r long-range contact per node, greedy routing \
   is polylog(m) iff r = 2; for other r the greedy time is polynomial although \
   the true distances stay small for all r <= 2."

let run ?(quick = false) stream =
  let rs = if quick then [ 0.0; 2.0; 4.0 ] else [ 0.0; 1.0; 2.0; 3.0; 4.0 ] in
  let sides = if quick then [ 12 ] else [ 16; 32; 48 ] in
  let graphs_per_cell = if quick then 2 else 3 in
  let pairs_per_graph = if quick then 5 else 10 in
  let table =
    ref
      (Stats.Table.create
         ~headers:[ "r"; "m"; "greedy hops"; "true distance"; "stretch" ])
  in
  let largest_m = List.fold_left max 0 sides in
  let at_largest_m = ref [] in
  List.iteri
    (fun r_index r ->
      List.iteri
        (fun m_index m ->
          let substream = Prng.Stream.split stream ((r_index * 100) + m_index) in
          let greedy_hops = ref Stats.Summary.empty in
          let true_distance = ref Stats.Summary.empty in
          for g = 1 to graphs_per_cell do
            let graph =
              Topology.Small_world.graph (Prng.Stream.split substream g) ~m ~r
            in
            (* Fault-free world: this experiment isolates findability. *)
            let world = Worldpool.build graph ~p:1.0 ~seed:1L in
            let pair_stream = Prng.Stream.split substream (100 + g) in
            for _ = 1 to pairs_per_graph do
              let source, target =
                Prng.Sample.distinct_pair pair_stream graph.Topology.Graph.vertex_count
              in
              (match
                 Routing.Router.run Routing.Greedy.router world ~source ~target
               with
              | Routing.Outcome.Found { path; _ } ->
                  greedy_hops :=
                    Stats.Summary.add !greedy_hops (float_of_int (List.length path - 1))
              | Routing.Outcome.No_path _ | Routing.Outcome.Budget_exceeded _ -> ());
              match Topology.Graph.bfs_distance graph source target with
              | Some d -> true_distance := Stats.Summary.add !true_distance (float_of_int d)
              | None -> ()
            done
          done;
          let hops = Stats.Summary.mean !greedy_hops in
          let dist = Stats.Summary.mean !true_distance in
          if m = largest_m then at_largest_m := (hops, dist) :: !at_largest_m;
          table :=
            Stats.Table.add_row !table
              [
                Printf.sprintf "%.1f" r;
                string_of_int m;
                Printf.sprintf "%.1f" hops;
                Printf.sprintf "%.1f" dist;
                Printf.sprintf "%.1f" (hops /. dist);
              ])
        sides)
    rs;
  let notes =
    [
      Printf.sprintf
        "%d random graphs and %d random pairs per cell; fault-free (p = 1) — the \
         randomness is structural. Greedy = our distance-directed router, which on \
         a fault-free augmented grid is exactly Kleinberg's decentralised \
         algorithm."
        graphs_per_cell pairs_per_graph;
      "Readable signatures at these lattice sizes: the true-distance column stays \
       logarithmic for r <= 2 and grows towards the grid metric for r > 2, while \
       the stretch column (greedy/true) is largest at small r — short paths exist \
       but greedy cannot aim the undirected long links — and falls to ~1 at large \
       r where greedy is optimal on an essentially plain grid. Kleinberg's full \
       r = 2 minimum of the greedy column itself emerges only at lattice sizes \
       (m ~ 10^4) beyond this harness; at m <= 48 the r <= 2 greedy times are \
       statistically tied, exactly as his asymptotics predict (m^{2/3} vs log^2 m \
       cross near m ~ 10^2).";
    ]
  in
  let claims =
    match List.rev !at_largest_m with
    | (hops_first, dist_first) :: _ :: _ as rows ->
        let hops_last, dist_last = List.nth rows (List.length rows - 1) in
        let distance_claim =
          Claim.increasing ~id:"E21/distance-grows-with-r"
            ~description:
              (Printf.sprintf
                 "mean true distance at m = %d grows from r = %.1f to r = %.1f \
                  — undirected long links shrink distances only for small r"
                 largest_m (List.hd rs)
                 (List.nth rs (List.length rs - 1)))
            [ dist_first; dist_last ]
        in
        if quick then [ distance_claim ]
        else
          [
            distance_claim;
            Claim.decreasing ~id:"E21/stretch-falls-with-r"
              ~description:
                (Printf.sprintf
                   "greedy/true stretch at m = %d falls from r = %.1f to r = \
                    %.1f — greedy cannot aim the long links it cannot see"
                   largest_m (List.hd rs)
                   (List.nth rs (List.length rs - 1)))
              [ hops_first /. dist_first; hops_last /. dist_last ];
          ]
    | _ -> []
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes ~claims
    [ ("greedy routing vs true distances on small-world lattices", !table) ]
