(* E22 — random vs worst-case faults (the two models of Section 1).

   On H_10 the antipodal pair has edge connectivity exactly n = 10
   (Menger + the hypercube's degree), so a min-cut adversary
   disconnects it with 10 deletions while random faults need to kill an
   entire degree-10 neighbourhood by luck. We sweep the deletion budget
   for three strategies and record survival and conditioned routing
   cost on the surviving worlds. *)

let id = "E22"
let title = "Worst-case vs random faults: the price of adversarial knowledge"

let claim =
  "The random-fault model of the paper is benign compared to the worst case: \
   edge connectivity n bounds the adversary's budget to disconnect, while random \
   deletions at the same count leave the pair connected w.h.p. until a constant \
   fraction of all edges is gone."

let run ?(quick = false) stream =
  let n = if quick then 8 else 10 in
  let trials = if quick then 5 else 20 in
  let graph = Topology.Hypercube.graph n in
  let source = 0 in
  let target = Topology.Hypercube.antipode ~n source in
  let connectivity = Topology.Mincut.max_flow graph ~source ~sink:target in
  let total_edges = Topology.Graph.edge_count graph in
  let budgets =
    if quick then [ connectivity / 2; connectivity; 4 * connectivity ]
    else
      [
        connectivity / 2;
        connectivity - 1;
        connectivity;
        4 * connectivity;
        total_edges / 4;
        total_edges / 2;
      ]
  in
  let strategies =
    [
      ("random", Percolation.Adversary.Random);
      ("min-cut", Percolation.Adversary.Min_cut);
      ("around-source", Percolation.Adversary.Around_source);
    ]
  in
  let table =
    ref
      (Stats.Table.create
         ~headers:[ "deleted k"; "strategy"; "P[u~v]"; "mean greedy probes (survivors)" ])
  in
  let survival = ref [] in
  List.iteri
    (fun budget_index budget ->
      List.iteri
        (fun strategy_index (name, strategy) ->
          let substream =
            Prng.Stream.split stream ((budget_index * 10) + strategy_index)
          in
          let survived = ref 0 in
          let probes = ref Stats.Summary.empty in
          for trial = 1 to trials do
            (* Base world fault-free: isolate the adversary's effect. *)
            let base =
              Worldpool.build graph ~p:1.0
                ~seed:(Prng.Coin.derive (Prng.Stream.seed substream) trial)
            in
            let attacked =
              Percolation.Adversary.attack
                (Prng.Stream.split substream trial)
                base strategy ~source ~target ~budget
            in
            match Percolation.Reveal.connected attacked source target with
            | Percolation.Reveal.Connected _ ->
                incr survived;
                (match
                   Routing.Router.run Routing.Greedy.router attacked ~source ~target
                 with
                | Routing.Outcome.Found { probes = cost; _ } ->
                    probes := Stats.Summary.add !probes (float_of_int cost)
                | Routing.Outcome.No_path _ | Routing.Outcome.Budget_exceeded _ -> ())
            | Percolation.Reveal.Disconnected | Percolation.Reveal.Unknown -> ()
          done;
          survival :=
            ((budget, name), float_of_int !survived /. float_of_int trials)
            :: !survival;
          table :=
            Stats.Table.add_row !table
              [
                string_of_int budget;
                name;
                Printf.sprintf "%d/%d" !survived trials;
                (if Stats.Summary.count !probes = 0 then "-"
                 else Printf.sprintf "%.0f" (Stats.Summary.mean !probes));
              ])
        strategies)
    budgets;
  let notes =
    [
      Printf.sprintf
        "H_%d, antipodal pair; measured edge connectivity = %d (Menger: equals the \
         degree); total edges = %d; deletions applied to a fault-free world."
        n connectivity total_edges;
      "Expect min-cut and around-source to kill the pair at exactly k = \
       connectivity while random needs k on the order of the whole edge set; on \
       surviving worlds, adversarial deletions also inflate the routing cost more \
       per deleted edge.";
    ]
  in
  let max_budget = List.fold_left max 0 budgets in
  let claims =
    let lookup key = List.assoc_opt key !survival in
    List.concat
      [
        (match lookup (connectivity, "min-cut") with
        | Some s ->
            [
              Claim.ceiling ~id:"E22/min-cut-kills"
                ~description:
                  (Printf.sprintf
                     "min-cut survival at k = connectivity = %d — Menger's \
                      budget always disconnects"
                     connectivity)
                ~max:0.01 s;
            ]
        | None -> []);
        (match lookup (connectivity, "around-source") with
        | Some s ->
            [
              Claim.ceiling ~id:"E22/around-source-kills"
                ~description:
                  (Printf.sprintf
                     "around-source survival at k = connectivity = %d — the \
                      degree-targeting adversary also disconnects"
                     connectivity)
                ~max:0.01 s;
            ]
        | None -> []);
        (match lookup (connectivity, "random") with
        | Some s ->
            [
              Claim.floor ~id:"E22/random-survives-connectivity"
                ~description:
                  (Printf.sprintf
                     "random-fault survival at the adversary's lethal budget \
                      k = %d — the paper's fault model is benign here"
                     connectivity)
                ~min:0.8 s;
            ]
        | None -> []);
        (match lookup (max_budget, "random") with
        | Some s ->
            [
              Claim.floor ~id:"E22/random-survives-max-budget"
                ~description:
                  (Printf.sprintf
                     "random-fault survival at the largest budget k = %d (of \
                      %d edges) — random deletion needs a constant fraction"
                     max_budget total_edges)
                ~min:0.8 s;
            ]
        | None -> []);
      ]
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes ~claims
    [ ("survival and routing cost under three fault strategies", !table) ]
