(* E10 — Section 2's illustrative example and Lemma 5: the theta graph
   with d parallel length-2 paths at p = 1/sqrt(d). The birthday paradox
   keeps P[u ~ v] bounded away from 0 (exactly 1 - (1 - p^2)^d -> 1 - 1/e),
   yet a local router must probe Omega(d) edges. We measure connectivity
   against the exact formula and fit the probe growth in d; we also
   evaluate Lemma 5's certified bound with its exact eta = p. *)

let id = "E10"
let title = "Theta graph: birthday-paradox connectivity, linear probes (Lemma 5)"

let claim =
  "With d disjoint 2-paths and p = 1/sqrt(d): P[u ~ v] -> 1 - 1/e, yet local \
   routing needs Omega(d) probes (Lemma 5 with S = {v} + middles, eta = p)."

let run ?(quick = false) stream =
  let ds = if quick then [ 16; 64 ] else [ 16; 64; 256; 1024; 4096 ] in
  let trials = if quick then 10 else 40 in
  let table =
    ref
      (Stats.Table.create
         ~headers:
           [ "d"; "p"; "P[u~v] meas"; "P[u~v] exact"; "mean probes"; "probes/d" ])
  in
  let points = ref [] in
  let max_deviation = ref 0.0 in
  let last_probes_per_d = ref nan in
  List.iteri
    (fun index d ->
      let p = 1.0 /. sqrt (float_of_int d) in
      let graph = Topology.Theta.graph d in
      let substream = Prng.Stream.split stream index in
      let result =
        Trial.run substream ~trials ~max_attempts:(trials * 20)
          (Trial.spec ~graph ~p ~source:Topology.Theta.endpoint_u
             ~target:Topology.Theta.endpoint_v (fun _rand ~source:_ ~target:_ ->
               Routing.Local_bfs.router))
      in
      let mean = Trial.mean_probes_lower_bound result in
      let measured = Stats.Proportion.estimate result.Trial.connection in
      let exact = Topology.Theta.connection_probability ~d ~p in
      max_deviation := Float.max !max_deviation (Float.abs (measured -. exact));
      last_probes_per_d := mean /. float_of_int d;
      points := (float_of_int d, mean) :: !points;
      table :=
        Stats.Table.add_row !table
          [
            string_of_int d;
            Printf.sprintf "%.4f" p;
            Printf.sprintf "%.3f" (Stats.Proportion.estimate result.Trial.connection);
            Printf.sprintf "%.3f" (Topology.Theta.connection_probability ~d ~p);
            Printf.sprintf "%.0f" mean;
            Printf.sprintf "%.2f" (mean /. float_of_int d);
          ])
    ds;
  let fit_claims = ref [] in
  let notes =
    let base =
      [
        Printf.sprintf "1 - 1/e = %.3f is the d -> infinity connectivity limit."
          (1.0 -. exp (-1.0));
        (let d = List.nth ds (List.length ds - 1) in
         let p = 1.0 /. sqrt (float_of_int d) in
         let eta = Routing.Lower_bound.eta_theta ~p in
         let t = 0.1 /. eta in
         Printf.sprintf
           "Lemma 5 certificate at d = %d: with eta = p = %.4f, probing t = %.0f cut \
            edges succeeds with probability <= %.3f — so ~sqrt(d) cut probes (hence \
            Omega(d) total probes) are required."
           d p t
           (Routing.Lower_bound.bound ~t ~eta ~pr_path_in_s:0.0
              ~pr_connected:(Topology.Theta.connection_probability ~d ~p)));
      ]
    in
    if List.length !points >= 3 then begin
      let points = List.rev !points in
      let fit = Stats.Regression.power_law points in
      (* Fresh split index 9000 — the trial loop uses 0..|ds|-1. *)
      let ci =
        Stats.Regression.power_law_ci (Prng.Stream.split stream 9000) points
      in
      fit_claims :=
        [
          Claim.floor ~id:"E10/fit-r2" ~description:"power-law fit quality"
            ~min:0.9 fit.Stats.Regression.r_squared;
          Claim.contains ~id:"E10/exponent-ci"
            ~description:
              "bootstrap 95% CI of the probe-growth exponent, padded by 0.05 \
               for finite-size bias, contains 1 (linear in d)"
            ~lo:(ci.Stats.Regression.lo -. 0.05)
            ~hi:(ci.Stats.Regression.hi +. 0.05)
            1.0;
        ];
      Printf.sprintf
        "Probes grow as d^%.2f (R^2 = %.3f), bootstrap 95%% CI [%.2f, %.2f] — \
         linear in d."
        fit.Stats.Regression.slope fit.Stats.Regression.r_squared
        ci.Stats.Regression.lo ci.Stats.Regression.hi
      :: base
    end
    else base
  in
  let claims =
    let endpoint =
      match List.rev !points with
      | (d0, m0) :: _ :: _ as pts ->
          let d1, m1 = List.nth pts (List.length pts - 1) in
          [
            Claim.band ~id:"E10/exponent"
              ~description:
                "endpoint probe-growth exponent in d (Lemma 5: linear)"
              ~lo:0.7 ~hi:1.3
              (log (m1 /. m0) /. log (d1 /. d0));
          ]
      | _ -> []
    in
    endpoint
    @ [
        Claim.ceiling ~id:"E10/connectivity-agreement"
          ~description:
            "max |measured - exact| connection probability over the d sweep"
          ~max:(if quick then 0.3 else 0.15)
          !max_deviation;
        Claim.band ~id:"E10/probes-per-d"
          ~description:"probes/d at the largest d (the Omega(d) constant)"
          ~lo:0.3 ~hi:3.0 !last_probes_per_d;
      ]
    @ !fit_claims
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes ~claims
    [ ("local BFS on the theta graph at p = 1/sqrt(d)", !table) ]
