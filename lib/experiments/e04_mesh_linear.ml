(* E4 — Theorem 4: on the d-dimensional mesh, for any fixed p > p_c the
   path-following local router routes between vertices at distance n in
   expected O(n) probes. Sweep the distance for several p above
   p_c = 1/2 (d = 2) and check that probes/n settles to a p-dependent
   constant. *)

let id = "E4"
let title = "Mesh linear-time routing above criticality (Theorem 4)"

let claim =
  "For p > p_c the expected routing complexity between mesh vertices at distance n \
   is O(n); the constant grows as p approaches p_c but the linear shape persists."

let run ?(quick = false) stream =
  let ps = if quick then [ 0.70 ] else [ 0.55; 0.60; 0.70; 0.90 ] in
  let distances = if quick then [ 10; 20 ] else [ 10; 20; 40; 60 ] in
  let trials = if quick then 5 else 25 in
  let d = 2 in
  let table =
    ref
      (Stats.Table.create
         ~headers:[ "p"; "n (distance)"; "mean probes"; "probes/n"; "P[u~v]"; "D/n" ])
  in
  let notes = ref [] in
  let claims = ref [] in
  (* Slope bands around the recorded full-run constants c(p) (EXPERIMENTS.md:
     58.6 / 29.5 / 10.4 / 2.9) with room for the quick 2-point fits. *)
  let slope_band p =
    if p < 0.575 then (10.0, 150.0)
    else if p < 0.65 then (5.0, 80.0)
    else if p < 0.8 then (2.0, 40.0)
    else (0.5, 15.0)
  in
  List.iteri
    (fun p_index p ->
      let points = ref [] in
      let last_stretch = ref nan in
      List.iteri
        (fun n_index n ->
          let margin = 10 in
          let m = n + (2 * margin) in
          let graph = Topology.Mesh.graph ~d ~m in
          let row = m / 2 in
          let source = Topology.Mesh.index ~m [| margin; row |] in
          let target = Topology.Mesh.index ~m [| margin + n; row |] in
          let substream = Prng.Stream.split stream ((p_index * 100) + n_index) in
          let result =
            Trial.run substream ~trials ~max_attempts:(trials * 400)
              (Trial.spec ~graph ~p ~source ~target (fun _rand ~source ~target ->
                   Routing.Path_follow.mesh ~d ~m ~source ~target))
          in
          let mean = Trial.mean_probes_lower_bound result in
          let chem = Stats.Summary.mean result.Trial.chemical_distances in
          if Stats.Censored.count result.Trial.observations > 0 then begin
            points := (float_of_int n, mean) :: !points;
            last_stretch := chem /. float_of_int n
          end;
          table :=
            Stats.Table.add_row !table
              [
                Printf.sprintf "%.2f" p;
                string_of_int n;
                Printf.sprintf "%.0f" mean;
                Printf.sprintf "%.1f" (mean /. float_of_int n);
                Printf.sprintf "%.2f" (Stats.Proportion.estimate result.Trial.connection);
                Printf.sprintf "%.2f" (chem /. float_of_int n);
              ])
        distances;
      if List.length !points >= 2 then begin
        let fit = Stats.Regression.linear (List.rev !points) in
        notes :=
          Printf.sprintf
            "p = %.2f: probes = %.1f * n + %.0f (R^2 = %.3f) — linear in the distance."
            p fit.Stats.Regression.slope fit.Stats.Regression.intercept
            fit.Stats.Regression.r_squared
          :: !notes;
        let lo, hi = slope_band p in
        claims :=
          Claim.ceiling
            ~id:(Printf.sprintf "E4/stretch[%.2f]" p)
            ~description:
              (Printf.sprintf
                 "chemical stretch D/n at the largest distance, p=%.2f (Lemma \
                  8: bounded)"
                 p)
            ~max:2.5 !last_stretch
          :: Claim.floor
               ~id:(Printf.sprintf "E4/fit-r2[%.2f]" p)
               ~description:(Printf.sprintf "linear fit quality at p=%.2f" p)
               ~min:0.8 fit.Stats.Regression.r_squared
          :: Claim.band
               ~id:(Printf.sprintf "E4/per-hop-constant[%.2f]" p)
               ~description:
                 (Printf.sprintf
                    "fitted per-distance constant c(%.2f) (Thm 4: O(n) with \
                     p-dependent constant)"
                    p)
               ~lo ~hi fit.Stats.Regression.slope
          :: !claims
      end)
    ps;
  notes :=
    "Pairs sit on a horizontal line 10 cells from the boundary of an (n+20)^2 cube; \
     D/n is the chemical-distance stretch (Lemma 8 says it is bounded)." :: !notes;
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream)
    ~notes:(List.rev !notes) ~claims:(List.rev !claims)
    [ ("2-d mesh path-follow router, probes vs distance", !table) ]
