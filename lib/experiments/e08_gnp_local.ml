(* E8 — Theorem 10: local routing on G_{n,p} with p = c/n (c > 1) costs
   Omega(n^2) probes. Percolating the complete graph K_n with retention
   c/n is exactly G_{n,c/n}; sweep n and fit the power law. *)

let id = "E8"
let title = "G(n,p) local routing is quadratic (Theorem 10)"

let claim =
  "Any local routing algorithm on G_{n,c/n} (c > 1) has expected complexity \
   Omega(n^2): local routers cannot do much better than probing all edges."

let c = 3.0

let sizes ~quick = if quick then [ 100; 200 ] else [ 100; 200; 400; 800; 1600 ]

let run ?(quick = false) stream =
  let trials = if quick then 4 else 12 in
  let table =
    ref
      (Stats.Table.create
         ~headers:[ "n"; "p=c/n"; "mean probes"; "probes/n^2"; "P[u~v]"; "path len" ])
  in
  let points = ref [] in
  List.iteri
    (fun index n ->
      let p = c /. float_of_int n in
      let graph = Topology.Complete.graph n in
      let substream = Prng.Stream.split stream index in
      let result =
        Trial.run substream ~trials
          (Trial.spec ~graph ~p ~source:0 ~target:(n - 1)
             (fun _rand ~source:_ ~target:_ -> Routing.Local_bfs.router))
      in
      let mean = Trial.mean_probes_lower_bound result in
      let n2 = float_of_int n ** 2.0 in
      points := (float_of_int n, mean) :: !points;
      table :=
        Stats.Table.add_row !table
          [
            string_of_int n;
            Printf.sprintf "%.4f" p;
            Printf.sprintf "%.0f" mean;
            Printf.sprintf "%.3f" (mean /. n2);
            Printf.sprintf "%.2f" (Stats.Proportion.estimate result.Trial.connection);
            Printf.sprintf "%.1f" (Stats.Summary.mean result.Trial.path_lengths);
          ])
    (sizes ~quick);
  let claims = ref [] in
  (match List.rev !points with
  | (n0, m0) :: _ :: _ as pts ->
      let n1, m1 = List.nth pts (List.length pts - 1) in
      claims :=
        [
          Claim.band ~id:"E8/exponent"
            ~description:
              "endpoint power-law exponent of local probes in n (Thm 10 \
               predicts 2)"
            ~lo:1.2 ~hi:2.6
            (log (m1 /. m0) /. log (n1 /. n0));
        ]
  | _ -> ());
  let notes =
    let base =
      [ Printf.sprintf "c = %.1f; pairs (0, n-1); %d conditioned trials per size." c trials ]
    in
    if List.length !points >= 3 then begin
      let points = List.rev !points in
      let fit = Stats.Regression.power_law points in
      (* Fresh split index 9000 — the trial loop uses 0..|sizes|-1. *)
      let ci =
        Stats.Regression.power_law_ci (Prng.Stream.split stream 9000) points
      in
      claims :=
        !claims
        @ [
            Claim.floor ~id:"E8/fit-r2"
              ~description:"power-law fit quality" ~min:0.9
              fit.Stats.Regression.r_squared;
            Claim.contains ~id:"E8/exponent-ci"
              ~description:
                "bootstrap 95% CI of the fitted exponent contains Theorem \
                 10's 2"
              ~lo:ci.Stats.Regression.lo ~hi:ci.Stats.Regression.hi 2.0;
          ];
      Printf.sprintf
        "Fitted exponent %.2f (R^2 = %.3f), bootstrap 95%% CI [%.2f, %.2f] — \
         Theorem 10 predicts 2; probes/n^2 should level off at a constant."
        fit.Stats.Regression.slope fit.Stats.Regression.r_squared
        ci.Stats.Regression.lo ci.Stats.Regression.hi
      :: base
    end
    else base
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes
    ~claims:!claims
    [ ("local BFS on G(n, c/n)", !table) ]
