(** Conditioned routing trials — the deterministic multicore engine.

    The paper's routing complexity (Definition 2) is conditioned on
    [{u ~ v}]. A trial therefore draws fresh percolation worlds until the
    chosen pair is connected (checked through the uncounted ground-truth
    {!Percolation.Reveal}), then lets the router attempt the routing and
    records the probe count — censored at the budget when one is set.

    The rejection-sampling attempts double as an estimate of
    [Pr\[u ~ v\]], reported alongside.

    {2 Determinism}

    Attempt [i] draws all of its randomness — the percolation world and
    any random choices of the router — from [Prng.Stream.split root i],
    a pure function of the root seed. Attempts can therefore be
    evaluated on any number of domains in any order; the engine merges
    per-domain accumulators over a fixed chunking of the attempt index
    space, so {!run_par} returns {e bit-identical} results for every
    [jobs] value (and [run_par ~jobs:1] is exactly the sequential
    run).

    {2 Observability}

    With {!Obs.Trace} enabled, every attempt's probe-level events are
    captured into per-attempt buffers on whatever domain computed them
    and concatenated — during the same ordered truncation scan that
    merges the statistics — into one [trace/v1] run, written to the
    sink in a single call. The trace bytes are byte-identical for every
    [jobs] value. With {!Obs.Metrics} enabled, per-attempt counter
    snapshots ride the accumulator merge tree (integer-only, so the
    merged snapshot is order-independent) and the run's totals are both
    returned in {!result.metrics} and absorbed into the global
    registry. With both off, the per-attempt overhead is two atomic
    reads. *)

type spec = {
  graph : Topology.Graph.t;
  p : float;
  source : int;
  target : int;
  router : Prng.Stream.t -> source:int -> target:int -> Routing.Router.t;
      (** Built per trial from that trial's private stream: backbone
          routers depend on the endpoints; randomized routers must draw
          from the given stream (never from shared state) so trials stay
          independent of execution order. Deterministic routers ignore
          the stream. *)
  budget : int option;  (** Probe cap; [None] = unlimited. *)
  reveal_limit : int option;
      (** Cap on ground-truth exploration; verdict [Unknown] counts as
          not connected. [None] = explore fully. *)
  worlds : Worldpool.provider;
      (** Where attempt worlds come from. Attempt [i] asks for the
          world of its split seed; the provider must be observationally
          equal to [World.create graph ~p ~seed] (the {!Worldpool}
          contract), so checkpoint keys and report bytes — which digest
          [(graph, p, seed)], never the provider — stay valid. *)
}

val spec :
  ?budget:int ->
  ?reveal_limit:int ->
  ?worlds:Worldpool.provider ->
  graph:Topology.Graph.t ->
  p:float ->
  source:int ->
  target:int ->
  (Prng.Stream.t -> source:int -> target:int -> Routing.Router.t) ->
  spec
(** [worlds] defaults to [Worldpool.detached graph ~p] — fresh
    single-use construction, the historical behaviour. Pass a
    {!Worldpool.provider} to serve attempts from a resident pool. *)

type result = {
  observations : Stats.Censored.t;
      (** One per conditioned trial: distinct probes, censored at budget. *)
  connection : Stats.Proportion.t;
      (** Connected worlds over all attempted worlds. *)
  path_lengths : Stats.Summary.t;  (** Lengths of found paths. *)
  chemical_distances : Stats.Summary.t;
      (** Ground-truth percolation distances of the conditioned pairs. *)
  failures : int;
      (** Routings that returned [No_path] despite ground-truth saying
          connected — must be 0 unless a reveal limit truncated. *)
  requested : int;
      (** The [trials] count that was asked for. When [max_attempts]
          ran out of worlds first, fewer conditioned measurements were
          taken: [Stats.Censored.count observations < requested]. *)
  metrics : Obs.Metrics.snapshot;
      (** Counters/histograms emitted by the used attempts
          ({!Obs.Metrics.empty} when metrics are disabled). Merged in
          fixed chunk order — identical for every [jobs] value. *)
}

val shortfall : result -> int
(** [requested] minus the conditioned measurements actually taken —
    positive exactly when [max_attempts] was exhausted before [trials]
    acceptances. Silent in no report only when 0. *)

val shortfall_note : label:string -> result -> string option
(** A ready-made report note flagging a shortfall, [None] when the
    requested trial count was met. Experiments append these to their
    report notes so attempt-cap exhaustion is never silent. *)

val run : Prng.Stream.t -> trials:int -> ?max_attempts:int -> spec -> result
(** [run stream ~trials spec] performs up to [trials] conditioned
    measurements, drawing at most [max_attempts] (default
    [100 × trials]) worlds in total. Runs on
    {!Engine_par.Pool.default_jobs} domains (1 unless raised, e.g. by
    the CLI's [--jobs]); the result does not depend on the job count.
    @raise Invalid_argument if [trials <= 0]. *)

val run_par :
  ?jobs:int -> Prng.Stream.t -> trials:int -> ?max_attempts:int -> spec -> result
(** [run_par ~jobs stream ~trials spec] is {!run} on [jobs] domains.
    Bit-identical to [run_par ~jobs:1] for every [jobs]. *)

val median_observation : result -> Stats.Censored.observation option
(** Median probe count of the conditioned trials. *)

val mean_probes_lower_bound : result -> float
(** Mean probe count, substituting budget for censored trials. *)
