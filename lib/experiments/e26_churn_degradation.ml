(* E26 — protocol progress under link churn (ROADMAP O3).

   The paper's faults are decided before routing starts; here links
   fail and repair *while the protocol runs* (Netsim.Churn's seeded
   renewal process, fail rate swept at fixed repair rate). Flooding
   sends each message exactly once, so a churned-down link silently
   eats it — delivery degrades in direct proportion to the down
   fraction. Gossip re-pushes every round, so a blocked link merely
   delays it — the epidemic reaches the target at every swept rate,
   only later. That contrast is the graceful-degradation claim.

   Trials run through Simrun, so a churn sweep is parallel,
   fault-injectable and checkpoint/resumable like any trial campaign;
   each cell is a pure function of its index. *)

let id = "E26"
let title = "Graceful degradation under link churn"

let claim =
  "Under seeded link churn at fixed repair rate, send-once flooding loses \
   messages in proportion to the churned-down link fraction (delivery rate \
   strictly degrades as the fail rate grows), while round-repeating gossip \
   degrades gracefully: it still informs the antipodal target at every swept \
   rate up to 0.2, paying only in latency."

let run ?(quick = false) stream =
  let n = if quick then 7 else 9 in
  let trials = if quick then 4 else 12 in
  let rates = if quick then [ 0.0; 0.05; 0.2 ] else [ 0.0; 0.02; 0.05; 0.1; 0.2 ] in
  let repair = 0.3 in
  let gossip_rounds = if quick then 80 else 120 in
  let graph = Topology.Hypercube.graph n in
  let vertex_count = graph.Topology.Graph.vertex_count in
  let source = 0 in
  let target = Topology.Hypercube.antipode ~n source in
  let rates_arr = Array.of_list rates in
  let key =
    Printf.sprintf "e26;graph=%s;rates=%s;repair=%.17g;gossip_rounds=%d;trials=%d;seed=%Ld"
      graph.Topology.Graph.name
      (String.concat "," (List.map (Printf.sprintf "%.17g") rates))
      repair gossip_rounds trials (Prng.Stream.seed stream)
  in
  (* One cell per (rate, trial): flood delivery rate, flood informed
     fraction, gossip reached flag, gossip rounds-to-target, churned
     blocked sends — all pure in the index. *)
  let compute index =
    let substream = Prng.Stream.split stream index in
    let rate = rates_arr.(index / trials) in
    let world_seed = Prng.Coin.derive (Prng.Stream.seed substream) 1 in
    let world = Worldpool.build graph ~p:1.0 ~seed:world_seed in
    let churn =
      if rate <= 0.0 then None
      else
        Some
          (Netsim.Churn.make ~fail:rate ~repair
             ~seed:(Prng.Coin.derive (Prng.Stream.seed substream) 2)
             ())
    in
    let flood_engine = Netsim.Engine.create ?churn world Netsim.Flood.protocol in
    Netsim.Flood.start flood_engine ~source;
    ignore
      (Netsim.Engine.run ~max_rounds:(4 * n + 60) flood_engine
         ~until:(fun _ -> false)
        : [ `Stopped of int | `Quiescent of int | `Out_of_rounds ]);
    let flood_metrics = Netsim.Engine.metrics flood_engine in
    let flood_delivery = Netsim.Metrics.delivery_rate flood_metrics in
    let flood_informed =
      float_of_int (Netsim.Flood.informed_count flood_engine)
      /. float_of_int vertex_count
    in
    let blocked = float_of_int (Netsim.Metrics.churn_blocked flood_metrics) in
    let gossip_engine = Netsim.Engine.create ?churn world Netsim.Gossip.protocol in
    Netsim.Gossip.start gossip_engine ~source;
    let gossip_result =
      Netsim.Engine.run ~max_rounds:gossip_rounds gossip_engine ~until:(fun e ->
          Netsim.Gossip.informed_at e target <> None)
    in
    let gossip_reached, gossip_latency =
      match gossip_result with
      | `Stopped rounds -> (1.0, float_of_int rounds)
      | `Quiescent _ | `Out_of_rounds -> (0.0, float_of_int gossip_rounds)
    in
    [| flood_delivery; flood_informed; gossip_reached; gossip_latency; blocked |]
  in
  let cells = Simrun.run ~key ~count:(Array.length rates_arr * trials) compute in
  let table =
    ref
      (Stats.Table.create
         ~headers:
           [
             "fail rate";
             "flood delivery";
             "flood informed";
             "gossip reach";
             "mean gossip rounds";
             "mean blocked sends";
           ])
  in
  let per_rate = ref [] in
  Array.iteri
    (fun rate_index rate ->
      let delivery = ref Stats.Summary.empty in
      let informed = ref Stats.Summary.empty in
      let reached = ref Stats.Summary.empty in
      let latency = ref Stats.Summary.empty in
      let blocked = ref Stats.Summary.empty in
      for trial = 0 to trials - 1 do
        match cells.((rate_index * trials) + trial) with
        | [| d; inf; r; l; b |] ->
            delivery := Stats.Summary.add !delivery d;
            informed := Stats.Summary.add !informed inf;
            reached := Stats.Summary.add !reached r;
            (* Latency is conditioned on reaching (the cap would skew
               the mean); reach itself is claimed separately. *)
            if r > 0.5 then latency := Stats.Summary.add !latency l;
            blocked := Stats.Summary.add !blocked b
        | _ -> () (* quarantined cell: skip *)
      done;
      if Stats.Summary.count !delivery > 0 then begin
        per_rate :=
          ( rate_index,
            ( Stats.Summary.mean !delivery,
              Stats.Summary.mean !reached,
              (if Stats.Summary.count !latency = 0 then nan
               else Stats.Summary.mean !latency) ) )
          :: !per_rate;
        table :=
          Stats.Table.add_row !table
            [
              Printf.sprintf "%.2f" rate;
              Printf.sprintf "%.3f" (Stats.Summary.mean !delivery);
              Printf.sprintf "%.3f" (Stats.Summary.mean !informed);
              Printf.sprintf "%.2f" (Stats.Summary.mean !reached);
              (if Stats.Summary.count !latency = 0 then "-"
               else Printf.sprintf "%.1f" (Stats.Summary.mean !latency));
              Printf.sprintf "%.0f" (Stats.Summary.mean !blocked);
            ]
      end)
    rates_arr;
  let per_rate = List.rev !per_rate in
  let delivery_of i =
    Option.map (fun (d, _, _) -> d) (List.assoc_opt i per_rate)
  in
  let reach_of i = Option.map (fun (_, r, _) -> r) (List.assoc_opt i per_rate) in
  let latency_of i =
    Option.map (fun (_, _, l) -> l) (List.assoc_opt i per_rate)
  in
  let n_rates = Array.length rates_arr in
  let notes =
    [
      Printf.sprintf
        "H_%d, fault-free base world (p = 1.0), source 0 to its antipode; fail \
         rates %s at repair rate %.1f (geometric sojourns, every link starts \
         up); %d trials per rate, gossip capped at %d rounds."
        n
        (String.concat ", " (List.map (Printf.sprintf "%g") rates))
        repair trials gossip_rounds;
      "Flood delivery tracks the up fraction of links at send time; gossip \
       converts the same churn into latency because an informed node pushes \
       again every round. Blocked sends count percolation-open links that \
       were churned down at the send round (netsim.churn.blocked).";
    ]
  in
  let graceful_rates =
    (* The threshold of the headline claim: every swept rate <= 0.1. *)
    List.filteri (fun i _ -> rates_arr.(i) <= 0.1) (List.init n_rates Fun.id)
  in
  let claims =
    List.concat
      [
        (match delivery_of 0 with
        | Some d ->
            [
              Claim.floor ~id:"E26/zero-churn-full-delivery"
                ~description:
                  "flood delivery rate without churn on the fault-free world \
                   — every send lands"
                ~min:0.999 d;
            ]
        | None -> []);
        (let curve =
           List.filter_map delivery_of (List.init n_rates Fun.id)
         in
         if List.length curve = n_rates then
           [
             Claim.decreasing ~id:"E26/flood-delivery-degrades"
               ~description:
                 "flood delivery rate is non-increasing in the churn fail \
                  rate — send-once protocols pay for every down link"
               curve;
           ]
         else []);
        (let reaches = List.filter_map reach_of graceful_rates in
         if reaches <> [] then
           [
             Claim.floor ~id:"E26/gossip-graceful-to-0.1"
               ~description:
                 "minimum gossip target-reach rate over all churn rates <= \
                  0.1 — the epidemic still gets through"
               ~min:0.9
               (List.fold_left min 1.0 reaches);
           ]
         else []);
        (match (latency_of 0, latency_of (n_rates - 1)) with
        | Some l0, Some l1 when Float.is_finite l0 && Float.is_finite l1 ->
            [
              Claim.increasing ~id:"E26/gossip-pays-in-latency"
                ~description:
                  "mean gossip rounds to the target, no churn vs the highest \
                   rate — graceful degradation is bought with time"
                [ l0; l1 ];
            ]
        | _ -> []);
        (match delivery_of (n_rates - 1) with
        | Some d ->
            [
              Claim.band ~id:"E26/max-churn-delivery-band"
                ~description:
                  "flood delivery rate at the highest fail rate (0.2 vs \
                   repair 0.3) — churn bites but the network stays mostly up"
                ~lo:0.4 ~hi:0.95 d;
            ]
        | None -> []);
      ]
  in
  Report.make ~id ~title ~claim ~seed:(Prng.Stream.seed stream) ~notes ~claims
    [ ("protocol progress vs churn fail rate", !table) ]
