type provider = seed:int64 -> Percolation.World.t

type stats = { resident : int; constructed : int; hits : int; evicted : int }

type t = {
  mutex : Mutex.t;
  table : (string, Percolation.World.t) Hashtbl.t;
  order : string Queue.t;  (* insertion order, for FIFO eviction *)
  capacity : int;
  mutable constructed : int;
  mutable hits : int;
  mutable evicted : int;
}

let default_capacity = 64

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Worldpool.create: capacity must be positive";
  {
    mutex = Mutex.create ();
    table = Hashtbl.create (2 * capacity);
    order = Queue.create ();
    capacity;
    constructed = 0;
    hits = 0;
    evicted = 0;
  }

let build ?site_p graph ~p ~seed = Percolation.World.create ?site_p graph ~p ~seed

let detached ?site_p graph ~p : provider = fun ~seed -> build ?site_p graph ~p ~seed

let coupled ?site graph ~seed = Percolation.Coupled.create ?site graph ~seed
let cut ?site_p family ~p = Percolation.Coupled.world_at ?site_p family ~p

(* Graph names are unique per family+parameters (the registries
   guarantee it), so the key needs no structural digest; p is printed
   round-trip exact, matching the checkpoint-key discipline. *)
let key_string (graph : Topology.Graph.t) ~p ~site_p ~seed =
  Printf.sprintf "%s;p=%.17g;site=%s;seed=%Ld" graph.Topology.Graph.name p
    (match site_p with None -> "none" | Some q -> Printf.sprintf "%.17g" q)
    seed

let poolable (graph : Topology.Graph.t) =
  graph.Topology.Graph.edge_id_bound <= Percolation.World.cache_gate
  && graph.Topology.Graph.vertex_count <= Percolation.World.cache_gate

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let get ?site_p t graph ~p ~seed =
  if not (poolable graph) then begin
    locked t (fun () -> t.constructed <- t.constructed + 1);
    build ?site_p graph ~p ~seed
  end
  else
    let key = key_string graph ~p ~site_p ~seed in
    (* Construction happens inside the lock so a key is built at most
       once — the pool's whole point; resident worlds are startup-time
       objects, so the serialisation cost is irrelevant. *)
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some world ->
            t.hits <- t.hits + 1;
            world
        | None ->
            let world = build ?site_p graph ~p ~seed in
            Percolation.World.prefill world;
            t.constructed <- t.constructed + 1;
            if Hashtbl.length t.table >= t.capacity then begin
              let oldest = Queue.pop t.order in
              Hashtbl.remove t.table oldest;
              t.evicted <- t.evicted + 1
            end;
            Hashtbl.replace t.table key world;
            Queue.push key t.order;
            world)

let provider ?site_p t graph ~p : provider =
 fun ~seed -> get ?site_p t graph ~p ~seed

let stats t =
  locked t (fun () ->
      {
        resident = Hashtbl.length t.table;
        constructed = t.constructed;
        hits = t.hits;
        evicted = t.evicted;
      })

let metrics_snapshot t =
  let s = stats t in
  let registry = Obs.Metrics.create () in
  Obs.Metrics.add registry "worldpool.constructed" s.constructed;
  Obs.Metrics.add registry "worldpool.hits" s.hits;
  Obs.Metrics.add registry "worldpool.evicted" s.evicted;
  Obs.Metrics.add registry "worldpool.resident" s.resident;
  Obs.Metrics.snapshot registry
