(* Link churn: every edge independently alternates between up and down
   over rounds, driven by a seeded alternating-renewal process. The
   plan (churnplan/v1) carries only the two hazard rates and a seed;
   the whole trajectory of every link is a pure function of
   (plan seed, world seed, edge id), so a churned simulation is exactly
   as reproducible as a static one — at any [--jobs], across kills and
   resumes — by the same argument as the percolation edge coins. *)

type plan = { fail : float; repair : float; seed : int64 }

let validate_rate name x =
  if not (Float.is_finite x) || x < 0.0 || x > 1.0 then
    invalid_arg (Printf.sprintf "Netsim.Churn: %s rate must be in [0, 1]" name)

let make ?(seed = 0L) ~fail ~repair () =
  validate_rate "fail" fail;
  validate_rate "repair" repair;
  { fail; repair; seed }

let fail_rate t = t.fail
let repair_rate t = t.repair
let plan_seed t = t.seed

let describe t =
  Printf.sprintf "fail=%g,repair=%g,seed=%Ld" t.fail t.repair t.seed

(* ------------------------------------------------------------------ *)
(* churnplan/v1.                                                       *)

let schema = "churnplan/v1"

let to_json t =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String schema);
      ("fail", Obs.Json.Float t.fail);
      ("repair", Obs.Json.Float t.repair);
      (* Seeds print as strings, like faultplan/v1: JSON readers must
         not round 64-bit values through floats. *)
      ("seed", Obs.Json.String (Printf.sprintf "%Ld" t.seed));
    ]

let to_string t = Obs.Json.to_string (to_json t) ^ "\n"

let ( let* ) = Result.bind

let of_json json =
  let* declared =
    match Option.bind (Obs.Json.member "schema" json) Obs.Json.to_str with
    | Some s -> Ok s
    | None -> Error "churnplan: missing schema"
  in
  let* () =
    if declared = schema then Ok ()
    else Error (Printf.sprintf "churnplan: schema %S, expected %S" declared schema)
  in
  let float_field name =
    match Option.bind (Obs.Json.member name json) Obs.Json.to_float with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "churnplan: missing float field %S" name)
  in
  let* fail = float_field "fail" in
  let* repair = float_field "repair" in
  let* seed =
    match Obs.Json.member "seed" json with
    | None -> Ok 0L
    | Some (Obs.Json.String s) -> (
        match Int64.of_string_opt s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "churnplan: bad seed %S" s))
    | Some (Obs.Json.Int i) -> Ok (Int64.of_int i)
    | Some _ -> Error "churnplan: bad seed"
  in
  match make ~seed ~fail ~repair () with
  | plan -> Ok plan
  | exception Invalid_argument message -> Error message

let of_string text = Result.bind (Obs.Json.of_string text) of_json

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error message -> Error message

(* Compact CLI spec: fail=0.05,repair=0.3,seed=7 (repair and seed
   optional; repair defaults to the fail rate, seed to 0). *)
let spec_syntax = "fail=RATE[,repair=RATE][,seed=N]"

let of_spec spec =
  let parse_item item =
    let item = String.trim item in
    let value_after prefix =
      String.sub item (String.length prefix)
        (String.length item - String.length prefix)
    in
    let starts_with prefix =
      String.length item > String.length prefix
      && String.sub item 0 (String.length prefix) = prefix
    in
    if starts_with "fail=" then
      match float_of_string_opt (value_after "fail=") with
      | Some f -> Ok (`Fail f)
      | None -> Error (Printf.sprintf "churn spec: bad rate in %S" item)
    else if starts_with "repair=" then
      match float_of_string_opt (value_after "repair=") with
      | Some f -> Ok (`Repair f)
      | None -> Error (Printf.sprintf "churn spec: bad rate in %S" item)
    else if starts_with "seed=" then
      match Int64.of_string_opt (value_after "seed=") with
      | Some s -> Ok (`Seed s)
      | None -> Error (Printf.sprintf "churn spec: bad seed in %S" item)
    else
      Error
        (Printf.sprintf "churn spec: %S (expected %s)" item spec_syntax)
  in
  let items =
    String.split_on_char ',' spec |> List.filter (fun s -> String.trim s <> "")
  in
  if items = [] then Error "churn spec: empty"
  else
    let* parsed =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* p = parse_item item in
          Ok (p :: acc))
        (Ok []) items
    in
    let parsed = List.rev parsed in
    let* fail =
      match List.find_map (function `Fail f -> Some f | _ -> None) parsed with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "churn spec: missing fail= (expected %s)" spec_syntax)
    in
    let repair =
      match List.find_map (function `Repair f -> Some f | _ -> None) parsed with
      | Some f -> f
      | None -> fail
    in
    let seed =
      match List.find_map (function `Seed s -> Some s | _ -> None) parsed with
      | Some s -> s
      | None -> 0L
    in
    match make ~seed ~fail ~repair () with
    | plan -> Ok plan
    | exception Invalid_argument message -> Error message

(* ------------------------------------------------------------------ *)
(* Runtime: per-edge renewal trajectories, memoized on demand.         *)

(* One edge's trajectory is the list of toggle rounds: the link starts
   up at round 1 and flips state at each recorded round. Durations are
   geometric — a link that is up fails each round with probability
   [fail] (so stays up Geometric(fail) rounds), a down link repairs
   with probability [repair]. Each duration is drawn by inverse CDF
   from the edge's own stream, so extending a trajectory never touches
   another edge's randomness and the whole schedule is pure in
   (plan seed, world seed, edge id). *)
type trajectory = {
  stream : Prng.Stream.t;
  mutable toggles : int array;  (* ascending toggle rounds *)
  mutable count : int;          (* used prefix of [toggles] *)
  mutable horizon : int;        (* rounds < horizon are fully decided *)
}

type state = {
  plan : plan;
  edge_seed : int64;
  cells : (int, trajectory) Hashtbl.t;
}

let instantiate plan ~world_seed =
  (* Decorrelate from every other consumer of the two seeds: the world
     seed feeds edge coins and the engine's node streams, the plan seed
     may be shared across worlds in a sweep. *)
  let edge_seed =
    Int64.logxor (Prng.Coin.derive plan.seed 0xC4) world_seed
  in
  { plan; edge_seed; cells = Hashtbl.create 64 }

let plan t = t.plan

(* Geometric(rate) on {1, 2, ...} by inverse CDF. rate = 0 never
   fires (caller special-cases); rate = 1 fires immediately. *)
let geometric stream rate =
  if rate >= 1.0 then 1
  else
    let u = Prng.Stream.float_unit stream in
    let k = Float.ceil (Float.log1p (-.u) /. Float.log1p (-.rate)) in
    if Float.is_finite k && k < 1073741823.0 then max 1 (int_of_float k)
    else max_int / 4

let trajectory t edge =
  match Hashtbl.find_opt t.cells edge with
  | Some cell -> cell
  | None ->
      let stream = Prng.Stream.create (Prng.Coin.derive t.edge_seed edge) in
      let cell = { stream; toggles = Array.make 8 0; count = 0; horizon = 1 } in
      Hashtbl.replace t.cells edge cell;
      cell

let push_toggle cell round =
  if cell.count = Array.length cell.toggles then begin
    let grown = Array.make (2 * cell.count) 0 in
    Array.blit cell.toggles 0 grown 0 cell.count;
    cell.toggles <- grown
  end;
  cell.toggles.(cell.count) <- round;
  cell.count <- cell.count + 1

(* Extend the trajectory until it covers [round]. The state at the
   horizon alternates up/down with the toggle count; a zero hazard for
   the current state freezes the trajectory there forever. *)
let extend t cell ~round =
  let continue = ref true in
  while !continue && cell.horizon <= round do
    let up = cell.count land 1 = 0 in
    let rate = if up then t.plan.fail else t.plan.repair in
    if rate <= 0.0 then continue := false
    else begin
      let duration = geometric cell.stream rate in
      let next = cell.horizon + duration in
      if next < cell.horizon then continue := false (* overflow guard *)
      else begin
        push_toggle cell next;
        cell.horizon <- next
      end
    end
  done

let link_up t ~edge ~round =
  if t.plan.fail <= 0.0 then true
  else begin
    let cell = trajectory t edge in
    extend t cell ~round;
    (* State at [round] = parity of toggles at rounds <= round; binary
       search for the count of such toggles. *)
    let lo = ref 0 and hi = ref cell.count in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cell.toggles.(mid) <= round then lo := mid + 1 else hi := mid
    done;
    !lo land 1 = 0
  end
