type ('state, 'message) t = {
  world : Percolation.World.t;
  protocol : ('state, 'message) Protocol.t;
  states : 'state array;
  link_capacity : int option;
      (* max deliveries per directed link per round; None = unbounded *)
  churn : Churn.state option;
      (* round-indexed up/down overlay on top of the percolation world *)
  mutable pending : (int, (int * 'message) list) Hashtbl.t;
      (* node -> inbox for the next round, newest first *)
  mutable pending_count : int;
  queued : (int * int, 'message Queue.t) Hashtbl.t;
      (* directed link (u,v) -> store-and-forward backlog, used only
         when link_capacity is set *)
  mutable queued_count : int;
  probed : (int, unit) Hashtbl.t; (* distinct probed edge ids *)
  node_streams : (int, Prng.Stream.t) Hashtbl.t;
  stream_seed : int64;
  metrics : Metrics.t;
  mutable round : int;
}

let create ?seed ?link_capacity ?churn world protocol =
  (match link_capacity with
  | Some c when c < 1 -> invalid_arg "Engine.create: link capacity must be >= 1"
  | Some _ | None -> ());
  let graph = Percolation.World.graph world in
  let n = graph.Topology.Graph.vertex_count in
  let stream_seed =
    match seed with
    | Some s -> s
    | None -> Prng.Coin.derive (Percolation.World.seed world) 0x51
  in
  {
    world;
    protocol;
    states = Array.init n (fun node -> protocol.Protocol.init ~node);
    link_capacity;
    churn =
      Option.map
        (fun plan ->
          Churn.instantiate plan ~world_seed:(Percolation.World.seed world))
        churn;
    pending = Hashtbl.create 64;
    pending_count = 0;
    queued = Hashtbl.create 64;
    queued_count = 0;
    probed = Hashtbl.create 256;
    node_streams = Hashtbl.create 64;
    stream_seed;
    metrics = Metrics.create ();
    round = 0;
  }

let world t = t.world
let churned t = Option.is_some t.churn

(* Up at this round per the churn overlay (vacuously true unchurned).
   Percolation-openness is checked separately by the callers. *)
let churn_up t ~edge =
  match t.churn with
  | None -> true
  | Some state -> Churn.link_up state ~edge ~round:t.round

let protocol_name t = t.protocol.Protocol.name
let round t = t.round
let metrics t = t.metrics
let state t node = t.states.(node)
let in_flight t = t.pending_count + t.queued_count

let queue_delivery t ~node ~sender message =
  let inbox = Option.value (Hashtbl.find_opt t.pending node) ~default:[] in
  Hashtbl.replace t.pending node ((sender, message) :: inbox);
  t.pending_count <- t.pending_count + 1

let inject t ~node ~sender message = queue_delivery t ~node ~sender message

let node_stream t node =
  match Hashtbl.find_opt t.node_streams node with
  | Some stream -> stream
  | None ->
      let stream = Prng.Stream.create (Prng.Coin.derive t.stream_seed node) in
      Hashtbl.replace t.node_streams node stream;
      stream

(* Under a capacity limit, a send enters the directed link's backlog;
   the drain phase below moves up to [capacity] messages per link per
   round into the next round's inboxes. *)
let enqueue_on_link t ~sender ~receiver message =
  let key = (sender, receiver) in
  let backlog =
    match Hashtbl.find_opt t.queued key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace t.queued key q;
        q
  in
  Queue.push message backlog;
  t.queued_count <- t.queued_count + 1

let drain_links t capacity =
  let graph = Percolation.World.graph t.world in
  Hashtbl.iter
    (fun (sender, receiver) backlog ->
      (* A churned-down link holds its backlog (store-and-forward
         waits for repair); nothing is lost, so no blocked tick. *)
      if churn_up t ~edge:(graph.Topology.Graph.edge_id sender receiver) then begin
        let moved = ref 0 in
        while !moved < capacity && not (Queue.is_empty backlog) do
          let message = Queue.pop backlog in
          t.queued_count <- t.queued_count - 1;
          Metrics.tick_delivered t.metrics;
          queue_delivery t ~node:receiver ~sender message;
          incr moved
        done
      end)
    t.queued

let run_round t =
  let graph = Percolation.World.graph t.world in
  let inboxes = t.pending in
  t.pending <- Hashtbl.create 64;
  t.pending_count <- 0;
  t.round <- t.round + 1;
  Metrics.tick_round t.metrics;
  for node = 0 to Array.length t.states - 1 do
    let probe v =
      let id = graph.Topology.Graph.edge_id node v in
      Metrics.tick_raw_probe t.metrics;
      let fresh = not (Hashtbl.mem t.probed id) in
      if fresh then begin
        Hashtbl.replace t.probed id ();
        Metrics.tick_distinct_probe t.metrics
      end;
      let open_ =
        Percolation.World.is_open t.world node v && churn_up t ~edge:id
      in
      if Obs.Trace.on () then
        Obs.Trace.emit (Obs.Trace.Probe { u = node; v; open_; fresh });
      open_
    in
    let send v message =
      (* Validates adjacency; delivery depends on the percolated state
         but the sender learns nothing from the call. *)
      let id = graph.Topology.Graph.edge_id node v in
      Metrics.tick_sent t.metrics;
      if Percolation.World.is_open t.world node v then begin
        if churn_up t ~edge:id then
          match t.link_capacity with
          | None ->
              Metrics.tick_delivered t.metrics;
              queue_delivery t ~node:v ~sender:node message
          | Some _ -> enqueue_on_link t ~sender:node ~receiver:v message
        else Metrics.tick_churn_blocked t.metrics
      end
    in
    let api =
      {
        Api.node;
        round = t.round;
        neighbors = graph.Topology.Graph.neighbors node;
        probe;
        send;
        random_int = (fun bound -> Prng.Stream.int_in (node_stream t node) bound);
      }
    in
    let inbox = Option.value (Hashtbl.find_opt inboxes node) ~default:[] in
    t.states.(node) <- t.protocol.Protocol.step api t.states.(node) (List.rev inbox)
  done;
  match t.link_capacity with
  | Some capacity -> drain_links t capacity
  | None -> ()

let quiescent t =
  in_flight t = 0 && Array.for_all t.protocol.Protocol.idle t.states

let run ?(max_rounds = 10_000) ~until t =
  let rec loop () =
    if until t then `Stopped t.round
    else if t.round >= max_rounds then `Out_of_rounds
    else begin
      run_round t;
      if until t then `Stopped t.round
      else if quiescent t then `Quiescent t.round
      else loop ()
    end
  in
  loop ()

let fold_states t ~init ~f =
  let acc = ref init in
  Array.iteri (fun node state -> acc := f !acc node state) t.states;
  !acc
