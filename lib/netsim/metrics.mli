(** Global cost accounting of a simulation run.

    Since the observability layer landed this is a thin view over an
    {!Obs.Metrics} registry: every count lives in a counter named
    [netsim.rounds], [netsim.messages_sent], [netsim.messages_delivered],
    [netsim.raw_probes] or [netsim.distinct_probes], and {!snapshot}
    exposes them in the same mergeable form the trial engine uses —
    [faultroute simulate --metrics-out] writes them alongside
    everything else. The accessors below are live reads of the
    underlying counters. *)

type t

val create : unit -> t

(** {2 Engine-side increments} *)

val tick_round : t -> unit
val tick_sent : t -> unit
val tick_delivered : t -> unit
val tick_raw_probe : t -> unit
val tick_distinct_probe : t -> unit
val tick_churn_blocked : t -> unit

(** {2 Views} *)

val rounds : t -> int
(** Rounds executed so far. *)

val messages_sent : t -> int
(** All [send] calls. *)

val messages_delivered : t -> int
(** Sends whose link was open (or drained through a capacity-limited
    link). *)

val raw_probes : t -> int
(** All [probe] calls. *)

val distinct_probes : t -> int
(** Distinct edges probed. *)

val churn_blocked : t -> int
(** Sends suppressed because the link was percolation-open but churned
    down at that round ([netsim.churn.blocked]). Capacity-queue
    backlogs are delayed, not dropped, so drains never tick this.
    Zero on unchurned runs. *)

val snapshot : t -> Obs.Metrics.snapshot
(** The underlying counters as a pure mergeable snapshot (the
    [netsim.*] namespace). *)

val delivery_rate : t -> float
(** [messages_delivered / messages_sent]; [nan] when nothing was sent. *)

val pp : Format.formatter -> t -> unit
