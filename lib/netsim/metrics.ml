(* Cost accounting is an Obs.Metrics registry under [netsim.*] names;
   the historical fields survive as thin counter views. *)

type t = Obs.Metrics.t

let k_rounds = "netsim.rounds"
let k_sent = "netsim.messages_sent"
let k_delivered = "netsim.messages_delivered"
let k_raw = "netsim.raw_probes"
let k_distinct = "netsim.distinct_probes"
let k_churn_blocked = "netsim.churn.blocked"

let create () = Obs.Metrics.create ()

let tick_round t = Obs.Metrics.incr t k_rounds
let tick_sent t = Obs.Metrics.incr t k_sent
let tick_delivered t = Obs.Metrics.incr t k_delivered
let tick_raw_probe t = Obs.Metrics.incr t k_raw
let tick_distinct_probe t = Obs.Metrics.incr t k_distinct
let tick_churn_blocked t = Obs.Metrics.incr t k_churn_blocked

let rounds t = Obs.Metrics.peek t k_rounds
let messages_sent t = Obs.Metrics.peek t k_sent
let messages_delivered t = Obs.Metrics.peek t k_delivered
let raw_probes t = Obs.Metrics.peek t k_raw
let distinct_probes t = Obs.Metrics.peek t k_distinct
let churn_blocked t = Obs.Metrics.peek t k_churn_blocked

let snapshot = Obs.Metrics.snapshot

let delivery_rate t =
  let sent = messages_sent t in
  if sent = 0 then nan else float_of_int (messages_delivered t) /. float_of_int sent

let pp ppf t =
  Format.fprintf ppf "rounds=%d sent=%d delivered=%d probes=%d (%d raw)"
    (rounds t) (messages_sent t) (messages_delivered t) (distinct_probes t)
    (raw_probes t);
  let blocked = churn_blocked t in
  if blocked > 0 then Format.fprintf ppf " churn-blocked=%d" blocked
