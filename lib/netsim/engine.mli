(** The synchronous simulation engine.

    Rounds proceed in lockstep: at round [r] every node receives the
    messages that were sent to it over open links during round [r-1],
    runs its protocol step, and queues its own sends for round [r+1].
    Link liveness comes from the percolation world; nodes learn it only
    through probes and deliveries, so the engine is a distributed
    realization of the paper's probe model (messages double as free
    one-sided evidence that a link is open — exactly like a successful
    probe). *)

type ('state, 'message) t

val create :
  ?seed:int64 ->
  ?link_capacity:int ->
  ?churn:Churn.plan ->
  Percolation.World.t ->
  ('state, 'message) Protocol.t ->
  ('state, 'message) t
(** [create world protocol] initialises every node's state. [seed]
    (default derived from the world seed) drives the per-node
    [random_int] streams only — link states belong to the world.

    [link_capacity] switches the network from unbounded bandwidth (the
    default: every sent message on an open link arrives next round) to
    store-and-forward: each {e directed} open link delivers at most
    that many messages per round, with the excess waiting in the
    link's queue — the congestion model permutation-routing experiments
    need. @raise Invalid_argument if it is [< 1].

    [churn] layers a round-indexed up/down overlay on every edge (see
    {!Churn}): a probe answers [open && up], a send on an open-but-down
    link is dropped (counted in [netsim.churn.blocked]), and a
    capacity-limited link holds its backlog while down. The overlay is
    instantiated against the world's seed, so churned runs inherit the
    engine's full determinism guarantees. *)

val world : ('state, 'message) t -> Percolation.World.t

val churned : ('state, 'message) t -> bool
(** Whether a churn overlay is active. *)

val protocol_name : ('state, 'message) t -> string
val round : ('state, 'message) t -> int
val metrics : ('state, 'message) t -> Metrics.t

val state : ('state, 'message) t -> int -> 'state
(** Current state of a node. *)

val inject : ('state, 'message) t -> node:int -> sender:int -> 'message -> unit
(** [inject t ~node ~sender m] delivers [m] to [node] at the start of
    the next round, bypassing any link (used to start protocols:
    conventionally [sender] is the node itself). Not counted as a sent
    message. *)

val in_flight : ('state, 'message) t -> int
(** Messages queued for delivery next round, plus any backlog sitting in
    capacity-limited link queues. *)

val run_round : ('state, 'message) t -> unit
(** Execute one synchronous round. *)

val run :
  ?max_rounds:int ->
  until:(('state, 'message) t -> bool) ->
  ('state, 'message) t ->
  [ `Stopped of int | `Quiescent of int | `Out_of_rounds ]
(** [run ~until t] executes rounds until [until t] holds ([`Stopped]
    with the round count), the network goes quiescent — no messages in
    flight after a round ([`Quiescent]; protocols that spontaneously
    send, like gossip, never go quiescent) — or [max_rounds] (default
    10,000) elapse. *)

val fold_states :
  ('state, 'message) t -> init:'acc -> f:('acc -> int -> 'state -> 'acc) -> 'acc
(** Fold over all node states (for aggregate queries). *)
