(** Seeded link churn — the [churnplan/v1] renewal process.

    A churn plan makes every edge of the simulated network alternate
    between up and down over rounds: an up link fails each round with
    probability [fail], a down link repairs with probability [repair]
    (geometric sojourn times; every link starts up at round 1). The
    trajectory of each link is a {e pure function} of
    [(plan seed, world seed, edge id)], derived through the same
    SplitMix64 discipline as the percolation edge coins, so a churned
    run is exactly as reproducible as a static one: byte-identical at
    any [--jobs] and across a [faultplan/v1] kill + checkpoint
    [--resume] — the engine consults the trajectory, never a shared
    mutable clock.

    Churn layers {e on top of} the percolation world: a message crosses
    a link only when the edge is percolation-open {e and} currently up.
    Protocols run unmodified; they observe churn only through failed
    probes and missing deliveries. *)

type plan
(** The serializable description: fail rate, repair rate, seed. *)

val make : ?seed:int64 -> fail:float -> repair:float -> unit -> plan
(** @raise Invalid_argument unless both rates are finite and in
    [[0, 1]]. [fail = 0.] means no churn; [repair = 0.] means a failed
    link never recovers. *)

val fail_rate : plan -> float
val repair_rate : plan -> float
val plan_seed : plan -> int64

val describe : plan -> string
(** The compact spec form, e.g. ["fail=0.05,repair=0.3,seed=7"]. *)

(** {2 churnplan/v1 serialization} *)

val schema : string

val to_json : plan -> Obs.Json.t
val to_string : plan -> string

val of_json : Obs.Json.t -> (plan, string) result
val of_string : string -> (plan, string) result

val load : string -> (plan, string) result
(** Read a [churnplan/v1] JSON file. *)

val spec_syntax : string
(** Human-readable shape of the compact spec, for usage messages. *)

val of_spec : string -> (plan, string) result
(** Parse the compact CLI form [fail=RATE[,repair=RATE][,seed=N]].
    [repair] defaults to the fail rate, [seed] to 0. Errors are
    descriptive, suitable for eager CLI validation. *)

(** {2 Runtime} *)

type state
(** Memoized per-edge trajectories for one (plan, world) pairing.
    Mutable only as a cache: answers are deterministic and
    order-independent. *)

val instantiate : plan -> world_seed:int64 -> state
(** Bind the plan to a world. The world seed enters the per-edge
    derivation so the same plan produces independent churn on
    different worlds. *)

val plan : state -> plan

val link_up : state -> edge:int -> round:int -> bool
(** Whether edge [edge] is up at round [round] (rounds start at 1).
    Pure in [(plan seed, world seed, edge, round)]; cached trajectories
    only ever extend, so queries may arrive in any order. *)
