(** Deterministic fault plans — seeded, serializable chaos.

    Supervision ({!Engine_par.Supervisor}) is only trustworthy if its
    failure modes can be provoked on demand and {e replayed}: the same
    plan must inject the same faults at the same (chunk, attempt)
    coordinates on every run, whatever the job count. A plan is
    therefore pure data — a seed plus a fault list — and its injection
    verdicts are pure functions of [(seed, chunk, attempt)], never of
    scheduling, exactly the discipline the PR-2 world-seed fix imposed
    on trial randomness.

    Plans serialize as single-object [faultplan/v1] JSON and also parse
    from a compact CLI spec (see {!of_spec}). *)

type fault =
  | Crash_on_chunk of int
      (** The first attempt at this chunk index fails as if the worker
          raised; the retry succeeds. *)
  | Stall_on_chunk of int
      (** The first attempt at this chunk index fails as if the chunk
          deadline expired; the retry succeeds. *)
  | Flaky of { rate : float; max_failures : int }
      (** Every chunk's attempt [k <= max_failures] fails with
          probability [rate], decided by a coin hashed from
          [(seed, chunk, k)]. With [max_failures] below the supervisor's
          attempt budget every chunk still succeeds eventually — the
          recoverable-chaos regime the byte-identity property tests
          run in. *)
  | Die_after_chunks of int
      (** Hard-kill the whole process (as by [kill -9]: [Unix._exit],
          no flushing, no cleanup) once this many chunk results have
          been checkpointed — the deterministic stand-in for a
          mid-campaign crash in resume tests. Interpreted by
          {!Experiments.Checkpoint}, not by the chunk injector. *)

type t = { seed : int64; faults : fault list }

val make : ?seed:int64 -> fault list -> t
(** [seed] (default 0) only matters for [Flaky] coins.
    @raise Invalid_argument on a negative chunk index, a rate outside
    [0,1], or a negative count. *)

val injector :
  t -> chunk:int -> attempt:int -> Engine_par.Supervisor.injection
(** The plan's injection verdict for one (chunk, attempt) pair — pure,
    schedule-independent. The first matching fault in plan order wins;
    [Die_after_chunks] never matches here. *)

val die_after_chunks : t -> int option
(** The process-kill threshold, when the plan carries one. *)

(** {2 Ambient plan}

    The CLI installs the loaded plan process-wide; the trial engine
    picks it up without threading a parameter through 24 experiment
    signatures (the same pattern as [Obs.Trace]'s ambient sink). *)

val set_ambient : t option -> unit
val ambient : unit -> t option

(** {2 Serialization} *)

val to_json : t -> Obs.Json.t
(** The [faultplan/v1] document. *)

val to_string : t -> string
(** [to_json] rendered, with a trailing newline. *)

val of_json : Obs.Json.t -> (t, string) result
val of_string : string -> (t, string) result
val load : string -> (t, string) result

val of_spec : string -> (t, string) result
(** Compact CLI syntax: comma-separated
    [crash@CHUNK | stall@CHUNK | flaky:RATExMAX | die@CHUNKS | seed=N],
    e.g. ["crash@3,stall@5,flaky:0.02x2,seed=7"]. *)
