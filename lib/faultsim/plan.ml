type fault =
  | Crash_on_chunk of int
  | Stall_on_chunk of int
  | Flaky of { rate : float; max_failures : int }
  | Die_after_chunks of int

type t = { seed : int64; faults : fault list }

let validate_fault = function
  | Crash_on_chunk c | Stall_on_chunk c ->
      if c < 0 then invalid_arg "Faultsim.Plan: negative chunk index"
  | Flaky { rate; max_failures } ->
      if not (Float.is_finite rate) || rate < 0.0 || rate > 1.0 then
        invalid_arg "Faultsim.Plan: flaky rate must be in [0,1]";
      if max_failures < 0 then
        invalid_arg "Faultsim.Plan: negative flaky max_failures"
  | Die_after_chunks n ->
      if n < 0 then invalid_arg "Faultsim.Plan: negative die_after_chunks"

let make ?(seed = 0L) faults =
  List.iter validate_fault faults;
  { seed; faults }

(* The flaky coin: uniform in [0,1), a pure hash of (plan seed, chunk,
   attempt) through the same SplitMix64 finalizer discipline as the
   percolation edge coins — chunk and attempt both avalanche, so
   neighbouring coordinates draw uncorrelated coins. *)
let flaky_coin ~seed ~chunk ~attempt =
  Prng.Coin.uniform ~seed:(Prng.Coin.derive seed chunk) attempt

let injector t ~chunk ~attempt =
  let decide = function
    | Crash_on_chunk c when c = chunk && attempt = 1 ->
        Some Engine_par.Supervisor.Crash
    | Stall_on_chunk c when c = chunk && attempt = 1 ->
        Some Engine_par.Supervisor.Stall
    | Flaky { rate; max_failures }
      when attempt <= max_failures
           && flaky_coin ~seed:t.seed ~chunk ~attempt < rate ->
        Some Engine_par.Supervisor.Crash
    | Crash_on_chunk _ | Stall_on_chunk _ | Flaky _ | Die_after_chunks _ ->
        None
  in
  match List.find_map decide t.faults with
  | Some verdict -> verdict
  | None -> Engine_par.Supervisor.Pass

let die_after_chunks t =
  List.find_map
    (function Die_after_chunks n -> Some n | _ -> None)
    t.faults

(* ------------------------------------------------------------------ *)
(* Ambient plan.                                                       *)

let ambient_plan : t option Atomic.t = Atomic.make None
let set_ambient p = Atomic.set ambient_plan p
let ambient () = Atomic.get ambient_plan

(* ------------------------------------------------------------------ *)
(* faultplan/v1.                                                       *)

let schema = "faultplan/v1"

let fault_to_json = function
  | Crash_on_chunk c ->
      Obs.Json.Obj
        [ ("kind", Obs.Json.String "crash_on_chunk"); ("chunk", Obs.Json.Int c) ]
  | Stall_on_chunk c ->
      Obs.Json.Obj
        [ ("kind", Obs.Json.String "stall_on_chunk"); ("chunk", Obs.Json.Int c) ]
  | Flaky { rate; max_failures } ->
      Obs.Json.Obj
        [
          ("kind", Obs.Json.String "flaky");
          ("rate", Obs.Json.Float rate);
          ("max_failures", Obs.Json.Int max_failures);
        ]
  | Die_after_chunks n ->
      Obs.Json.Obj
        [ ("kind", Obs.Json.String "die_after_chunks"); ("chunks", Obs.Json.Int n) ]

let to_json t =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String schema);
      (* Seeds print as strings, like verdict_baseline/v1: JSON readers
         must not round 64-bit values through floats. *)
      ("seed", Obs.Json.String (Printf.sprintf "%Ld" t.seed));
      ("faults", Obs.Json.List (List.map fault_to_json t.faults));
    ]

let to_string t = Obs.Json.to_string (to_json t) ^ "\n"

let ( let* ) = Result.bind

let fault_of_json json =
  let int_field name =
    match Option.bind (Obs.Json.member name json) Obs.Json.to_int with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "fault: missing int field %S" name)
  in
  match Option.bind (Obs.Json.member "kind" json) Obs.Json.to_str with
  | Some "crash_on_chunk" ->
      let* c = int_field "chunk" in
      Ok (Crash_on_chunk c)
  | Some "stall_on_chunk" ->
      let* c = int_field "chunk" in
      Ok (Stall_on_chunk c)
  | Some "flaky" ->
      let* rate =
        match Option.bind (Obs.Json.member "rate" json) Obs.Json.to_float with
        | Some r -> Ok r
        | None -> Error "fault: flaky without rate"
      in
      let* max_failures = int_field "max_failures" in
      Ok (Flaky { rate; max_failures })
  | Some "die_after_chunks" ->
      let* n = int_field "chunks" in
      Ok (Die_after_chunks n)
  | Some other -> Error (Printf.sprintf "fault: unknown kind %S" other)
  | None -> Error "fault: missing kind"

let of_json json =
  let* declared =
    match Option.bind (Obs.Json.member "schema" json) Obs.Json.to_str with
    | Some s -> Ok s
    | None -> Error "faultplan: missing schema"
  in
  let* () =
    if declared = schema then Ok ()
    else Error (Printf.sprintf "faultplan: schema %S, expected %S" declared schema)
  in
  let* seed =
    match Obs.Json.member "seed" json with
    | None -> Ok 0L
    | Some (Obs.Json.String s) -> (
        match Int64.of_string_opt s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "faultplan: bad seed %S" s))
    | Some (Obs.Json.Int i) -> Ok (Int64.of_int i)
    | Some _ -> Error "faultplan: bad seed"
  in
  let* faults_json =
    match Option.bind (Obs.Json.member "faults" json) Obs.Json.to_list with
    | Some l -> Ok l
    | None -> Error "faultplan: missing faults list"
  in
  let* faults =
    List.fold_left
      (fun acc f ->
        let* acc = acc in
        let* fault = fault_of_json f in
        Ok (fault :: acc))
      (Ok []) faults_json
  in
  match make ~seed (List.rev faults) with
  | plan -> Ok plan
  | exception Invalid_argument message -> Error message

let of_string text = Result.bind (Obs.Json.of_string text) of_json

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error message -> Error message

(* Compact CLI spec: crash@3,stall@5,flaky:0.02x2,die@10,seed=7 *)
let of_spec spec =
  let parse_item item =
    let item = String.trim item in
    let int_after prefix =
      let tail =
        String.sub item (String.length prefix)
          (String.length item - String.length prefix)
      in
      match int_of_string_opt tail with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "fault spec: bad number in %S" item)
    in
    if String.length item > 6 && String.sub item 0 6 = "crash@" then
      Result.map (fun c -> `Fault (Crash_on_chunk c)) (int_after "crash@")
    else if String.length item > 6 && String.sub item 0 6 = "stall@" then
      Result.map (fun c -> `Fault (Stall_on_chunk c)) (int_after "stall@")
    else if String.length item > 4 && String.sub item 0 4 = "die@" then
      Result.map (fun n -> `Fault (Die_after_chunks n)) (int_after "die@")
    else if String.length item > 5 && String.sub item 0 5 = "seed=" then
      match Int64.of_string_opt (String.sub item 5 (String.length item - 5)) with
      | Some s -> Ok (`Seed s)
      | None -> Error (Printf.sprintf "fault spec: bad seed in %S" item)
    else if String.length item > 6 && String.sub item 0 6 = "flaky:" then
      let body = String.sub item 6 (String.length item - 6) in
      match String.index_opt body 'x' with
      | None -> Error (Printf.sprintf "fault spec: %S needs RATExMAX" item)
      | Some i -> (
          let rate_text = String.sub body 0 i in
          let max_text = String.sub body (i + 1) (String.length body - i - 1) in
          match (float_of_string_opt rate_text, int_of_string_opt max_text) with
          | Some rate, Some max_failures -> Ok (`Fault (Flaky { rate; max_failures }))
          | _ -> Error (Printf.sprintf "fault spec: bad RATExMAX in %S" item))
    else
      Error
        (Printf.sprintf
           "fault spec: %S (expected crash@N, stall@N, flaky:RATExMAX, die@N or \
            seed=N)"
           item)
  in
  let items =
    String.split_on_char ',' spec |> List.filter (fun s -> String.trim s <> "")
  in
  if items = [] then Error "fault spec: empty"
  else
    let* parsed =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* p = parse_item item in
          Ok (p :: acc))
        (Ok []) items
    in
    let parsed = List.rev parsed in
    let seed =
      List.fold_left
        (fun acc -> function `Seed s -> s | `Fault _ -> acc)
        0L parsed
    in
    let faults =
      List.filter_map (function `Fault f -> Some f | `Seed _ -> None) parsed
    in
    match make ~seed faults with
    | plan -> Ok plan
    | exception Invalid_argument message -> Error message
