(** Stateless deterministic coins for lazy percolation.

    Percolated graphs in this project are never materialised: the open or
    closed state of edge [e] in [G_p] is a pure function of the world seed
    and the edge's canonical integer id. Re-probing an edge, or observing
    the same world from a different algorithm (e.g. the ground-truth
    reveal), always yields the same answer.

    The coin for [(seed, id)] is [mix (mix (seed ^ gamma*id))] mapped to a
    uniform float in [\[0,1)]; the edge is open iff that float is [< p].
    The double SplitMix64 finalizer gives avalanche behaviour across both
    inputs, so nearby edge ids produce uncorrelated coins. *)

val uniform : seed:int64 -> int -> float
(** [uniform ~seed id] is a deterministic uniform float in [\[0,1)]
    attached to identifier [id] under world [seed]. *)

val bernoulli : seed:int64 -> p:float -> int -> bool
(** [bernoulli ~seed ~p id] is [true] with probability [p], deterministic
    in [(seed, id)]. Monotone in [p]: if it is true at [p] it is true at
    every [p' >= p] for the same seed and id. *)

val uniform_fill : seed:int64 -> float array -> unit
(** [uniform_fill ~seed out] sets [out.(id) <- uniform ~seed id] for
    every index of [out], as one sequential sweep (one SplitMix64 state
    advance per id instead of a multiply per call). Bit-identical to the
    per-id function — the backing store of coupled sweep families. *)

val bernoulli_fill : seed:int64 -> p:float -> Bytes.t -> count:int -> unit
(** [bernoulli_fill ~seed ~p bits ~count] ORs bit [id] of [bits] for
    every [id] in [\[0, count)] with [bernoulli ~seed ~p id], in one
    sequential sweep — the eager generator for cached world coin
    bitsets. Bits beyond [count] are untouched; bits already set stay
    set (pass a zeroed buffer for a pure fill).
    @raise Invalid_argument if [bits] holds fewer than [count] bits. *)

val derive : int64 -> int -> int64
(** [derive seed label] is a new seed deterministically derived from
    [seed] and the integer [label]. Use to give each trial, stream or
    subsystem its own independent-looking world seed. *)
