let hash64 ~seed id =
  let z = Int64.add seed (Int64.mul Splitmix64.golden_gamma (Int64.of_int id)) in
  Splitmix64.mix (Splitmix64.mix z)

let uniform ~seed id =
  let bits = Int64.shift_right_logical (hash64 ~seed id) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bernoulli ~seed ~p id = uniform ~seed id < p

(* Batched variants: one sequential SplitMix64 sweep over consecutive
   ids. [hash64] evaluates the finalizer at [z_id = seed + gamma * id];
   walking ids in order replaces the per-call 64-bit multiply with one
   add per id, and keeps the whole sweep branch-light — the generator
   for eagerly-filled world caches and coupled sweep families. The
   outputs are bit-identical to calling [uniform]/[bernoulli] per id
   (property-tested). *)

let to_unit h =
  Int64.to_float (Int64.shift_right_logical h 11) *. (1.0 /. 9007199254740992.0)

let uniform_fill ~seed out =
  let z = ref seed in
  for id = 0 to Array.length out - 1 do
    Array.unsafe_set out id (to_unit (Splitmix64.mix (Splitmix64.mix !z)));
    z := Int64.add !z Splitmix64.golden_gamma
  done

let bernoulli_fill ~seed ~p bits ~count =
  if Bytes.length bits * 8 < count then
    invalid_arg "Coin.bernoulli_fill: bitset too small";
  let z = ref seed in
  for id = 0 to count - 1 do
    (if to_unit (Splitmix64.mix (Splitmix64.mix !z)) < p then
       let j = id lsr 3 in
       Bytes.unsafe_set bits j
         (Char.unsafe_chr
            (Char.code (Bytes.unsafe_get bits j) lor (1 lsl (id land 7)))));
    z := Int64.add !z Splitmix64.golden_gamma
  done

let derive seed label =
  Splitmix64.mix (Int64.logxor (Splitmix64.mix seed) (Int64.mul 0xD1342543DE82EF95L (Int64.of_int label)))
