(** Spatially clustered fault scenarios at exact edge budget.

    Where {!Adversary} targets a specific source–target pair, a
    scenario describes fault {e geometry}: how [k] dead edges are
    arranged, independent of any routing question. All models answer
    with {e exactly} [min k |E|] distinct edges, so degradation curves
    compare Random / clustered / min-cut fault sets at strictly equal
    budget (the Bagchi et al. comparison from ROADMAP O3), and every
    set overlays onto a world through {!World.remove_edges} — oracles,
    reveals, caches, claims and traces work unchanged.

    Sampling is a pure function of the stream, the graph and the
    model, so scenario worlds inherit the engine's byte-reproducible
    determinism at any [--jobs]. *)

type model =
  | Random  (** i.i.d. faults: a uniform [k]-subset of the edges. *)
  | Ball of { centers : int }
      (** BFS edge balls grown round-robin around [centers] random
          seed vertices — disjoint dead neighbourhoods. *)
  | Infection
      (** Eden growth: one seed edge spreads to a uniformly random
          frontier edge per step — a single connected fault blob. *)
  | Blast of { decay : float }
      (** One epicenter; an edge at BFS distance [d] dies with weight
          proportional to [decay^d] (sampled without replacement) —
          a dense core with a fuzzy boundary. *)

val model_name : model -> string
(** Short table/report label, e.g. ["ball:3"], ["blast:0.5"]. *)

val sample :
  Prng.Stream.t -> Topology.Graph.t -> model -> budget:int -> (int * int) list
(** [sample stream graph model ~budget] draws the fault set: exactly
    [min budget (edge_count graph)] distinct edges. Models that
    exhaust their geometry early (a ball covering a small component,
    a blast in a disconnected graph) are padded with uniform random
    edges so budgets always match.
    @raise Invalid_argument on a negative budget or malformed model
    (ball needs [centers >= 1], blast needs [decay] in [(0, 1]]). *)

val pad_to_budget :
  Prng.Stream.t ->
  Topology.Graph.t ->
  budget:int ->
  (int * int) list ->
  (int * int) list
(** Normalize an externally chosen edge set to the exact budget:
    dedupe (by edge id, first occurrence wins), truncate past the
    budget, and top up with uniform random unchosen edges. Lets
    experiments put {!Adversary.Min_cut} — which may under-deliver
    once the pair disconnects — on the same budget axis. *)

val apply : World.t -> (int * int) list -> World.t
(** Overlay the fault set: [World.remove_edges]. *)

val attack : Prng.Stream.t -> World.t -> model -> budget:int -> World.t
(** [sample] + [apply] against the world's own graph. *)
