(** The counting probe oracle — the cost model of the paper.

    A routing algorithm interacts with the percolated graph only through
    [probe], which reveals whether one edge is open. The oracle counts
    {e distinct} probed edges (re-probing a known edge is free: an
    algorithm could cache the answer) and enforces the paper's access
    policies:

    - [Local] (Definition 1): an edge may be probed only if one of its
      endpoints already carries an established open path from the source.
      Violations raise — lower-bound experiments cannot be accidentally
      invalidated by a cheating router.
    - [Unrestricted]: any edge may be probed ("oracle routing",
      Section 5).

    Under [Local] the oracle also maintains predecessor links, so the
    open path to any reached vertex can be reconstructed and is correct
    by construction.

    Probe memory and predecessor links are stored in flat bitsets/int
    arrays over cached worlds ({!World.cached}) and in Hashtbls over
    lazy worlds; the two stores have identical counting, locality and
    path semantics (property-tested). *)

type policy = Local | Unrestricted

exception Locality_violation of int * int
(** Probed edge had no reached endpoint under the [Local] policy. *)

exception Budget_exhausted
(** Raised by [probe] when the distinct-probe budget would be exceeded.
    The probe that raised does not count. *)

type t

val create : ?policy:policy -> ?budget:int -> World.t -> source:int -> t
(** [create world ~source] is a fresh oracle. Default [policy] is
    [Local]; [budget] (if given) caps distinct probes.
    @raise Invalid_argument if [budget <= 0] or the source is out of
    range. *)

val world : t -> World.t
val policy : t -> policy
val source : t -> int

val probe : t -> int -> int -> bool
(** [probe t u v] reveals the state of edge [{u,v}].
    @raise Topology.Graph.Not_an_edge on a non-edge.
    @raise Locality_violation under [Local] if neither endpoint is
    reached.
    @raise Budget_exhausted if the budget is spent and this edge was not
    probed before. *)

val probe_known : t -> int -> int -> bool option
(** The cached result of a previous probe of this edge, if any. Free:
    neither {!distinct_probes} nor {!raw_probes} moves. When tracing is
    enabled a hit appears in the trace as a [Probe] event with
    [fresh = false] — exactly like a repeated [probe] — so a trace's
    [fresh = true] events are in bijection with counted probes, while
    its [fresh = false] events over-approximate [raw_probes - distinct_probes]
    (they include these free hits). *)

val distinct_probes : t -> int
(** Number of distinct edges probed so far — the routing complexity
    (paper Definition 2). In a [trace/v1] stream this equals the number
    of [Probe] events with [fresh = true]
    ({!Obs.Trace.distinct_probes_of_events}); the [trace] CLI
    subcommand re-derives it from there as an independent audit. *)

val raw_probes : t -> int
(** Total [probe] calls including repeats; {!probe_known} calls are
    {e not} included. Always [>= distinct_probes]. Not derivable from a
    trace — see {!probe_known}. *)

val recount_distinct : t -> int
(** Recount distinct probed edges directly from the probe-memory store
    (Hashtbl size over lazy worlds, bitset popcount over cached ones)
    rather than from the incremental counter. Always equals
    {!distinct_probes}; exported so tests and the replay tooling can
    assert the two accountings cannot drift apart. O(store size). *)

val budget_remaining : t -> int option
(** [None] if unlimited. *)

val reached : t -> int -> bool
(** Under [Local]: whether an open path from the source to this vertex
    has been established. Under [Unrestricted] only the source is ever
    reached. *)

val reached_count : t -> int
(** Number of reached vertices (including the source). *)

val reached_vertices : t -> int list
(** All reached vertices, unordered. *)

val path_to : t -> int -> int list option
(** Under [Local], the established open path from the source to a
    reached vertex (source first). [None] if the vertex is not reached. *)
