(** Monotone-coupled sweep-world families.

    A threshold scan evaluates the same random graph model at many
    retention probabilities. Because {!Prng.Coin.bernoulli} thresholds
    a uniform that depends only on [(seed, id)], worlds sharing a seed
    are {e already} monotone-coupled across [p]; this module makes the
    coupling explicit and cheap: sample every edge's uniform once
    ({!create}), then cut the family at each [p] of the sweep
    ({!world_at}). Every cut is a full {!World.t} — cached, registered
    through the ordinary representation — so reveals, oracles, cluster
    censuses, traces and claims work unchanged, and

    - [world_at family ~p] is observationally identical to
      [World.create graph ~p ~seed] (property-tested), so converting a
      sweep to a coupled family never changes any single-[p]
      distribution;
    - for [p <= p'], the open-edge set of the cut at [p] is a subset of
      the cut at [p'] {e deterministically, per sample} — monotone trend
      claims over a shared-seed sweep hold exactly, not statistically;
    - an entire scan pays one uniform-sampling sweep instead of one
      coin-hashing sweep per [p].

    Decorrelation across trials stays on the trial axis: derive one
    seed per trial ({!Prng.Coin.derive}) and one family per seed.

    Families exist only for graphs under {!World.cache_gate} (the
    stored uniforms are O(edge ids)); sweeps over larger graphs keep
    per-[p] lazy worlds. *)

type t
(** A sampled family: one uniform per edge id (and per vertex, when
    sampled with [~site:true]). Immutable; share freely. *)

val create : ?site:bool -> Topology.Graph.t -> seed:int64 -> t
(** [create graph ~seed] samples the edge uniforms of the family —
    exactly the values [World.create graph ~p ~seed] would hash, for
    any [p]. With [~site:true] the per-vertex survival uniforms (the
    {!World.site_seed} namespace) are sampled too, enabling coupled
    site sweeps via [world_at ?site_p].
    @raise Invalid_argument if the graph exceeds {!World.cache_gate}. *)

val world_at : ?site_p:float -> t -> p:float -> World.t
(** The cut of the family at [p]: a cached world observationally
    identical to [World.create ?site_p graph ~p ~seed].
    @raise Invalid_argument if [?site_p] is given but the family was
    sampled without [~site:true], or a probability is out of range. *)

val graph : t -> Topology.Graph.t
val seed : t -> int64
