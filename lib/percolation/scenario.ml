(* Spatially clustered fault scenarios, sized against an exact edge
   budget. Every model answers the same question — "which [k] edges
   die?" — so experiments can compare fault geometries at strictly
   equal budget; the sets overlay onto a world through the ordinary
   removal mechanism ([World.remove_edges]), leaving oracles, reveals,
   caches, claims and traces untouched. *)

type model =
  | Random
  | Ball of { centers : int }
  | Infection
  | Blast of { decay : float }

let model_name = function
  | Random -> "random"
  | Ball { centers } -> Printf.sprintf "ball:%d" centers
  | Infection -> "infection"
  | Blast { decay } -> Printf.sprintf "blast:%g" decay

let validate_model = function
  | Random | Infection -> ()
  | Ball { centers } ->
      if centers < 1 then invalid_arg "Scenario: ball needs >= 1 center"
  | Blast { decay } ->
      if not (Float.is_finite decay) || decay <= 0.0 || decay > 1.0 then
        invalid_arg "Scenario: blast decay must be in (0, 1]"

(* BFS distances from [source] over the full (un-percolated) graph;
   -1 marks unreachable vertices. *)
let bfs_distances graph source =
  let n = graph.Topology.Graph.vertex_count in
  let dist = Array.make n (-1) in
  dist.(source) <- 0;
  let queue = Queue.create () in
  Queue.push source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v queue
        end)
      (graph.Topology.Graph.neighbors u)
  done;
  dist

(* Distinct random vertices (all of them when [count >= n]). *)
let random_vertices stream graph count =
  let n = graph.Topology.Graph.vertex_count in
  let vertices = Array.init n Fun.id in
  Prng.Stream.shuffle_in_place stream vertices;
  Array.to_list (Array.sub vertices 0 (min count n))

(* Edges incident to the BFS ball around [center], in discovery order,
   at most [limit] of them. *)
let ball_edges graph center ~limit =
  let seen_vertices = Hashtbl.create 64 in
  Hashtbl.replace seen_vertices center ();
  let seen_edges = Hashtbl.create 64 in
  let queue = Queue.create () in
  Queue.push center queue;
  let chosen = ref [] in
  let count = ref 0 in
  (try
     while not (Queue.is_empty queue) do
       let u = Queue.pop queue in
       Array.iter
         (fun v ->
           let id = graph.Topology.Graph.edge_id u v in
           if not (Hashtbl.mem seen_edges id) then begin
             Hashtbl.replace seen_edges id ();
             chosen := (u, v) :: !chosen;
             incr count;
             if !count >= limit then raise Exit
           end;
           if not (Hashtbl.mem seen_vertices v) then begin
             Hashtbl.replace seen_vertices v ();
             Queue.push v queue
           end)
         (graph.Topology.Graph.neighbors u)
     done
   with Exit -> ());
  List.rev !chosen

(* Balls around [centers] random seeds, budget shared round-robin so
   every cluster grows at the same rate. *)
let sample_balls stream graph ~centers ~budget =
  let seeds = random_vertices stream graph centers in
  let rings =
    List.map (fun c -> Array.of_list (ball_edges graph c ~limit:budget)) seeds
  in
  let cursors = List.map (fun ring -> (ring, ref 0)) rings in
  let seen = Hashtbl.create 64 in
  let chosen = ref [] in
  let count = ref 0 in
  let progressed = ref true in
  while !count < budget && !progressed do
    progressed := false;
    List.iter
      (fun (ring, cursor) ->
        if !count < budget && !cursor < Array.length ring then begin
          let u, v = ring.(!cursor) in
          incr cursor;
          progressed := true;
          let id = graph.Topology.Graph.edge_id u v in
          if not (Hashtbl.mem seen id) then begin
            Hashtbl.replace seen id ();
            chosen := (u, v) :: !chosen;
            incr count
          end
        end)
      cursors
  done;
  List.rev !chosen

(* Eden growth on edges: infect a random seed edge, then repeatedly
   kill a uniform edge from the frontier (edges touching an infected
   vertex), infecting its endpoints — one connected blob of faults. *)
let sample_infection stream graph ~budget =
  let edges = Array.of_list (Topology.Graph.edge_list graph) in
  if Array.length edges = 0 || budget = 0 then []
  else begin
    let tracked = Hashtbl.create 64 in
    (* edge id -> in frontier or already chosen *)
    let infected = Hashtbl.create 64 in
    let frontier = ref [||] in
    let frontier_len = ref 0 in
    let push edge =
      if !frontier_len = Array.length !frontier then begin
        let grown = Array.make (max 8 (2 * !frontier_len)) (0, 0) in
        Array.blit !frontier 0 grown 0 !frontier_len;
        frontier := grown
      end;
      !frontier.(!frontier_len) <- edge;
      incr frontier_len
    in
    let infect u =
      if not (Hashtbl.mem infected u) then begin
        Hashtbl.replace infected u ();
        Array.iter
          (fun v ->
            let id = graph.Topology.Graph.edge_id u v in
            if not (Hashtbl.mem tracked id) then begin
              Hashtbl.replace tracked id ();
              push (u, v)
            end)
          (graph.Topology.Graph.neighbors u)
      end
    in
    let u0, v0 = Prng.Stream.pick stream edges in
    Hashtbl.replace tracked (graph.Topology.Graph.edge_id u0 v0) ();
    let chosen = ref [ (u0, v0) ] in
    let count = ref 1 in
    infect u0;
    infect v0;
    while !count < budget && !frontier_len > 0 do
      let i = Prng.Stream.int_in stream !frontier_len in
      let ((u, v) as edge) = !frontier.(i) in
      !frontier.(i) <- !frontier.(!frontier_len - 1);
      decr frontier_len;
      chosen := edge :: !chosen;
      incr count;
      infect u;
      infect v
    done;
    List.rev !chosen
  end

(* Correlated blast: one epicenter, each edge weighted by
   [decay^distance] of its nearer endpoint; weighted sampling without
   replacement. Unreachable edges get weight 0 (padding covers them
   when the graph is disconnected). *)
let sample_blast stream graph ~decay ~budget =
  let edges = Array.of_list (Topology.Graph.edge_list graph) in
  let m = Array.length edges in
  if m = 0 || budget = 0 then []
  else begin
    let center = Prng.Stream.int_in stream graph.Topology.Graph.vertex_count in
    let dist = bfs_distances graph center in
    let weights =
      Array.map
        (fun (u, v) ->
          let du = dist.(u) and dv = dist.(v) in
          if du < 0 && dv < 0 then 0.0
          else
            let d = if du < 0 then dv else if dv < 0 then du else min du dv in
            decay ** float_of_int d)
        edges
    in
    let chosen = ref [] in
    let count = ref 0 in
    let continue = ref true in
    while !count < budget && !continue do
      let total = Array.fold_left ( +. ) 0.0 weights in
      if total <= 0.0 then continue := false
      else begin
        let x = Prng.Stream.float_unit stream *. total in
        let acc = ref 0.0 in
        let picked = ref (-1) in
        (try
           for i = 0 to m - 1 do
             acc := !acc +. weights.(i);
             if weights.(i) > 0.0 && !acc > x then begin
               picked := i;
               raise Exit
             end
           done
         with Exit -> ());
        (* Float round-off can leave the scan short of [x]; fall back
           to the last positive-weight edge. *)
        if !picked < 0 then
          for i = m - 1 downto 0 do
            if !picked < 0 && weights.(i) > 0.0 then picked := i
          done;
        if !picked < 0 then continue := false
        else begin
          chosen := edges.(!picked) :: !chosen;
          incr count;
          weights.(!picked) <- 0.0
        end
      end
    done;
    List.rev !chosen
  end

let dedupe graph edges =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (u, v) ->
      let id = graph.Topology.Graph.edge_id u v in
      if Hashtbl.mem seen id then false
      else begin
        Hashtbl.replace seen id ();
        true
      end)
    edges

let pad_to_budget stream graph ~budget edges =
  if budget < 0 then invalid_arg "Scenario.pad_to_budget: negative budget";
  let target = min budget (Topology.Graph.edge_count graph) in
  let edges = dedupe graph edges in
  let chosen = Hashtbl.create 64 in
  let kept = ref [] in
  let count = ref 0 in
  List.iter
    (fun (u, v) ->
      if !count < target then begin
        Hashtbl.replace chosen (graph.Topology.Graph.edge_id u v) ();
        kept := (u, v) :: !kept;
        incr count
      end)
    edges;
  if !count < target then begin
    let rest =
      Topology.Graph.edge_list graph
      |> List.filter (fun (u, v) ->
             not (Hashtbl.mem chosen (graph.Topology.Graph.edge_id u v)))
      |> Array.of_list
    in
    Prng.Stream.shuffle_in_place stream rest;
    Array.iter
      (fun (u, v) ->
        if !count < target then begin
          kept := (u, v) :: !kept;
          incr count
        end)
      rest
  end;
  List.rev !kept

let sample stream graph model ~budget =
  if budget < 0 then invalid_arg "Scenario.sample: negative budget";
  validate_model model;
  let raw =
    match model with
    | Random -> []
    | Ball { centers } -> sample_balls stream graph ~centers ~budget
    | Infection -> sample_infection stream graph ~budget
    | Blast { decay } -> sample_blast stream graph ~decay ~budget
  in
  (* Random is pure padding; the clustered models fall back to random
     padding only in degenerate graphs, keeping the budget exact. *)
  pad_to_budget stream graph ~budget raw

let apply world edges = World.remove_edges world edges

let attack stream world model ~budget =
  apply world (sample stream (World.graph world) model ~budget)
