(* Cached worlds carry their coins eagerly: one sequential
   [Prng.Coin.bernoulli_fill] sweep at construction writes the whole
   edge-coin bitset (and the vertex-survival bitset under site
   percolation), so every later [is_open] is a bit test. On top of the
   coins sits a lazily materialised CSR of open-adjacency rows in one
   growing int arena — rows are cut from the graph's shared
   {!Topology.Csr} structure on first query, so no query path ever
   calls a topology's [neighbors] closure more than once per vertex per
   world. Memoisation is invisible: both representations evaluate the
   same pure coin function. *)
type site_cache = { v_alive : Bytes.t }

type cache = {
  e_coin : Bytes.t;
      (* Bit per edge id: the bare edge coin (endpoint survival and
         removal overlays are applied on top at query time). Filled
         eagerly at construction. *)
  csr : Topology.Csr.t;  (* shared, graph-owned adjacency *)
  rows : int array;
      (* Interleaved per-vertex row metadata: [rows.(2v)] is the offset
         of [v]'s open-adjacency row in [arena] (-1 = not yet
         materialised), [rows.(2v + 1)] its length. Interleaving keeps
         offset and length on one cache line — the lookup is a random
         access per BFS vertex expansion. *)
  mutable arena : int array;
      (* Open-neighbor targets, rows appended in first-query order.
         Growth replaces the array (never mutates filled rows), so an
         iterator holding a stale reference still reads correct data. *)
  mutable arena_used : int;
  site : site_cache option;
}

type t = {
  graph : Topology.Graph.t;
  p : float;
  seed : int64;
  removed : (int, unit) Hashtbl.t option;
  site_p : float option;
  cache : cache option;
}

let bit_get b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bitset bits = Bytes.make ((bits + 7) / 8) '\000'

(* Distinct seed namespace for vertex coins, so site and bond states are
   independent even though vertex and edge ids overlap. *)
let site_seed seed = Prng.Coin.derive seed 0x5173

let cache_gate = 1 lsl 21

let check_probabilities ~who ~p ~site_p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "World.%s: p outside [0,1]" who);
  match site_p with
  | Some sp when not (sp >= 0.0 && sp <= 1.0) ->
      invalid_arg (Printf.sprintf "World.%s: site_p outside [0,1]" who)
  | Some _ | None -> ()

let fits_gate graph =
  graph.Topology.Graph.edge_id_bound <= cache_gate
  && graph.Topology.Graph.vertex_count <= cache_gate

(* Assemble a cache around an already filled edge-coin bitset. The
   arena starts at the vertex count and doubles; rows are appended on
   first query. *)
let make_cache graph ~e_coin ~site =
  let n = graph.Topology.Graph.vertex_count in
  {
    e_coin;
    csr = Topology.Csr.of_graph graph;
    rows = Array.make (2 * n) (-1);
    arena = Array.make (max 64 n) 0;
    arena_used = 0;
    site;
  }

let site_cache_of graph ~seed ~site_p =
  match site_p with
  | None -> None
  | Some sp ->
      let n = graph.Topology.Graph.vertex_count in
      let v_alive = bitset n in
      Prng.Coin.bernoulli_fill ~seed:(site_seed seed) ~p:sp v_alive ~count:n;
      Some { v_alive }

let create ?site_p ?(cache = true) graph ~p ~seed =
  check_probabilities ~who:"create" ~p ~site_p;
  let cache =
    if cache && fits_gate graph then begin
      let e_coin = bitset graph.Topology.Graph.edge_id_bound in
      Prng.Coin.bernoulli_fill ~seed ~p e_coin
        ~count:graph.Topology.Graph.edge_id_bound;
      Some (make_cache graph ~e_coin ~site:(site_cache_of graph ~seed ~site_p))
    end
    else None
  in
  { graph; p; seed; removed = None; site_p; cache }

let of_uniforms ?site_uniforms ?site_p graph ~p ~seed ~uniforms =
  check_probabilities ~who:"of_uniforms" ~p ~site_p;
  if not (fits_gate graph) then
    invalid_arg "World.of_uniforms: graph exceeds the cache gate";
  if Array.length uniforms <> graph.Topology.Graph.edge_id_bound then
    invalid_arg "World.of_uniforms: need one uniform per edge id";
  let n = graph.Topology.Graph.vertex_count in
  let e_coin = bitset graph.Topology.Graph.edge_id_bound in
  let bit_set b i =
    let j = i lsr 3 in
    Bytes.unsafe_set b j
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) lor (1 lsl (i land 7))))
  in
  Array.iteri (fun id u -> if u < p then bit_set e_coin id) uniforms;
  let site =
    match (site_p, site_uniforms) with
    | None, _ -> None
    | Some sp, Some su ->
        if Array.length su <> n then
          invalid_arg "World.of_uniforms: need one site uniform per vertex";
        let v_alive = bitset n in
        Array.iteri (fun v u -> if u < sp then bit_set v_alive v) su;
        Some { v_alive }
    | Some _, None -> site_cache_of graph ~seed ~site_p
  in
  {
    graph;
    p;
    seed;
    removed = None;
    site_p;
    cache = Some (make_cache graph ~e_coin ~site);
  }

let cached t = t.cache <> None
let graph t = t.graph
let p t = t.p
let seed t = t.seed
let site_p t = t.site_p

(* The coin cache is a pure function of the seed, so a removal overlay
   keeps sharing it: [is_open] applies the overlay on top. *)
let remove_edges t edges =
  let removed =
    match t.removed with
    | None -> Hashtbl.create (2 * List.length edges)
    | Some existing -> Hashtbl.copy existing
  in
  List.iter
    (fun (u, v) -> Hashtbl.replace removed (t.graph.Topology.Graph.edge_id u v) ())
    edges;
  { t with removed = Some removed }

let removed_count t =
  match t.removed with None -> 0 | Some removed -> Hashtbl.length removed

let alive_in_cache c v =
  match c.site with None -> true | Some sc -> bit_get sc.v_alive v

let vertex_alive_coin t v =
  match t.site_p with
  | None -> true
  | Some sp -> (
      match t.cache with
      | Some c -> alive_in_cache c v
      | None -> Prng.Coin.bernoulli ~seed:(site_seed t.seed) ~p:sp v)

let vertex_alive t v =
  Topology.Graph.check_vertex t.graph v;
  vertex_alive_coin t v

(* Edge state ignoring adversarial removals: both endpoints alive and
   the edge coin succeeds — a pure function of (seed, u, v, id). On the
   cached path all three facts are pre-computed bits. *)
let coin_open t u v id =
  match t.cache with
  | Some c -> bit_get c.e_coin id && alive_in_cache c u && alive_in_cache c v
  | None ->
      vertex_alive t u && vertex_alive t v
      && Prng.Coin.bernoulli ~seed:t.seed ~p:t.p id

let is_open_id t u v ~id =
  (match t.removed with
  | Some removed -> not (Hashtbl.mem removed id)
  | None -> true)
  && coin_open t u v id

let is_open t u v = is_open_id t u v ~id:(t.graph.Topology.Graph.edge_id u v)

(* Materialise the coin-open row of [v] (no removal overlay applied) by
   scanning the shared CSR with bit tests — no closure calls, no
   allocation beyond amortised arena growth. Returns the row offset. *)
let fill_row c v =
  let csr = c.csr in
  let lo = csr.Topology.Csr.xadj.(v) and hi = csr.Topology.Csr.xadj.(v + 1) in
  let needed = hi - lo in
  if c.arena_used + needed > Array.length c.arena then begin
    let grown =
      Array.make (max (2 * Array.length c.arena) (c.arena_used + needed)) 0
    in
    Array.blit c.arena 0 grown 0 c.arena_used;
    c.arena <- grown
  end;
  let start = c.arena_used in
  let k = ref start in
  if alive_in_cache c v then begin
    let targets = csr.Topology.Csr.targets
    and edge_ids = csr.Topology.Csr.edge_ids
    and arena = c.arena in
    for i = lo to hi - 1 do
      let w = Array.unsafe_get targets i in
      if bit_get c.e_coin (Array.unsafe_get edge_ids i) && alive_in_cache c w
      then begin
        Array.unsafe_set arena !k w;
        incr k
      end
    done
  end;
  c.arena_used <- !k;
  c.rows.((2 * v) + 1) <- !k - start;
  c.rows.(2 * v) <- start;
  start

let row_start c v =
  let start = c.rows.(2 * v) in
  if start >= 0 then start else fill_row c v

let edge_removed t v w =
  match t.removed with
  | None -> false
  | Some removed -> Hashtbl.mem removed (t.graph.Topology.Graph.edge_id v w)

(* Filter a fresh, caller-owned array in place — no intermediate list on
   either path. Cached worlds cut the memoised coin-open row (only the
   removal overlay left to check); lazy worlds filter the raw neighbor
   array — which the freshness contract of {!Topology.Graph.t} lets us
   own — through the coin. *)
let open_neighbors t v =
  match t.cache with
  | Some c ->
      let start = row_start c v in
      let len = c.rows.((2 * v) + 1) in
      if t.removed = None then Array.sub c.arena start len
      else begin
        let arena = c.arena in
        let out = Array.make len 0 in
        let k = ref 0 in
        for i = start to start + len - 1 do
          let w = Array.unsafe_get arena i in
          if not (edge_removed t v w) then begin
            Array.unsafe_set out !k w;
            incr k
          end
        done;
        if !k = len then out else Array.sub out 0 !k
      end
  | None ->
      let nbrs = t.graph.Topology.Graph.neighbors v in
      let n = Array.length nbrs in
      let k = ref 0 in
      for i = 0 to n - 1 do
        let w = Array.unsafe_get nbrs i in
        if is_open t v w then begin
          Array.unsafe_set nbrs !k w;
          incr k
        end
      done;
      if !k = n then nbrs else Array.sub nbrs 0 !k

let iter_open_neighbors t v f =
  match t.cache with
  | Some c ->
      let start = row_start c v in
      let len = c.rows.((2 * v) + 1) in
      (* Capture the arena after the row is in place: [f] may fill more
         rows and grow (replace) the arena, but the captured array keeps
         this row intact. *)
      let arena = c.arena in
      if t.removed = None then
        for i = start to start + len - 1 do
          f (Array.unsafe_get arena i)
        done
      else
        for i = start to start + len - 1 do
          let w = Array.unsafe_get arena i in
          if not (edge_removed t v w) then f w
        done
  | None ->
      let nbrs = t.graph.Topology.Graph.neighbors v in
      for i = 0 to Array.length nbrs - 1 do
        let w = Array.unsafe_get nbrs i in
        if is_open t v w then f w
      done

(* Coins and site bits are eager, so only the open-adjacency rows are
   left to force. After this no query path writes to the cache (every
   [row_start] slot is set), so the world can be read concurrently from
   any number of domains. Worlds above the cache gate have no cache to
   force — their queries re-evaluate the pure coin function and are
   already write-free. *)
let prefill t =
  match t.cache with
  | None -> ()
  | Some c ->
      for v = 0 to t.graph.Topology.Graph.vertex_count - 1 do
        ignore (row_start c v)
      done

(* Narrow read-only views of the cache for hot loops in the same
   library ({!Oracle}, {!Reveal}): a cross-module call per edge or per
   neighbor is measurable at kernel scale, and these make the inner
   loops straight-line array/bit code. Both return [None] whenever the
   single-bit / raw-row reading would be wrong (lazy world, removal
   overlay, site percolation for the bit view), so callers always have
   the general path as fallback. *)
let raw_open_bits t =
  match t.cache with
  | Some c when t.removed = None && c.site = None -> Some c.e_coin
  | Some _ | None -> None

let adjacency_view t =
  match t.cache with
  | Some c when t.removed = None -> Some (c.rows, c.arena)
  | Some _ | None -> None

let ensure_row t v =
  match t.cache with None -> () | Some c -> ignore (row_start c v)

let open_degree t v =
  let count = ref 0 in
  iter_open_neighbors t v (fun _ -> incr count);
  !count

let count_open_edges t =
  let count = ref 0 in
  Topology.Graph.iter_edges t.graph (fun u v -> if is_open t u v then incr count);
  !count
