(* Flat bitsets, one bit per edge id (and per vertex id under site
   percolation). [probed] records whether the coin has been flipped;
   [state] holds the memoised result. Memoisation is invisible: both
   paths evaluate the same pure coin function. *)
type site_cache = { v_probed : Bytes.t; v_alive : Bytes.t }

type cache = {
  e_probed : Bytes.t;
  e_open : Bytes.t;
  adj : int array option array;
      (* Per-vertex coin-open neighbor lists, filled lazily on first
         [open_neighbors]/[iter_open_neighbors] query. Removal overlays
         are applied on top at query time, so the lists stay valid for
         every [remove_edges] derivative sharing this cache. *)
  site : site_cache option;
}

type t = {
  graph : Topology.Graph.t;
  p : float;
  seed : int64;
  removed : (int, unit) Hashtbl.t option;
  site_p : float option;
  cache : cache option;
}

let bit_get b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) lor (1 lsl (i land 7))))

let bitset bits = Bytes.make ((bits + 7) / 8) '\000'

(* Distinct seed namespace for vertex coins, so site and bond states are
   independent even though vertex and edge ids overlap. *)
let site_seed seed = Prng.Coin.derive seed 0x5173

let cache_gate = 1 lsl 21

let create ?site_p ?(cache = true) graph ~p ~seed =
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "World.create: p outside [0,1]";
  (match site_p with
  | Some sp when not (sp >= 0.0 && sp <= 1.0) ->
      invalid_arg "World.create: site_p outside [0,1]"
  | Some _ | None -> ());
  let cache =
    if
      cache
      && graph.Topology.Graph.edge_id_bound <= cache_gate
      && graph.Topology.Graph.vertex_count <= cache_gate
    then
      Some
        {
          e_probed = bitset graph.Topology.Graph.edge_id_bound;
          e_open = bitset graph.Topology.Graph.edge_id_bound;
          adj = Array.make graph.Topology.Graph.vertex_count None;
          site =
            (match site_p with
            | None -> None
            | Some _ ->
                Some
                  {
                    v_probed = bitset graph.Topology.Graph.vertex_count;
                    v_alive = bitset graph.Topology.Graph.vertex_count;
                  });
        }
    else None
  in
  { graph; p; seed; removed = None; site_p; cache }

let cached t = t.cache <> None
let graph t = t.graph
let p t = t.p
let seed t = t.seed
let site_p t = t.site_p

(* The coin cache is a pure function of the seed, so a removal overlay
   keeps sharing it: [is_open] applies the overlay on top. *)
let remove_edges t edges =
  let removed =
    match t.removed with
    | None -> Hashtbl.create (2 * List.length edges)
    | Some existing -> Hashtbl.copy existing
  in
  List.iter
    (fun (u, v) -> Hashtbl.replace removed (t.graph.Topology.Graph.edge_id u v) ())
    edges;
  { t with removed = Some removed }

let removed_count t =
  match t.removed with None -> 0 | Some removed -> Hashtbl.length removed

let vertex_alive_coin t v =
  match t.site_p with
  | None -> true
  | Some sp -> (
      match t.cache with
      | Some { site = Some sc; _ } ->
          if bit_get sc.v_probed v then bit_get sc.v_alive v
          else begin
            let alive = Prng.Coin.bernoulli ~seed:(site_seed t.seed) ~p:sp v in
            bit_set sc.v_probed v;
            if alive then bit_set sc.v_alive v;
            alive
          end
      | Some { site = None; _ } | None ->
          Prng.Coin.bernoulli ~seed:(site_seed t.seed) ~p:sp v)

let vertex_alive t v =
  Topology.Graph.check_vertex t.graph v;
  vertex_alive_coin t v

(* Edge state ignoring adversarial removals: both endpoints alive and
   the edge coin succeeds — a pure function of (seed, u, v, id), hence
   memoisable by edge id. *)
let coin_open t u v id =
  match t.cache with
  | Some c ->
      if bit_get c.e_probed id then bit_get c.e_open id
      else begin
        let state =
          vertex_alive t u && vertex_alive t v
          && Prng.Coin.bernoulli ~seed:t.seed ~p:t.p id
        in
        bit_set c.e_probed id;
        if state then bit_set c.e_open id;
        state
      end
  | None ->
      vertex_alive t u && vertex_alive t v
      && Prng.Coin.bernoulli ~seed:t.seed ~p:t.p id

let is_open t u v =
  let id = t.graph.Topology.Graph.edge_id u v in
  (match t.removed with
  | Some removed -> not (Hashtbl.mem removed id)
  | None -> true)
  && coin_open t u v id

(* The coin-open neighbor list of [v] (no removal overlay applied),
   memoised in the adjacency cache. Filling it flips — and therefore
   memoises — every coin out of [v]. *)
let coin_adj t c v =
  match Array.unsafe_get c.adj v with
  | Some a -> a
  | None ->
      let nbrs = t.graph.Topology.Graph.neighbors v in
      let n = Array.length nbrs in
      let k = ref 0 in
      for i = 0 to n - 1 do
        let w = Array.unsafe_get nbrs i in
        if coin_open t v w (t.graph.Topology.Graph.edge_id v w) then begin
          Array.unsafe_set nbrs !k w;
          incr k
        end
      done;
      let a = if !k = n then nbrs else Array.sub nbrs 0 !k in
      c.adj.(v) <- Some a;
      a

let edge_removed t v w =
  match t.removed with
  | None -> false
  | Some removed -> Hashtbl.mem removed (t.graph.Topology.Graph.edge_id v w)

(* Filter a fresh, caller-owned array in place — no intermediate list on
   either path. Cached worlds filter the memoised coin-open list (only
   the removal overlay left to check); lazy worlds filter the raw
   neighbor array through the coin. *)
let open_neighbors t v =
  match t.cache with
  | Some c ->
      let adj = coin_adj t c v in
      if t.removed = None then Array.copy adj
      else begin
        let n = Array.length adj in
        let out = Array.make n 0 in
        let k = ref 0 in
        for i = 0 to n - 1 do
          let w = Array.unsafe_get adj i in
          if not (edge_removed t v w) then begin
            Array.unsafe_set out !k w;
            incr k
          end
        done;
        if !k = n then out else Array.sub out 0 !k
      end
  | None ->
      let nbrs = t.graph.Topology.Graph.neighbors v in
      let n = Array.length nbrs in
      let k = ref 0 in
      for i = 0 to n - 1 do
        let w = Array.unsafe_get nbrs i in
        if is_open t v w then begin
          Array.unsafe_set nbrs !k w;
          incr k
        end
      done;
      if !k = n then nbrs else Array.sub nbrs 0 !k

let iter_open_neighbors t v f =
  match t.cache with
  | Some c ->
      let adj = coin_adj t c v in
      if t.removed = None then Array.iter f adj
      else
        Array.iter (fun w -> if not (edge_removed t v w) then f w) adj
  | None ->
      let nbrs = t.graph.Topology.Graph.neighbors v in
      for i = 0 to Array.length nbrs - 1 do
        let w = Array.unsafe_get nbrs i in
        if is_open t v w then f w
      done

(* Force the whole coin cache in one pass: every site coin, every edge
   coin, every adjacency list. After this no query path writes to the
   cache (every [probed] bit is set and every [adj] slot is [Some]), so
   the world can be read concurrently from any number of domains.
   Worlds above the cache gate have no cache to force — their queries
   re-evaluate the pure coin function and are already write-free. *)
let prefill t =
  match t.cache with
  | None -> ()
  | Some c ->
      for v = 0 to t.graph.Topology.Graph.vertex_count - 1 do
        ignore (vertex_alive_coin t v);
        ignore (coin_adj t c v)
      done

let open_degree t v =
  let count = ref 0 in
  iter_open_neighbors t v (fun _ -> incr count);
  !count

let count_open_edges t =
  let count = ref 0 in
  Topology.Graph.iter_edges t.graph (fun u v -> if is_open t u v then incr count);
  !count
