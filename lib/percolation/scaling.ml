type curve = { size : int; points : (float * float) list }

let measure_giant_curve stream ~graph_of_size ~size ~ps ~trials =
  let graph = graph_of_size size in
  (* One seed set per size, shared across all p: the standard monotone
     coupling makes each trial's giant fraction non-decreasing in p,
     which removes sampling noise from the crossing estimates. Each
     seed's draws are sampled once into a {!Coupled} family and every p
     of the sweep cuts the same family — one sampling sweep per (size,
     trial) instead of one per (size, trial, p). Accumulation stays in
     seed order per p (per-p accumulator cells, seeds outermost), so the
     float sums — and the emitted curve bytes — are unchanged. *)
  let substream = Prng.Stream.split stream size in
  let seeds = Array.init trials (fun t -> Prng.Coin.derive (Prng.Stream.seed substream) t) in
  let ps = Array.of_list ps in
  let totals = Array.make (Array.length ps) 0.0 in
  let fits =
    graph.Topology.Graph.edge_id_bound <= World.cache_gate
    && graph.Topology.Graph.vertex_count <= World.cache_gate
  in
  Array.iter
    (fun seed ->
      let world_at =
        if fits then begin
          let family = Coupled.create graph ~seed in
          fun p -> Coupled.world_at family ~p
        end
        else fun p -> World.create graph ~p ~seed
      in
      Array.iteri
        (fun i p ->
          totals.(i) <-
            totals.(i) +. Clusters.giant_fraction (Clusters.census (world_at p)))
        ps)
    seeds;
  let points =
    Array.to_list
      (Array.mapi (fun i p -> (p, totals.(i) /. float_of_int trials)) ps)
  in
  { size; points }

let interpolate curve x =
  match curve.points with
  | [] | [ _ ] -> invalid_arg "Scaling.interpolate: need at least two points"
  | (x0, y0) :: _ when x <= x0 -> y0
  | points ->
      let rec walk = function
        | [ (_, y) ] -> y
        | (xa, ya) :: ((xb, yb) :: _ as rest) ->
            if x <= xb then ya +. ((x -. xa) /. (xb -. xa) *. (yb -. ya)) else walk rest
        | [] -> assert false
      in
      walk points

let crossing a b =
  (* Difference of the interpolated curves on the union grid; bisect
     inside the first sign-changing interval. *)
  let grid =
    List.sort_uniq compare (List.map fst a.points @ List.map fst b.points)
  in
  let difference x = interpolate a x -. interpolate b x in
  let rec find_bracket = function
    | x1 :: (x2 :: _ as rest) ->
        let d1 = difference x1 and d2 = difference x2 in
        if d1 = 0.0 then Some (x1, x1)
        else if d1 *. d2 < 0.0 then Some (x1, x2)
        else find_bracket rest
    | [ x ] -> if difference x = 0.0 then Some (x, x) else None
    | [] -> None
  in
  match find_bracket grid with
  | None -> None
  | Some (lo, hi) when lo = hi -> Some lo
  | Some (lo, hi) ->
      let rec bisect lo hi iterations =
        if iterations = 0 then (lo +. hi) /. 2.0
        else begin
          let mid = (lo +. hi) /. 2.0 in
          if difference lo *. difference mid <= 0.0 then bisect lo mid (iterations - 1)
          else bisect mid hi (iterations - 1)
        end
      in
      Some (bisect lo hi 40)

let crossings curves =
  let sorted = List.sort (fun a b -> compare a.size b.size) curves in
  let rec pairwise = function
    | a :: (b :: _ as rest) -> (
        match crossing a b with
        | Some x -> x :: pairwise rest
        | None -> pairwise rest)
    | [ _ ] | [] -> []
  in
  pairwise sorted

let estimate_threshold curves =
  match crossings curves with
  | [] -> None
  | xs -> Some (List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs))
