type policy = Local | Unrestricted

exception Locality_violation of int * int
exception Budget_exhausted

(* Probe memory and predecessor links come in two flavours, mirroring
   {!World}'s representations:

   - [Table]: Hashtbls, the reference path, used over lazy worlds
     (implicit graphs too large to index).
   - [Flat]: a 2-bit-per-edge-id bitset for probe memory and an int
     array over vertices for predecessor links, used over cached worlds
     (the world's size gate guarantees both fit). The probed flag and
     the memoised state share a byte, so the memo hit path — the bulk of
     a router's probes — touches exactly one cache line per probe.
     [pred.(v) = -1] means unreached; the source is its own predecessor,
     as in the Table path. [reached_rev] keeps the reached set
     enumerable without scanning the whole array.

   Both flavours implement the same counting and locality semantics;
   equivalence is property-tested.

   The records are named (not inline) so [probe] can dispatch on the
   flavour once and hand the bare record to a monomorphic hot path —
   the historical [probe] re-matched the store four to five times per
   call (find, add, two reached checks, predecessor update), which
   dominated the cached path's per-probe cost. *)
type table_store = {
  probed_tbl : (int, bool) Hashtbl.t; (* edge id -> state *)
  predecessor : (int, int) Hashtbl.t; (* reached vertex -> previous hop *)
}

type flat_store = {
  memo : Bytes.t;
      (* Two bits per edge id, packed four edges per byte: bit
         [2*(id mod 4)] = probed?, bit [2*(id mod 4) + 1] = memoised
         state. *)
  pred : int array; (* vertex -> predecessor, -1 = unreached *)
  coin_bits : Bytes.t option;
      (* {!World.raw_open_bits} snapshot: when present (cached bond
         world, no overlay), a fresh probe's answer is bit [id] — no
         world call at all. Worlds are immutable, so caching it at
         [create] is sound. *)
  mutable reached_rev : int list;
  mutable reached_n : int;
}

type store = Table of table_store | Flat of flat_store

type t = {
  world : World.t;
  eid : int -> int -> int;
      (* The graph's [edge_id], hoisted out of two record loads per
         probe — resolving the id is the head of the hot path. *)
  policy : policy;
  budget : int option;
  source : int;
  store : store;
  mutable distinct : int;
  mutable raw : int;
}

let bit_get b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let create ?(policy = Local) ?budget world ~source =
  (match budget with
  | Some b when b <= 0 -> invalid_arg "Oracle.create: budget must be positive"
  | Some _ | None -> ());
  Topology.Graph.check_vertex (World.graph world) source;
  let store =
    if World.cached world then begin
      let g = World.graph world in
      let pred = Array.make g.Topology.Graph.vertex_count (-1) in
      pred.(source) <- source;
      Flat
        {
          memo = Bytes.make ((g.Topology.Graph.edge_id_bound + 3) / 4) '\000';
          pred;
          coin_bits = World.raw_open_bits world;
          reached_rev = [ source ];
          reached_n = 1;
        }
    end
    else begin
      let predecessor = Hashtbl.create 64 in
      Hashtbl.replace predecessor source source;
      Table { probed_tbl = Hashtbl.create 256; predecessor }
    end
  in
  {
    world;
    eid = (World.graph world).Topology.Graph.edge_id;
    policy;
    budget;
    source;
    store;
    distinct = 0;
    raw = 0;
  }

let world t = t.world
let policy t = t.policy
let source t = t.source

let reached t v =
  match t.store with
  | Table { predecessor; _ } -> Hashtbl.mem predecessor v
  | Flat { pred; _ } -> pred.(v) >= 0

let reached_count t =
  match t.store with
  | Table { predecessor; _ } -> Hashtbl.length predecessor
  | Flat f -> f.reached_n

let reached_vertices t =
  match t.store with
  | Table { predecessor; _ } -> Hashtbl.fold (fun v _ acc -> v :: acc) predecessor []
  | Flat f -> f.reached_rev

let distinct_probes t = t.distinct
let raw_probes t = t.raw

let budget_remaining t =
  match t.budget with None -> None | Some b -> Some (b - t.distinct)

let probed_find_opt t id =
  match t.store with
  | Table { probed_tbl; _ } -> Hashtbl.find_opt probed_tbl id
  | Flat f ->
      let b = Char.code (Bytes.unsafe_get f.memo (id lsr 2)) lsr (2 * (id land 3)) in
      if b land 1 <> 0 then Some (b land 2 <> 0) else None

let probe_known t u v =
  match t.eid u v with
  | id -> (
      match probed_find_opt t id with
      | Some state as known ->
          (* A free memo hit: visible in traces as a [fresh = false]
             probe event, but neither counter moves. *)
          if Obs.Trace.on () then
            Obs.Trace.emit (Obs.Trace.Probe { u; v; open_ = state; fresh = false });
          if Obs.Metrics.on () then Obs.Metrics.tick "oracle.probe.known";
          known
      | None -> None)
  | exception Topology.Graph.Not_an_edge _ -> None

(* Shared tail of a fresh (uncached) probe: budget enforcement, the
   actual world query, counters and observability — everything except
   the store writes, which the monomorphic paths do themselves. *)

let check_budget t =
  match t.budget with
  | Some b when t.distinct >= b ->
      t.raw <- t.raw - 1;
      if Obs.Trace.on () then
        Obs.Trace.emit (Obs.Trace.Budget_hit { probes = t.distinct });
      if Obs.Metrics.on () then Obs.Metrics.tick "oracle.budget_hits";
      raise Budget_exhausted
  | Some _ | None -> ()

let query_world t u v id =
  if Obs.Timing.on () then
    Obs.Timing.span "oracle.world_query" (fun () ->
        World.is_open_id t.world u v ~id)
  else World.is_open_id t.world u v ~id

let emit_probe u v state fresh =
  if Obs.Trace.on () then
    Obs.Trace.emit (Obs.Trace.Probe { u; v; open_ = state; fresh });
  if Obs.Metrics.on () then
    Obs.Metrics.tick (if fresh then "oracle.probe.fresh" else "oracle.probe.memo")

(* Monomorphic probe paths: one store dispatch per [probe] call, then
   straight-line record/array/bitset operations. Semantics (event
   order, counter updates, raised exceptions) are identical between the
   two — and to the historical polymorphic implementation. *)

let extend_flat f u v =
  (* [u] and [v] were vertex-checked by [edge_id] before we get here. *)
  let ru = Array.unsafe_get f.pred u >= 0
  and rv = Array.unsafe_get f.pred v >= 0 in
  if ru <> rv then begin
    let fresh_v = if ru then v else u in
    Array.unsafe_set f.pred fresh_v (if ru then u else v);
    f.reached_rev <- fresh_v :: f.reached_rev;
    f.reached_n <- f.reached_n + 1
  end

let extend_table tb u v =
  match (Hashtbl.mem tb.predecessor u, Hashtbl.mem tb.predecessor v) with
  | true, false -> Hashtbl.replace tb.predecessor v u
  | false, true -> Hashtbl.replace tb.predecessor u v
  | true, true | false, false -> ()

let probe_flat t f u v =
  let id = t.eid u v in
  (match t.policy with
  | Unrestricted -> ()
  | Local ->
      if not (f.pred.(u) >= 0 || f.pred.(v) >= 0) then
        raise (Locality_violation (u, v)));
  t.raw <- t.raw + 1;
  (* [extend_flat] is a module-level function (not a local closure):
     without flambda a local capturing [f; u; v] would heap-allocate on
     every probe, and this is the hot path. A previously probed open
     edge may become usable for extension later, once one endpoint is
     reached by another route. *)
  let byte = id lsr 2 and shift = 2 * (id land 3) in
  let b = Char.code (Bytes.unsafe_get f.memo byte) in
  if (b lsr shift) land 1 <> 0 then begin
    let state = (b lsr shift) land 2 <> 0 in
    if state then extend_flat f u v;
    if Atomic.get Obs.Trace.enabled || Atomic.get Obs.Metrics.enabled then
      emit_probe u v state false;
    state
  end
  else begin
    check_budget t;
    (* [Obs.Timing] still needs world queries routed through the
       instrumented path, so the bit-test shortcut only runs untimed. *)
    let state =
      match f.coin_bits with
      | Some bits when not (Atomic.get Obs.Timing.enabled) -> bit_get bits id
      | Some _ | None -> query_world t u v id
    in
    Bytes.unsafe_set f.memo byte
      (Char.unsafe_chr (b lor ((if state then 3 else 1) lsl shift)));
    t.distinct <- t.distinct + 1;
    if state then extend_flat f u v;
    if Atomic.get Obs.Trace.enabled || Atomic.get Obs.Metrics.enabled then
      emit_probe u v state true;
    state
  end

let probe_table t tb u v =
  let id = t.eid u v in
  (match t.policy with
  | Unrestricted -> ()
  | Local ->
      if not (Hashtbl.mem tb.predecessor u || Hashtbl.mem tb.predecessor v) then
        raise (Locality_violation (u, v)));
  t.raw <- t.raw + 1;
  match Hashtbl.find_opt tb.probed_tbl id with
  | Some state ->
      if state then extend_table tb u v;
      if Atomic.get Obs.Trace.enabled || Atomic.get Obs.Metrics.enabled then
      emit_probe u v state false;
      state
  | None ->
      check_budget t;
      let state = query_world t u v id in
      Hashtbl.replace tb.probed_tbl id state;
      t.distinct <- t.distinct + 1;
      if state then extend_table tb u v;
      if Atomic.get Obs.Trace.enabled || Atomic.get Obs.Metrics.enabled then
      emit_probe u v state true;
      state

let probe t u v =
  match t.store with
  | Flat f -> probe_flat t f u v
  | Table tb -> probe_table t tb u v

(* Popcount over the probed bits (the even-position bits of the packed
   memo); 8-bit table kept tiny and obvious. *)
let byte_popcount =
  lazy
    (Array.init 256 (fun b ->
         let rec bits acc b = if b = 0 then acc else bits (acc + (b land 1)) (b lsr 1) in
         bits 0 b))

let recount_distinct t =
  match t.store with
  | Table { probed_tbl; _ } -> Hashtbl.length probed_tbl
  | Flat f ->
      let table = Lazy.force byte_popcount in
      let count = ref 0 in
      Bytes.iter
        (fun c -> count := !count + table.(Char.code c land 0x55))
        f.memo;
      !count

let predecessor_of t v =
  match t.store with
  | Table { predecessor; _ } -> Hashtbl.find predecessor v
  | Flat { pred; _ } -> pred.(v)

let path_to t target =
  if not (reached t target) then None
  else begin
    let rec walk v acc =
      let prev = predecessor_of t v in
      if prev = v then v :: acc else walk prev (v :: acc)
    in
    Some (walk target [])
  end
