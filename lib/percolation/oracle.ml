type policy = Local | Unrestricted

exception Locality_violation of int * int
exception Budget_exhausted

(* Probe memory and predecessor links come in two flavours, mirroring
   {!World}'s representations:

   - [Table]: Hashtbls, the reference path, used over lazy worlds
     (implicit graphs too large to index).
   - [Flat]: bitsets over edge ids for probe memory and an int array
     over vertices for predecessor links, used over cached worlds (the
     world's size gate guarantees both fit). [pred.(v) = -1] means
     unreached; the source is its own predecessor, as in the Table
     path. [reached_rev] keeps the reached set enumerable without
     scanning the whole array.

   Both flavours implement the same counting and locality semantics;
   equivalence is property-tested. *)
type store =
  | Table of {
      probed : (int, bool) Hashtbl.t; (* edge id -> state *)
      predecessor : (int, int) Hashtbl.t; (* reached vertex -> previous hop *)
    }
  | Flat of {
      probed : Bytes.t; (* bit per edge id: probed? *)
      state : Bytes.t; (* bit per edge id: memoised state *)
      pred : int array; (* vertex -> predecessor, -1 = unreached *)
      mutable reached_rev : int list;
      mutable reached_n : int;
    }

type t = {
  world : World.t;
  policy : policy;
  budget : int option;
  source : int;
  store : store;
  mutable distinct : int;
  mutable raw : int;
}

let bit_get b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) lor (1 lsl (i land 7))))

let create ?(policy = Local) ?budget world ~source =
  (match budget with
  | Some b when b <= 0 -> invalid_arg "Oracle.create: budget must be positive"
  | Some _ | None -> ());
  Topology.Graph.check_vertex (World.graph world) source;
  let store =
    if World.cached world then begin
      let g = World.graph world in
      let pred = Array.make g.Topology.Graph.vertex_count (-1) in
      pred.(source) <- source;
      Flat
        {
          probed = Bytes.make ((g.Topology.Graph.edge_id_bound + 7) / 8) '\000';
          state = Bytes.make ((g.Topology.Graph.edge_id_bound + 7) / 8) '\000';
          pred;
          reached_rev = [ source ];
          reached_n = 1;
        }
    end
    else begin
      let predecessor = Hashtbl.create 64 in
      Hashtbl.replace predecessor source source;
      Table { probed = Hashtbl.create 256; predecessor }
    end
  in
  { world; policy; budget; source; store; distinct = 0; raw = 0 }

let world t = t.world
let policy t = t.policy
let source t = t.source

let reached t v =
  match t.store with
  | Table { predecessor; _ } -> Hashtbl.mem predecessor v
  | Flat { pred; _ } -> pred.(v) >= 0

let reached_count t =
  match t.store with
  | Table { predecessor; _ } -> Hashtbl.length predecessor
  | Flat f -> f.reached_n

let reached_vertices t =
  match t.store with
  | Table { predecessor; _ } -> Hashtbl.fold (fun v _ acc -> v :: acc) predecessor []
  | Flat f -> f.reached_rev

let distinct_probes t = t.distinct
let raw_probes t = t.raw

let budget_remaining t =
  match t.budget with None -> None | Some b -> Some (b - t.distinct)

let probed_find_opt t id =
  match t.store with
  | Table { probed; _ } -> Hashtbl.find_opt probed id
  | Flat f -> if bit_get f.probed id then Some (bit_get f.state id) else None

let probed_add t id state =
  match t.store with
  | Table { probed; _ } -> Hashtbl.replace probed id state
  | Flat f ->
      bit_set f.probed id;
      if state then bit_set f.state id

let set_predecessor t v u =
  match t.store with
  | Table { predecessor; _ } -> Hashtbl.replace predecessor v u
  | Flat f ->
      f.pred.(v) <- u;
      f.reached_rev <- v :: f.reached_rev;
      f.reached_n <- f.reached_n + 1

let probe_known t u v =
  match (World.graph t.world).Topology.Graph.edge_id u v with
  | id -> (
      match probed_find_opt t id with
      | Some state as known ->
          (* A free memo hit: visible in traces as a [fresh = false]
             probe event, but neither counter moves. *)
          if Obs.Trace.on () then
            Obs.Trace.emit (Obs.Trace.Probe { u; v; open_ = state; fresh = false });
          if Obs.Metrics.on () then Obs.Metrics.tick "oracle.probe.known";
          known
      | None -> None)
  | exception Topology.Graph.Not_an_edge _ -> None

let extend_reached t u v state =
  if state then begin
    match (reached t u, reached t v) with
    | true, false -> set_predecessor t v u
    | false, true -> set_predecessor t u v
    | true, true | false, false -> ()
  end

let probe t u v =
  let id = (World.graph t.world).Topology.Graph.edge_id u v in
  (match t.policy with
  | Unrestricted -> ()
  | Local ->
      if not (reached t u || reached t v) then raise (Locality_violation (u, v)));
  t.raw <- t.raw + 1;
  match probed_find_opt t id with
  | Some state ->
      (* A previously probed open edge may become usable for extension
         later, once one endpoint is reached by another route. *)
      extend_reached t u v state;
      if Obs.Trace.on () then
        Obs.Trace.emit (Obs.Trace.Probe { u; v; open_ = state; fresh = false });
      if Obs.Metrics.on () then Obs.Metrics.tick "oracle.probe.memo";
      state
  | None ->
      (match t.budget with
      | Some b when t.distinct >= b ->
          t.raw <- t.raw - 1;
          if Obs.Trace.on () then
            Obs.Trace.emit (Obs.Trace.Budget_hit { probes = t.distinct });
          if Obs.Metrics.on () then Obs.Metrics.tick "oracle.budget_hits";
          raise Budget_exhausted
      | Some _ | None -> ());
      let state =
        if Obs.Timing.on () then
          Obs.Timing.span "oracle.world_query" (fun () -> World.is_open t.world u v)
        else World.is_open t.world u v
      in
      probed_add t id state;
      t.distinct <- t.distinct + 1;
      extend_reached t u v state;
      if Obs.Trace.on () then
        Obs.Trace.emit (Obs.Trace.Probe { u; v; open_ = state; fresh = true });
      if Obs.Metrics.on () then Obs.Metrics.tick "oracle.probe.fresh";
      state

(* Popcount over the probed bitset; 8-bit table kept tiny and obvious. *)
let byte_popcount =
  lazy
    (Array.init 256 (fun b ->
         let rec bits acc b = if b = 0 then acc else bits (acc + (b land 1)) (b lsr 1) in
         bits 0 b))

let recount_distinct t =
  match t.store with
  | Table { probed; _ } -> Hashtbl.length probed
  | Flat f ->
      let table = Lazy.force byte_popcount in
      let count = ref 0 in
      Bytes.iter (fun c -> count := !count + table.(Char.code c)) f.probed;
      !count

let predecessor_of t v =
  match t.store with
  | Table { predecessor; _ } -> Hashtbl.find predecessor v
  | Flat { pred; _ } -> pred.(v)

let path_to t target =
  if not (reached t target) then None
  else begin
    let rec walk v acc =
      let prev = predecessor_of t v in
      if prev = v then v :: acc else walk prev (v :: acc)
    in
    Some (walk target [])
  end
