(** Finite-size scaling analysis of percolation thresholds.

    On a finite graph the giant-component fraction is a smooth function
    of [p]; as the system grows the curves steepen and — for
    scale-invariant families like the mesh — cross close to the true
    critical point. Estimating [p_c] from the crossings of
    successive-size curves converges much faster than reading a single
    curve's midpoint: this is the standard Binder-crossing trick, used
    by E19 to pin the 2-d mesh threshold near Kesten's 1/2. *)

type curve = { size : int; points : (float * float) list }
(** A measured response curve: [(p, value)] pairs, increasing in [p]. *)

val measure_giant_curve :
  Prng.Stream.t ->
  graph_of_size:(int -> Topology.Graph.t) ->
  size:int ->
  ps:float list ->
  trials:int ->
  curve
(** [measure_giant_curve stream ~graph_of_size ~size ~ps ~trials] samples
    the mean giant-component fraction at each [p] over [trials] worlds.
    The same seed set is reused across all [p] (monotone coupling), so
    each measured curve is exactly non-decreasing — crossings carry no
    per-point sampling noise. Each seed's draws are sampled once into a
    {!Coupled} family and cut at every [p] (when the graph fits
    {!World.cache_gate}; larger graphs fall back to per-[p] worlds with
    the same seeds and identical states). *)

val interpolate : curve -> float -> float
(** Piecewise-linear evaluation of a curve; clamps outside its range.
    @raise Invalid_argument if the curve has fewer than two points. *)

val crossing : curve -> curve -> float option
(** [crossing a b] locates a [p] at which the two interpolated curves
    cross (difference changes sign), by scanning the shared grid and
    bisecting within the bracketing interval. [None] if no sign change
    exists. *)

val crossings : curve list -> float list
(** Pairwise crossings of successive curves (sorted by size). *)

val estimate_threshold : curve list -> float option
(** Mean of the successive-size crossings — the finite-size-scaling
    estimate of [p_c]. [None] when no pair crosses. *)
