(** A percolation world: a topology together with a retention probability
    and a seed that jointly determine the open/closed state of every edge.

    The state of an edge is a pure function of [(seed, edge id)]
    ({!Prng.Coin}), so a world needs O(1) memory regardless of graph
    size, every observer of the same world sees the same states, and
    worlds built with the same seed but larger [p] contain each other
    monotonically (a standard coupling, handy for threshold scans).

    {2 Cached vs lazy representation}

    Queries are served by one of two observationally identical paths:

    - {e lazy} (the historical behaviour): every [is_open] call rehashes
      [(seed, edge id)]. O(1) memory; the only choice for implicit
      graphs whose [edge_id_bound] is astronomically large.
    - {e cached}: the world carries flat bitsets over
      [\[0, edge_id_bound)] (and over vertices, under site percolation)
      that memoise each coin the first time it is flipped, plus a
      per-vertex open-adjacency cache: the coin-open neighbor list of a
      vertex is materialised on first [open_neighbors] /
      [iter_open_neighbors] query and reused thereafter (removal
      overlays are filtered on top at query time). Repeat queries — a
      reveal BFS followed by a router probing the same edges, or
      repeated traversals of one world — become bit tests and array
      scans, with no rehashing and no neighbor re-enumeration. Both
      paths evaluate the {e same} pure coin function, so results are
      bit-identical; only the work differs.

    [create] picks the cached path automatically whenever the graph is
    small enough ({!cache_gate}); [~cache:false] forces the lazy path
    (the reference for differential tests and benchmarks), [~cache:true]
    requests the cache but is still subject to the size gate.

    For the {e worst-case} fault model of the paper's introduction a
    world can additionally carry a set of adversarially removed edges
    ({!remove_edges}): those are closed regardless of their coins, and
    everything downstream — oracles, routers, reveals, censuses —
    behaves identically over the overlaid world. Removal overlays share
    the coin cache of the world they derive from (coins are a pure
    function of the seed; only the overlay differs). *)

type cache
(** Memoised coin bitsets and open-adjacency lists; never observable
    except through speed. *)

type t = private {
  graph : Topology.Graph.t;
  p : float;
  seed : int64;
  removed : (int, unit) Hashtbl.t option;  (** Adversarial deletions. *)
  site_p : float option;  (** Vertex survival probability, if sites fail. *)
  cache : cache option;  (** Present iff this world runs the cached path. *)
}

val cache_gate : int
(** Worlds whose graph has [edge_id_bound] and [vertex_count] both at
    most this bound are cached by default; larger graphs always use the
    lazy path. *)

val create :
  ?site_p:float -> ?cache:bool -> Topology.Graph.t -> p:float -> seed:int64 -> t
(** [create graph ~p ~seed] is a bond-percolation world. With
    [?site_p:q], vertices additionally fail independently (survive with
    probability [q], the {e site} model of Hastad–Leighton–Newman's node
    faults): an edge is open iff both endpoints are alive {e and} its
    own coin succeeds. Pure site percolation is [~p:1.0 ?site_p].
    Vertex coins live in a separate seed namespace, independent of the
    edge coins.

    [?cache] selects the representation: [true] (default) memoises coin
    flips in flat bitsets when the graph fits under {!cache_gate};
    [false] forces the lazy reference path. Either way the observable
    edge states are identical.
    @raise Invalid_argument if [p] or [site_p] is outside [\[0, 1\]]. *)

val cached : t -> bool
(** Whether this world runs the cached fast path. *)

val graph : t -> Topology.Graph.t
val p : t -> float
val seed : t -> int64

val remove_edges : t -> (int * int) list -> t
(** [remove_edges w edges] is [w] with the listed edges forced closed
    (cumulative with any earlier removals; [w] itself is unchanged).
    The derived world shares [w]'s coin cache.
    @raise Topology.Graph.Not_an_edge if a pair is not an edge. *)

val removed_count : t -> int
(** Number of adversarially removed edges. *)

val site_p : t -> float option
(** The vertex survival probability, when sites fail. *)

val vertex_alive : t -> int -> bool
(** Whether a vertex survived site percolation (always [true] in a
    bond-only world). A dead vertex has every incident edge closed.
    @raise Invalid_argument if the vertex is out of range. *)

val prefill : t -> unit
(** Force the entire coin cache: flip every site and edge coin and
    materialise every vertex's open-adjacency list in one pass. After
    [prefill] no query writes to the cache, so the world is genuinely
    immutable and can be shared read-only across domains — the
    contract resident pools ({!Experiments.Worldpool}, [faultroute
    serve]) rely on. No-op on lazy (uncached) worlds, whose queries
    are already write-free. Observable states are unchanged: prefill
    evaluates the same pure coin function queries would. *)

val is_open : t -> int -> int -> bool
(** [is_open w u v] is the state of edge [{u,v}].
    @raise Topology.Graph.Not_an_edge if they are not adjacent. *)

val open_neighbors : t -> int -> int array
(** Adjacent vertices reachable through open edges — adjacency in the
    percolated graph [G_p]. The result is a fresh array; callers may
    keep or mutate it. *)

val iter_open_neighbors : t -> int -> (int -> unit) -> unit
(** [iter_open_neighbors w v f] calls [f] on every open neighbor of [v]
    in the same order as {!open_neighbors}, without building the result
    array — the allocation-free primitive for BFS hot loops. *)

val open_degree : t -> int -> int

val count_open_edges : t -> int
(** Number of open edges, by enumeration (small graphs only). *)
