(** A percolation world: a topology together with a retention probability
    and a seed that jointly determine the open/closed state of every edge.

    The state of an edge is a pure function of [(seed, edge id)]
    ({!Prng.Coin}), so a world needs O(1) memory regardless of graph
    size, every observer of the same world sees the same states, and
    worlds built with the same seed but larger [p] contain each other
    monotonically (a standard coupling, handy for threshold scans).

    {2 Cached vs lazy representation}

    Queries are served by one of two observationally identical paths:

    - {e lazy} (the historical behaviour): every [is_open] call rehashes
      [(seed, edge id)]. O(1) memory; the only choice for implicit
      graphs whose [edge_id_bound] is astronomically large.
    - {e cached}: construction fills a flat bitset over
      [\[0, edge_id_bound)] with every edge coin (and one over vertices
      with every survival coin, under site percolation) in a single
      sequential {!Prng.Coin.bernoulli_fill} sweep, and cuts per-vertex
      open-adjacency rows from the graph's shared {!Topology.Csr}
      structure into one flat int arena on first [open_neighbors] /
      [iter_open_neighbors] query (removal overlays are filtered on top
      at query time). Every query — first or repeat — is bit tests and
      array scans: no rehashing, no [neighbors] closure calls, no
      per-query allocation. Both paths evaluate the {e same} pure coin
      function, so results are bit-identical; only the work differs.

    [create] picks the cached path automatically whenever the graph is
    small enough ({!cache_gate}); [~cache:false] forces the lazy path
    (the reference for differential tests and benchmarks), [~cache:true]
    requests the cache but is still subject to the size gate.

    For the {e worst-case} fault model of the paper's introduction a
    world can additionally carry a set of adversarially removed edges
    ({!remove_edges}): those are closed regardless of their coins, and
    everything downstream — oracles, routers, reveals, censuses —
    behaves identically over the overlaid world. Removal overlays share
    the coin cache of the world they derive from (coins are a pure
    function of the seed; only the overlay differs). *)

type cache
(** Memoised coin bitsets and open-adjacency lists; never observable
    except through speed. *)

type t = private {
  graph : Topology.Graph.t;
  p : float;
  seed : int64;
  removed : (int, unit) Hashtbl.t option;  (** Adversarial deletions. *)
  site_p : float option;  (** Vertex survival probability, if sites fail. *)
  cache : cache option;  (** Present iff this world runs the cached path. *)
}

val cache_gate : int
(** Worlds whose graph has [edge_id_bound] and [vertex_count] both at
    most this bound are cached by default; larger graphs always use the
    lazy path. *)

val create :
  ?site_p:float -> ?cache:bool -> Topology.Graph.t -> p:float -> seed:int64 -> t
(** [create graph ~p ~seed] is a bond-percolation world. With
    [?site_p:q], vertices additionally fail independently (survive with
    probability [q], the {e site} model of Hastad–Leighton–Newman's node
    faults): an edge is open iff both endpoints are alive {e and} its
    own coin succeeds. Pure site percolation is [~p:1.0 ?site_p].
    Vertex coins live in a separate seed namespace, independent of the
    edge coins.

    [?cache] selects the representation: [true] (default) memoises coin
    flips in flat bitsets when the graph fits under {!cache_gate};
    [false] forces the lazy reference path. Either way the observable
    edge states are identical.
    @raise Invalid_argument if [p] or [site_p] is outside [\[0, 1\]]. *)

val of_uniforms :
  ?site_uniforms:float array ->
  ?site_p:float ->
  Topology.Graph.t ->
  p:float ->
  seed:int64 ->
  uniforms:float array ->
  t
(** [of_uniforms graph ~p ~seed ~uniforms] is a cached world whose edge
    coins are threshold cuts of pre-sampled uniforms:
    edge [id]'s coin succeeds iff [uniforms.(id) < p]. When
    [uniforms.(id) = Prng.Coin.uniform ~seed id] for every id — which
    is {!Coupled}'s invariant — the result is observationally identical
    to [create graph ~p ~seed], and worlds cut from the same array at
    increasing [p] are monotone-coupled {e deterministically}. Under
    [?site_p], vertex survival is likewise cut from [?site_uniforms]
    when given ([site_uniforms.(v) < site_p]), or hashed from the seed's
    site namespace as [create] would when omitted.
    @raise Invalid_argument if the graph exceeds {!cache_gate}, an
    array length disagrees with the graph, or a probability is outside
    [\[0, 1\]]. *)

val site_seed : int64 -> int64
(** The vertex-coin seed namespace derived from a world seed: site
    percolation draws vertex [v]'s survival from
    [Prng.Coin.uniform ~seed:(site_seed seed) v], independent of the
    edge coins even though vertex and edge ids overlap. Exposed so
    {!Coupled} can pre-sample the same uniforms [create] would hash. *)

val cached : t -> bool
(** Whether this world runs the cached fast path. *)

val graph : t -> Topology.Graph.t
val p : t -> float
val seed : t -> int64

val remove_edges : t -> (int * int) list -> t
(** [remove_edges w edges] is [w] with the listed edges forced closed
    (cumulative with any earlier removals; [w] itself is unchanged).
    The derived world shares [w]'s coin cache.
    @raise Topology.Graph.Not_an_edge if a pair is not an edge. *)

val removed_count : t -> int
(** Number of adversarially removed edges. *)

val site_p : t -> float option
(** The vertex survival probability, when sites fail. *)

val vertex_alive : t -> int -> bool
(** Whether a vertex survived site percolation (always [true] in a
    bond-only world). A dead vertex has every incident edge closed.
    @raise Invalid_argument if the vertex is out of range. *)

val prefill : t -> unit
(** Materialise every vertex's open-adjacency row in one pass (the
    coin bitsets are already filled at construction). After [prefill]
    no query writes to the cache, so the world is genuinely immutable
    and can be shared read-only across domains — the contract resident
    pools ({!Experiments.Worldpool}, [faultroute serve]) rely on.
    No-op on lazy (uncached) worlds, whose queries are already
    write-free. Observable states are unchanged: prefill evaluates the
    same pure coin function queries would. *)

val is_open : t -> int -> int -> bool
(** [is_open w u v] is the state of edge [{u,v}].
    @raise Topology.Graph.Not_an_edge if they are not adjacent. *)

val is_open_id : t -> int -> int -> id:int -> bool
(** [is_open_id w u v ~id] equals [is_open w u v] given
    [id = (graph w).edge_id u v] — the fast path for callers that have
    already resolved the edge id ({!Oracle}'s probe loop resolves it
    once per probe for its own memo). Unspecified if [id] is not the
    edge's id. *)

val open_neighbors : t -> int -> int array
(** Adjacent vertices reachable through open edges — adjacency in the
    percolated graph [G_p]. The result is a fresh array; callers may
    keep or mutate it. *)

val iter_open_neighbors : t -> int -> (int -> unit) -> unit
(** [iter_open_neighbors w v f] calls [f] on every open neighbor of [v]
    in the same order as {!open_neighbors}, without building the result
    array — the allocation-free primitive for BFS hot loops. *)

val raw_open_bits : t -> Bytes.t option
(** [Some bits] when an edge's state is exactly bit [id] of [bits]:
    the world is cached, bond-only, and carries no removal overlay.
    The bitset is the live coin cache — treat it as read-only. [None]
    otherwise; callers fall back to {!is_open_id}. Exists so
    {!Oracle}'s fresh-probe hot path is a single bit test instead of a
    chain of cross-module calls. *)

val adjacency_view : t -> (int array * int array) option
(** [Some (rows, arena)] exposes the open-adjacency cache of a cached
    world with no removal overlay. Row metadata is interleaved so one
    cache-line fetch serves both fields: once [rows.(2 * v) >= 0],
    vertex [v]'s open neighbors are [arena.(i)] for
    [rows.(2 * v) <= i < rows.(2 * v) + rows.(2 * v + 1)]. A negative
    [rows.(2 * v)] means the row is not yet materialised — call
    {!ensure_row} and re-fetch the view ([arena] may have been replaced
    by growth; [rows] has stable identity). Both arrays are the live
    cache — read-only. [None] on lazy worlds and removal overlays;
    callers fall back to {!iter_open_neighbors}. Exists so {!Reveal}'s
    BFS inner loops are straight-line array code. *)

val ensure_row : t -> int -> unit
(** Materialise a vertex's open-adjacency row (no-op on lazy worlds).
    Companion to {!adjacency_view}. *)

val open_degree : t -> int -> int

val count_open_edges : t -> int
(** Number of open edges, by enumeration (small graphs only). *)
