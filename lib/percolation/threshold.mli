(** Monte-Carlo estimation of critical probabilities.

    Estimates the percolation parameter at which a monotone event (giant
    component exists, two marked vertices connect) starts holding, by a
    robust bisection over [p] with repeated sampling at each pivot.
    Validates the background facts the paper leans on: [p_c = 1/2] for
    the 2-d mesh, [1/n] for the giant of [H_n], [1/√2] for [TT_n].

    Each sample runs on its own derived world seed, so the estimates are
    identical for every [jobs] value — parallelism only changes wall
    time. *)

val success_rate :
  ?jobs:int -> Prng.Stream.t -> trials:int -> event:(seed:int64 -> bool) -> float
(** [success_rate stream ~trials ~event] runs [event] on [trials]
    independently derived world seeds and returns the success fraction.
    [jobs] bounds the worker domains (default: the ambient
    {!Engine_par.Pool.default_jobs}). *)

val bisect :
  ?jobs:int ->
  ?trials_per_pivot:int ->
  ?iterations:int ->
  Prng.Stream.t ->
  event:(p:float -> seed:int64 -> bool) ->
  lo:float ->
  hi:float ->
  float
(** [bisect stream ~event ~lo ~hi] assumes the probability of [event]
    increases in [p] from near 0 at [lo] to near 1 at [hi], and returns
    an estimate of the [p] at which the success rate crosses 1/2.
    Defaults: 40 trials per pivot, 12 bisection iterations.
    @raise Invalid_argument if [lo >= hi]. *)

val sweep :
  ?jobs:int ->
  Prng.Stream.t ->
  trials:int ->
  event:(p:float -> seed:int64 -> bool) ->
  ps:float list ->
  (float * float) list
(** [sweep stream ~trials ~event ~ps] evaluates the success rate at each
    listed [p] — the raw data for threshold plots. The same [trials]
    world seeds are reused at every [p] (trial [t] sees the standard
    monotone coupling along the whole sweep), so for a monotone [event]
    the estimated curve is non-decreasing {e deterministically}; fresh
    seeds appear only on the trial axis. Byte-identical across [jobs]
    values. *)
