let success_rate ?jobs stream ~trials ~event =
  if trials <= 0 then invalid_arg "Threshold.success_rate: trials must be positive";
  let outcomes =
    Engine_par.Pool.map ?jobs
      (fun trial ->
        let seed = Prng.Coin.derive (Prng.Stream.seed stream) trial in
        event ~seed)
      (Array.init trials (fun i -> i + 1))
  in
  let successes = Array.fold_left (fun n ok -> if ok then n + 1 else n) 0 outcomes in
  float_of_int successes /. float_of_int trials

let bisect ?jobs ?(trials_per_pivot = 40) ?(iterations = 12) stream ~event ~lo ~hi =
  if lo >= hi then invalid_arg "Threshold.bisect: need lo < hi";
  let rec loop lo hi round =
    if round = 0 then (lo +. hi) /. 2.0
    else begin
      let pivot = (lo +. hi) /. 2.0 in
      let substream = Prng.Stream.split stream round in
      let rate =
        success_rate ?jobs substream ~trials:trials_per_pivot ~event:(fun ~seed ->
            event ~p:pivot ~seed)
      in
      if rate >= 0.5 then loop lo pivot (round - 1) else loop pivot hi (round - 1)
    end
  in
  loop lo hi iterations

(* One seed per trial, shared across every [p] of the sweep: because
   edge states are pure functions of [(seed, id)] thresholded at [p],
   trial [t]'s worlds at increasing [p] are monotone-coupled, so a
   monotone event holds monotonically along each row — the estimated
   curve is non-decreasing deterministically, per sample, not merely in
   expectation. (The historical version split a fresh substream per [p],
   decorrelating the axis and leaving monotone claims to sampling
   luck.) Parallelism is over trials; [Pool.map]'s deterministic
   chunking keeps the result byte-identical for every [jobs] value. *)
let sweep ?jobs stream ~trials ~event ~ps =
  if trials <= 0 then invalid_arg "Threshold.sweep: trials must be positive";
  let ps = Array.of_list ps in
  let rows =
    Engine_par.Pool.map ?jobs
      (fun trial ->
        let seed = Prng.Coin.derive (Prng.Stream.seed stream) trial in
        Array.map (fun p -> event ~p ~seed) ps)
      (Array.init trials (fun i -> i + 1))
  in
  Array.to_list
    (Array.mapi
       (fun i p ->
         let successes =
           Array.fold_left (fun n row -> if row.(i) then n + 1 else n) 0 rows
         in
         (p, float_of_int successes /. float_of_int trials))
       ps)
