type t = {
  graph : Topology.Graph.t;
  seed : int64;
  uniforms : float array;
  site_uniforms : float array option;
}

let create ?(site = false) graph ~seed =
  if
    not
      (graph.Topology.Graph.edge_id_bound <= World.cache_gate
      && graph.Topology.Graph.vertex_count <= World.cache_gate)
  then invalid_arg "Coupled.create: graph exceeds the cache gate";
  (* One uniform per edge id, exactly the values [Prng.Coin.bernoulli]
     thresholds: the cut at any [p] reproduces [World.create] bit for
     bit, and cuts at increasing [p] nest deterministically. *)
  let uniforms = Array.make graph.Topology.Graph.edge_id_bound 0.0 in
  Prng.Coin.uniform_fill ~seed uniforms;
  let site_uniforms =
    if site then begin
      let su = Array.make graph.Topology.Graph.vertex_count 0.0 in
      Prng.Coin.uniform_fill ~seed:(World.site_seed seed) su;
      Some su
    end
    else None
  in
  { graph; seed; uniforms; site_uniforms }

let graph t = t.graph
let seed t = t.seed

let world_at ?site_p t ~p =
  (match (site_p, t.site_uniforms) with
  | Some _, None ->
      invalid_arg "Coupled.world_at: family sampled without ~site:true"
  | _ -> ());
  World.of_uniforms ?site_uniforms:t.site_uniforms ?site_p t.graph ~p ~seed:t.seed
    ~uniforms:t.uniforms
