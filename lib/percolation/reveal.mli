(** Ground-truth exploration of a percolation world.

    Experiments must condition on [u ~ v] (Definition 2) and distinguish
    "the router gave up" from "no path exists". This module answers such
    questions by reading edge states directly — {e without} going through
    a counting oracle, so the measured routing complexity is unaffected.

    Exploration cost is proportional to the open cluster explored, so a
    [limit] on visited vertices is available for huge graphs.

    Three BFS engines serve the queries. Lazy worlds use the
    Hashtbl-frontier reference engine; cached worlds ({!World.cached})
    use int-array arena BFS (same visit order as the reference,
    property-tested), and — for queries that observe no visit order —
    a level-synchronous bitset engine that scans frontiers a 64-bit
    word at a time. Every engine discovers each vertex at its true BFS
    distance and implements one shared limit convention (a truncated
    run visits exactly [limit] vertices), so verdicts, distances and
    full-exploration counts are engine-independent; only visit {e order}
    within a level, and hence {e which} vertices a truncated run
    reaches, distinguishes the bitset engine from the other two. *)

type verdict = Connected of int | Disconnected | Unknown
(** [Connected d]: an open path exists and the percolation distance is
    [d]. [Unknown]: the exploration limit was hit first. *)

type engine = Table | Arena | Bitset
(** Explicit engine selector, for differential tests and benchmarks.
    Production entry points pick automatically: [Table] for lazy
    worlds, [Arena] for cached worlds when visit order is observable
    (tracing on, a [limit] set, or an order-sensitive caller), [Bitset]
    otherwise. [Arena] and [Bitset] allocate O(vertex count) and so
    suit any graph small enough to index by vertex. *)

val connected : ?limit:int -> World.t -> int -> int -> verdict
(** [connected w u v] explores the open cluster of [u] breadth-first
    until [v] is found, the cluster is exhausted, or [limit] vertices
    have been visited. *)

val connected_via : engine -> ?limit:int -> World.t -> int -> int -> verdict
(** {!connected} on an explicit engine. Without [limit] all engines
    return the same verdict and distance. With [limit], [Table] and
    [Arena] still agree exactly, but [Bitset] may reach the target
    inside the budget when the queue engines truncate first (or vice
    versa) — its visit order differs, so only truncated {e counts} are
    comparable across all three. *)

val cluster_of : ?limit:int -> World.t -> int -> int list * bool
(** [cluster_of w v] is the open cluster containing [v] (unordered) and
    a flag that is [true] when exploration was truncated by [limit]. *)

val cluster_size : ?limit:int -> World.t -> int -> int * bool
(** Size variant of {!cluster_of}: the number of vertices visited and
    the truncation flag. Counts during the walk (no intermediate member
    list), and — the count being engine-independent — runs on the
    bitset engine whenever the world is cached, no [limit] is set and
    tracing is off. *)

val cluster_size_via : engine -> ?limit:int -> World.t -> int -> int * bool
(** {!cluster_size} on an explicit engine. The result is
    engine-independent even under [limit] (the shared truncation
    convention fixes the count at exactly [limit]). *)

val ball : World.t -> int -> radius:int -> (int, int) Hashtbl.t
(** [ball w v ~radius] maps every vertex within percolation distance
    [radius] of [v] to its distance. *)
