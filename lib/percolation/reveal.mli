(** Ground-truth exploration of a percolation world.

    Experiments must condition on [u ~ v] (Definition 2) and distinguish
    "the router gave up" from "no path exists". This module answers such
    questions by reading edge states directly — {e without} going through
    a counting oracle, so the measured routing complexity is unaffected.

    Exploration cost is proportional to the open cluster explored, so a
    [limit] on visited vertices is available for huge graphs.

    Cached worlds ({!World.cached}) are explored with int-array arena
    BFS (distances and queue indexed by vertex id); lazy worlds use the
    Hashtbl-frontier reference engine. The two are observationally
    identical — same verdicts, same distances, same visit order —
    which is property-tested. *)

type verdict = Connected of int | Disconnected | Unknown
(** [Connected d]: an open path exists and the percolation distance is
    [d]. [Unknown]: the exploration limit was hit first. *)

val connected : ?limit:int -> World.t -> int -> int -> verdict
(** [connected w u v] explores the open cluster of [u] breadth-first
    until [v] is found, the cluster is exhausted, or [limit] vertices
    have been visited. *)

val cluster_of : ?limit:int -> World.t -> int -> int list * bool
(** [cluster_of w v] is the open cluster containing [v] (unordered) and
    a flag that is [true] when exploration was truncated by [limit]. *)

val cluster_size : ?limit:int -> World.t -> int -> int * bool
(** Size variant of {!cluster_of}. *)

val ball : World.t -> int -> radius:int -> (int, int) Hashtbl.t
(** [ball w v ~radius] maps every vertex within percolation distance
    [radius] of [v] to its distance. *)
