type verdict = Connected of int | Disconnected | Unknown

(* Two BFS engines over open edges, selected by the world's
   representation and observationally identical (property-tested):

   - [bfs_table]: the historical Hashtbl-frontier engine, the reference
     path, used for lazy worlds (implicit graphs too large to index by
     vertex).
   - [bfs_arena]: int-array distances and an int-array queue indexed by
     vertex id, used for cached worlds (the size gate guarantees the
     arrays fit). No hashing, no boxing.

   Both stop when [stop] returns true for a newly discovered vertex,
   when the cluster is exhausted, or when [limit] vertices have been
   discovered. *)

let bfs_table ?limit world start ~stop ~visit =
  let dist = Hashtbl.create 256 in
  Hashtbl.replace dist start 0;
  visit start 0;
  if stop start then `Stopped 0
  else begin
    let queue = Queue.create () in
    Queue.push start queue;
    let truncated = ref false in
    let result = ref `Exhausted in
    (try
       while not (Queue.is_empty queue) do
         let u = Queue.pop queue in
         let du = Hashtbl.find dist u in
         let extend v =
           if not (Hashtbl.mem dist v) then begin
             match limit with
             | Some l when Hashtbl.length dist >= l ->
                 truncated := true;
                 raise Exit
             | Some _ | None ->
                 Hashtbl.replace dist v (du + 1);
                 visit v (du + 1);
                 if stop v then begin
                   result := `Stopped (du + 1);
                   raise Exit
                 end;
                 Queue.push v queue
           end
         in
         Array.iter extend (World.open_neighbors world u)
       done
     with Exit -> ());
    match !result with
    | `Stopped d -> `Stopped d
    | `Exhausted -> if !truncated then `Truncated else `Exhausted_full
  end

let bfs_arena ?limit world start ~stop ~visit =
  let n = (World.graph world).Topology.Graph.vertex_count in
  let dist = Array.make n (-1) in
  dist.(start) <- 0;
  visit start 0;
  if stop start then `Stopped 0
  else begin
    let queue = Array.make n 0 in
    queue.(0) <- start;
    let head = ref 0 and tail = ref 1 in
    let discovered = ref 1 in
    let truncated = ref false in
    let result = ref `Exhausted in
    (try
       while !head < !tail do
         let u = Array.unsafe_get queue !head in
         incr head;
         let du = Array.unsafe_get dist u in
         World.iter_open_neighbors world u (fun v ->
             if Array.unsafe_get dist v < 0 then begin
               match limit with
               | Some l when !discovered >= l ->
                   truncated := true;
                   raise Exit
               | Some _ | None ->
                   Array.unsafe_set dist v (du + 1);
                   incr discovered;
                   visit v (du + 1);
                   if stop v then begin
                     result := `Stopped (du + 1);
                     raise Exit
                   end;
                   Array.unsafe_set queue !tail v;
                   incr tail
             end)
       done
     with Exit -> ());
    match !result with
    | `Stopped d -> `Stopped d
    | `Exhausted -> if !truncated then `Truncated else `Exhausted_full
  end

let bfs ?limit world start ~stop ~visit =
  if World.cached world then bfs_arena ?limit world start ~stop ~visit
  else bfs_table ?limit world start ~stop ~visit

(* Observability shims: when tracing/metrics are on, the per-vertex
   [visit] hook additionally emits [Reveal_step] events and counts
   discoveries; when both are off the original closure is passed
   unchanged and the BFS engines see zero extra work. Timing wraps the
   whole exploration — reveal BFS is one of the three wall-time sinks
   the profiling layer attributes. *)

let observed_bfs ?limit world start ~stop ~visit =
  let traced = Obs.Trace.on () in
  let metered = Obs.Metrics.on () in
  let visited = ref 0 in
  let visit =
    if traced || metered then (fun x d ->
      if traced then Obs.Trace.emit (Obs.Trace.Reveal_step { v = x; dist = d });
      incr visited;
      visit x d)
    else visit
  in
  let run () = bfs ?limit world start ~stop ~visit in
  let result = if Obs.Timing.on () then Obs.Timing.span "reveal.bfs" run else run () in
  if metered then begin
    Obs.Metrics.tick "reveal.bfs_runs";
    Obs.Metrics.tick_n "reveal.visited" !visited
  end;
  result

let connected ?limit world u v =
  Topology.Graph.check_vertex (World.graph world) u;
  Topology.Graph.check_vertex (World.graph world) v;
  if u = v then Connected 0
  else
    match observed_bfs ?limit world u ~stop:(fun x -> x = v) ~visit:(fun _ _ -> ()) with
    | `Stopped d -> Connected d
    | `Truncated -> Unknown
    | `Exhausted_full -> Disconnected

let cluster_of ?limit world v =
  Topology.Graph.check_vertex (World.graph world) v;
  let members = ref [] in
  match
    observed_bfs ?limit world v ~stop:(fun _ -> false)
      ~visit:(fun x _ -> members := x :: !members)
  with
  | `Stopped _ -> assert false
  | `Truncated -> (!members, true)
  | `Exhausted_full -> (!members, false)

let cluster_size ?limit world v =
  let members, truncated = cluster_of ?limit world v in
  (List.length members, truncated)

let ball_table world v ~radius =
  let dist = Hashtbl.create 256 in
  Hashtbl.replace dist v 0;
  let queue = Queue.create () in
  Queue.push v queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let du = Hashtbl.find dist u in
    if du < radius then
      Array.iter
        (fun w ->
          if not (Hashtbl.mem dist w) then begin
            Hashtbl.replace dist w (du + 1);
            Queue.push w queue
          end)
        (World.open_neighbors world u)
  done;
  dist

let ball_arena world v ~radius =
  let n = (World.graph world).Topology.Graph.vertex_count in
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  dist.(v) <- 0;
  queue.(0) <- v;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = Array.unsafe_get queue !head in
    incr head;
    let du = Array.unsafe_get dist u in
    if du < radius then
      World.iter_open_neighbors world u (fun w ->
          if Array.unsafe_get dist w < 0 then begin
            Array.unsafe_set dist w (du + 1);
            Array.unsafe_set queue !tail w;
            incr tail
          end)
  done;
  (* The queue prefix holds exactly the discovered vertices. *)
  let table = Hashtbl.create (2 * !tail) in
  for i = 0 to !tail - 1 do
    let u = Array.unsafe_get queue i in
    Hashtbl.replace table u dist.(u)
  done;
  table

let ball world v ~radius =
  Topology.Graph.check_vertex (World.graph world) v;
  if radius < 0 then invalid_arg "Reveal.ball: negative radius";
  if World.cached world then ball_arena world v ~radius
  else ball_table world v ~radius
