type verdict = Connected of int | Disconnected | Unknown

(* Three BFS engines over open edges, selected by the world's
   representation (and by observability state — see [order_free] below),
   observationally equivalent on order-free queries (property-tested):

   - [bfs_table]: the historical Hashtbl-frontier engine, the reference
     path, used for lazy worlds (implicit graphs too large to index by
     vertex).
   - [bfs_arena]: int-array distances and an int-array queue indexed by
     vertex id, used for cached worlds (the size gate guarantees the
     arrays fit). No hashing, no boxing. Same visit order as
     [bfs_table].
   - [bfs_bitset]: level-synchronous frontier over word-scanned bitsets,
     used for cached worlds on queries that do not observe visit order.
     Within a level it visits vertices in id order, not discovery order,
     but every vertex is still discovered at its true BFS distance, so
     distances, full-exploration counts and connectivity verdicts agree
     with the queue engines.

   Shared limit convention — every engine MUST implement it identically
   so differential tests can compare truncated counts: a fresh vertex is
   checked against [limit] *before* it is recorded. When [limit]
   vertices have already been discovered (the start vertex counts), the
   next fresh vertex triggers `Truncated` without being visited; a
   truncated run therefore visits exactly [limit] vertices in every
   engine. (Which [limit] vertices those are depends on visit order, so
   only the count is engine-independent.)

   All engines stop when [stop] returns true for a newly discovered
   vertex, when the cluster is exhausted, or when the limit trips. *)

let bfs_table ?limit world start ~stop ~visit =
  let dist = Hashtbl.create 256 in
  Hashtbl.replace dist start 0;
  visit start 0;
  if stop start then `Stopped 0
  else begin
    let queue = Queue.create () in
    Queue.push start queue;
    let truncated = ref false in
    let result = ref `Exhausted in
    (try
       while not (Queue.is_empty queue) do
         let u = Queue.pop queue in
         let du = Hashtbl.find dist u in
         let extend v =
           if not (Hashtbl.mem dist v) then begin
             (* Limit convention: check before recording the fresh vertex. *)
             match limit with
             | Some l when Hashtbl.length dist >= l ->
                 truncated := true;
                 raise Exit
             | Some _ | None ->
                 Hashtbl.replace dist v (du + 1);
                 visit v (du + 1);
                 if stop v then begin
                   result := `Stopped (du + 1);
                   raise Exit
                 end;
                 Queue.push v queue
           end
         in
         Array.iter extend (World.open_neighbors world u)
       done
     with Exit -> ());
    match !result with
    | `Stopped d -> `Stopped d
    | `Exhausted -> if !truncated then `Truncated else `Exhausted_full
  end

let bit_set b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) lor (1 lsl (i land 7))))

let bit_get b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bfs_arena ?limit world start ~stop ~visit =
  let n = (World.graph world).Topology.Graph.vertex_count in
  (* Visited lives in a bitset (n bits, cache-resident) rather than an
     int array of distances (8n bytes): the membership test is the one
     random access per scanned edge, so its footprint decides whether
     large-graph BFS runs from L1 or from memory. Depths come from
     level-boundary bookkeeping on the FIFO queue instead — the queue is
     level-ordered, so [depth] bumps exactly when [head] crosses the end
     of the previous level, and visit order is unchanged. *)
  let visited = Bytes.make ((n + 7) / 8) '\000' in
  bit_set visited start;
  visit start 0;
  if stop start then `Stopped 0
  else begin
    let queue = Array.make n 0 in
    queue.(0) <- start;
    let head = ref 0 and tail = ref 1 in
    let level_end = ref 1 and depth = ref 0 in
    let discovered = ref 1 in
    let truncated = ref false in
    let result = ref `Exhausted in
    (* [discover] is the one limit/stop/visit body both loop variants
       share — allocated once per BFS, called directly per fresh vertex. *)
    let discover v du1 =
      (* Limit convention: check before recording the fresh vertex. *)
      match limit with
      | Some l when !discovered >= l ->
          truncated := true;
          raise Exit
      | Some _ | None ->
          bit_set visited v;
          incr discovered;
          visit v du1;
          if stop v then begin
            result := `Stopped du1;
            raise Exit
          end;
          Array.unsafe_set queue !tail v;
          incr tail
    in
    (try
       match World.adjacency_view world with
       | Some (rows, arena0) ->
           (* Straight-line array loop over the world's open-adjacency
              cache: no cross-module call, no closure invocation per
              neighbor. Rows materialise on first touch; growth replaces
              the arena array, so re-fetch the view after a miss. *)
           let arena = ref arena0 in
           while !head < !tail do
             if !head = !level_end then begin
               incr depth;
               level_end := !tail
             end;
             let u = Array.unsafe_get queue !head in
             incr head;
             let du1 = !depth + 1 in
             let s = Array.unsafe_get rows (2 * u) in
             let s =
               if s >= 0 then s
               else begin
                 World.ensure_row world u;
                 (match World.adjacency_view world with
                 | Some (_, a) -> arena := a
                 | None -> assert false);
                 Array.unsafe_get rows (2 * u)
               end
             in
             let ar = !arena in
             for i = s to s + Array.unsafe_get rows ((2 * u) + 1) - 1 do
               let v = Array.unsafe_get ar i in
               if not (bit_get visited v) then discover v du1
             done
           done
       | None ->
           while !head < !tail do
             if !head = !level_end then begin
               incr depth;
               level_end := !tail
             end;
             let u = Array.unsafe_get queue !head in
             incr head;
             let du1 = !depth + 1 in
             World.iter_open_neighbors world u (fun v ->
                 if not (bit_get visited v) then discover v du1)
           done
     with Exit -> ());
    match !result with
    | `Stopped d -> `Stopped d
    | `Exhausted -> if !truncated then `Truncated else `Exhausted_full
  end

let bfs_bitset ?limit world start ~stop ~visit =
  let n = (World.graph world).Topology.Graph.vertex_count in
  let words = (n + 63) / 64 in
  let bytes = 8 * words in
  let visited = Bytes.make bytes '\000' in
  let frontier = Bytes.make bytes '\000' in
  let next = Bytes.make bytes '\000' in
  bit_set visited start;
  bit_set frontier start;
  visit start 0;
  if stop start then `Stopped 0
  else begin
    let discovered = ref 1 in
    let truncated = ref false in
    let result = ref `Exhausted in
    let depth = ref 0 in
    let frontier_live = ref true in
    let grew = ref false in
    (* [discover] is the one limit/stop/visit body both expansion
       variants share — allocated once per BFS, called per fresh
       vertex. *)
    let discover v d =
      (* Limit convention: check before recording the fresh vertex. *)
      match limit with
      | Some l when !discovered >= l ->
          truncated := true;
          raise Exit
      | Some _ | None ->
          bit_set visited v;
          bit_set next v;
          incr discovered;
          grew := true;
          visit v d;
          if stop v then begin
            result := `Stopped d;
            raise Exit
          end
    in
    let view = World.adjacency_view world in
    let arena = ref [||] in
    (match view with Some (_, a) -> arena := a | None -> ());
    let expand u d =
      match view with
      | Some (rows, _) ->
          (* Straight-line array loop over the world's open-adjacency
             cache; rows materialise on first touch, and growth replaces
             the arena array, so re-fetch the view after a miss. *)
          let s = Array.unsafe_get rows (2 * u) in
          let s =
            if s >= 0 then s
            else begin
              World.ensure_row world u;
              (match World.adjacency_view world with
              | Some (_, a) -> arena := a
              | None -> assert false);
              Array.unsafe_get rows (2 * u)
            end
          in
          let ar = !arena in
          for i = s to s + Array.unsafe_get rows ((2 * u) + 1) - 1 do
            let v = Array.unsafe_get ar i in
            if not (bit_get visited v) then discover v d
          done
      | None ->
          World.iter_open_neighbors world u (fun v ->
              if not (bit_get visited v) then discover v d)
    in
    (try
       while !frontier_live do
         let d = !depth + 1 in
         grew := false;
         (* Word-parallel scan of the frontier: one 64-bit load rules
            out 64 vertices at a time; only non-zero words fall through
            to per-byte, per-bit expansion. *)
         for wi = 0 to words - 1 do
           if Bytes.get_int64_le frontier (8 * wi) <> 0L then
             for byte = 8 * wi to (8 * wi) + 7 do
               let bits = Char.code (Bytes.unsafe_get frontier byte) in
               if bits <> 0 then
                 for bit = 0 to 7 do
                   if bits land (1 lsl bit) <> 0 then
                     expand ((byte lsl 3) lor bit) d
                 done
             done
         done;
         Bytes.blit next 0 frontier 0 bytes;
         Bytes.fill next 0 bytes '\000';
         depth := d;
         frontier_live := !grew
       done
     with Exit -> ());
    match !result with
    | `Stopped d -> `Stopped d
    | `Exhausted -> if !truncated then `Truncated else `Exhausted_full
  end

type engine = Table | Arena | Bitset

let bfs_via engine ?limit world start ~stop ~visit =
  match engine with
  | Table -> bfs_table ?limit world start ~stop ~visit
  | Arena -> bfs_arena ?limit world start ~stop ~visit
  | Bitset -> bfs_bitset ?limit world start ~stop ~visit

(* The order-preserving engine for the world's representation — what
   production used before the bitset engine existed. *)
let repr_engine world = if World.cached world then Arena else Table

(* Whether a query may run on the bitset engine without any observer
   noticing: the world must be cached (bitsets index by vertex), no
   limit may cut a level mid-way (which vertices a truncated run visits
   is order-dependent), and tracing must be off (Reveal_step event order
   is a stable artefact). Callers whose visit *count* depends on visit
   order — early-stopping searches under metrics — add their own
   guard. *)
let order_free ?limit world =
  World.cached world && limit = None && not (Obs.Trace.on ())

(* Observability shims: when tracing/metrics are on, the per-vertex
   [visit] hook additionally emits [Reveal_step] events and counts
   discoveries; when both are off the original closure is passed
   unchanged and the BFS engines see zero extra work. Timing wraps the
   whole exploration — reveal BFS is one of the three wall-time sinks
   the profiling layer attributes. *)

let observed_bfs ~engine ?limit world start ~stop ~visit =
  let traced = Obs.Trace.on () in
  let metered = Obs.Metrics.on () in
  let visited = ref 0 in
  let visit =
    if traced || metered then (fun x d ->
      if traced then Obs.Trace.emit (Obs.Trace.Reveal_step { v = x; dist = d });
      incr visited;
      visit x d)
    else visit
  in
  let run () = bfs_via engine ?limit world start ~stop ~visit in
  let result = if Obs.Timing.on () then Obs.Timing.span "reveal.bfs" run else run () in
  if metered then begin
    Obs.Metrics.tick "reveal.bfs_runs";
    Obs.Metrics.tick_n "reveal.visited" !visited
  end;
  result

let connected_with ~engine ?limit world u v =
  Topology.Graph.check_vertex (World.graph world) u;
  Topology.Graph.check_vertex (World.graph world) v;
  if u = v then Connected 0
  else
    match
      observed_bfs ~engine ?limit world u ~stop:(fun x -> x = v)
        ~visit:(fun _ _ -> ())
    with
    | `Stopped d -> Connected d
    | `Truncated -> Unknown
    | `Exhausted_full -> Disconnected

let connected ?limit world u v =
  (* An early-stopping search visits an order-dependent number of
     vertices before finding the target, so the bitset engine is only
     eligible when metrics are not counting them. *)
  let engine =
    if order_free ?limit world && not (Obs.Metrics.on ()) then Bitset
    else repr_engine world
  in
  connected_with ~engine ?limit world u v

let connected_via engine ?limit world u v =
  connected_with ~engine ?limit world u v

let cluster_of ?limit world v =
  Topology.Graph.check_vertex (World.graph world) v;
  let members = ref [] in
  (* Member order follows visit order, so stay on the order-preserving
     engines; order-free callers wanting speed use cluster_size. *)
  match
    observed_bfs ~engine:(repr_engine world) ?limit world v
      ~stop:(fun _ -> false)
      ~visit:(fun x _ -> members := x :: !members)
  with
  | `Stopped _ -> assert false
  | `Truncated -> (!members, true)
  | `Exhausted_full -> (!members, false)

let cluster_size_with ~engine ?limit world v =
  Topology.Graph.check_vertex (World.graph world) v;
  (* Count in the visit hook — a full exploration visits the same set of
     vertices in every engine, so the count is engine-independent (and a
     truncated one visits exactly [limit] by the shared convention). *)
  let count = ref 0 in
  match
    observed_bfs ~engine ?limit world v
      ~stop:(fun _ -> false)
      ~visit:(fun _ _ -> incr count)
  with
  | `Stopped _ -> assert false
  | `Truncated -> (!count, true)
  | `Exhausted_full -> (!count, false)

let cluster_size ?limit world v =
  let engine = if order_free ?limit world then Bitset else repr_engine world in
  cluster_size_with ~engine ?limit world v

let cluster_size_via engine ?limit world v =
  cluster_size_with ~engine ?limit world v

let ball_table world v ~radius =
  let dist = Hashtbl.create 256 in
  Hashtbl.replace dist v 0;
  let queue = Queue.create () in
  Queue.push v queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let du = Hashtbl.find dist u in
    if du < radius then
      Array.iter
        (fun w ->
          if not (Hashtbl.mem dist w) then begin
            Hashtbl.replace dist w (du + 1);
            Queue.push w queue
          end)
        (World.open_neighbors world u)
  done;
  dist

let ball_arena world v ~radius =
  let n = (World.graph world).Topology.Graph.vertex_count in
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  dist.(v) <- 0;
  queue.(0) <- v;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = Array.unsafe_get queue !head in
    incr head;
    let du = Array.unsafe_get dist u in
    if du < radius then
      World.iter_open_neighbors world u (fun w ->
          if Array.unsafe_get dist w < 0 then begin
            Array.unsafe_set dist w (du + 1);
            Array.unsafe_set queue !tail w;
            incr tail
          end)
  done;
  (* The queue prefix holds exactly the discovered vertices. *)
  let table = Hashtbl.create (2 * !tail) in
  for i = 0 to !tail - 1 do
    let u = Array.unsafe_get queue i in
    Hashtbl.replace table u dist.(u)
  done;
  table

let ball world v ~radius =
  Topology.Graph.check_vertex (World.graph world) v;
  if radius < 0 then invalid_arg "Reveal.ball: negative radius";
  if World.cached world then ball_arena world v ~radius
  else ball_table world v ~radius
