(** Exact cluster census of a percolated graph by union-find.

    Enumerates every edge of the base graph, so only for graphs small
    enough to materialise (meshes, hypercubes up to [n ≈ 20]). Provides
    the giant-component facts the paper's theorems are conditioned on:
    does a giant component exist, how large is it, who belongs to it. *)

type census = {
  component_count : int;
  sizes : int array;  (** Component sizes in decreasing order. *)
  largest : int;
  second_largest : int;  (** 0 when there is a single component. *)
  vertex_count : int;
  open_edge_count : int;
}

val census : World.t -> census

val giant_fraction : census -> float
(** [largest / vertex_count]. *)

val has_giant : ?threshold:float -> census -> bool
(** Whether the largest component holds at least [threshold] (default
    0.01) of all vertices {e and} is at least twice the second largest —
    a standard finite-size proxy for "a giant component exists". *)

val components : World.t -> Union_find.t
(** The underlying union-find structure, for membership queries
    ([Union_find.same] answers [u ~ v] for all pairs at once). *)

type membership = {
  components : Union_find.t;
  canonical_root : int;
      (** Root of {e the} largest component: among components of maximal
          size, the one with the smallest union-find root id — a
          deterministic tie-break, so "the giant" is a single component
          even when sizes tie. [-1] on an empty graph. *)
  largest_size : int;
}
(** A reusable largest-component membership query: one union-find build
    and one root scan answer any number of {!member} calls. *)

val membership : World.t -> membership

val member : membership -> int -> bool
(** Whether the vertex lies in the canonical largest component. *)

val in_largest : World.t -> int -> bool
(** [member (membership world) v]: whether a vertex lies in the
    canonical largest component (ties broken by smallest root id — two
    equal-size components never both answer [true], which the previous
    size-comparison implementation got wrong). Builds the union-find on
    every call; for repeated queries build one {!membership}. *)
