type census = {
  component_count : int;
  sizes : int array;
  largest : int;
  second_largest : int;
  vertex_count : int;
  open_edge_count : int;
}

let components world =
  let g = World.graph world in
  let uf = Union_find.create g.Topology.Graph.vertex_count in
  Topology.Graph.iter_edges g (fun u v ->
      if World.is_open world u v then ignore (Union_find.union uf u v));
  uf

let census world =
  let g = World.graph world in
  let n = g.Topology.Graph.vertex_count in
  let uf = Union_find.create n in
  let open_edges = ref 0 in
  Topology.Graph.iter_edges g (fun u v ->
      if World.is_open world u v then begin
        incr open_edges;
        ignore (Union_find.union uf u v)
      end);
  (* Each component is counted exactly once, at its canonical root —
     no Hashtbl needed. *)
  let size_list = ref [] in
  for v = 0 to n - 1 do
    if Union_find.find uf v = v then
      size_list := Union_find.size uf v :: !size_list
  done;
  let sizes = Array.of_list !size_list in
  Array.sort (fun a b -> compare b a) sizes;
  {
    component_count = Array.length sizes;
    sizes;
    largest = (if Array.length sizes > 0 then sizes.(0) else 0);
    second_largest = (if Array.length sizes > 1 then sizes.(1) else 0);
    vertex_count = n;
    open_edge_count = !open_edges;
  }

let giant_fraction c =
  if c.vertex_count = 0 then 0.0
  else float_of_int c.largest /. float_of_int c.vertex_count

let has_giant ?(threshold = 0.01) c =
  giant_fraction c >= threshold && c.largest >= 2 * c.second_largest

type membership = {
  components : Union_find.t;
  canonical_root : int;
  largest_size : int;
}

let membership world =
  let uf = components world in
  let n = Union_find.element_count uf in
  (* Scan roots in ascending id order with a strictly-greater test: the
     winner is the smallest root id among the maximum-size components,
     so ties resolve to one canonical component deterministically. *)
  let canonical_root = ref (-1) in
  let largest_size = ref 0 in
  for v = 0 to n - 1 do
    if Union_find.find uf v = v then begin
      let s = Union_find.size uf v in
      if s > !largest_size then begin
        largest_size := s;
        canonical_root := v
      end
    end
  done;
  { components = uf; canonical_root = !canonical_root; largest_size = !largest_size }

let member m v = Union_find.find m.components v = m.canonical_root

(* The old implementation compared [size uf v] against the maximum size,
   which wrongly answered [true] for *every* maximum-size component when
   sizes tie — and rebuilt the union-find on each call. Now one
   membership build answers any number of queries against the canonical
   root. *)
let in_largest world v = member (membership world) v
