type census = {
  component_count : int;
  sizes : int array;
  largest : int;
  second_largest : int;
  vertex_count : int;
  open_edge_count : int;
}

let components world =
  let g = World.graph world in
  let uf = Union_find.create g.Topology.Graph.vertex_count in
  Topology.Graph.iter_edges g (fun u v ->
      if World.is_open world u v then ignore (Union_find.union uf u v));
  uf

let census world =
  let g = World.graph world in
  let n = g.Topology.Graph.vertex_count in
  let uf = Union_find.create n in
  let open_edges = ref 0 in
  Topology.Graph.iter_edges g (fun u v ->
      if World.is_open world u v then begin
        incr open_edges;
        ignore (Union_find.union uf u v)
      end);
  (* Each component is counted exactly once, at its canonical root —
     no Hashtbl needed. *)
  let size_list = ref [] in
  for v = 0 to n - 1 do
    if Union_find.find uf v = v then
      size_list := Union_find.size uf v :: !size_list
  done;
  let sizes = Array.of_list !size_list in
  Array.sort (fun a b -> compare b a) sizes;
  {
    component_count = Array.length sizes;
    sizes;
    largest = (if Array.length sizes > 0 then sizes.(0) else 0);
    second_largest = (if Array.length sizes > 1 then sizes.(1) else 0);
    vertex_count = n;
    open_edge_count = !open_edges;
  }

let giant_fraction c =
  if c.vertex_count = 0 then 0.0
  else float_of_int c.largest /. float_of_int c.vertex_count

let has_giant ?(threshold = 0.01) c =
  giant_fraction c >= threshold && c.largest >= 2 * c.second_largest

let in_largest world v =
  let uf = components world in
  let n = Union_find.element_count uf in
  let best = ref 0 in
  for u = 0 to n - 1 do
    best := max !best (Union_find.size uf u)
  done;
  Union_find.size uf v = !best
