(** A deterministic fork-join pool on OCaml 5 domains.

    The pool executes an indexed family of pure tasks, handing out
    indices dynamically (a shared atomic counter acts as the work
    queue, so idle domains steal the next undone index). Because tasks
    are indexed and results land in index order, {e scheduling never
    shows in the output}: callers that fold the returned prefix in
    index order observe bit-identical results for any job count.

    Nesting: a task that itself calls into the pool runs its inner
    tasks inline on the current domain — parallelism is applied at the
    outermost level only, so worker counts never multiply.

    Crash barrier: the first exception raised by any task cancels the
    pool (remaining workers stop at the next task boundary), and the
    exception is re-raised in the caller with its original backtrace
    once every domain has been joined.

    Telemetry: when {!Obs.Telemetry} is enabled, every outermost
    dispatch reports per-domain slot gauges
    ([pool.domain.<slot>.busy_s] / [.wall_s] / [.tasks], slot 0 being
    the caller) plus [pool.task_ns] and [pool.queue_wait_ns]
    histograms, accumulated domain-locally and published at slot end —
    purely reporting-layer, results are byte-identical with telemetry
    on or off. Disabled (the default), the hook is one atomic load per
    dispatch. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the CLI's default job
    count. *)

val default_jobs : unit -> int
(** The ambient job count used when an entry point takes no explicit
    [?jobs]. Starts at 1 (fully sequential); the CLI raises it from
    [--jobs]. *)

val set_default_jobs : int -> unit
(** Set the ambient job count.
    @raise Invalid_argument if the argument is not positive. *)

val in_worker : unit -> bool
(** Whether the current domain is executing a pool task (used to run
    nested parallel calls inline). *)

val collect_prefix :
  ?jobs:int -> limit:int -> until:('a -> bool) -> (int -> 'a) -> 'a array
(** [collect_prefix ~jobs ~limit ~until work] computes [work i] for a
    contiguous prefix of the indices [0 .. limit - 1] and returns the
    results in index order.

    Indices are dispensed in order. After each completed task its
    result is passed to [until]; once [until] returns [true] no
    further indices are dispensed (tasks already started still
    finish, so the returned prefix can extend past the triggering
    index — with [jobs = 1] it stops exactly there). The guarantee
    callers rely on: the returned prefix always contains every index
    up to and including the first one whose result made [until] answer
    [true], so a caller that scans the prefix in order and applies its
    own cutoff sees the same data for any job count.

    [work] must be pure (results may be computed in any order and must
    not depend on each other); [until] must be thread-safe — it may be
    called concurrently from several domains.

    [jobs] defaults to {!default_jobs}[ ()]; inside a pool task it is
    forced to 1.
    @raise Invalid_argument if [jobs <= 0] or [limit < 0]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] is [Array.map f xs] computed on [jobs] domains.
    [f] must be pure; the result is identical to the sequential map
    for any job count. *)
