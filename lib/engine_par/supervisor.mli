(** Fault-tolerant supervision around {!Pool}.

    {!Pool.collect_prefix} has a crash {e barrier}: the first exception
    cancels the whole run. For hours-long Monte-Carlo campaigns that is
    the wrong trade — one flaky worker (a transient allocation failure,
    an injected fault, a stuck chunk) should cost one chunk retry, not
    the campaign. This module wraps each chunk in a retry loop:

    - a failed chunk (exception, injected crash or stall, or deadline
      expiry) is retried up to [policy.max_attempts] times with
      exponential backoff, {e on the same index} — tasks are pure, so a
      retried chunk recomputes the identical value and the merged
      output stays byte-identical to a fault-free run whenever every
      chunk eventually succeeds;
    - a chunk that exhausts its attempt budget is {e quarantined}: the
      pool moves on, the caller receives [Quarantined] in that slot and
      a machine-readable summary of everything that went wrong.

    Deadlines are cooperative. A stuck OCaml domain cannot be
    preempted, so the per-chunk watchdog raises inside the worker at
    {!poll} points (the trial engine polls at each attempt start) and
    additionally re-checks when the chunk returns. A chunk that never
    polls and never returns still hangs — bounding that requires
    process-level supervision (see checkpoint/resume in
    {!Experiments.Checkpoint}). *)

type injection = Pass | Crash | Stall
(** A fault-injection verdict for one (chunk, attempt) pair, decided at
    the pool boundary — see [Faultsim.Plan.injector]. [Crash] makes the
    attempt fail as if the task raised; [Stall] makes it fail as if the
    deadline watchdog fired (without burning wall time). *)

type fault_kind =
  | Injected_crash
  | Injected_stall
  | Deadline
  | Task_exception of string  (** [Printexc.to_string] of the exception. *)

val kind_string : fault_kind -> string
(** Stable identifier used in [faults/v1] JSON and trace fault lines. *)

type failure = { chunk : int; attempt : int; kind : fault_kind }

type 'a outcome = Completed of 'a | Quarantined of failure list
(** One slot of the returned prefix. [Quarantined] carries the failure
    of every exhausted attempt, in attempt order. *)

type policy = {
  max_attempts : int;  (** Attempts per chunk before quarantine, >= 1. *)
  backoff_s : float;  (** Base delay before the 2nd retry; doubles after. *)
  max_backoff_s : float;  (** Backoff cap. *)
  deadline_s : float option;  (** Per-chunk watchdog budget. *)
}

val default_policy : policy
(** 3 attempts, 1 ms base backoff capped at 250 ms, no deadline. *)

(** {2 Arming}

    The CLI arms a policy process-wide; {!Experiments.Trial} routes its
    chunks through the supervised pool exactly when {!armed} (or when a
    fault plan or checkpoint is active), so unsupervised runs keep the
    plain {!Pool} path and its cost profile. *)

val arm : policy -> unit
(** @raise Invalid_argument on a malformed policy. *)

val disarm : unit -> unit
val armed : unit -> bool
val current_policy : unit -> policy option

(** {2 Cooperative watchdog} *)

exception Deadline_exceeded

val watchdog_armed : unit -> bool
(** One atomic read; [poll] is only worth calling when [true]. *)

val poll : unit -> unit
(** Raise {!Deadline_exceeded} if the current chunk's deadline has
    passed. No-op outside a supervised chunk or without a deadline. *)

(** {2 Campaign-wide fault accounting} *)

type summary = {
  retries : int;  (** Failed attempts that were retried (or exhausted). *)
  failures : failure list;  (** Sorted by (chunk, attempt). *)
  quarantined : int list;  (** Sorted chunk indices. *)
  failed_units : string list;
      (** Non-pool units (whole experiments) that failed unrecoverably,
          as ["unit: message"]. *)
}

val empty_summary : summary

(** {2 The supervised pool} *)

val collect_prefix :
  ?jobs:int ->
  ?policy:policy ->
  ?inject:(chunk:int -> attempt:int -> injection) ->
  limit:int ->
  until:('a -> bool) ->
  (int -> 'a) ->
  'a outcome array * summary
(** {!Pool.collect_prefix} with per-chunk supervision. [until] is
    consulted on completed results only — a quarantined chunk never
    stops dispensing. [inject] must be a pure function of
    [(chunk, attempt)] (never of scheduling), or determinism is lost;
    it defaults to no injection. The returned summary is also absorbed
    into the campaign-wide {!global_summary}. *)

val unrecoverable : summary -> bool
(** Whether anything was lost for good — the CLI's exit-5 condition. *)

val record_unit_failure : unit:string -> message:string -> unit
(** Register an unrecoverable non-pool unit (e.g. an experiment whose
    run raised even after retry) in the global summary. *)

val record_unit_retry : unit -> unit

val global_summary : unit -> summary
(** Everything absorbed since {!reset_global}, sorted and
    deduplicated. *)

val reset_global : unit -> unit

val metrics_snapshot : unit -> Obs.Metrics.snapshot
(** The global summary as [supervisor.*] counters, for [--metrics-out].
    Operational data: unlike [trial.*] counters these may legitimately
    vary across schedules (overshoot chunks, retry timing). *)

val summary_json : summary -> Obs.Json.t
(** The machine-readable [faults/v1] document. *)
