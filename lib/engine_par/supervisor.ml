type injection = Pass | Crash | Stall

type fault_kind =
  | Injected_crash
  | Injected_stall
  | Deadline
  | Task_exception of string

let kind_string = function
  | Injected_crash -> "injected_crash"
  | Injected_stall -> "injected_stall"
  | Deadline -> "deadline"
  | Task_exception message -> Printf.sprintf "exception:%s" message

type failure = { chunk : int; attempt : int; kind : fault_kind }

type 'a outcome = Completed of 'a | Quarantined of failure list

type policy = {
  max_attempts : int;
  backoff_s : float;
  max_backoff_s : float;
  deadline_s : float option;
}

let default_policy =
  { max_attempts = 3; backoff_s = 0.001; max_backoff_s = 0.25; deadline_s = None }

let validate_policy p =
  if p.max_attempts < 1 then
    invalid_arg "Supervisor: max_attempts must be at least 1";
  if p.backoff_s < 0.0 || p.max_backoff_s < 0.0 then
    invalid_arg "Supervisor: negative backoff";
  match p.deadline_s with
  | Some d when d <= 0.0 -> invalid_arg "Supervisor: deadline must be positive"
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Arming: the ambient policy the trial engine picks up. One atomic
   read decides whether a run takes the supervised path at all, so the
   disabled path costs nothing.                                        *)

let ambient_policy : policy option Atomic.t = Atomic.make None

let arm policy =
  validate_policy policy;
  Atomic.set ambient_policy (Some policy)

let disarm () = Atomic.set ambient_policy None
let armed () = Atomic.get ambient_policy <> None
let current_policy () = Atomic.get ambient_policy

(* ------------------------------------------------------------------ *)
(* Cooperative watchdog. A stuck OCaml domain cannot be preempted, so
   the per-chunk deadline has two detection points: [poll], called by
   instrumented work at natural boundaries (the trial engine polls at
   every attempt start), raises as soon as the budget is spent; and a
   post-hoc check when the chunk returns, which catches work that never
   polled. Both use the same wall-clock reading discipline as
   [Obs.Timing] (monotonic in practice on the hosts we run on). *)

exception Deadline_exceeded

let watchdog = Atomic.make false
let[@inline] watchdog_armed () = Atomic.get watchdog

let expiry : float option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let poll () =
  match Domain.DLS.get expiry with
  | Some t when Unix.gettimeofday () > t -> raise Deadline_exceeded
  | Some _ | None -> ()

let with_deadline deadline_s f =
  match deadline_s with
  | None -> f ()
  | Some d ->
      let t0 = Unix.gettimeofday () in
      let previous = Domain.DLS.get expiry in
      Domain.DLS.set expiry (Some (t0 +. d));
      let result =
        Fun.protect ~finally:(fun () -> Domain.DLS.set expiry previous) f
      in
      if Unix.gettimeofday () -. t0 > d then raise Deadline_exceeded;
      result

(* ------------------------------------------------------------------ *)
(* Campaign-wide fault accounting (for the CLI's faults/v1 section and
   exit code 5): every collect_prefix run folds its failures in here.  *)

type summary = {
  retries : int;
  failures : failure list;  (** Sorted by (chunk, attempt). *)
  quarantined : int list;  (** Sorted chunk indices. *)
  failed_units : string list;
      (** Units supervised outside the pool (e.g. whole experiments in
          [Catalog.run_all]) that failed unrecoverably. *)
}

let empty_summary =
  { retries = 0; failures = []; quarantined = []; failed_units = [] }

let compare_failure a b =
  match compare a.chunk b.chunk with 0 -> compare a.attempt b.attempt | c -> c

let sort_summary s =
  {
    s with
    failures = List.sort compare_failure s.failures;
    quarantined = List.sort_uniq compare s.quarantined;
    failed_units = List.sort compare s.failed_units;
  }

let global_lock = Mutex.create ()
let global = ref empty_summary

let absorb_locked f =
  Mutex.lock global_lock;
  global := f !global;
  Mutex.unlock global_lock

let absorb_summary s =
  absorb_locked (fun g ->
      {
        retries = g.retries + s.retries;
        failures = List.rev_append s.failures g.failures;
        quarantined = List.rev_append s.quarantined g.quarantined;
        failed_units = List.rev_append s.failed_units g.failed_units;
      })

let record_unit_failure ~unit ~message =
  absorb_locked (fun g ->
      {
        g with
        failed_units = Printf.sprintf "%s: %s" unit message :: g.failed_units;
      })

let record_unit_retry () = absorb_locked (fun g -> { g with retries = g.retries + 1 })

let global_summary () =
  Mutex.lock global_lock;
  let s = !global in
  Mutex.unlock global_lock;
  sort_summary s

let reset_global () =
  Mutex.lock global_lock;
  global := empty_summary;
  Mutex.unlock global_lock

let unrecoverable s = s.quarantined <> [] || s.failed_units <> []

let metrics_snapshot () =
  let s = global_summary () in
  let registry = Obs.Metrics.create () in
  Obs.Metrics.add registry "supervisor.retries" s.retries;
  Obs.Metrics.add registry "supervisor.quarantined" (List.length s.quarantined);
  Obs.Metrics.add registry "supervisor.failed_units" (List.length s.failed_units);
  List.iter
    (fun f ->
      Obs.Metrics.incr registry
        (match f.kind with
        | Injected_crash -> "supervisor.faults.injected_crash"
        | Injected_stall -> "supervisor.faults.injected_stall"
        | Deadline -> "supervisor.faults.deadline"
        | Task_exception _ -> "supervisor.faults.exception"))
    s.failures;
  Obs.Metrics.snapshot registry

let summary_json s =
  let fail f =
    Obs.Json.Obj
      [
        ("chunk", Obs.Json.Int f.chunk);
        ("attempt", Obs.Json.Int f.attempt);
        ("kind", Obs.Json.String (kind_string f.kind));
      ]
  in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "faults/v1");
      ("retries", Obs.Json.Int s.retries);
      ("unrecoverable", Obs.Json.Bool (unrecoverable s));
      ("quarantined", Obs.Json.List (List.map (fun c -> Obs.Json.Int c) s.quarantined));
      ( "failed_units",
        Obs.Json.List (List.map (fun u -> Obs.Json.String u) s.failed_units) );
      ("failures", Obs.Json.List (List.map fail s.failures));
    ]

(* ------------------------------------------------------------------ *)
(* The supervised pool.                                                *)

let backoff_delay policy attempt =
  (* Exponential: base * 2^(attempt-1), capped. Attempt 1 has no delay —
     the first retry is immediate work, not punishment. *)
  if attempt <= 1 || policy.backoff_s <= 0.0 then 0.0
  else
    Stdlib.min policy.max_backoff_s
      (policy.backoff_s *. (2.0 ** float_of_int (attempt - 2)))

let run_supervised ~policy ~inject ~record work chunk =
  (* The retry loop for one chunk, run entirely on whichever domain the
     pool handed the chunk to. [work] is pure, so a retried chunk
     recomputes the identical value — which is why reports stay
     byte-identical to a fault-free run when every chunk eventually
     succeeds. *)
  let rec attempt k failures =
    if k > policy.max_attempts then Quarantined (List.rev failures)
    else begin
      let delay = backoff_delay policy k in
      if delay > 0.0 then begin
        Obs.Telemetry.add_to "supervisor.backoff_s" delay;
        Unix.sleepf delay
      end;
      let fail kind =
        let f = { chunk; attempt = k; kind } in
        record f;
        Obs.Telemetry.add_to "supervisor.retries" 1.;
        attempt (k + 1) (f :: failures)
      in
      match inject ~chunk ~attempt:k with
      | Crash -> fail Injected_crash
      | Stall ->
          (* An injected stall models work that never returns within its
             deadline: the watchdog fires without running the task, so
             the simulation is deterministic and costs no wall time. *)
          fail Injected_stall
      | Pass -> (
          let t0 = if Obs.Telemetry.on () then Unix.gettimeofday () else 0. in
          let observe () =
            if Obs.Telemetry.on () then
              Obs.Telemetry.observe_ns "supervisor.attempt_ns"
                ((Unix.gettimeofday () -. t0) *. 1e9)
          in
          match with_deadline policy.deadline_s (fun () -> work chunk) with
          | result ->
              observe ();
              Completed result
          | exception Deadline_exceeded ->
              observe ();
              fail Deadline
          | exception exn ->
              observe ();
              fail (Task_exception (Printexc.to_string exn)))
    end
  in
  attempt 1 []

let no_injection ~chunk:_ ~attempt:_ = Pass

let collect_prefix ?jobs ?(policy = default_policy)
    ?(inject = no_injection) ~limit ~until work =
  validate_policy policy;
  let retries = Atomic.make 0 in
  let failures_lock = Mutex.create () in
  let failures = ref [] in
  let record f =
    Atomic.incr retries;
    Mutex.lock failures_lock;
    failures := f :: !failures;
    Mutex.unlock failures_lock
  in
  let armed_deadline = policy.deadline_s <> None in
  if armed_deadline then Atomic.set watchdog true;
  let supervised c = run_supervised ~policy ~inject ~record work c in
  let until_outcome = function
    | Completed r -> until r
    | Quarantined _ -> false
  in
  let outcomes =
    Fun.protect
      ~finally:(fun () -> if armed_deadline then Atomic.set watchdog false)
      (fun () ->
        Pool.collect_prefix ?jobs ~limit ~until:until_outcome supervised)
  in
  let quarantined =
    Array.to_list outcomes
    |> List.concat_map (function
         | Quarantined (f :: _) -> [ f.chunk ]
         | Quarantined [] | Completed _ -> [])
  in
  (* Retries counted here are attempts beyond the first, i.e. every
     recorded failure whose chunk was eventually retried (quarantining
     attempts count too: they were retried up to the budget). *)
  let summary =
    sort_summary
      {
        retries = Atomic.get retries;
        failures = !failures;
        quarantined;
        failed_units = [];
      }
  in
  absorb_summary summary;
  (outcomes, summary)
