let recommended_jobs () = Domain.recommended_domain_count ()

let default = Atomic.make 1

let default_jobs () = Atomic.get default

let set_default_jobs jobs =
  if jobs <= 0 then invalid_arg "Pool.set_default_jobs: jobs must be positive";
  Atomic.set default jobs

let worker_flag = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get worker_flag

(* The worker body shared by every domain (including the caller, which
   participates instead of idling). Indices come from [next]; a raised
   exception is parked in [failure] (first one wins) and stops the
   pool via [stop]. *)
let worker_loop ~next ~stop ~failure ~limit ~until ~work ~results =
  (try
     let continue = ref true in
     while !continue do
       if Atomic.get stop then continue := false
       else begin
         let i = Atomic.fetch_and_add next 1 in
         if i >= limit then continue := false
         else begin
           let r = work i in
           results.(i) <- Some r;
           if until r then Atomic.set stop true
         end
       end
     done
   with exn ->
     let bt = Printexc.get_raw_backtrace () in
     ignore (Atomic.compare_and_set failure None (Some (exn, bt)));
     Atomic.set stop true)

(* Telemetry wrapper: one slot = one domain's participation in one
   pool dispatch. Accumulates busy seconds, task count and service /
   queue-wait histograms locally, then publishes them in a handful of
   lock acquisitions at slot end — nothing touches shared state per
   task. Queue wait for index [i] is measured from dispatch start to
   the moment a domain picked [i] up (so it includes domain spawn
   latency and time spent behind earlier tasks on the same domain). *)
let with_slot_telemetry ~slot ~pool_t0 ~work body =
  let task_ns = Obs.Telemetry.local_create () in
  let queue_wait_ns = Obs.Telemetry.local_create () in
  let busy = ref 0. in
  let tasks = ref 0 in
  let timed_work i =
    let t0 = Unix.gettimeofday () in
    Obs.Telemetry.local_observe_ns queue_wait_ns ((t0 -. pool_t0) *. 1e9);
    let r = work i in
    let dt = Unix.gettimeofday () -. t0 in
    busy := !busy +. dt;
    incr tasks;
    Obs.Telemetry.local_observe_ns task_ns (dt *. 1e9);
    r
  in
  let slot_t0 = Unix.gettimeofday () in
  let gc0 = Obs.Runtime.sample () in
  Fun.protect
    ~finally:(fun () ->
      let wall = Unix.gettimeofday () -. slot_t0 in
      let prefix = Printf.sprintf "pool.domain.%d." slot in
      Obs.Telemetry.add_to (prefix ^ "wall_s") wall;
      Obs.Telemetry.add_to (prefix ^ "busy_s") !busy;
      Obs.Telemetry.add_to (prefix ^ "tasks") (float_of_int !tasks);
      Obs.Telemetry.absorb "pool.task_ns" task_ns;
      Obs.Telemetry.absorb "pool.queue_wait_ns" queue_wait_ns;
      Obs.Runtime.publish_slot ~slot (Obs.Runtime.delta_since gc0))
    (fun () -> body timed_work)

let sequential_prefix ~limit ~until work =
  let acc = ref [] in
  let stopped = ref false in
  let i = ref 0 in
  while (not !stopped) && !i < limit do
    let r = work !i in
    acc := r :: !acc;
    if until r then stopped := true;
    incr i
  done;
  Array.of_list (List.rev !acc)

let parallel_prefix ~telemetry ~jobs ~limit ~until work =
  let results = Array.make limit None in
  let next = Atomic.make 0 in
  let stop = Atomic.make false in
  let failure = Atomic.make None in
  let pool_t0 = if telemetry then Unix.gettimeofday () else 0. in
  let body ~slot () =
    let run work = worker_loop ~next ~stop ~failure ~limit ~until ~work ~results in
    if telemetry then with_slot_telemetry ~slot ~pool_t0 ~work run else run work
  in
  let spawned = Stdlib.min jobs limit - 1 in
  let domains =
    List.init spawned (fun k ->
        Domain.spawn (fun () ->
            Domain.DLS.set worker_flag true;
            body ~slot:(k + 1) ()))
  in
  (* The caller works too; mark it so nested pool calls run inline. *)
  Domain.DLS.set worker_flag true;
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set worker_flag false;
      List.iter Domain.join domains)
    (body ~slot:0);
  (match Atomic.get failure with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ());
  (* Dispensed indices form a contiguous prefix and all of them have
     completed by now; cut the array at the first unfilled slot. *)
  let filled = ref 0 in
  while !filled < limit && results.(!filled) <> None do incr filled done;
  Array.init !filled (fun i ->
      match results.(i) with Some r -> r | None -> assert false)

let collect_prefix ?jobs ~limit ~until work =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs <= 0 then invalid_arg "Pool.collect_prefix: jobs must be positive";
  if limit < 0 then invalid_arg "Pool.collect_prefix: limit must be non-negative";
  (* Nested (in-worker) dispatches skip telemetry: their time is
     already inside the enclosing task's service time. *)
  let telemetry = Obs.Telemetry.on () && not (in_worker ()) in
  if telemetry then Obs.Telemetry.add_to "pool.dispatches" 1.;
  let run () =
    if jobs = 1 || limit <= 1 || in_worker () then
      if telemetry then
        with_slot_telemetry ~slot:0 ~pool_t0:(Unix.gettimeofday ()) ~work
          (fun work -> sequential_prefix ~limit ~until work)
      else sequential_prefix ~limit ~until work
    else parallel_prefix ~telemetry ~jobs ~limit ~until work
  in
  (* Profiling only — the pool's wall time, including domain spawn and
     join, attributed at the dispatch layer. *)
  if Obs.Timing.on () then Obs.Timing.span "pool.collect_prefix" run else run ()

let map ?jobs f xs =
  collect_prefix ?jobs ~limit:(Array.length xs)
    ~until:(fun _ -> false)
    (fun i -> f xs.(i))
