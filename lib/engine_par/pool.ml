let recommended_jobs () = Domain.recommended_domain_count ()

let default = Atomic.make 1

let default_jobs () = Atomic.get default

let set_default_jobs jobs =
  if jobs <= 0 then invalid_arg "Pool.set_default_jobs: jobs must be positive";
  Atomic.set default jobs

let worker_flag = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get worker_flag

(* The worker body shared by every domain (including the caller, which
   participates instead of idling). Indices come from [next]; a raised
   exception is parked in [failure] (first one wins) and stops the
   pool via [stop]. *)
let worker_loop ~next ~stop ~failure ~limit ~until ~work ~results =
  (try
     let continue = ref true in
     while !continue do
       if Atomic.get stop then continue := false
       else begin
         let i = Atomic.fetch_and_add next 1 in
         if i >= limit then continue := false
         else begin
           let r = work i in
           results.(i) <- Some r;
           if until r then Atomic.set stop true
         end
       end
     done
   with exn ->
     let bt = Printexc.get_raw_backtrace () in
     ignore (Atomic.compare_and_set failure None (Some (exn, bt)));
     Atomic.set stop true)

let sequential_prefix ~limit ~until work =
  let acc = ref [] in
  let stopped = ref false in
  let i = ref 0 in
  while (not !stopped) && !i < limit do
    let r = work !i in
    acc := r :: !acc;
    if until r then stopped := true;
    incr i
  done;
  Array.of_list (List.rev !acc)

let parallel_prefix ~jobs ~limit ~until work =
  let results = Array.make limit None in
  let next = Atomic.make 0 in
  let stop = Atomic.make false in
  let failure = Atomic.make None in
  let body () =
    worker_loop ~next ~stop ~failure ~limit ~until ~work ~results
  in
  let spawned = Stdlib.min jobs limit - 1 in
  let domains =
    List.init spawned (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set worker_flag true;
            body ()))
  in
  (* The caller works too; mark it so nested pool calls run inline. *)
  Domain.DLS.set worker_flag true;
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set worker_flag false;
      List.iter Domain.join domains)
    body;
  (match Atomic.get failure with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ());
  (* Dispensed indices form a contiguous prefix and all of them have
     completed by now; cut the array at the first unfilled slot. *)
  let filled = ref 0 in
  while !filled < limit && results.(!filled) <> None do incr filled done;
  Array.init !filled (fun i ->
      match results.(i) with Some r -> r | None -> assert false)

let collect_prefix ?jobs ~limit ~until work =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs <= 0 then invalid_arg "Pool.collect_prefix: jobs must be positive";
  if limit < 0 then invalid_arg "Pool.collect_prefix: limit must be non-negative";
  let run () =
    if jobs = 1 || limit <= 1 || in_worker () then sequential_prefix ~limit ~until work
    else parallel_prefix ~jobs ~limit ~until work
  in
  (* Profiling only — the pool's wall time, including domain spawn and
     join, attributed at the dispatch layer. *)
  if Obs.Timing.on () then Obs.Timing.span "pool.collect_prefix" run else run ()

let map ?jobs f xs =
  collect_prefix ?jobs ~limit:(Array.length xs)
    ~until:(fun _ -> false)
    (fun i -> f xs.(i))
