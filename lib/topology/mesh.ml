let checked_power ~d ~m =
  let rec loop i acc =
    if i = d then acc
    else if acc > max_int / m then invalid_arg "Mesh.graph: m^d overflows"
    else loop (i + 1) (acc * m)
  in
  loop 0 1

let coords ~d ~m v =
  let c = Array.make d 0 in
  let rest = ref v in
  for axis = 0 to d - 1 do
    c.(axis) <- !rest mod m;
    rest := !rest / m
  done;
  c

let index ~m c =
  Array.fold_right (fun coordinate acc -> (acc * m) + coordinate) c 0

let l1_distance ~d ~m u v =
  let cu = coords ~d ~m u and cv = coords ~d ~m v in
  let total = ref 0 in
  for axis = 0 to d - 1 do
    total := !total + abs (cu.(axis) - cv.(axis))
  done;
  !total

let fixed_path ~d ~m u v =
  let cu = coords ~d ~m u and cv = coords ~d ~m v in
  let current = Array.copy cu in
  let acc = ref [ u ] in
  for axis = 0 to d - 1 do
    let step = if cv.(axis) > cu.(axis) then 1 else -1 in
    while current.(axis) <> cv.(axis) do
      current.(axis) <- current.(axis) + step;
      acc := index ~m current :: !acc
    done
  done;
  List.rev !acc

let graph ~d ~m =
  if d < 1 then invalid_arg "Mesh.graph: d must be >= 1";
  if m < 2 then invalid_arg "Mesh.graph: m must be >= 2";
  let size = checked_power ~d ~m in
  let stride axis =
    let rec loop i acc = if i = axis then acc else loop (i + 1) (acc * m) in
    loop 0 1
  in
  let strides = Array.init d stride in
  let neighbors v =
    let c = coords ~d ~m v in
    let out = ref [] in
    for axis = d - 1 downto 0 do
      if c.(axis) > 0 then out := (v - strides.(axis)) :: !out;
      if c.(axis) < m - 1 then out := (v + strides.(axis)) :: !out
    done;
    Array.of_list !out
  in
  let degree v =
    let c = coords ~d ~m v in
    let deg = ref 0 in
    for axis = 0 to d - 1 do
      if c.(axis) > 0 then incr deg;
      if c.(axis) < m - 1 then incr deg
    done;
    !deg
  in
  (* Edge along [axis] between v and v + stride(axis): id = v*d + axis
     where v is the endpoint with the smaller coordinate. *)
  let edge_id u v =
    if u < 0 || v < 0 || u >= size || v >= size then raise (Graph.Not_an_edge (u, v));
    let lo = if u < v then u else v and hi = if u < v then v else u in
    let diff = hi - lo in
    let rec find_axis axis =
      if axis = d then raise (Graph.Not_an_edge (u, v))
      else if diff = strides.(axis) then axis
      else find_axis (axis + 1)
    in
    let axis = find_axis 0 in
    (* Reject wraparound-looking pairs: the lower endpoint must not be on
       the upper face of that axis boundary, i.e. coordinates must be
       consistent (lo's coordinate on [axis] is < m-1 and hi = lo + 1).
       Only that one coordinate is needed, so extract it directly rather
       than materialising the whole coordinate vector — [edge_id] is on
       every probe's hot path. *)
    if lo / strides.(axis) mod m >= m - 1 then raise (Graph.Not_an_edge (u, v));
    (lo * d) + axis
  in
  {
    Graph.name = Printf.sprintf "mesh(d=%d,m=%d)" d m;
    vertex_count = size;
    degree;
    neighbors;
    edge_id;
    edge_id_bound = size * d;
    distance = Some (l1_distance ~d ~m);
  }

let side g ~d =
  let rec root candidate =
    if checked_power ~d ~m:candidate >= g.Graph.vertex_count then candidate
    else root (candidate + 1)
  in
  root 2

let centre ~d ~m = index ~m (Array.make d (m / 2))
