(** Flat compressed-sparse-row adjacency of a graph.

    The implicit {!Graph.t} interface computes adjacency on demand — a
    fresh array per [neighbors] call, a closure call per [edge_id].
    That is the right trade for astronomically large graphs, but for
    the size-gated graphs percolation caches cover, the hot loops
    (reveal BFS, probe sweeps, coin filling) want plain array reads.
    This module materialises adjacency once per graph: vertex [v]'s
    neighbors occupy slots [xadj.(v) .. xadj.(v+1) - 1] of [targets],
    with the canonical edge id of each slot in [edge_ids].

    Only for graphs small enough to enumerate (cost and memory are
    O(Σ degree)); percolation gates callers by
    [Percolation.World.cache_gate]. *)

type t = {
  xadj : int array;  (** Offsets; length [vertex_count + 1]. *)
  targets : int array;  (** Neighbor vertex per directed slot. *)
  edge_ids : int array;  (** Canonical edge id per directed slot. *)
}

val build : Graph.t -> t
(** Materialise the adjacency of a graph (one [neighbors] and one
    [edge_id] evaluation per directed edge). *)

val of_graph : Graph.t -> t
(** Like {!build}, but memoised on the graph's {e physical identity}
    and safe to call from any domain: every world over the same graph
    value shares one structure. Structurally equal but physically
    distinct graphs build independent copies (correct, just unshared). *)
