let edge_id_of_pair u v =
  (* Monomorphic comparisons: polymorphic [min]/[max] go through the
     generic compare runtime and dominate probe-heavy hot loops. *)
  let lo = if u < v then u else v and hi = if u < v then v else u in
  (hi * (hi - 1) / 2) + lo

let graph n =
  if n < 2 then invalid_arg "Complete.graph: need n >= 2";
  if n > 90000000 then invalid_arg "Complete.graph: n too large for edge ids";
  let neighbors v = Array.init (n - 1) (fun i -> if i < v then i else i + 1) in
  let edge_id u v =
    if u < 0 || v < 0 || u >= n || v >= n || u = v then raise (Graph.Not_an_edge (u, v));
    edge_id_of_pair u v
  in
  {
    Graph.name = Printf.sprintf "complete(n=%d)" n;
    vertex_count = n;
    degree = (fun _ -> n - 1);
    neighbors;
    edge_id;
    edge_id_bound = n * (n - 1) / 2;
    distance = Some (fun u v -> if u = v then 0 else 1);
  }
