type shape =
  | Hypercube of { n : int }
  | Mesh of { d : int; m : int }
  | Torus of { d : int; m : int }
  | Binary_tree of { depth : int }
  | Double_tree of { depth : int }
  | Complete of { vertices : int }
  | Theta of { paths : int }
  | De_bruijn of { n : int }
  | Shuffle_exchange of { n : int }
  | Butterfly of { n : int }
  | Cycle_matching of { vertices : int }

type instance = { shape : shape; graph : Graph.t }

type entry = {
  name : string;
  doc : string;
  build : size:int -> Prng.Stream.t -> instance;
}

type spec = { entry : entry; size : int option }

let pure name doc shape_of graph_of =
  {
    name;
    doc;
    build = (fun ~size _stream -> { shape = shape_of size; graph = graph_of size });
  }

let entries =
  [
    pure "hypercube" "n-dimensional hypercube H_n (size = dimension n)"
      (fun n -> Hypercube { n })
      Hypercube.graph;
    pure "mesh2" "2-dimensional mesh of side m (size = m)"
      (fun m -> Mesh { d = 2; m })
      (fun m -> Mesh.graph ~d:2 ~m);
    pure "mesh3" "3-dimensional mesh of side m (size = m)"
      (fun m -> Mesh { d = 3; m })
      (fun m -> Mesh.graph ~d:3 ~m);
    pure "torus2" "2-dimensional torus of side m (size = m)"
      (fun m -> Torus { d = 2; m })
      (fun m -> Torus.graph ~d:2 ~m);
    pure "tree" "complete binary tree (size = depth)"
      (fun depth -> Binary_tree { depth })
      Binary_tree.graph;
    pure "double-tree" "double binary tree TT_n (size = depth n)"
      (fun depth -> Double_tree { depth })
      Double_tree.graph;
    pure "complete" "complete graph K_n, percolating to G(n,p) (size = n)"
      (fun vertices -> Complete { vertices })
      Complete.graph;
    pure "theta" "theta graph: d parallel length-2 paths (size = d)"
      (fun paths -> Theta { paths })
      Theta.graph;
    pure "de-bruijn" "binary De Bruijn graph B(2,n) (size = word length n)"
      (fun n -> De_bruijn { n })
      De_bruijn.graph;
    pure "shuffle-exchange" "binary shuffle-exchange graph SE(n) (size = word length n)"
      (fun n -> Shuffle_exchange { n })
      Shuffle_exchange.graph;
    pure "butterfly" "wrapped butterfly BF(n) (size = dimension n)"
      (fun n -> Butterfly { n })
      Butterfly.graph;
    {
      name = "cycle-matching";
      doc = "n-cycle plus a random perfect matching (size = n; uses the stream)";
      build =
        (fun ~size stream ->
          { shape = Cycle_matching { vertices = size };
            graph = Cycle_matching.graph stream size });
    };
  ]

let names () = List.map (fun e -> e.name) entries

let find name =
  let wanted = String.lowercase_ascii (String.trim name) in
  List.find_opt (fun e -> e.name = wanted) entries

let unknown what =
  Error
    (Printf.sprintf "unknown topology %S (known: %s)" what
       (String.concat ", " (names ())))

let of_spec spec_string =
  let resolve name size =
    match find name with
    | Some entry -> Ok { entry; size }
    | None -> unknown name
  in
  match String.split_on_char ':' (String.trim spec_string) with
  | [ name ] -> resolve name None
  | [ name; size ] -> (
      match int_of_string_opt size with
      | Some size -> resolve name (Some size)
      | None ->
          Error
            (Printf.sprintf "topology spec %S: size %S is not an integer"
               spec_string size))
  | _ ->
      Error
        (Printf.sprintf "topology spec %S: expected NAME or NAME:SIZE" spec_string)

let build { entry; size } ~default_size stream =
  entry.build ~size:(Option.value size ~default:default_size) stream
