let shift ~n x b = ((x lsl 1) land ((1 lsl n) - 1)) lor b

let graph n =
  if n < 2 || n > 28 then invalid_arg "De_bruijn.graph: need 2 <= n <= 28";
  let size = 1 lsl n in
  let neighbors x =
    let candidates =
      [ shift ~n x 0; shift ~n x 1; x lsr 1; (x lsr 1) lor (1 lsl (n - 1)) ]
    in
    candidates
    |> List.filter (fun y -> y <> x)
    |> List.sort_uniq compare
    |> Array.of_list
  in
  let degree x = Array.length (neighbors x) in
  (* Every edge {x, y} has y an out-shift of x for at least one of its two
     orientations; the canonical id is taken from the representation
     (source, bit) with the smallest source (then smallest bit):
     id = 2·source + bit. *)
  let edge_id u v =
    if u < 0 || v < 0 || u >= size || v >= size || u = v then
      raise (Graph.Not_an_edge (u, v));
    (* Smallest matching (source, bit) representation, checked in
       ascending id order — allocation-free, as this sits on every
       oracle probe's hot path. *)
    let id =
      if u <= v then
        if shift ~n u 0 = v then 2 * u
        else if shift ~n u 1 = v then (2 * u) + 1
        else if shift ~n v 0 = u then 2 * v
        else if shift ~n v 1 = u then (2 * v) + 1
        else -1
      else if shift ~n v 0 = u then 2 * v
      else if shift ~n v 1 = u then (2 * v) + 1
      else if shift ~n u 0 = v then 2 * u
      else if shift ~n u 1 = v then (2 * u) + 1
      else -1
    in
    if id < 0 then raise (Graph.Not_an_edge (u, v)) else id
  in
  {
    Graph.name = Printf.sprintf "de_bruijn(n=%d)" n;
    vertex_count = size;
    degree;
    neighbors;
    edge_id;
    edge_id_bound = 2 * size;
    distance = None;
  }
