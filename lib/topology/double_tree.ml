type role = Internal1 | Leaf | Internal2

(* Layout boundaries for depth n:
   internal-1 ids: [0, 2^n - 1)           (heap index = id + 1, in [1, 2^n))
   leaf ids:       [2^n - 1, 2^(n+1) - 1) (leaf offset = id - (2^n - 1))
   internal-2 ids: [2^(n+1) - 1, 3·2^n - 2) (heap index = id - (2^(n+1) - 1) + 1)

   Within either tree we work with "extended heap indices" in [1, 2^(n+1)):
   indices [1, 2^n) are internal, [2^n, 2^(n+1)) are the leaves. *)

let leaf_base ~n = (1 lsl n) - 1
let internal2_base ~n = (1 lsl (n + 1)) - 1
let vertex_count ~n = (3 * (1 lsl n)) - 2

let root1 = 0
let root2 ~n = internal2_base ~n

let role_of ~n v =
  if v < leaf_base ~n then Internal1
  else if v < internal2_base ~n then Leaf
  else Internal2

let leaf ~n j = leaf_base ~n + j

(* Extended heap index of vertex [v] within tree [t] (0 or 1). Leaves
   belong to both trees. Raises Not_found if v is internal to the other
   tree. *)
let heap_in_tree ~n ~tree v =
  match role_of ~n v with
  | Internal1 -> if tree = 0 then v + 1 else raise Not_found
  | Internal2 -> if tree = 1 then v - internal2_base ~n + 1 else raise Not_found
  | Leaf -> (1 lsl n) + (v - leaf_base ~n)

(* Vertex id of extended heap index [h] in tree [t]. *)
let vertex_of_heap ~n ~tree h =
  if h >= 1 lsl n then leaf_base ~n + (h - (1 lsl n))
  else if tree = 0 then h - 1
  else internal2_base ~n + h - 1

let depth_of ~n v =
  match role_of ~n v with
  | Leaf -> n
  | Internal1 -> Binary_tree.depth_of v
  | Internal2 -> Binary_tree.depth_of (v - internal2_base ~n)

(* An edge is (tree, child-heap-index ch) with ch in [2, 2^(n+1)):
   it joins heap ch to heap ch/2 within that tree. *)
let decompose_edge ~n u v =
  let size = vertex_count ~n in
  if u < 0 || v < 0 || u >= size || v >= size || u = v then
    raise (Graph.Not_an_edge (u, v));
  let try_tree tree =
    match (heap_in_tree ~n ~tree u, heap_in_tree ~n ~tree v) with
    | hu, hv ->
        let child = if hu < hv then hv else hu
        and parent_heap = if hu < hv then hu else hv in
        if child lsr 1 = parent_heap then Some (tree, child) else None
    | exception Not_found -> None
  in
  match try_tree 0 with
  | Some decomposition -> decomposition
  | None -> (
      match try_tree 1 with
      | Some decomposition -> decomposition
      | None -> raise (Graph.Not_an_edge (u, v)))

let mirror_edge ~n u v =
  let tree, child = decompose_edge ~n u v in
  let other = 1 - tree in
  (vertex_of_heap ~n ~tree:other (child lsr 1), vertex_of_heap ~n ~tree:other child)

let graph n =
  if n < 1 || n > 27 then invalid_arg "Double_tree.graph: need 1 <= n <= 27";
  let size = vertex_count ~n in
  let neighbors v =
    match role_of ~n v with
    | Leaf ->
        let h = heap_in_tree ~n ~tree:0 v in
        [| vertex_of_heap ~n ~tree:0 (h lsr 1); vertex_of_heap ~n ~tree:1 (h lsr 1) |]
    | Internal1 | Internal2 ->
        let tree = if role_of ~n v = Internal1 then 0 else 1 in
        let h = heap_in_tree ~n ~tree v in
        let down = [ vertex_of_heap ~n ~tree (2 * h); vertex_of_heap ~n ~tree ((2 * h) + 1) ] in
        let up = if h = 1 then [] else [ vertex_of_heap ~n ~tree (h lsr 1) ] in
        Array.of_list (up @ down)
  in
  let degree v =
    match role_of ~n v with
    | Leaf -> 2
    | Internal1 | Internal2 ->
        let tree = if role_of ~n v = Internal1 then 0 else 1 in
        if heap_in_tree ~n ~tree v = 1 then 2 else 3
  in
  let edge_id u v =
    let tree, child = decompose_edge ~n u v in
    ((child - 2) * 2) + tree
  in
  {
    Graph.name = Printf.sprintf "double_tree(depth=%d)" n;
    vertex_count = size;
    degree;
    neighbors;
    edge_id;
    edge_id_bound = ((1 lsl (n + 1)) - 2) * 2;
    distance = None;
  }
