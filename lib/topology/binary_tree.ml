let root = 0

let depth_of v =
  let rec loop heap acc = if heap <= 1 then acc else loop (heap lsr 1) (acc + 1) in
  loop (v + 1) 0

let parent v = if v = 0 then None else Some (((v + 1) lsr 1) - 1)
let is_leaf ~n v = depth_of v = n

let children ~n v =
  if is_leaf ~n v then None
  else begin
    let heap = v + 1 in
    Some ((2 * heap) - 1, 2 * heap)
  end

let leaves ~n = Array.init (1 lsl n) (fun i -> (1 lsl n) - 1 + i)

let graph n =
  if n < 1 || n > 28 then invalid_arg "Binary_tree.graph: need 1 <= n <= 28";
  let size = (1 lsl (n + 1)) - 1 in
  let neighbors v =
    let parent_list = match parent v with None -> [] | Some p -> [ p ] in
    let child_list =
      match children ~n v with None -> [] | Some (l, r) -> [ l; r ]
    in
    Array.of_list (parent_list @ child_list)
  in
  let degree v =
    (match parent v with None -> 0 | Some _ -> 1)
    + (match children ~n v with None -> 0 | Some _ -> 2)
  in
  (* Edge {v, parent v} is identified by the child: id = v - 1. *)
  let edge_id u v =
    if u < 0 || v < 0 || u >= size || v >= size || u = v then
      raise (Graph.Not_an_edge (u, v));
    let child = if u < v then v else u and candidate_parent = if u < v then u else v in
    match parent child with
    | Some p when p = candidate_parent -> child - 1
    | Some _ | None -> raise (Graph.Not_an_edge (u, v))
  in
  {
    Graph.name = Printf.sprintf "binary_tree(depth=%d)" n;
    vertex_count = size;
    degree;
    neighbors;
    edge_id;
    edge_id_bound = size - 1;
    distance = None;
  }
