(* Build the matching as an involution without fixed points: shuffle the
   vertices and pair consecutive entries. *)
let random_matching stream n =
  let order = Array.init n (fun i -> i) in
  Prng.Stream.shuffle_in_place stream order;
  let partner = Array.make n (-1) in
  let i = ref 0 in
  while !i < n do
    partner.(order.(!i)) <- order.(!i + 1);
    partner.(order.(!i + 1)) <- order.(!i);
    i := !i + 2
  done;
  partner

let create stream n =
  if n < 4 || n land 1 = 1 then
    invalid_arg "Cycle_matching.graph: need even n >= 4";
  let matching = random_matching stream n in
  let cycle_next v = (v + 1) mod n in
  let cycle_prev v = (v + n - 1) mod n in
  let neighbors v =
    let ring = [ cycle_prev v; cycle_next v ] in
    let partner = matching.(v) in
    if List.mem partner ring then Array.of_list ring
    else Array.of_list (ring @ [ partner ])
  in
  let degree v = Array.length (neighbors v) in
  (* Cycle edge {v, v+1}: id = v. Matching chord {a, b}: id = n + min a b.
     When the matching pairs cycle-adjacent vertices the chord would be a
     parallel edge; we drop it (the graph stays simple), matching the
     convention of Bollobás–Chung. *)
  let edge_id u v =
    if u < 0 || v < 0 || u >= n || v >= n || u = v then raise (Graph.Not_an_edge (u, v));
    if cycle_next u = v then u
    else if cycle_next v = u then v
    else if matching.(u) = v then n + (if u < v then u else v)
    else raise (Graph.Not_an_edge (u, v))
  in
  ( {
      Graph.name = Printf.sprintf "cycle_matching(n=%d)" n;
      vertex_count = n;
      degree;
      neighbors;
      edge_id;
      edge_id_bound = 2 * n;
      distance = None;
    },
    fun v -> matching.(v) )

let graph stream n = fst (create stream n)
