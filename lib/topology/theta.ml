let endpoint_u = 0
let endpoint_v = 1
let middle i = i + 2

let connection_probability ~d ~p = 1.0 -. ((1.0 -. (p *. p)) ** float_of_int d)

let graph d =
  if d < 1 then invalid_arg "Theta.graph: need d >= 1";
  let size = d + 2 in
  let neighbors v =
    if v = endpoint_u || v = endpoint_v then Array.init d middle
    else [| endpoint_u; endpoint_v |]
  in
  let degree v = if v = endpoint_u || v = endpoint_v then d else 2 in
  (* Path i contributes edges (u, middle i) with id 2i and (v, middle i)
     with id 2i + 1. *)
  let edge_id a b =
    if a < 0 || b < 0 || a >= size || b >= size then raise (Graph.Not_an_edge (a, b));
    let lo = if a < b then a else b and hi = if a < b then b else a in
    if hi < 2 || lo > 1 then raise (Graph.Not_an_edge (a, b))
    else begin
      let path = hi - 2 in
      if lo = endpoint_u then 2 * path else (2 * path) + 1
    end
  in
  {
    Graph.name = Printf.sprintf "theta(d=%d)" d;
    vertex_count = size;
    degree;
    neighbors;
    edge_id;
    edge_id_bound = 2 * d;
    distance =
      Some
        (fun a b ->
          if a = b then 0
          else if (a < 2 && b < 2) || (a >= 2 && b >= 2) then 2
          else 1);
  }
