(** Implicit undirected simple graphs.

    Every topology in this project is exposed through this one record so
    that percolation oracles and routers are written once. Graphs are
    {e implicit}: vertices are integers in [\[0, vertex_count)],
    adjacency is computed on demand, and nothing proportional to the
    graph size needs to be materialised (essential for the hypercube,
    whose instances have up to 2{^30} vertices).

    Each undirected edge has a {e canonical id}, a unique integer in
    [\[0, edge_id_bound)]. Edge ids are what percolation coins hash, so
    injectivity is a correctness requirement (tested by property tests
    for every topology). *)

exception Not_an_edge of int * int
(** Raised by [edge_id u v] when [u] and [v] are not adjacent (or equal). *)

type t = {
  name : string;  (** Human-readable description, e.g. ["hypercube(n=14)"]. *)
  vertex_count : int;
  degree : int -> int;  (** Degree of a vertex. *)
  neighbors : int -> int array;
      (** Adjacent vertices. {b Freshness contract}: every call returns
          a {e newly allocated} array that the graph does not retain or
          alias — two consecutive calls return physically distinct,
          structurally equal arrays. Callers may therefore keep or
          mutate the result freely ({!Percolation.World}'s lazy path
          filters it in place). Every topology, in and out of the
          registry, must honour this; a qcheck test over the full
          registry enforces it. *)
  edge_id : int -> int -> int;
      (** Canonical id of the edge [{u,v}]; symmetric in its arguments.
          @raise Not_an_edge if the pair is not an edge. *)
  edge_id_bound : int;  (** Exclusive upper bound on edge ids. *)
  distance : (int -> int -> int) option;
      (** Graph metric of the {e fault-free} topology when cheaply
          computable (Hamming for the hypercube, L1 for the mesh). *)
}

val check_vertex : t -> int -> unit
(** @raise Invalid_argument if the vertex is out of range. *)

val is_edge : t -> int -> int -> bool
(** [is_edge g u v] tests adjacency via [edge_id]. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** [iter_edges g f] calls [f u v] once per undirected edge (with
    [u < v]). Cost O(Σ degree); only call on graphs small enough to
    enumerate. *)

val edge_count : t -> int
(** Number of undirected edges, by enumeration (same caveat as
    {!iter_edges}). *)

val fold_edges : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a
(** Edge fold; same enumeration caveat. *)

val edge_list : t -> (int * int) list
(** All edges as pairs [(u, v)] with [u < v]; same caveat. *)

val mean_degree : t -> float
(** Average degree, by vertex enumeration. *)

val bfs_distance : t -> int -> int -> int option
(** [bfs_distance g u v] is the fault-free graph distance by breadth-first
    search — a reference implementation for testing the [distance] field.
    [None] if unreachable. Only for small graphs. *)
