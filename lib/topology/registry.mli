(** First-class registry of the topology families.

    Replaces the stringly-typed matcher the CLI used to carry: each
    entry owns its name, a one-line doc string, and a builder that
    returns the graph {e together with} its structured shape (family +
    parameters), so downstream consumers — router applicability
    checks, mesh dimensions, backbones — read data instead of parsing
    [Graph.t.name]. *)

type shape =
  | Hypercube of { n : int }
  | Mesh of { d : int; m : int }
  | Torus of { d : int; m : int }
  | Binary_tree of { depth : int }
  | Double_tree of { depth : int }
  | Complete of { vertices : int }
  | Theta of { paths : int }
  | De_bruijn of { n : int }
  | Shuffle_exchange of { n : int }
  | Butterfly of { n : int }
  | Cycle_matching of { vertices : int }
      (** The family and parameters a graph was built from. *)

type instance = { shape : shape; graph : Graph.t }
(** A built topology carrying its own metadata. *)

type entry = {
  name : string;  (** Lower-case registry key, e.g. ["mesh2"]. *)
  doc : string;  (** One line: family and meaning of [size]. *)
  build : size:int -> Prng.Stream.t -> instance;
      (** Builds the instance. The stream feeds structurally-random
          families (cycle-matching) and is ignored by the rest.
          @raise Invalid_argument when [size] is out of the family's
          range. *)
}

type spec = { entry : entry; size : int option }
(** A parsed topology spec: which entry, and the size when the spec
    inlined one. *)

val entries : entry list
(** All registered families, in presentation order. *)

val names : unit -> string list
(** The registered names, in presentation order. *)

val find : string -> entry option
(** Case-insensitive lookup by name. *)

val of_spec : string -> (spec, string) result
(** Parses a topology spec: a registered name, optionally followed by
    [:SIZE] (e.g. ["hypercube"], ["mesh2:40"]). The error case names
    the known families. *)

val build : spec -> default_size:int -> Prng.Stream.t -> instance
(** Builds a parsed spec, falling back to [default_size] when the spec
    carried no inline size. *)
