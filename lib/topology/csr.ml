(* Flat compressed-sparse-row adjacency: per-vertex offsets into two
   parallel int arrays holding neighbor targets and canonical edge ids.
   Building one costs a full adjacency enumeration (every [neighbors]
   array allocated once, every [edge_id] computed once); afterwards any
   consumer can walk a vertex's row with plain array reads — no closure
   calls, no per-query allocation. Percolation worlds over the same
   graph all share one structure via {!of_graph}. *)

type t = {
  xadj : int array;
  targets : int array;
  edge_ids : int array;
}

let build (g : Graph.t) =
  let n = g.Graph.vertex_count in
  (* Materialise every row once: the row lengths define the offsets, so
     a [degree] function that disagreed with [neighbors] could not skew
     the layout. *)
  let rows = Array.init n g.Graph.neighbors in
  let xadj = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    xadj.(v + 1) <- xadj.(v) + Array.length rows.(v)
  done;
  let total = xadj.(n) in
  let targets = Array.make total 0 in
  let edge_ids = Array.make total 0 in
  for v = 0 to n - 1 do
    let base = xadj.(v) in
    Array.iteri
      (fun i w ->
        targets.(base + i) <- w;
        edge_ids.(base + i) <- g.Graph.edge_id v w)
      rows.(v)
  done;
  { xadj; targets; edge_ids }

(* Graphs are closures, so the memo keys on physical identity: every
   experiment builds its graph once and threads the same value through
   all its worlds, which is exactly when sharing pays. Two structurally
   equal but distinct graph values merely build twice — never wrong.
   The list is tiny (a handful of live topologies per process) and
   mutex-guarded because worlds are constructed from worker domains. *)
let memo_capacity = 8
let memo : (Graph.t * t) list ref = ref []
let memo_mutex = Mutex.create ()

let lookup g = List.find_opt (fun (g', _) -> g' == g) !memo

let of_graph g =
  let hit =
    Mutex.lock memo_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock memo_mutex) (fun () -> lookup g)
  in
  match hit with
  | Some (_, csr) -> csr
  | None ->
      (* Build outside the lock: a racing domain may build the same CSR
         twice, which wastes work but cannot produce a wrong result
         (construction is pure). *)
      let csr = build g in
      Mutex.lock memo_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock memo_mutex)
        (fun () ->
          match lookup g with
          | Some (_, existing) -> existing
          | None ->
              let kept =
                if List.length !memo >= memo_capacity then
                  List.filteri (fun i _ -> i < memo_capacity - 1) !memo
                else !memo
              in
              memo := (g, csr) :: kept;
              csr)
