exception Not_an_edge of int * int

type t = {
  name : string;
  vertex_count : int;
  degree : int -> int;
  neighbors : int -> int array;
  edge_id : int -> int -> int;
  edge_id_bound : int;
  distance : (int -> int -> int) option;
}

let check_vertex g v =
  if v < 0 || v >= g.vertex_count then
    invalid_arg (Printf.sprintf "%s: vertex %d out of range [0,%d)" g.name v g.vertex_count)

let is_edge g u v =
  match g.edge_id u v with
  | _ -> true
  | exception Not_an_edge _ -> false

let iter_edges g f =
  for u = 0 to g.vertex_count - 1 do
    Array.iter (fun v -> if u < v then f u v) (g.neighbors u)
  done

let edge_count g =
  let count = ref 0 in
  iter_edges g (fun _ _ -> incr count);
  !count

let fold_edges g ~init ~f =
  let acc = ref init in
  iter_edges g (fun u v -> acc := f !acc u v);
  !acc

let edge_list g = List.rev (fold_edges g ~init:[] ~f:(fun acc u v -> (u, v) :: acc))

let mean_degree g =
  if g.vertex_count = 0 then 0.0
  else begin
    let total = ref 0 in
    for v = 0 to g.vertex_count - 1 do
      total := !total + g.degree v
    done;
    float_of_int !total /. float_of_int g.vertex_count
  end

let bfs_distance g source target =
  check_vertex g source;
  check_vertex g target;
  if source = target then Some 0
  else begin
    (* Only called on graphs small enough to enumerate, so flat arrays
       indexed by vertex id beat a Hashtbl frontier. *)
    let dist = Array.make g.vertex_count (-1) in
    let queue = Array.make g.vertex_count 0 in
    dist.(source) <- 0;
    queue.(0) <- source;
    let head = ref 0 and tail = ref 1 in
    let result = ref None in
    (try
       while !head < !tail do
         let u = queue.(!head) in
         incr head;
         let du = dist.(u) in
         Array.iter
           (fun v ->
             if dist.(v) < 0 then begin
               dist.(v) <- du + 1;
               if v = target then begin
                 result := Some (du + 1);
                 raise Exit
               end;
               queue.(!tail) <- v;
               incr tail
             end)
           (g.neighbors u)
       done
     with Exit -> ());
    !result
  end
