let rotate_left ~n x =
  let mask = (1 lsl n) - 1 in
  ((x lsl 1) land mask) lor (x lsr (n - 1))

let rotate_right ~n x =
  let low = x land 1 in
  (x lsr 1) lor (low lsl (n - 1))

let graph n =
  if n < 2 || n > 28 then invalid_arg "Shuffle_exchange.graph: need 2 <= n <= 28";
  let size = 1 lsl n in
  let neighbors x =
    [ x lxor 1; rotate_left ~n x; rotate_right ~n x ]
    |> List.filter (fun y -> y <> x)
    |> List.sort_uniq compare
    |> Array.of_list
  in
  let degree x = Array.length (neighbors x) in
  (* Exchange edge {x, x xor 1}: id = 2·(x lsr 1) (even ids).
     Shuffle edge {y, rotate_left y}: id = 2·source + 1 (odd ids), where
     source is y, or min(y, rotate_left y) when the rotation orbit has
     period two and both endpoints generate the edge. Exchange
     representation wins when an edge is both. *)
  let edge_id u v =
    if u < 0 || v < 0 || u >= size || v >= size || u = v then
      raise (Graph.Not_an_edge (u, v));
    if u lxor v = 1 then 2 * (u lsr 1)
    else begin
      (* Smallest generating source, checked in ascending order —
         allocation-free (no list building or polymorphic sort) since
         this sits on every oracle probe's hot path. *)
      let lo = if u < v then u else v and hi = if u < v then v else u in
      if rotate_left ~n lo = hi then (2 * lo) + 1
      else if rotate_left ~n hi = lo then (2 * hi) + 1
      else raise (Graph.Not_an_edge (u, v))
    end
  in
  {
    Graph.name = Printf.sprintf "shuffle_exchange(n=%d)" n;
    vertex_count = size;
    degree;
    neighbors;
    edge_id;
    edge_id_bound = 2 * size;
    distance = None;
  }
