type t = { successes : int; trials : int }

let make ~successes ~trials =
  if trials < 0 then invalid_arg "Proportion.make: trials must be non-negative";
  if successes < 0 || successes > trials then
    invalid_arg "Proportion.make: successes outside [0, trials]";
  { successes; trials }

let merge a b =
  { successes = a.successes + b.successes; trials = a.trials + b.trials }

let estimate t =
  if t.trials = 0 then nan else float_of_int t.successes /. float_of_int t.trials

let wilson_ci ?(z = 1.96) t =
  if t.trials = 0 then (0.0, 1.0)
  else begin
    let n = float_of_int t.trials in
    let phat = estimate t in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let centre = (phat +. (z2 /. (2.0 *. n))) /. denom in
    let half =
      z *. sqrt ((phat *. (1.0 -. phat) /. n) +. (z2 /. (4.0 *. n *. n))) /. denom
    in
    (Float.max 0.0 (centre -. half), Float.min 1.0 (centre +. half))
  end

let within t ~lo ~hi =
  let ci_lo, ci_hi = wilson_ci t in
  ci_lo <= hi && ci_hi >= lo

let pp ppf t =
  let lo, hi = wilson_ci t in
  Format.fprintf ppf "%d/%d = %.3f [%.3f, %.3f]" t.successes t.trials (estimate t) lo hi
