type observation = Exact of float | At_least of float

type t = { observations : observation list; size : int; censored : int }

let empty = { observations = []; size = 0; censored = 0 }

let add t obs =
  {
    observations = obs :: t.observations;
    size = t.size + 1;
    censored = (t.censored + match obs with Exact _ -> 0 | At_least _ -> 1);
  }

let of_list observations = List.fold_left add empty observations

(* Observations are stored newest-first, so appending [b]'s list in
   front of [a]'s is exactly "all of [a]'s observations, then all of
   [b]'s" — merging is the same value [add]-ing b's stream after a's
   would have produced, which is what the parallel trial engine needs
   to be bit-compatible with a sequential fold. *)
let merge a b =
  {
    observations = b.observations @ a.observations;
    size = a.size + b.size;
    censored = a.censored + b.censored;
  }

let count t = t.size
let censored_count t = t.censored

let censored_fraction t =
  if t.size = 0 then nan else float_of_int t.censored /. float_of_int t.size

let value_of = function Exact x -> x | At_least x -> x

(* Sort by substituted value, breaking ties so that exact observations come
   before censored ones at the same value (a censored value is >= bound). *)
let sorted t =
  let arr = Array.of_list t.observations in
  Array.sort
    (fun a b ->
      match compare (value_of a) (value_of b) with
      | 0 -> ( match (a, b) with
          | Exact _, At_least _ -> -1
          | At_least _, Exact _ -> 1
          | Exact _, Exact _ | At_least _, At_least _ -> 0)
      | c -> c)
    arr;
  arr

let quantile t q =
  if t.size = 0 || not (q >= 0.0 && q <= 1.0) then None
  else begin
    let arr = sorted t in
    let index =
      Stdlib.min (t.size - 1) (int_of_float (floor (q *. float_of_int t.size)))
    in
    (* If any censored observation sits at or below the quantile position,
       the reported value is only a lower bound. *)
    let rec censored_before i =
      if i > index then false
      else match arr.(i) with At_least _ -> true | Exact _ -> censored_before (i + 1)
    in
    let v = value_of arr.(index) in
    if censored_before 0 then Some (At_least v) else Some (Exact v)
  end

let median t = quantile t 0.5

let mean_lower_bound t =
  if t.size = 0 then nan
  else
    List.fold_left (fun acc obs -> acc +. value_of obs) 0.0 t.observations
    /. float_of_int t.size

let exact_values t =
  t.observations
  |> List.filter_map (function Exact x -> Some x | At_least _ -> None)
  |> Array.of_list

let pp_observation ppf = function
  | Exact x -> Format.fprintf ppf "%.4g" x
  | At_least x -> Format.fprintf ppf "\xe2\x89\xa5%.4g" x
